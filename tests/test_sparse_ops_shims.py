"""Dedicated pin of the deprecated raw-kernel shims in ``repro.sparse.ops``.

The computational kernels that used to live in ``sparse/ops.py`` are
deprecation shims since PR 3: they must (1) emit a ``DeprecationWarning``,
(2) produce exactly what the *active* backend produces for the same raw
arrays — including when a non-default backend is scoped in — and (3) not
spam the warning on every call under default warning filters (the
``"default"`` action shows one warning per call site, so a loop that hits
a shim thousands of times logs it once).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backends import get_backend
from repro.config import rng
from repro.linalg.context import use_backend
from repro.matrices import bentpipe2d
from repro.sparse import ops


@pytest.fixture(scope="module")
def matrix():
    return bentpipe2d(12)  # n = 144, nonsymmetric


@pytest.fixture(scope="module")
def arrays(matrix):
    return matrix.data, matrix.indices, matrix.indptr


class TestWarningEmitted:
    def test_spmv_warns(self, matrix, arrays):
        data, indices, indptr = arrays
        with pytest.warns(DeprecationWarning, match="spmv is deprecated"):
            ops.spmv(data, indices, indptr, np.ones(matrix.n_cols))

    def test_spmv_transpose_warns(self, matrix, arrays):
        data, indices, indptr = arrays
        with pytest.warns(DeprecationWarning, match="spmv_transpose is deprecated"):
            ops.spmv_transpose(
                data, indices, indptr, np.ones(matrix.n_rows), matrix.n_cols
            )

    def test_spmm_warns(self, matrix, arrays):
        data, indices, indptr = arrays
        with pytest.warns(DeprecationWarning, match="spmm is deprecated"):
            ops.spmm(data, indices, indptr, np.ones((matrix.n_cols, 3)))

    def test_warning_names_the_replacement(self, matrix, arrays):
        data, indices, indptr = arrays
        with pytest.warns(DeprecationWarning, match="CsrMatrix"):
            ops.spmv(data, indices, indptr, np.ones(matrix.n_cols))


class TestBackendParity:
    """Shim output == active backend output, bit for bit, on both backends."""

    @pytest.mark.parametrize("backend_name", ["numpy", "scipy"])
    def test_spmv_matches_active_backend(self, matrix, arrays, backend_name):
        data, indices, indptr = arrays
        x = rng(3).standard_normal(matrix.n_cols)
        with use_backend(backend_name), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = ops.spmv(data, indices, indptr, x)
        expected = get_backend(backend_name).spmv(matrix, x)
        np.testing.assert_array_equal(shim, expected)

    @pytest.mark.parametrize("backend_name", ["numpy", "scipy"])
    def test_spmv_transpose_matches_active_backend(self, matrix, arrays, backend_name):
        data, indices, indptr = arrays
        x = rng(4).standard_normal(matrix.n_rows)
        with use_backend(backend_name), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = ops.spmv_transpose(data, indices, indptr, x, matrix.n_cols)
        expected = get_backend(backend_name).spmv_transpose(matrix, x)
        np.testing.assert_array_equal(shim, expected)

    @pytest.mark.parametrize("backend_name", ["numpy", "scipy"])
    def test_spmm_matches_active_backend(self, matrix, arrays, backend_name):
        data, indices, indptr = arrays
        X = np.asfortranarray(rng(5).standard_normal((matrix.n_cols, 4)))
        with use_backend(backend_name), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = ops.spmm(data, indices, indptr, X)
        expected = get_backend(backend_name).spmm(matrix, X)
        # The shim's throwaway CSR view carries no backend cache, so the
        # NumPy backend takes its plan-free path while a real matrix may
        # use the cached DIA plan — same kernel, different summation
        # order, so parity is to rounding rather than bit-exact.
        np.testing.assert_allclose(shim, expected, rtol=1e-13, atol=1e-13)

    def test_shim_respects_out_buffer(self, matrix, arrays):
        data, indices, indptr = arrays
        x = rng(6).standard_normal(matrix.n_cols)
        out = np.empty(matrix.n_rows)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = ops.spmv(data, indices, indptr, x, out=out)
        assert result is out


class TestNoWarningSpam:
    def test_repeated_calls_warn_once_per_call_site(self, matrix, arrays):
        """Under the default filter, a hot loop logs the shim warning once.

        ``warnings.warn`` uses ``stacklevel=3`` so the warning is
        attributed to the *caller's* line; Python's ``"default"`` action
        dedupes per (message, category, call site) via the caller module's
        ``__warningregistry__``.
        """
        data, indices, indptr = arrays
        x = np.ones(matrix.n_cols)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default", DeprecationWarning)
            for _ in range(50):
                ops.spmv(data, indices, indptr, x)
        spmv_warnings = [w for w in caught if "spmv is deprecated" in str(w.message)]
        assert len(spmv_warnings) == 1

    def test_distinct_shims_each_warn(self, matrix, arrays):
        data, indices, indptr = arrays
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default", DeprecationWarning)
            for _ in range(5):
                ops.spmv(data, indices, indptr, np.ones(matrix.n_cols))
                ops.spmm(data, indices, indptr, np.ones((matrix.n_cols, 2)))
        messages = sorted({str(w.message).split(" is deprecated")[0] for w in caught})
        assert messages == ["repro.sparse.ops.spmm", "repro.sparse.ops.spmv"]
        assert len(caught) == 2
