"""Tests for the solver service layer (:mod:`repro.serve`).

Covers the four tentpole pieces: operator sessions (amortized state,
workspace pool, pinned backend), the micro-batching scheduler (coalescing,
demultiplexing, failure isolation), the cost-model batching policy, and
service telemetry — plus the serving acceptance properties: per-request
results bit-identical to the direct solve path, and a batch containing one
diverging right-hand side still completing its other requests.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.config import ServeConfig, rng, set_config
from repro.linalg.context import use_backend
from repro.matrices import laplace3d
from repro.perfmodel import KernelCostModel
from repro.preconditioners import GmresPolynomialPreconditioner
from repro.serve import (
    BatchingPolicy,
    OperatorSession,
    ServeResult,
    ServeTelemetry,
)
from repro.solvers import SolverStatus, gmres, solve_many
from repro.sparse import CsrMatrix


@pytest.fixture(scope="module")
def matrix():
    return laplace3d(8)  # n = 512


@pytest.fixture(scope="module")
def precond(matrix):
    return GmresPolynomialPreconditioner(matrix, degree=4)


def make_session(matrix, precond=None, **kwargs):
    defaults = dict(restart=8, tol=1e-8, max_restarts=60, max_wait_ms=100.0)
    defaults.update(kwargs)
    return OperatorSession(matrix, preconditioner=precond, **defaults)


def rhs_block(matrix, k, seed=99):
    return rng(seed).standard_normal((matrix.n_rows, k))


class TestOperatorSession:
    def test_submit_and_solve_converge(self, matrix, precond):
        b = rhs_block(matrix, 1)[:, 0]
        with make_session(matrix, precond) as session:
            served = session.submit(b).result(timeout=30)
            direct = session.solve(b)
        assert isinstance(served, ServeResult)
        assert served.converged and direct.converged
        # Both solve the same system to tolerance.
        for x in (served.x, direct.x):
            res = np.linalg.norm(b - matrix @ x) / np.linalg.norm(b)
            assert res <= 1.1e-8

    def test_warmup_builds_backend_plans(self, matrix, precond):
        with make_session(matrix, precond) as session:
            # The warm-up SpMV/SpMM ran through the backend, so the
            # per-matrix plan cache is populated before any request.
            assert session._matrix.backend_cache

    def test_workspace_pool_reuses_widest_fit(self, matrix):
        with make_session(matrix, max_block=4) as session:
            with session._solve_lock:
                ws_full = session.workspace_for(4)
                assert session.workspace_for(2) is ws_full
                assert ws_full.accommodates(matrix.n_rows, 8, 3, "double")
                # Width 1 pools the single-vector workspace instead.
                ws_single = session.workspace_for(1)
                assert ws_single is session.workspace_for(1)
                assert ws_single.accommodates(matrix.n_rows, 8, "double")

    def test_steady_state_dispatches_reuse_one_workspace(self, matrix, precond):
        b = rhs_block(matrix, 1)[:, 0]
        with make_session(matrix, precond, max_block=2) as session:
            for _ in range(3):
                assert session.submit(b).result(timeout=30).converged
            # Width-1 and width-2 dispatches all fit the warm-up workspace.
            assert len(session._workspaces) == 1

    def test_backend_pinned_at_construction(self, matrix):
        b = rhs_block(matrix, 1)[:, 0]
        with use_backend("scipy"):
            session = make_session(matrix)
        try:
            # The global context is back to the default backend, but the
            # session serves with the backend it was created under.
            assert session.context.backend.name == "scipy"
            assert session.submit(b).result(timeout=30).converged
        finally:
            session.close()

    def test_session_defaults_come_from_config(self, matrix):
        set_config(serve=ServeConfig(max_block=3, policy="sequential"))
        with make_session(matrix) as session:
            assert session.max_block == 3
            assert session.policy.mode == "sequential"

    def test_deprecated_flat_serve_overrides_still_work(self, matrix):
        with pytest.warns(DeprecationWarning) as caught:
            set_config(serve_max_block=3, serve_policy="sequential")
        messages = " ".join(str(w.message) for w in caught)
        assert "serve_max_block" in messages and "serve_policy" in messages
        with make_session(matrix) as session:
            assert session.max_block == 3
            assert session.policy.mode == "sequential"

    def test_rejects_unknown_method(self, matrix):
        with pytest.raises(ValueError, match="method"):
            OperatorSession(matrix, method="cg")

    def test_solve_validates_shape(self, matrix):
        with make_session(matrix) as session:
            with pytest.raises(ValueError, match="length-512"):
                session.solve(np.ones(7))

    def test_solve_rejects_non_finite_like_submit(self, matrix):
        # submit() and solve() share one validation path.
        with make_session(matrix) as session:
            with pytest.raises(ValueError, match="non-finite"):
                session.solve(np.full(matrix.n_rows, np.nan))

    def test_submit_after_close_raises(self, matrix):
        session = make_session(matrix)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(np.ones(matrix.n_rows))

    def test_gmres_ir_session(self, matrix):
        b = rhs_block(matrix, 1)[:, 0]
        with make_session(
            matrix, method="gmres-ir", restart=10, max_restarts=80
        ) as session:
            result = session.submit(b).result(timeout=30)
        assert result.converged
        assert result.relative_residual_fp64 <= 1.1e-8

    def test_gmres_ir_session_amortizes_inner_matrix(self, matrix):
        b = rhs_block(matrix, 1)[:, 0]
        with make_session(
            matrix, method="gmres-ir", restart=10, max_restarts=80
        ) as session:
            inner = session._matrix.astype("single")
            assert inner is session._matrices[1]  # the eagerly-warmed copy
            assert inner.backend_cache  # plans built by the warm-up
            session.submit(b).result(timeout=30)
            # The dispatch hit the same warm inner-precision matrix
            # instead of re-casting and re-planning per request.
            assert session._matrix.astype("single") is inner

    def test_solve_many_chunks_and_preserves_order(self, matrix, precond):
        B = rhs_block(matrix, 5)
        with make_session(matrix, precond, max_block=2) as session:
            result = session.solve_many(B)
        assert result.n_rhs == 5
        assert all(s == SolverStatus.CONVERGED for s in result.statuses)
        for c in range(5):
            res = np.linalg.norm(B[:, c] - matrix @ result.X[:, c])
            assert res / np.linalg.norm(B[:, c]) <= 1.1e-8


class TestSchedulerCoalescing:
    def test_full_batch_dispatches_together(self, matrix, precond):
        k = 4
        B = rhs_block(matrix, k)
        with make_session(
            matrix, precond, max_block=k, max_wait_ms=500.0, policy="block"
        ) as session:
            futures = [session.submit(B[:, c]) for c in range(k)]
            results = [f.result(timeout=30) for f in futures]
        assert [r.batch_size for r in results] == [k] * k
        stats = session.stats()
        assert stats.batch_occupancy == {k: 1}
        assert stats.batches_dispatched == 1

    def test_max_wait_bounds_queue_time(self, matrix, precond):
        b = rhs_block(matrix, 1)[:, 0]
        with make_session(
            matrix, precond, max_block=8, max_wait_ms=60.0, policy="block"
        ) as session:
            result = session.submit(b).result(timeout=30)
        # Alone in the queue: dispatched as a width-1 batch once the
        # micro-batching window expired (not before, not much after).
        assert result.batch_size == 1
        assert result.queue_wait_seconds >= 0.055
        assert result.queue_wait_seconds < 5.0

    def test_sequential_policy_never_batches(self, matrix, precond):
        k = 5
        B = rhs_block(matrix, k)
        with make_session(
            matrix, precond, max_block=4, max_wait_ms=50.0, policy="sequential"
        ) as session:
            futures = [session.submit(B[:, c]) for c in range(k)]
            results = [f.result(timeout=60) for f in futures]
        assert all(r.batch_size == 1 for r in results)
        assert session.stats().batch_occupancy == {1: k}

    def test_sequential_policy_skips_the_batching_window(self, matrix, precond):
        # More arrivals cannot change a sequential dispatch, so a lone
        # request must not sit out the (here: huge) micro-batch window.
        b = rhs_block(matrix, 1)[:, 0]
        with make_session(
            matrix, precond, max_block=4, max_wait_ms=3000.0, policy="sequential"
        ) as session:
            result = session.submit(b).result(timeout=30)
        assert result.batch_size == 1
        assert result.queue_wait_seconds < 1.0

    def test_close_drains_queued_requests(self, matrix, precond):
        k = 3
        B = rhs_block(matrix, k)
        session = make_session(
            matrix, precond, max_block=k, max_wait_ms=1000.0, policy="block"
        )
        futures = [session.submit(B[:, c]) for c in range(k)]
        session.close()  # drain=True: queued work completes first
        assert all(f.result(timeout=30).converged for f in futures)

    def test_close_without_drain_mid_window_keeps_dispatcher_alive(
        self, matrix, precond, monkeypatch
    ):
        """close(drain=False) while the dispatcher sits in the micro-batch
        window must not crash the dispatcher (the queue it wakes to is
        empty) — the queued future fails cleanly and the thread exits."""
        crashes = []
        monkeypatch.setattr(
            threading, "excepthook", lambda args: crashes.append(args)
        )
        session = make_session(
            matrix, precond, max_block=4, max_wait_ms=5000.0, policy="block"
        )
        fut = session.submit(np.ones(matrix.n_rows))
        time.sleep(0.05)  # let the dispatcher enter the batching window
        session.close(drain=False, timeout=10)
        assert not session.scheduler._dispatcher.is_alive()
        assert not crashes
        with pytest.raises(RuntimeError, match="closed"):
            fut.result(timeout=5)

    def test_close_without_drain_fails_queued_requests(self, matrix, precond):
        session = make_session(
            matrix, precond, max_block=1, max_wait_ms=0.0, policy="sequential"
        )
        b = rhs_block(matrix, 1)[:, 0]
        # Hold the solve lock so the dispatcher blocks mid-dispatch while
        # more requests pile up behind it.
        with session._solve_lock:
            first = session.submit(b)
            time.sleep(0.05)  # let the dispatcher pop the first request
            queued = [session.submit(b) for _ in range(2)]
            closer = threading.Thread(
                target=session.close, kwargs={"drain": False}
            )
            closer.start()
            time.sleep(0.05)
        closer.join(timeout=10)
        assert first.result(timeout=30).converged  # already dispatched
        for fut in queued:
            with pytest.raises(RuntimeError, match="closed"):
                fut.result(timeout=10)


class TestBitParity:
    """The serving acceptance criterion: served == direct, bit for bit."""

    def test_unbatched_served_equals_direct_solve(self, matrix, precond):
        b = rhs_block(matrix, 1, seed=5)[:, 0]
        with make_session(
            matrix, precond, max_block=1, max_wait_ms=0.0
        ) as session:
            served = session.submit(b).result(timeout=30)
            direct = session.solve(b)
        assert served.converged and direct.converged
        assert np.array_equal(served.x, direct.x)
        assert served.iterations == direct.iterations
        assert served.relative_residual == direct.relative_residual
        # ...and both are the canonical single-vector solver, bit for bit.
        reference = gmres(
            matrix, b, restart=8, tol=1e-8, max_restarts=60, preconditioner=precond
        )
        assert np.array_equal(served.x, reference.x)
        assert served.iterations == reference.iterations

    def test_batched_served_equals_direct_solve_many(self, matrix, precond):
        k = 4
        B = rhs_block(matrix, k, seed=6)
        with make_session(
            matrix, precond, max_block=k, max_wait_ms=500.0, policy="block"
        ) as session:
            futures = [session.submit(B[:, c]) for c in range(k)]
            served = [f.result(timeout=30) for f in futures]
        assert all(r.batch_size == k for r in served)

        reference = solve_many(
            matrix,
            B,
            block_size=k,
            restart=8,
            tol=1e-8,
            max_restarts=60,
            preconditioner=precond,
        )
        for c in range(k):
            assert served[c].converged
            assert np.array_equal(served[c].x, reference.X[:, c])
            assert served[c].iterations == int(reference.iterations[c])

    def test_requests_map_to_their_own_rhs(self, matrix, precond):
        k = 4
        B = rhs_block(matrix, k, seed=8) * np.array([1.0, 10.0, 100.0, 1000.0])
        with make_session(
            matrix, precond, max_block=k, max_wait_ms=500.0, policy="block"
        ) as session:
            futures = [session.submit(B[:, c]) for c in range(k)]
            served = [f.result(timeout=30) for f in futures]
        for c in range(k):
            res = np.linalg.norm(B[:, c] - matrix @ served[c].x)
            assert res / np.linalg.norm(B[:, c]) <= 1.1e-8


def diagonal_matrix(n):
    """diag(1..n): GMRES needs as many iterations as distinct RHS modes."""
    data = np.arange(1.0, n + 1.0)
    indices = np.arange(n, dtype=np.int32)
    indptr = np.arange(n + 1, dtype=np.int64)
    return CsrMatrix(data, indices, indptr, (n, n), name=f"diag{n}")


class TestFailureIsolation:
    def test_invalid_rhs_never_enters_a_batch(self, matrix, precond):
        k = 3
        B = rhs_block(matrix, k, seed=11)
        with make_session(
            matrix, precond, max_block=k + 1, max_wait_ms=300.0, policy="block"
        ) as session:
            good = [session.submit(B[:, c]) for c in range(k)]
            bad_nan = session.submit(np.full(matrix.n_rows, np.nan))
            bad_inf = session.submit(np.full(matrix.n_rows, np.inf))
            bad_shape = session.submit(np.ones(3))
            results = [f.result(timeout=30) for f in good]

        assert all(r.converged for r in results)
        for fut, pattern in (
            (bad_nan, "non-finite"),
            (bad_inf, "non-finite"),
            (bad_shape, "length-512"),
        ):
            with pytest.raises(ValueError, match=pattern):
                fut.result(timeout=5)
        # The rejected requests never occupied a batch slot.
        stats = session.stats()
        assert stats.requests_failed == 3
        assert sum(k_ * v for k_, v in stats.batch_occupancy.items()) == k

    def test_diverging_column_does_not_fail_batchmates(self):
        n = 48
        A = diagonal_matrix(n)
        easy = np.zeros(n)
        easy[0] = 1.0  # one spectral mode: converges in a single iteration
        hard = np.ones(n)  # all n modes: cannot converge in 4 iterations
        with OperatorSession(
            A,
            restart=4,
            tol=1e-10,
            max_restarts=1,
            max_block=2,
            max_wait_ms=300.0,
            policy="block",
        ) as session:
            f_easy = session.submit(easy)
            f_hard = session.submit(hard)
            r_easy = f_easy.result(timeout=30)
            r_hard = f_hard.result(timeout=30)

        # Same batch, opposite outcomes — and no exception on either side.
        assert r_easy.batch_size == 2 and r_hard.batch_size == 2
        assert r_easy.status == SolverStatus.CONVERGED
        # The hard column ends in a non-converged terminal status (which
        # one depends on when the implicit estimate diverges from the
        # explicit residual) — but resolves normally, with no exception.
        assert r_hard.status in (
            SolverStatus.MAX_ITERATIONS,
            SolverStatus.LOSS_OF_ACCURACY,
            SolverStatus.STAGNATION,
        )
        assert not r_hard.converged
        assert np.all(np.isfinite(r_hard.x))  # best-effort partial solution
        stats = session.stats()
        assert stats.requests_completed == 2
        assert stats.requests_failed == 0


class TestDependentRhsBatch:
    """Parallel right-hand sides in one batch (clients submitting the same
    vector) make the block rank-deficient, which can defeat the
    shared-basis solver — the scheduler's sequential retry contains it.

    The nonsymmetric bentpipe problem with a polynomial preconditioner is
    a configuration where the artefact actually bites (the whole parallel
    batch ends ``LOSS_OF_ACCURACY`` without the retry).
    """

    @pytest.fixture()
    def hard_config(self):
        from repro.matrices import bentpipe2d

        matrix = bentpipe2d(32)
        precond = GmresPolynomialPreconditioner(matrix, degree=8)
        return matrix, precond

    def test_dependent_rhs_all_converge_via_retry(self, hard_config):
        matrix, precond = hard_config
        b = np.ones(matrix.n_rows)
        with make_session(
            matrix, precond, restart=15, max_block=4, max_wait_ms=300.0,
            policy="block",
        ) as session:
            futures = [session.submit(b * (c + 1)) for c in range(4)]
            results = [f.result(timeout=60) for f in futures]
        assert all(r.converged for r in results)
        for c, r in enumerate(results):
            res = np.linalg.norm(b * (c + 1) - matrix @ r.x)
            assert res / np.linalg.norm(b * (c + 1)) <= 1.1e-8
        stats = session.stats()
        assert stats.requests_completed == 4
        assert stats.requests_failed == 0
        # At least one column needed the width-1 containment path.
        assert stats.requests_retried >= 1

    def test_retry_can_be_disabled(self, hard_config):
        matrix, precond = hard_config
        b = np.ones(matrix.n_rows)
        with make_session(
            matrix,
            precond,
            restart=15,
            max_block=4,
            max_wait_ms=300.0,
            policy="block",
            retry_failed=False,
        ) as session:
            futures = [session.submit(b * (c + 1)) for c in range(4)]
            results = [f.result(timeout=60) for f in futures]
        # The raw batch statuses surface (and no future errors): this pins
        # the rank-deficiency artefact the retry exists to contain.
        assert session.stats().requests_retried == 0
        assert all(isinstance(r, ServeResult) for r in results)
        assert not all(r.converged for r in results)


class TestConcurrentClients:
    def test_many_threads_one_session(self, matrix, precond):
        n_clients, per_client = 6, 3
        B = rhs_block(matrix, n_clients, seed=21)
        errors = []

        with make_session(
            matrix, precond, max_block=4, max_wait_ms=20.0, policy="block"
        ) as session:

            def client(c):
                try:
                    for _ in range(per_client):
                        result = session.submit(B[:, c]).result(timeout=60)
                        assert result.converged
                        res = np.linalg.norm(B[:, c] - matrix @ result.x)
                        assert res / np.linalg.norm(B[:, c]) <= 1.1e-8
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

        assert not errors
        stats = session.stats()
        assert stats.requests_completed == n_clients * per_client
        # Concurrent traffic actually coalesced into multi-RHS batches.
        assert any(width > 1 for width in stats.batch_occupancy)


class TestTelemetry:
    def test_snapshot_counters_are_consistent(self, matrix, precond):
        k = 4
        B = rhs_block(matrix, k, seed=31)
        with make_session(
            matrix, precond, max_block=2, max_wait_ms=50.0, policy="block"
        ) as session:
            futures = [session.submit(B[:, c]) for c in range(k)]
            [f.result(timeout=30) for f in futures]
            stats = session.stats()

        assert stats.requests_submitted == k
        assert stats.requests_completed == k
        assert stats.requests_failed == 0
        assert sum(w * c for w, c in stats.batch_occupancy.items()) == k
        assert stats.batches_dispatched == sum(stats.batch_occupancy.values())
        assert stats.queue_wait.count == k
        assert stats.solve.count == k
        assert stats.latency.count == k
        assert stats.latency.p95_ms >= stats.latency.p50_ms >= 0.0
        assert stats.rhs_per_second > 0.0
        assert stats.block_iterations > 0

    def test_snapshot_is_json_ready(self, matrix):
        with make_session(matrix) as session:
            session.submit(np.ones(matrix.n_rows)).result(timeout=30)
            payload = json.dumps(session.stats().as_dict())
        assert "rhs_per_second" in payload

    def test_empty_telemetry_snapshot(self):
        stats = ServeTelemetry().snapshot()
        assert stats.requests_submitted == 0
        assert stats.rhs_per_second == 0.0
        assert stats.latency.count == 0
        assert stats.mean_batch_occupancy == 0.0


class TestBatchingPolicy:
    def make_policy(self, matrix, mode="auto", spmvs=1, max_block=8):
        return BatchingPolicy(
            matrix,
            KernelCostModel("v100"),
            max_block=max_block,
            mode=mode,
            basis_columns=15,
            spmvs_per_iteration=spmvs,
        )

    def test_width_one_speedup_is_one(self, matrix):
        assert self.make_policy(matrix).modelled_speedup(1) == 1.0

    def test_preconditioning_pushes_toward_blocking(self, matrix):
        plain = self.make_policy(matrix, spmvs=1)
        poly = self.make_policy(matrix, spmvs=17)  # poly-16 preconditioner
        for k in (2, 4, 8):
            assert poly.modelled_speedup(k) > plain.modelled_speedup(k)
        # An SpMM-dominated operator must clearly favour wide batches.
        assert poly.modelled_speedup(8) > 1.5
        assert poly.block_width(8) > 1

    def test_mode_overrides(self, matrix):
        assert self.make_policy(matrix, mode="sequential").block_width(8) == 1
        assert self.make_policy(matrix, mode="block").block_width(8) == 8
        assert self.make_policy(matrix, mode="block", max_block=4).block_width(8) == 4

    def test_single_waiting_request_is_sequential(self, matrix):
        assert self.make_policy(matrix, mode="block").block_width(1) == 1

    def test_decision_table_and_validation(self, matrix):
        policy = self.make_policy(matrix, spmvs=17, max_block=4)
        table = policy.decision_table()
        assert set(table) == {1, 2, 3, 4}
        assert table[1] == 1.0
        with pytest.raises(ValueError, match="mode"):
            self.make_policy(matrix, mode="bogus")
        with pytest.raises(ValueError, match="waiting"):
            policy.block_width(0)

    def test_session_policy_consults_preconditioner_cost(self, matrix, precond):
        # The session derives spmvs_per_iteration from the preconditioner,
        # so a poly-preconditioned session batches under "auto".
        with make_session(matrix, precond, max_block=8, policy="auto") as session:
            assert session.policy.block_width(8) > 1
