"""Tests for :class:`repro.solvers.SolveControl` and its threading through
the solver drivers (``gmres``, ``cg``, ``gmres_ir``, ``block_gmres``,
``block_gmres_ir``, ``solve_many``).

The fault-tolerance contract at the solver layer: a control token can stop
any solve cooperatively — deadline → ``TIMED_OUT``, cancellation →
``CANCELLED``, iteration budget → ``MAX_ITERATIONS`` — always resolving
with the best iterate reached, within one restart cycle (plus at most
``check_interval`` inner iterations) of the token firing.  Non-finite
residuals classify as ``BREAKDOWN`` instead of looping to the iteration
cap.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.matrices import laplace2d
from repro.preconditioners.base import Preconditioner
from repro.solvers import (
    SolveControl,
    SolverStatus,
    block_gmres,
    block_gmres_ir,
    cg,
    gmres,
    gmres_ir,
    solve_many,
)


class CancelAfter(Preconditioner):
    """Identity preconditioner that cancels a control after N applications.

    A deterministic way to fire a cancellation *mid-solve* without racing
    a wall clock: the solver applies the preconditioner every inner
    iteration, so the token trips at a known point of the iteration.
    """

    def __init__(self, control: SolveControl, after: int, precision="double"):
        super().__init__(precision=precision, name="cancel-after")
        self.control = control
        self.after = after
        self.calls = 0

    def apply(self, vector, out=None):
        self.calls += 1
        if self.calls >= self.after:
            self.control.cancel()
        if out is None:
            return vector.copy()
        out[...] = vector
        return out

    def apply_block(self, block, out=None):
        self.calls += 1
        if self.calls >= self.after:
            self.control.cancel()
        if out is None:
            return block.copy()
        out[...] = block
        return out


@pytest.fixture(scope="module")
def matrix():
    return laplace2d(12)  # n = 144


@pytest.fixture(scope="module")
def rhs(matrix):
    rng = np.random.default_rng(42)
    return rng.standard_normal(matrix.n_rows)


class TestSolveControlUnit:
    def test_poll_priority_cancel_beats_timeout(self):
        control = SolveControl(deadline_seconds=0.0)
        control.cancel()
        assert control.poll() == SolverStatus.CANCELLED

    def test_timeout_beats_budget(self):
        control = SolveControl(deadline_seconds=0.0, max_iterations=0)
        assert control.poll() == SolverStatus.TIMED_OUT

    def test_budget_fires_after_charges(self):
        control = SolveControl(max_iterations=3)
        assert control.poll() is None
        control.charge(3)
        assert control.iterations_charged == 3
        assert control.poll() == SolverStatus.MAX_ITERATIONS

    def test_unbounded_control_never_fires(self):
        control = SolveControl()
        control.charge(10_000)
        assert control.poll() is None
        assert control.remaining_seconds() is None
        assert not control.expired()

    def test_with_timeout_sets_deadline(self):
        control = SolveControl.with_timeout(10_000.0)
        remaining = control.remaining_seconds()
        assert remaining is not None and 0.0 < remaining <= 10.0

    def test_cancel_is_idempotent_and_threadsafe(self):
        control = SolveControl()
        threads = [threading.Thread(target=control.cancel) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert control.cancelled
        assert control.poll() == SolverStatus.CANCELLED

    def test_check_interval_validation(self):
        with pytest.raises(ValueError, match="check_interval"):
            SolveControl(check_interval=0)


class TestSingleVectorDrivers:
    def test_gmres_precancelled_stops_immediately(self, matrix, rhs):
        control = SolveControl()
        control.cancel()
        result = gmres(matrix, rhs, tol=1e-10, control=control)
        assert result.status == SolverStatus.CANCELLED
        assert result.iterations == 0

    def test_gmres_zero_deadline_times_out(self, matrix, rhs):
        result = gmres(
            matrix, rhs, tol=1e-10, control=SolveControl.with_timeout(0.0)
        )
        assert result.status == SolverStatus.TIMED_OUT
        assert result.iterations == 0

    def test_gmres_iteration_budget(self, matrix, rhs):
        control = SolveControl(max_iterations=5, check_interval=1)
        result = gmres(
            matrix, rhs, tol=1e-14, restart=30, max_restarts=50, control=control
        )
        assert result.status == SolverStatus.MAX_ITERATIONS
        assert result.iterations <= 5 + control.check_interval

    def test_gmres_cancel_mid_solve_bounded_latency(self, matrix, rhs):
        baseline = gmres(matrix, rhs, tol=1e-12, restart=10, max_restarts=200)
        assert baseline.status == SolverStatus.CONVERGED
        control = SolveControl(check_interval=1)
        precond = CancelAfter(control, after=3)
        result = gmres(
            matrix,
            rhs,
            tol=1e-12,
            restart=10,
            max_restarts=200,
            preconditioner=precond,
            control=control,
        )
        assert result.status == SolverStatus.CANCELLED
        # The cancellation fired at the 3rd inner iteration; the solver
        # must notice within check_interval iterations — one cycle at most.
        assert result.iterations <= 3 + control.check_interval
        assert result.iterations < baseline.iterations

    def test_gmres_keeps_partial_iterate_on_cancel(self, matrix, rhs):
        control = SolveControl(max_iterations=8, check_interval=1)
        result = gmres(matrix, rhs, tol=1e-14, restart=30, control=control)
        # The partial update is applied: the iterate is better than x0 = 0.
        assert 0.0 < result.relative_residual < 1.0
        assert np.all(np.isfinite(result.x))

    def test_gmres_nan_rhs_is_breakdown(self, matrix, rhs):
        poisoned = rhs.copy()
        poisoned[0] = np.nan
        result = gmres(matrix, poisoned, tol=1e-10, max_restarts=10)
        assert result.status == SolverStatus.BREAKDOWN
        assert result.iterations == 0

    def test_cg_cancel_and_timeout(self, matrix, rhs):
        control = SolveControl(check_interval=1)
        control.cancel()
        result = cg(matrix, rhs, tol=1e-12, control=control)
        assert result.status == SolverStatus.CANCELLED
        assert result.iterations <= control.check_interval

        timed = cg(
            matrix,
            rhs,
            tol=1e-12,
            control=SolveControl.with_timeout(0.0, check_interval=1),
        )
        assert timed.status == SolverStatus.TIMED_OUT

    def test_cg_nan_rhs_is_breakdown(self, matrix, rhs):
        poisoned = rhs.copy()
        poisoned[0] = np.nan
        result = cg(matrix, poisoned, tol=1e-12, max_iterations=50)
        assert result.status == SolverStatus.BREAKDOWN

    def test_gmres_ir_timeout_and_cancel(self, matrix, rhs):
        timed = gmres_ir(
            matrix, rhs, tol=1e-10, control=SolveControl.with_timeout(0.0)
        )
        assert timed.status == SolverStatus.TIMED_OUT
        assert timed.iterations == 0

        control = SolveControl()
        control.cancel()
        cancelled = gmres_ir(matrix, rhs, tol=1e-10, control=control)
        assert cancelled.status == SolverStatus.CANCELLED


class TestBlockDrivers:
    def _block(self, matrix, width=3, seed=7):
        rng = np.random.default_rng(seed)
        return np.asfortranarray(rng.standard_normal((matrix.n_rows, width)))

    def test_per_column_cancel_spares_batchmates(self, matrix):
        B = self._block(matrix)
        cancelled = SolveControl()
        cancelled.cancel()
        controls = [None, cancelled, None]
        result = block_gmres(
            matrix, B, tol=1e-8, restart=20, max_restarts=100, controls=controls
        )
        assert result.statuses[1] == SolverStatus.CANCELLED
        assert result.iterations[1] == 0
        assert result.statuses[0] == SolverStatus.CONVERGED
        assert result.statuses[2] == SolverStatus.CONVERGED

    def test_per_column_timeout(self, matrix):
        B = self._block(matrix)
        controls = [None, None, SolveControl.with_timeout(0.0)]
        result = block_gmres(
            matrix, B, tol=1e-8, restart=20, max_restarts=100, controls=controls
        )
        assert result.statuses[2] == SolverStatus.TIMED_OUT
        assert result.statuses[0] == SolverStatus.CONVERGED

    def test_whole_batch_control_cancels_everything(self, matrix):
        B = self._block(matrix)
        control = SolveControl()
        control.cancel()
        result = block_gmres(matrix, B, tol=1e-10, restart=20, control=control)
        assert all(s == SolverStatus.CANCELLED for s in result.statuses)

    def test_mid_solve_cancel_within_one_restart_cycle(self, matrix):
        B = self._block(matrix)
        restart = 5
        control = SolveControl(check_interval=1)
        precond = CancelAfter(control, after=2)
        result = block_gmres(
            matrix,
            B,
            tol=1e-12,
            restart=restart,
            max_restarts=100,
            preconditioner=precond,
            controls=[control, None, None],
        )
        assert result.statuses[0] == SolverStatus.CANCELLED
        # Per-column controls are honoured at restart boundaries: the
        # cancelled column is deflated after the cycle in which the token
        # fired — its iteration count stays within that first cycle.
        assert result.iterations[0] <= restart

    def test_block_gmres_ir_controls(self, matrix):
        B = self._block(matrix)
        timed = SolveControl.with_timeout(0.0)
        result = block_gmres_ir(
            matrix, B, tol=1e-8, restart=20, controls=[None, timed, None]
        )
        assert result.statuses[1] == SolverStatus.TIMED_OUT
        assert result.statuses[0] == SolverStatus.CONVERGED

    def test_controls_length_validated(self, matrix):
        B = self._block(matrix)
        with pytest.raises(ValueError, match="controls"):
            block_gmres(matrix, B, controls=[None])

    def test_solve_many_routes_controls_per_chunk(self, matrix):
        B = self._block(matrix, width=5)
        cancelled = SolveControl()
        cancelled.cancel()
        controls = [None, None, None, cancelled, None]
        result = solve_many(
            matrix, B, block_size=2, tol=1e-8, restart=20, controls=controls
        )
        assert result.statuses[3] == SolverStatus.CANCELLED
        assert result.statuses[0] == SolverStatus.CONVERGED
        assert result.statuses[4] == SolverStatus.CONVERGED
