"""Tests for the L2 reuse model and the streaming cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.cache import CacheConfig, estimate_x_reuse, simulate_stream_hit_rate
from repro.perfmodel.device import get_device


V100 = get_device("v100")


class TestCacheConfig:
    def test_window_rows_scale_with_l2(self):
        cfg = CacheConfig()
        assert cfg.window_rows(V100) == pytest.approx(V100.l2_bytes / 12, rel=0.01)
        small = V100.scaled(0.01)
        assert cfg.window_rows(small) == pytest.approx(small.l2_bytes / 12, rel=0.02)

    def test_available_bytes(self):
        cfg = CacheConfig(x_share=0.5)
        assert cfg.available_bytes(V100) == pytest.approx(0.5 * V100.l2_bytes)


class TestEstimateXReuse:
    def test_paper_regime_fp32_perfect_fp64_thrashes(self):
        """At the paper's problem sizes the model must reproduce the profiler
        observation: near-perfect fp32 reuse, poor fp64 reuse."""
        n = 2_250_000  # BentPipe2D1500
        bandwidth = 1500
        assert estimate_x_reuse(V100, n, 4, bandwidth) == 1.0
        assert estimate_x_reuse(V100, n, 8, bandwidth) < 0.2

    def test_laplace3d_paper_regime(self):
        n = 150 ** 3
        bandwidth = 150 ** 2
        assert estimate_x_reuse(V100, n, 4, bandwidth) == 1.0
        assert estimate_x_reuse(V100, n, 8, bandwidth) < 0.2

    def test_small_problem_fits_for_both(self):
        # A tiny vector fits in L2 at either width: both precisions reuse.
        assert estimate_x_reuse(V100, 1000, 8, 10) == 1.0
        assert estimate_x_reuse(V100, 1000, 4, 10) == 1.0

    def test_unknown_bandwidth_treated_as_full(self):
        n = 10_000_000
        assert estimate_x_reuse(V100, n, 4, None) == pytest.approx(
            CacheConfig().residual_reuse
        )

    def test_scaled_device_keeps_regime(self):
        """Dimensional scaling preserves which precision fits (the reason the
        experiments run on a scaled device)."""
        paper_n, paper_bw = 2_250_000, 1500
        scale = 9216 / paper_n
        dev = V100.scaled(scale)
        assert estimate_x_reuse(dev, 9216, 4, 96) == estimate_x_reuse(V100, paper_n, 4, paper_bw)
        assert estimate_x_reuse(dev, 9216, 8, 96) == estimate_x_reuse(V100, paper_n, 8, paper_bw)

    def test_invalid_n_cols(self):
        with pytest.raises(ValueError):
            estimate_x_reuse(V100, 0, 4, 10)

    def test_custom_config_residual(self):
        cfg = CacheConfig(residual_reuse=0.25)
        assert estimate_x_reuse(V100, 10_000_000, 8, None, cfg) == 0.25

    @given(
        n=st.integers(min_value=1, max_value=10_000_000),
        bw=st.integers(min_value=0, max_value=100_000),
        width=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=50)
    def test_reuse_always_in_unit_interval(self, n, bw, width):
        reuse = estimate_x_reuse(V100, n, width, bw)
        assert 0.0 <= reuse <= 1.0

    def test_monotone_in_value_bytes(self):
        """Wider values can never reuse better than narrower ones."""
        for n in (10_000, 500_000, 5_000_000):
            r4 = estimate_x_reuse(V100, n, 4, 1000)
            r8 = estimate_x_reuse(V100, n, 8, 1000)
            assert r4 >= r8


class TestStreamSimulator:
    def test_sequential_stream_hits_within_lines(self):
        # 32 consecutive fp32 elements share one 128-byte line: 31/32 hits.
        indices = np.arange(32 * 100)
        hit = simulate_stream_hit_rate(indices, 4, cache_bytes=1 << 20)
        assert hit == pytest.approx(31 / 32, abs=0.01)

    def test_repeated_small_working_set_hits(self):
        indices = np.tile(np.arange(64), 100)
        hit = simulate_stream_hit_rate(indices, 8, cache_bytes=1 << 16)
        assert hit > 0.95

    def test_thrashing_large_working_set_misses(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 4_000_000, size=50_000)
        hit = simulate_stream_hit_rate(indices, 8, cache_bytes=64 * 1024)
        assert hit < 0.1

    def test_fp32_hits_at_least_as_often_as_fp64(self):
        """The paper's profiler observation in miniature: same index stream,
        half the element width → at least the same hit rate."""
        rng = np.random.default_rng(1)
        # A banded access pattern similar to a stencil matrix.
        base = np.repeat(np.arange(5_000), 5)
        offsets = rng.integers(-50, 50, size=base.size)
        indices = np.clip(base + offsets, 0, 4999)
        cache = 16 * 1024
        hit32 = simulate_stream_hit_rate(indices, 4, cache)
        hit64 = simulate_stream_hit_rate(indices, 8, cache)
        assert hit32 >= hit64

    def test_empty_stream(self):
        assert simulate_stream_hit_rate(np.array([], dtype=np.int64), 4, 1024) == 1.0

    def test_tiny_cache_never_hits_lines(self):
        indices = np.arange(1000)
        assert simulate_stream_hit_rate(indices, 8, cache_bytes=16) == 0.0

    def test_window_subsampling_is_deterministic(self):
        rng = np.random.default_rng(3)
        indices = rng.integers(0, 100_000, size=20_000)
        a = simulate_stream_hit_rate(indices, 4, 1 << 18, max_accesses=5_000, seed=42)
        b = simulate_stream_hit_rate(indices, 4, 1 << 18, max_accesses=5_000, seed=42)
        assert a == b
