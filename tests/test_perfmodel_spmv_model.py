"""Tests for the Section V-D analytic SpMV model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perfmodel.spmv_model import (
    csr_bytes_per_row_double,
    csr_bytes_per_row_float,
    predicted_spmv_speedup,
    spmv_traffic,
)


class TestPaperFormulas:
    def test_double_traffic_is_20w(self):
        assert csr_bytes_per_row_double(5) == 100
        assert csr_bytes_per_row_double(7) == 140

    def test_float_traffic_is_8w_plus_4(self):
        assert csr_bytes_per_row_float(5) == 44
        assert csr_bytes_per_row_float(7) == 60

    def test_paper_quoted_speedups(self):
        # The paper quotes 2.27x for 5 nonzeros/row and 2.33x for 7.
        assert predicted_spmv_speedup(5) == pytest.approx(2.27, abs=0.01)
        assert predicted_spmv_speedup(7) == pytest.approx(2.33, abs=0.01)

    def test_speedup_limit_is_2_5(self):
        assert predicted_spmv_speedup(10_000) == pytest.approx(2.5, abs=1e-3)

    def test_speedup_monotone_in_w(self):
        values = [predicted_spmv_speedup(w) for w in range(1, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_invalid_w(self):
        with pytest.raises(ValueError):
            predicted_spmv_speedup(0)
        with pytest.raises(ValueError):
            predicted_spmv_speedup(-3)

    @given(w=st.floats(min_value=0.5, max_value=1000))
    def test_closed_form_matches_ratio(self, w):
        ratio = csr_bytes_per_row_double(w) / csr_bytes_per_row_float(w)
        assert predicted_spmv_speedup(w) == pytest.approx(ratio)
        assert predicted_spmv_speedup(w) == pytest.approx(5 * w / (2 * w + 1))


class TestGeneralisedTraffic:
    def test_zero_reuse_matches_paper_double_model(self):
        n, w = 1000, 5
        traffic = spmv_traffic(n, n * w, 8, x_reuse=0.0)
        assert traffic.total == pytest.approx(csr_bytes_per_row_double(w) * n)

    def test_perfect_reuse_matches_paper_float_model(self):
        n, w = 1000, 5
        traffic = spmv_traffic(n, n * w, 4, x_reuse=1.0)
        assert traffic.total == pytest.approx(csr_bytes_per_row_float(w) * n)

    def test_rowptr_and_y_increase_traffic(self):
        n, w = 500, 5
        without = spmv_traffic(n, n * w, 8, x_reuse=0.0)
        with_extra = spmv_traffic(n, n * w, 8, x_reuse=0.0, include_rowptr_and_y=True)
        assert with_extra.total > without.total
        assert with_extra.rowptr_bytes == (n + 1) * 4
        assert with_extra.y_bytes == n * 8

    def test_partial_reuse_between_extremes(self):
        n, w = 1000, 7
        lo = spmv_traffic(n, n * w, 8, x_reuse=1.0).total
        mid = spmv_traffic(n, n * w, 8, x_reuse=0.5).total
        hi = spmv_traffic(n, n * w, 8, x_reuse=0.0).total
        assert lo < mid < hi

    def test_compulsory_x_read_floor(self):
        # Even with "perfect" reuse, x must be streamed in once.
        n = 100
        traffic = spmv_traffic(n, n, 4, x_reuse=1.0)
        assert traffic.x_bytes >= n * 4

    def test_rectangular_matrix_uses_n_cols(self):
        traffic = spmv_traffic(100, 500, 4, x_reuse=1.0, n_cols=1000)
        assert traffic.x_bytes == 1000 * 4

    def test_invalid_reuse_fraction(self):
        with pytest.raises(ValueError):
            spmv_traffic(10, 50, 8, x_reuse=1.5)
        with pytest.raises(ValueError):
            spmv_traffic(10, 50, 8, x_reuse=-0.1)

    @given(
        n=st.integers(min_value=1, max_value=10_000),
        w=st.integers(min_value=1, max_value=50),
        reuse=st.floats(min_value=0.0, max_value=1.0),
        value_bytes=st.sampled_from([4, 8]),
    )
    def test_traffic_components_nonnegative_and_consistent(self, n, w, reuse, value_bytes):
        traffic = spmv_traffic(n, n * w, value_bytes, reuse, include_rowptr_and_y=True)
        assert traffic.values_bytes == n * w * value_bytes
        assert traffic.indices_bytes == n * w * 4
        assert traffic.x_bytes >= 0
        assert traffic.total >= traffic.values_bytes + traffic.indices_bytes
