"""Tests for the CsrMatrix container."""

import numpy as np
import pytest

from repro.precision import DOUBLE, SINGLE
from repro.sparse import CsrMatrix
from tests.conftest import dense


def small_csr():
    """[[2, -1, 0], [0, 3, 1], [0, 0, 4]]"""
    data = np.array([2.0, -1.0, 3.0, 1.0, 4.0])
    indices = np.array([0, 1, 1, 2, 2], dtype=np.int32)
    indptr = np.array([0, 2, 4, 5])
    return CsrMatrix(data, indices, indptr, (3, 3), name="small")


class TestConstructionAndValidation:
    def test_basic_properties(self):
        A = small_csr()
        assert A.shape == (3, 3)
        assert A.nnz == 5
        assert A.n_rows == A.n_cols == 3
        assert A.is_square
        assert A.dtype == np.float64
        assert A.precision is DOUBLE
        assert A.name == "small"

    def test_indices_stored_as_int32(self):
        A = small_csr()
        assert A.indices.dtype == np.int32

    def test_integer_data_promoted_to_float(self):
        A = CsrMatrix(
            np.array([1, 2]), np.array([0, 1]), np.array([0, 1, 2]), (2, 2)
        )
        assert A.dtype == np.float64

    def test_bad_indptr_length(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.ones(1), np.zeros(1, dtype=np.int32), np.array([0, 1]), (3, 3))

    def test_nonzero_first_indptr(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.ones(1), np.zeros(1, dtype=np.int32), np.array([1, 1, 1, 1]), (3, 3))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.ones(2), np.zeros(2, dtype=np.int32), np.array([0, 2, 1, 2]), (3, 3))

    def test_mismatched_data_length(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.ones(3), np.zeros(2, dtype=np.int32), np.array([0, 1, 2, 2]), (3, 3))

    def test_column_index_out_of_range(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.ones(1), np.array([5], dtype=np.int32), np.array([0, 1, 1, 1]), (3, 3))

    def test_check_false_skips_validation(self):
        # Intentionally inconsistent, but check=False tolerates it.
        CsrMatrix(np.ones(1), np.array([5], dtype=np.int32), np.array([0, 1, 1, 1]), (3, 3), check=False)


class TestFactories:
    def test_identity(self):
        I = CsrMatrix.identity(4, "single")
        assert I.dtype == np.float32
        np.testing.assert_allclose(dense(I), np.eye(4))

    def test_from_coo_sums_duplicates(self):
        rows = np.array([0, 0, 1, 1, 1])
        cols = np.array([0, 0, 1, 2, 2])
        vals = np.array([1.0, 2.0, 5.0, 1.0, 1.5])
        A = CsrMatrix.from_coo(rows, cols, vals, (2, 3))
        expected = np.array([[3.0, 0, 0], [0, 5.0, 2.5]])
        np.testing.assert_allclose(dense(A), expected)

    def test_from_scipy_roundtrip(self, laplace_small):
        import scipy.sparse as sp

        S = laplace_small.to_scipy()
        assert isinstance(S, sp.csr_matrix)
        back = CsrMatrix.from_scipy(S, name="roundtrip")
        np.testing.assert_allclose(dense(back), dense(laplace_small))


class TestQueries:
    def test_nnz_per_row(self):
        np.testing.assert_array_equal(small_csr().nnz_per_row(), [2, 2, 1])

    def test_row_index_of_nonzeros(self):
        np.testing.assert_array_equal(small_csr().row_index_of_nonzeros(), [0, 0, 1, 1, 2])

    def test_bandwidth(self):
        assert small_csr().bandwidth() == 1
        assert CsrMatrix.identity(5).bandwidth() == 0

    def test_bandwidth_cached(self):
        A = small_csr()
        assert A.bandwidth() == A.bandwidth()

    def test_diagonal(self):
        np.testing.assert_allclose(small_csr().diagonal(), [2.0, 3.0, 4.0])

    def test_diagonal_with_missing_entries(self):
        A = CsrMatrix(
            np.array([1.0]), np.array([1], dtype=np.int32), np.array([0, 1, 1]), (2, 2)
        )
        np.testing.assert_allclose(A.diagonal(), [0.0, 0.0])

    def test_storage_bytes(self, laplace_small):
        expected = (
            laplace_small.data.nbytes
            + laplace_small.indices.nbytes
            + laplace_small.indptr.nbytes
        )
        assert laplace_small.storage_bytes() == expected

    def test_repr(self, laplace_small):
        text = repr(laplace_small)
        assert "100x100" in text and "Laplace2D10" in text


class TestMatvecAndConversion:
    def test_matvec_matches_dense(self, laplace_small, rng):
        x = rng.standard_normal(laplace_small.n_cols)
        np.testing.assert_allclose(laplace_small.matvec(x), dense(laplace_small) @ x)

    def test_matmul_operator(self, laplace_small, rng):
        x = rng.standard_normal(laplace_small.n_cols)
        np.testing.assert_allclose(laplace_small @ x, laplace_small.matvec(x))

    def test_rmatvec_matches_dense(self, bentpipe_small, rng):
        x = rng.standard_normal(bentpipe_small.n_rows)
        np.testing.assert_allclose(
            bentpipe_small.rmatvec(x), dense(bentpipe_small).T @ x, rtol=1e-12
        )

    def test_astype_shares_indices(self, laplace_small):
        low = laplace_small.astype("single")
        assert low.dtype == np.float32
        assert low.indices is laplace_small.indices
        assert low.indptr is laplace_small.indptr
        assert low.precision is SINGLE

    def test_astype_same_precision_returns_self(self, laplace_small):
        assert laplace_small.astype("double") is laplace_small

    def test_astype_caches_per_dtype(self, laplace_small):
        # Repeated casts return the same object, so per-matrix backend
        # plans amortize across solves (mixed-precision serving relies on
        # this); a custom name bypasses the cache.
        low = laplace_small.astype("single")
        assert laplace_small.astype("single") is low
        assert laplace_small.astype("half") is not low
        renamed = laplace_small.astype("single", name="custom")
        assert renamed is not low
        assert laplace_small.astype("single") is low

    def test_astype_preserves_cached_bandwidth(self, laplace_small):
        bw = laplace_small.bandwidth()
        assert laplace_small.astype("single").bandwidth() == bw

    def test_copy_is_deep(self, laplace_small):
        cp = laplace_small.copy()
        cp.data[0] = 999.0
        assert laplace_small.data[0] != 999.0

    def test_matvec_wrong_out_length(self, laplace_small):
        with pytest.raises(ValueError):
            laplace_small.matvec(np.ones(laplace_small.n_cols), out=np.zeros(3))
