"""Tests for the generic finite-difference stencil assembly."""

import numpy as np
import pytest

from repro.matrices.stencil import (
    assemble_stencil_2d,
    assemble_stencil_3d,
    grid_shape_2d,
    grid_shape_3d,
)
from tests.conftest import dense


class TestGridShapes:
    def test_defaults(self):
        assert grid_shape_2d(5) == (5, 5)
        assert grid_shape_2d(5, 3) == (5, 3)
        assert grid_shape_3d(4) == (4, 4, 4)
        assert grid_shape_3d(4, 3, 2) == (4, 3, 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_shape_2d(0)
        with pytest.raises(ValueError):
            grid_shape_2d(3, -1)
        with pytest.raises(ValueError):
            grid_shape_3d(3, 0)


class TestAssemble2D:
    def test_matches_hand_built_3x2_grid(self):
        nx, ny = 3, 2
        center = np.full((ny, nx), 4.0)
        east = np.full((ny, nx), -1.0)
        west = np.full((ny, nx), -2.0)
        north = np.full((ny, nx), -3.0)
        south = np.full((ny, nx), -4.0)
        A = assemble_stencil_2d(center, east, west, north, south)
        D = dense(A)
        assert D.shape == (6, 6)
        # Node 0 = (ix=0, iy=0): east to node 1, north to node 3.
        assert D[0, 0] == 4.0
        assert D[0, 1] == -1.0
        assert D[0, 3] == -3.0
        assert D[0, 2] == 0.0  # no wrap-around to the end of the row
        # Node 1: west to node 0, east to node 2, north to node 4.
        assert D[1, 0] == -2.0 and D[1, 2] == -1.0 and D[1, 4] == -3.0
        # Node 4 = (ix=1, iy=1): south to node 1.
        assert D[4, 1] == -4.0

    def test_no_periodic_wraparound(self):
        n = 4
        ones = np.ones((n, n))
        A = assemble_stencil_2d(4 * ones, -ones, -ones, -ones, -ones)
        D = dense(A)
        # Last node of row 0 must not couple east to the first node of row 1.
        assert D[n - 1, n] == 0.0

    def test_nnz_count_of_5_point_stencil(self):
        n = 6
        ones = np.ones((n, n))
        A = assemble_stencil_2d(4 * ones, -ones, -ones, -ones, -ones)
        expected_links = 2 * n * (n - 1)  # horizontal + vertical interior links
        assert A.nnz == n * n + 2 * expected_links

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            assemble_stencil_2d(np.ones((3, 3)), np.ones((3, 2)), np.ones((3, 3)),
                                np.ones((3, 3)), np.ones((3, 3)))

    def test_spatially_varying_coefficients(self):
        ny, nx = 3, 3
        east = np.arange(9, dtype=float).reshape(ny, nx)
        A = assemble_stencil_2d(np.ones((ny, nx)), east, np.zeros((ny, nx)),
                                np.zeros((ny, nx)), np.zeros((ny, nx)))
        D = dense(A)
        assert D[0, 1] == east[0, 0]
        assert D[4, 5] == east[1, 1]


class TestAssemble3D:
    def test_laplacian_row_sums(self):
        n = 4
        shape = (n, n, n)
        coeffs = {k: np.full(shape, -1.0) for k in ("east", "west", "north", "south", "up", "down")}
        coeffs["center"] = np.full(shape, 6.0)
        A = assemble_stencil_3d(coeffs)
        D = dense(A)
        # Interior node: row sums to zero; boundary nodes: positive.
        row_sums = D.sum(axis=1)
        assert np.all(row_sums >= -1e-12)
        interior = n * n * (n // 2) + n * (n // 2) + n // 2
        assert row_sums[interior] == pytest.approx(0.0, abs=1e-12)

    def test_missing_coefficient_raises(self):
        shape = (3, 3, 3)
        coeffs = {k: np.ones(shape) for k in ("center", "east", "west", "north", "south", "up")}
        with pytest.raises(ValueError):
            assemble_stencil_3d(coeffs)

    def test_wrong_shape_raises(self):
        shape = (3, 3, 3)
        coeffs = {k: np.ones(shape) for k in ("center", "east", "west", "north", "south", "up", "down")}
        coeffs["down"] = np.ones((3, 3, 2))
        with pytest.raises(ValueError):
            assemble_stencil_3d(coeffs)

    def test_symmetric_when_coefficients_symmetric(self):
        from repro.sparse import is_numerically_symmetric

        shape = (3, 4, 5)
        coeffs = {k: np.full(shape, -1.0) for k in ("east", "west", "north", "south", "up", "down")}
        coeffs["center"] = np.full(shape, 6.0)
        assert is_numerically_symmetric(assemble_stencil_3d(coeffs))
