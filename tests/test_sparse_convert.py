"""Tests for SciPy/precision conversions."""

import numpy as np
import scipy.sparse as sp

from repro.perfmodel.timer import use_timer
from repro.sparse import from_scipy, to_precision, to_scipy
from tests.conftest import dense


class TestFromScipy:
    def test_accepts_any_scipy_format(self, rng):
        D = rng.standard_normal((10, 10))
        D[np.abs(D) < 1.0] = 0.0
        for fmt in ("csr", "csc", "coo", "lil"):
            A = from_scipy(sp.csr_matrix(D).asformat(fmt), name=fmt)
            np.testing.assert_allclose(dense(A), D)

    def test_duplicates_summed(self):
        coo = sp.coo_matrix((np.array([1.0, 2.0]), (np.array([0, 0]), np.array([0, 0]))), shape=(1, 1))
        A = from_scipy(coo)
        assert A.nnz == 1
        assert A.data[0] == 3.0

    def test_precision_argument(self, laplace_small):
        A = from_scipy(laplace_small.to_scipy(), precision="single")
        assert A.dtype == np.float32

    def test_name_carried(self):
        A = from_scipy(sp.identity(3, format="csr"), name="eye")
        assert A.name == "eye"


class TestToScipy:
    def test_roundtrip(self, bentpipe_small):
        S = to_scipy(bentpipe_small)
        np.testing.assert_allclose(S.toarray(), dense(bentpipe_small))

    def test_preserves_dtype_and_nnz(self, laplace_small):
        S = to_scipy(laplace_small)
        assert S.dtype == laplace_small.dtype
        assert S.nnz == laplace_small.nnz


class TestToPrecision:
    def test_converts(self, laplace_small):
        low = to_precision(laplace_small, "single")
        assert low.dtype == np.float32
        np.testing.assert_allclose(low.data, laplace_small.data.astype(np.float32))

    def test_same_precision_is_identity(self, laplace_small):
        assert to_precision(laplace_small, "double") is laplace_small

    def test_metered_conversion_charges_matrix_copy(self, laplace_small):
        with use_timer(name="t") as timer:
            to_precision(laplace_small, "single", meter=True)
        assert timer.model_seconds_for("Matrix copy") > 0

    def test_unmetered_conversion_charges_nothing(self, laplace_small):
        with use_timer(name="t") as timer:
            to_precision(laplace_small, "single", meter=False)
        assert timer.total_model_seconds() == 0.0
