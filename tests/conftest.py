"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig, rng as make_rng, set_config
from repro.linalg.context import ExecutionContext, set_context
from repro.matrices import bentpipe2d, laplace2d, laplace3d, stretched2d, uniflow2d
from repro.sparse import CsrMatrix, from_scipy


@pytest.fixture(autouse=True)
def _reset_global_state():
    """Reset the library-wide config and execution context around every test.

    Both are process-global (mirroring the single-device setup of the paper),
    so tests that switch devices or disable metering must not leak into each
    other.
    """
    set_config(ReproConfig())
    set_context(ExecutionContext())
    yield
    set_config(ReproConfig())
    set_context(ExecutionContext())


@pytest.fixture
def rng():
    """Shared deterministic generator (see :func:`repro.config.rng`)."""
    return make_rng(1234)


@pytest.fixture
def laplace_small() -> CsrMatrix:
    """10x10-grid 2D Laplacian (n=100), SPD and well conditioned."""
    return laplace2d(10)


@pytest.fixture
def laplace_medium() -> CsrMatrix:
    """24x24-grid 2D Laplacian (n=576)."""
    return laplace2d(24)


@pytest.fixture
def bentpipe_small() -> CsrMatrix:
    """Small convection-dominated (nonsymmetric) problem (n=256)."""
    return bentpipe2d(16)


@pytest.fixture
def uniflow_small() -> CsrMatrix:
    """Small mildly nonsymmetric convection-diffusion problem (n=256)."""
    return uniflow2d(16)


@pytest.fixture
def stretched_small() -> CsrMatrix:
    """Small stretched-grid Laplacian (n=576)."""
    return stretched2d(24, stretch=8)


@pytest.fixture
def laplace3d_small() -> CsrMatrix:
    """Small 3D Laplacian (n=512)."""
    return laplace3d(8)


@pytest.fixture
def random_sparse(rng) -> CsrMatrix:
    """Random diagonally dominant sparse matrix (n=80), nonsymmetric."""
    import scipy.sparse as sp

    n = 80
    density = 0.05
    a = sp.random(n, n, density=density, random_state=make_rng(7), format="csr")
    a = a + sp.identity(n, format="csr") * (abs(a).sum(axis=1).max() + 1.0)
    return from_scipy(a.tocsr(), name="random80")


def dense(matrix: CsrMatrix) -> np.ndarray:
    """Dense copy of a CsrMatrix (test helper)."""
    return matrix.to_scipy().toarray()
