"""Tests for the GMRES-polynomial, Chebyshev and Neumann preconditioners."""

import numpy as np
import pytest

from repro.perfmodel.timer import use_timer
from repro.preconditioners import (
    ChebyshevPreconditioner,
    GmresPolynomialPreconditioner,
    NeumannPreconditioner,
)
from repro.preconditioners.polynomial import harmonic_ritz_values, leja_order
from repro.solvers import gmres
from repro import ones_rhs
from tests.conftest import dense


def apply_as_matrix(precond, n):
    """Materialise a preconditioner as a dense matrix by applying it to e_j."""
    P = np.zeros((n, n))
    for j in range(n):
        e = np.zeros(n, dtype=precond.precision.dtype)
        e[j] = 1.0
        P[:, j] = precond.apply(e)
    return P


class TestHarmonicRitz:
    def test_symmetric_matrix_real_values_within_spectrum(self, laplace_small):
        M = GmresPolynomialPreconditioner(laplace_small, degree=8)
        roots = M.roots
        eigs = np.linalg.eigvalsh(dense(laplace_small))
        assert np.max(np.abs(roots.imag)) < 1e-8
        assert roots.real.min() > 0
        assert roots.real.max() <= eigs.max() * 1.0001

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            harmonic_ritz_values(np.ones((3, 3)))

    def test_degree_one(self, laplace_small):
        M = GmresPolynomialPreconditioner(laplace_small, degree=1)
        assert M.roots.size == 1


class TestLejaOrder:
    def test_starts_with_largest_magnitude(self):
        roots = np.array([1.0, 5.0, 3.0, 0.5])
        ordered = leja_order(roots)
        assert ordered[0] == 5.0

    def test_is_a_permutation(self, rng):
        roots = rng.standard_normal(9) + 1j * rng.standard_normal(9)
        ordered = leja_order(roots)
        np.testing.assert_allclose(
            np.sort_complex(ordered), np.sort_complex(roots)
        )

    def test_conjugate_pairs_adjacent(self):
        roots = np.array([2.0 + 1.0j, 0.5, 2.0 - 1.0j, 3.0, 1.0 + 0.5j, 1.0 - 0.5j])
        ordered = leja_order(roots)
        i = 0
        while i < len(ordered):
            if abs(ordered[i].imag) > 1e-12:
                assert ordered[i + 1] == pytest.approx(np.conj(ordered[i]))
                i += 2
            else:
                i += 1

    def test_empty(self):
        assert leja_order(np.array([])).size == 0


class TestGmresPolynomial:
    def test_residual_polynomial_identity(self, laplace_small):
        """I - A p(A) must equal prod (I - A/theta_i) — the defining property."""
        M = GmresPolynomialPreconditioner(laplace_small, degree=6)
        A = dense(laplace_small)
        P = apply_as_matrix(M, laplace_small.n_rows)
        phi = np.eye(laplace_small.n_rows)
        for theta in M.roots:
            phi = phi @ (np.eye(laplace_small.n_rows) - A / theta)
        np.testing.assert_allclose(np.eye(laplace_small.n_rows) - A @ P, np.real(phi), atol=1e-10)

    def test_power_form_matches_root_form(self, laplace_small, rng):
        seed = rng.standard_normal(laplace_small.n_rows)
        M_roots = GmresPolynomialPreconditioner(laplace_small, degree=5, seed=seed)
        M_power = GmresPolynomialPreconditioner(
            laplace_small, degree=5, seed=seed, apply_method="power"
        )
        x = rng.standard_normal(laplace_small.n_rows)
        np.testing.assert_allclose(M_roots.apply(x), M_power.apply(x), rtol=1e-8)

    def test_nonsymmetric_matrix_complex_pairs_real_result(self, bentpipe_small, rng):
        M = GmresPolynomialPreconditioner(bentpipe_small, degree=8)
        assert np.any(np.abs(M.roots.imag) > 0) or True  # roots may be complex
        x = rng.standard_normal(bentpipe_small.n_rows)
        y = M.apply(x)
        assert y.dtype == np.float64
        assert np.all(np.isfinite(y))

    def test_reduces_gmres_iterations(self, stretched_small):
        b = ones_rhs(stretched_small)
        plain = gmres(stretched_small, b, restart=20, tol=1e-8, max_restarts=100)
        M = GmresPolynomialPreconditioner(stretched_small, degree=8)
        precond = gmres(
            stretched_small, b, restart=20, tol=1e-8, max_restarts=100, preconditioner=M
        )
        assert precond.converged
        assert precond.iterations < plain.iterations / 2

    def test_spmv_count_per_apply(self, laplace_small, rng):
        M = GmresPolynomialPreconditioner(laplace_small, degree=7)
        with use_timer(name="t") as timer:
            M.apply(rng.standard_normal(laplace_small.n_rows))
        assert timer.calls_by_label()["SpMV"] == M.spmvs_per_apply()
        assert M.spmvs_per_apply() <= 7

    def test_fp32_polynomial_storage_and_apply(self, laplace_small):
        M = GmresPolynomialPreconditioner(laplace_small, degree=5, precision="single")
        assert M.matrix.dtype == np.float32
        x = np.ones(laplace_small.n_rows, dtype=np.float32)
        assert M.apply(x).dtype == np.float32

    def test_fp32_apply_requires_fp32_vector(self, laplace_small):
        M = GmresPolynomialPreconditioner(laplace_small, degree=5, precision="single")
        with pytest.raises(TypeError):
            M.apply(np.ones(laplace_small.n_rows))

    def test_setup_seconds_tracked(self, laplace_small):
        M = GmresPolynomialPreconditioner(laplace_small, degree=5)
        assert M.setup_seconds() > 0

    def test_lucky_breakdown_reduces_degree(self):
        """On a matrix with tiny minimal polynomial degree, Arnoldi breaks down
        early and the polynomial degree is truncated accordingly."""
        from repro.sparse import CsrMatrix

        A = CsrMatrix.identity(20)
        M = GmresPolynomialPreconditioner(A, degree=10)
        assert M.degree <= 2
        x = np.ones(20)
        np.testing.assert_allclose(M.apply(x), x, rtol=1e-10)

    def test_invalid_parameters(self, laplace_small):
        with pytest.raises(ValueError):
            GmresPolynomialPreconditioner(laplace_small, degree=0)
        with pytest.raises(ValueError):
            GmresPolynomialPreconditioner(laplace_small, degree=3, apply_method="horner")
        with pytest.raises(ValueError):
            GmresPolynomialPreconditioner(laplace_small, degree=3, seed=np.zeros(laplace_small.n_rows))


class TestChebyshev:
    def test_improves_conditioning_of_spd_system(self, laplace_small, rng):
        M = ChebyshevPreconditioner(laplace_small, degree=8)
        A = dense(laplace_small)
        P = apply_as_matrix(M, laplace_small.n_rows)
        eig_before = np.linalg.eigvalsh(A)
        eig_after = np.sort(np.real(np.linalg.eigvals(A @ P)))
        cond_before = eig_before.max() / eig_before.min()
        cond_after = eig_after.max() / eig_after.min()
        assert cond_after < cond_before

    def test_reduces_gmres_iterations(self, laplace_medium):
        b = ones_rhs(laplace_medium)
        plain = gmres(laplace_medium, b, restart=20, tol=1e-8, max_restarts=100)
        M = ChebyshevPreconditioner(laplace_medium, degree=6)
        precond = gmres(laplace_medium, b, restart=20, tol=1e-8, max_restarts=100, preconditioner=M)
        assert precond.converged
        assert precond.iterations < plain.iterations

    def test_explicit_bounds(self, laplace_small):
        M = ChebyshevPreconditioner(laplace_small, degree=4, bounds=(0.1, 8.0))
        assert M.lmin == 0.1 and M.lmax == 8.0

    def test_invalid_bounds_and_degree(self, laplace_small):
        with pytest.raises(ValueError):
            ChebyshevPreconditioner(laplace_small, degree=4, bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            ChebyshevPreconditioner(laplace_small, degree=0)

    def test_spmvs_per_apply(self, laplace_small, rng):
        M = ChebyshevPreconditioner(laplace_small, degree=5)
        with use_timer(name="t") as timer:
            M.apply(rng.standard_normal(laplace_small.n_rows))
        assert timer.calls_by_label()["SpMV"] == 5


class TestNeumann:
    def test_degree_zero_is_jacobi(self, laplace_small, rng):
        M = NeumannPreconditioner(laplace_small, degree=0)
        x = rng.standard_normal(laplace_small.n_rows)
        np.testing.assert_allclose(M.apply(x), x / laplace_small.diagonal())

    def test_matches_explicit_series(self, rng):
        """Compare against the explicitly expanded truncated Neumann series on
        a strongly diagonally dominant matrix."""
        import scipy.sparse as sp

        n = 40
        T = np.diag(4.0 * np.ones(n)) + np.diag(-0.5 * np.ones(n - 1), 1) + np.diag(
            -0.5 * np.ones(n - 1), -1
        )
        from repro.sparse import from_scipy

        A = from_scipy(sp.csr_matrix(T))
        M = NeumannPreconditioner(A, degree=3)
        Dinv = np.diag(1.0 / np.diag(T))
        G = np.eye(n) - Dinv @ T
        expected = (np.eye(n) + G + G @ G + G @ G @ G) @ Dinv
        P = apply_as_matrix(M, n)
        np.testing.assert_allclose(P, expected, atol=1e-12)

    def test_reduces_iterations_on_dominant_system(self, rng):
        import scipy.sparse as sp
        from repro.sparse import from_scipy

        n = 100
        T = np.diag(5.0 * np.ones(n)) + np.diag(-np.ones(n - 1), 1) + np.diag(-np.ones(n - 1), -1)
        A = from_scipy(sp.csr_matrix(T))
        b = np.ones(n)
        plain = gmres(A, b, restart=20, tol=1e-10, max_restarts=50)
        precond = gmres(A, b, restart=20, tol=1e-10, max_restarts=50,
                        preconditioner=NeumannPreconditioner(A, degree=3))
        assert precond.converged and precond.iterations < plain.iterations

    def test_invalid_degree(self, laplace_small):
        with pytest.raises(ValueError):
            NeumannPreconditioner(laplace_small, degree=-1)
