"""Concurrency contracts the serve layer depends on.

Two satellite guarantees pinned explicitly:

* :func:`repro.linalg.context.use_backend` (and ``use_context`` /
  ``use_device``) are *thread-scoped*: they nest and unwind per thread and
  never leak into other threads — the property that lets the serve
  dispatcher pin a session's backend while clients do their own thing;
* :class:`repro.config.ReproConfig` is safe to read from many threads
  while another thread replaces it: readers always observe a coherent
  (frozen) snapshot, never a half-updated config.

Plus the same thread-locality for the kernel-timer stack (a timer pushed
on one thread must not observe another thread's kernel calls).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.backends import get_backend
from repro.config import ReproConfig, get_config, rng, set_config
from repro.linalg import kernels
from repro.linalg.context import (
    ExecutionContext,
    get_context,
    set_context,
    use_backend,
    use_context,
    use_device,
)
from repro.matrices import laplace2d
from repro.perfmodel.timer import KernelTimer, use_timer


class TestUseBackendNesting:
    def test_nested_switches_unwind_in_lifo_order(self):
        default = get_context().backend.name
        with use_backend("scipy") as outer:
            assert get_context() is outer
            assert get_context().backend.name == "scipy"
            with use_backend("numpy") as inner:
                assert get_context() is inner
                assert get_context().backend.name == "numpy"
                with use_backend("scipy"):
                    assert get_context().backend.name == "scipy"
                assert get_context() is inner
            assert get_context() is outer
            assert get_context().backend.name == "scipy"
        assert get_context().backend.name == default

    def test_exception_restores_enclosing_context(self):
        before = get_context()
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("scipy"):
                with use_backend("numpy"):
                    raise RuntimeError("boom")
        assert get_context() is before

    def test_nesting_preserves_meter_and_cost_model(self):
        set_context(ExecutionContext(meter=False))
        outer_model = get_context().cost_model
        with use_backend("scipy") as ctx:
            assert ctx.meter is False
            assert ctx.cost_model is outer_model
            with use_device("a100", meter=True) as dev_ctx:
                assert dev_ctx.meter is True
                assert dev_ctx.backend.name == "scipy"  # backend carried over
            assert get_context() is ctx

    def test_switch_is_thread_local(self):
        """A use_backend block in one thread is invisible to another."""
        default = get_context().backend.name
        entered = threading.Event()
        release = threading.Event()
        seen_inside: list = []

        def switcher():
            with use_backend("scipy"):
                seen_inside.append(get_context().backend.name)
                entered.set()
                release.wait(timeout=10)

        t = threading.Thread(target=switcher)
        t.start()
        assert entered.wait(timeout=10)
        # While the other thread holds its scoped switch, this thread
        # still sees the global default.
        assert get_context().backend.name == default
        release.set()
        t.join(timeout=10)
        assert seen_inside == ["scipy"]

    def test_set_context_is_global_but_overrides_win(self):
        pinned = ExecutionContext(backend=get_backend("scipy"))
        with use_context(pinned):
            # A global swap must not disturb the thread's scoped override...
            set_context(ExecutionContext())
            assert get_context() is pinned
        # ...but applies once the override unwinds.
        assert get_context().backend.name == get_config().backend

    def test_kernels_dispatch_through_thread_scoped_backend(self):
        matrix = laplace2d(6)
        x = np.ones(matrix.n_rows)
        reference = kernels.spmv(matrix, x)
        results = {}

        def worker(name):
            with use_backend(name):
                results[name] = kernels.spmv(matrix, x)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("numpy", "scipy")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        np.testing.assert_allclose(results["numpy"], reference)
        np.testing.assert_allclose(results["scipy"], reference, rtol=1e-13)


class TestConfigThreadSafety:
    def test_concurrent_readers_see_coherent_snapshots(self):
        """Hammer get_config from many threads while one thread flips it.

        The two writer configs pair restart/rtol values; a torn read would
        surface as a mismatched pair.
        """
        config_a = ReproConfig(restart=11, rtol=1e-11)
        config_b = ReproConfig(restart=22, rtol=1e-22)
        valid = {(11, 1e-11), (22, 1e-22)}
        stop = threading.Event()
        bad: list = []

        def reader():
            while not stop.is_set():
                cfg = get_config()
                pair = (cfg.restart, cfg.rtol)
                if pair not in valid and cfg.restart not in (50,):
                    bad.append(pair)

        def writer():
            for i in range(500):
                set_config(config_a if i % 2 else config_b)
            stop.set()

        readers = [threading.Thread(target=reader) for _ in range(4)]
        w = threading.Thread(target=writer)
        set_config(config_a)
        for t in readers:
            t.start()
        w.start()
        w.join(timeout=30)
        stop.set()
        for t in readers:
            t.join(timeout=30)
        assert not bad

    def test_config_is_frozen_against_in_place_mutation(self):
        cfg = get_config()
        with pytest.raises(Exception):
            cfg.restart = 99  # type: ignore[misc]

    def test_rng_usable_from_many_threads(self):
        draws = {}

        def worker(i):
            draws[i] = rng(seed=1000 + i).standard_normal(4)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(draws) == 8
        # Deterministic per seed, independent across threads.
        np.testing.assert_array_equal(draws[0], rng(seed=1000).standard_normal(4))

    def test_serve_defaults_present(self):
        cfg = ReproConfig()
        assert cfg.serve.max_block >= 1
        assert cfg.serve.max_wait_ms >= 0.0
        assert cfg.serve.policy in ("auto", "block", "sequential")
        assert cfg.serve.max_sessions >= 1
        assert cfg.serve.queue_depth >= 1
        assert cfg.serve.fairness in ("weighted", "fifo")
        assert cfg.serve.workers >= 1


class TestTimerThreadLocality:
    def test_timer_observes_only_its_own_thread(self):
        matrix = laplace2d(6)
        x = np.ones(matrix.n_rows)
        other_done = threading.Event()

        def other_thread():
            # No timer on this thread's stack: nothing may be recorded
            # into the main thread's timer by these calls.
            for _ in range(5):
                kernels.spmv(matrix, x)
            other_done.set()

        with use_timer(KernelTimer("main")) as timer:
            kernels.spmv(matrix, x)
            t = threading.Thread(target=other_thread)
            t.start()
            assert other_done.wait(timeout=10)
            t.join(timeout=10)
            kernels.spmv(matrix, x)
        assert timer.calls_by_label().get("SpMV") == 2

    def test_threads_can_meter_independently(self):
        matrix = laplace2d(6)
        x = np.ones(matrix.n_rows)
        counts = {}

        def worker(i):
            with use_timer(KernelTimer(f"t{i}")) as timer:
                for _ in range(i + 1):
                    kernels.spmv(matrix, x)
            counts[i] = timer.calls_by_label().get("SpMV")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert counts == {0: 1, 1: 2, 2: 3, 3: 4}
