"""The ``out=``/workspace buffer contract and the allocation-free hot path.

Three properties are pinned here, on **both** shipped backends:

1. **Aliasing** — when a kernel is handed an ``out`` (or ``work``) buffer,
   the returned array *is* that buffer, so solvers can rely on writes
   landing in their workspace.
2. **Parity** — the ``out=`` code paths produce bit-identical values to the
   allocating paths on the NumPy reference backend (the gather → multiply →
   segmented-reduce sequence is the same; only the temporaries are reused),
   and dtype-tolerance-identical on SciPy.
3. **Allocation-freedom** — a steady-state GMRES(m) restart cycle
   (SpMV + CGS2 + norm + scal) performs zero per-iteration NumPy array
   allocations once the workspace exists, proven with ``tracemalloc``.

Plus the metering fast path: with no active timer and metering disabled,
kernels record nothing and skip the cost model, and a metered solve
records exactly the same labels it always did.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.backends import get_backend
from repro.config import rng, set_config
from repro.linalg import kernels
from repro.linalg.context import set_context
from repro.linalg.multivector import MultiVector
from repro.matrices import laplace3d
from repro.ortho import make_ortho_manager
from repro.preconditioners.base import IdentityPreconditioner
from repro.preconditioners.block_jacobi import BlockJacobiPreconditioner
from repro.preconditioners.chebyshev import ChebyshevPreconditioner
from repro.preconditioners.jacobi import JacobiPreconditioner
from repro.preconditioners.mixed import PrecisionWrappedPreconditioner
from repro.preconditioners.neumann import NeumannPreconditioner
from repro.preconditioners.polynomial import GmresPolynomialPreconditioner
from repro.solvers.gmres import GmresWorkspace, gmres, run_gmres_cycle

BACKENDS = ["numpy", "scipy"]
DTYPES = [np.float16, np.float32, np.float64]


@pytest.fixture
def matrix():
    return laplace3d(8)  # n = 512


def _vec(n, dtype, seed=7):
    return rng(seed).standard_normal(n).astype(dtype)


# ---------------------------------------------------------------------- #
# aliasing + parity of the backend out= paths                            #
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES, ids=["fp16", "fp32", "fp64"])
@pytest.mark.parametrize("name", BACKENDS)
class TestBackendOutContract:
    def test_spmv_out_is_buffer_and_bit_identical(self, name, dtype, matrix):
        backend = get_backend(name)
        M = matrix.astype(np.dtype(dtype).name)
        x = _vec(M.n_cols, dtype)
        out = np.empty(M.n_rows, dtype=dtype)
        reference = backend.spmv(M, x)
        got = backend.spmv(M, x, out=out)
        assert got is out
        np.testing.assert_array_equal(got, reference)
        # Steady state: a second call into the same buffer stays identical.
        np.testing.assert_array_equal(backend.spmv(M, x, out=out), reference)

    def test_spmv_transpose_out(self, name, dtype, matrix):
        backend = get_backend(name)
        M = matrix.astype(np.dtype(dtype).name)
        x = _vec(M.n_rows, dtype)
        out = np.empty(M.n_cols, dtype=dtype)
        reference = backend.spmv_transpose(M, x)
        got = backend.spmv_transpose(M, x, out=out)
        assert got is out
        np.testing.assert_array_equal(got, reference)

    def test_spmm_out(self, name, dtype, matrix):
        backend = get_backend(name)
        M = matrix.astype(np.dtype(dtype).name)
        X = rng(3).standard_normal((M.n_cols, 4)).astype(dtype)
        out = np.empty((M.n_rows, 4), dtype=dtype)
        got = backend.spmm(M, X, out=out)
        assert got is out
        np.testing.assert_array_equal(got, backend.spmm(M, X))

    def test_gemv_transpose_out(self, name, dtype):
        backend = get_backend(name)
        V = np.asfortranarray(rng(5).standard_normal((200, 9)).astype(dtype))
        w = _vec(200, dtype)
        out = np.empty(9, dtype=dtype)
        got = backend.gemv_transpose(V, w, out=out)
        assert got is out
        np.testing.assert_array_equal(got, backend.gemv_transpose(V, w))

    def test_gemv_notrans_work_buffer_parity(self, name, dtype):
        backend = get_backend(name)
        V = np.asfortranarray(rng(5).standard_normal((200, 9)).astype(dtype))
        h = _vec(9, dtype)
        work = np.empty(200, dtype=dtype)
        w_plain = _vec(200, dtype, seed=11)
        w_work = w_plain.copy()
        backend.gemv_notrans(V, h, w_plain)
        got = backend.gemv_notrans(V, h, w_work, work=work)
        assert got is w_work
        np.testing.assert_array_equal(w_plain, w_work)

    def test_gemv_notrans_alpha_folds_sign(self, name, dtype):
        backend = get_backend(name)
        V = np.asfortranarray(rng(5).standard_normal((64, 5)).astype(dtype))
        y = _vec(5, dtype)
        work = np.empty(64, dtype=dtype)
        update = np.zeros(64, dtype=dtype)
        backend.gemv_notrans(V, y, update, alpha=1.0, work=work)
        # alpha=+1 into a zeroed buffer is exactly V @ y (IEEE negation of
        # every product term is exact, so the old 0 - V(-y) trick agrees
        # bitwise too).
        np.testing.assert_array_equal(update, (V @ y).astype(dtype))

    def test_gemm_transpose_out(self, name, dtype):
        backend = get_backend(name)
        V = np.asfortranarray(rng(5).standard_normal((200, 9)).astype(dtype))
        W = np.asfortranarray(rng(6).standard_normal((200, 4)).astype(dtype))
        out = np.empty((9, 4), dtype=dtype)
        got = backend.gemm_transpose(V, W, out=out)
        assert got is out
        np.testing.assert_array_equal(got, backend.gemm_transpose(V, W))

    def test_gemm_notrans_work_buffer_parity(self, name, dtype):
        backend = get_backend(name)
        V = np.asfortranarray(rng(5).standard_normal((200, 9)).astype(dtype))
        H = rng(7).standard_normal((9, 4)).astype(dtype)
        work = np.empty((200, 4), dtype=dtype)
        W_plain = np.asfortranarray(rng(8).standard_normal((200, 4)).astype(dtype))
        W_work = W_plain.copy(order="F")
        backend.gemm_notrans(V, H, W_plain)
        got = backend.gemm_notrans(V, H, W_work, work=work)
        assert got is W_work
        np.testing.assert_array_equal(W_plain, W_work)

    def test_gemm_notrans_alpha_folds_sign(self, name, dtype):
        backend = get_backend(name)
        V = np.asfortranarray(rng(5).standard_normal((64, 5)).astype(dtype))
        Y = rng(9).standard_normal((5, 3)).astype(dtype)
        work = np.empty((64, 3), dtype=dtype)
        update = np.zeros((64, 3), dtype=dtype, order="F")
        backend.gemm_notrans(V, Y, update, alpha=1.0, work=work)
        np.testing.assert_array_equal(update, (V @ Y).astype(dtype))

    def test_axpy_work_buffer_parity(self, name, dtype):
        backend = get_backend(name)
        x = np.asfortranarray(rng(3).standard_normal((80, 4)).astype(dtype))
        y_plain = np.asfortranarray(rng(4).standard_normal((80, 4)).astype(dtype))
        y_work = y_plain.copy(order="F")
        work = np.empty((80, 4), dtype=dtype, order="F")
        backend.axpy(0.5, x, y_plain)
        got = backend.axpy(0.5, x, y_work, work=work)
        assert got is y_work
        np.testing.assert_array_equal(y_plain, y_work)

    def test_copy_scal_out_paths(self, name, dtype):
        backend = get_backend(name)
        x = _vec(50, dtype)
        out = np.empty(50, dtype=dtype)
        assert backend.copy(x, out=out) is out
        np.testing.assert_array_equal(out, x)
        scaled = backend.scal(0.5, out)
        assert scaled is out
        np.testing.assert_array_equal(out, (x * dtype(0.5)).astype(dtype))

    def test_diag_scale_out_and_aliasing(self, name, dtype):
        backend = get_backend(name)
        d = _vec(50, dtype, seed=1)
        x = _vec(50, dtype, seed=2)
        expected = backend.diag_scale(d, x)
        out = np.empty(50, dtype=dtype)
        assert backend.diag_scale(d, x, out=out) is out
        np.testing.assert_array_equal(out, expected)
        # diag_scale explicitly allows out to alias x (elementwise product).
        x_inplace = x.copy()
        backend.diag_scale(d, x_inplace, out=x_inplace)
        np.testing.assert_array_equal(x_inplace, expected)


@pytest.mark.parametrize("name", BACKENDS)
def test_block_diag_solve_out(name):
    backend = get_backend(name)
    blocks = rng(4).standard_normal((6, 3, 3))
    x = _vec(18, np.float64)
    expected = backend.block_diag_solve(blocks, x)
    out = np.empty(18)
    assert backend.block_diag_solve(blocks, x, out=out) is out
    np.testing.assert_array_equal(out, expected)


# ---------------------------------------------------------------------- #
# instrumented layer: backend routing + out forwarding                   #
# ---------------------------------------------------------------------- #
class _SpyBackend(get_backend("numpy").__class__):
    """NumPy backend that counts which protocol methods are hit."""

    name = "spy"

    def __init__(self):
        self.calls = []

    def __getattribute__(self, attr):
        if attr in (
            "scal",
            "copy",
            "diag_scale",
            "block_diag_solve",
            "spmv",
            "gemv_transpose",
            "gemv_notrans",
        ):
            object.__getattribute__(self, "calls").append(attr)
        return object.__getattribute__(self, attr)


def test_vector_kernels_route_through_backend():
    """scal/copy/diag_scale/block_diag_solve dispatch to the backend protocol
    (they used to run inline NumPy in the instrumented layer)."""
    spy = _SpyBackend()
    set_context(backend=spy)
    x = _vec(12, np.float64)
    kernels.scal(2.0, x)
    kernels.copy(x)
    kernels.diag_scale(x, x.copy())
    kernels.block_diag_solve(rng(0).standard_normal((4, 3, 3)), _vec(12, np.float64))
    assert spy.calls == ["scal", "copy", "diag_scale", "block_diag_solve"]


def test_instrumented_out_forwarding(matrix):
    x = _vec(matrix.n_cols, np.float64)
    out = np.empty(matrix.n_rows)
    assert kernels.spmv(matrix, x, out=out) is out
    V = np.asfortranarray(rng(5).standard_normal((matrix.n_rows, 4)))
    h_out = np.empty(4)
    assert kernels.gemv_transpose(V, x, out=h_out) is h_out
    c_out = np.empty(matrix.n_rows)
    assert kernels.cast(x.astype(np.float32), "double", out=c_out) is c_out
    np.testing.assert_array_equal(c_out, x.astype(np.float32).astype(np.float64))


def test_multivector_combine_out_matches_reference():
    gen = rng(9)
    V = MultiVector(40, 6, "double")
    for _ in range(5):
        V.append(gen.standard_normal(40))
    y = gen.standard_normal(5)
    expected = V.block() @ y
    out = np.empty(40)
    got = V.combine(y, out=out)
    assert got is out
    np.testing.assert_array_equal(got, expected)
    # and the allocating path agrees bitwise with the out path
    np.testing.assert_array_equal(V.combine(y), got)


# ---------------------------------------------------------------------- #
# preconditioner out= parity                                             #
# ---------------------------------------------------------------------- #
def _preconditioners(matrix):
    spd = matrix  # laplace3d is SPD with positive diagonal
    yield JacobiPreconditioner(spd)
    yield BlockJacobiPreconditioner(spd, block_size=7)  # ragged trailing block
    yield GmresPolynomialPreconditioner(spd, degree=6)
    yield GmresPolynomialPreconditioner(spd, degree=4, apply_method="power")
    yield ChebyshevPreconditioner(spd, degree=4)
    yield NeumannPreconditioner(spd, degree=2)
    yield IdentityPreconditioner()
    yield PrecisionWrappedPreconditioner(
        JacobiPreconditioner(spd, precision="single"), outer_precision="double"
    )


def test_preconditioner_apply_out_parity(matrix):
    v = _vec(matrix.n_rows, np.float64, seed=21)
    for precond in _preconditioners(matrix):
        expected = precond.apply(v.copy())
        out = np.empty(matrix.n_rows)
        got = precond.apply(v.copy(), out=out)
        assert got is out, precond.name
        np.testing.assert_array_equal(got, expected, err_msg=precond.name)
        # Steady state: reapplying into the same buffer stays identical.
        np.testing.assert_array_equal(
            precond.apply(v.copy(), out=out), expected, err_msg=precond.name
        )


# ---------------------------------------------------------------------- #
# metering fast path                                                     #
# ---------------------------------------------------------------------- #
def test_unmetered_solve_records_nothing(matrix):
    set_context(meter=False)
    result = gmres(matrix, np.ones(matrix.n_rows), restart=10, tol=1e-6, fp64_check=False)
    assert result.converged
    assert result.timer.total_calls() == 0


def test_metered_solve_labels_unchanged(matrix):
    set_context(meter=True)
    result = gmres(matrix, np.ones(matrix.n_rows), restart=10, tol=1e-6, fp64_check=False)
    calls = result.timer.calls_by_label()
    assert {"SpMV", "GEMV (Trans)", "GEMV (No Trans)", "Norm", "Other"} <= set(calls)
    # CGS2: two projection passes = 2 GEMV-T + 2 GEMV-N per iteration, plus
    # one combine GEMV-N per restart — the sign-folded combine still lands
    # under the paper's "GEMV (No Trans)" label.
    assert calls["GEMV (No Trans)"] == calls["GEMV (Trans)"] + result.restarts


# ---------------------------------------------------------------------- #
# tracemalloc: zero per-iteration allocations in the steady-state cycle  #
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_steady_state_gmres_cycle_is_allocation_free(backend):
    """After warmup, restart cycles (SpMV + CGS2 + norm + scal) must not
    allocate any per-iteration NumPy arrays on either backend.

    The net traced growth over five full cycles must be (close to) zero and
    the peak must stay far below one length-n vector — so neither a per-call
    temporary (n or nnz sized) nor a slow leak can hide.  Transient Python
    scalars (norm results, Givens rotations) are allowed; they are orders of
    magnitude smaller than a vector.
    """
    set_config(backend=backend)
    set_context(meter=False)
    matrix = laplace3d(20)  # n = 8000: one fp64 vector is 64 KB
    n = matrix.n_rows
    restart = 30
    workspace = GmresWorkspace(n, restart, "double")
    ortho = make_ortho_manager("cgs2")
    precond = IdentityPreconditioner(precision="double")
    r = np.ones(n)
    rnorm = float(np.linalg.norm(r))

    def cycle():
        outcome = run_gmres_cycle(
            matrix, r, rnorm, workspace, ortho=ortho, preconditioner=precond
        )
        assert outcome.iterations == restart
        return outcome

    cycle()  # warmup: builds backend plans/handles and ortho scratch
    cycle()

    vector_bytes = n * 8
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(5):
            cycle()
        after, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    net = after - before
    peak_extra = peak - before
    assert net < 16_384, f"steady-state cycles leak {net} B on {backend}"
    assert peak_extra < vector_bytes // 2, (
        f"a per-iteration allocation of {peak_extra} B (≥ half a vector) "
        f"survived on {backend}"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_steady_state_block_gmres_cycle_is_allocation_free(backend):
    """The Block-GMRES restart cycle (SpMM + block CGS2 + band Givens +
    block combine) must not allocate per-iteration arrays once the
    workspace exists, on either backend — same proof as the single-vector
    cycle, with the threshold scaled to half an (n, k) block."""
    from repro.ortho import make_block_ortho_manager
    from repro.solvers.block_gmres import BlockGmresWorkspace, run_block_gmres_cycle

    set_config(backend=backend)
    set_context(meter=False)
    matrix = laplace3d(20)  # n = 8000
    n = matrix.n_rows
    k = 8
    restart = 20
    workspace = BlockGmresWorkspace(n, restart, k, "double")
    ortho = make_block_ortho_manager("bcgs2")
    precond = IdentityPreconditioner(precision="double")
    R = np.asfortranarray(rng(1).standard_normal((n, k)))

    def cycle():
        outcome = run_block_gmres_cycle(
            matrix, R, workspace, ortho=ortho, preconditioner=precond
        )
        assert outcome.iterations == restart
        return outcome

    cycle()  # warmup: backend plans (incl. the DIA view), ortho + QR scratch
    cycle()

    block_bytes = n * k * 8
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(5):
            cycle()
        after, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    net = after - before
    peak_extra = peak - before
    assert net < 16_384, f"steady-state block cycles leak {net} B on {backend}"
    assert peak_extra < block_bytes // 2, (
        f"a per-iteration allocation of {peak_extra} B (≥ half a block) "
        f"survived on {backend}"
    )
