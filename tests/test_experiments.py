"""Tests for the experiment drivers (run in quick mode on small problems).

These are integration-style tests: each driver must run end-to-end and its
report must show the paper's qualitative shape.  The benchmark harness runs
the full-size versions; here everything is kept small enough for the unit
test suite.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentConfig,
    ExperimentReport,
    fig1_fd_laplace3d,
    fig3_convergence_bentpipe,
    fig4_table1_kernel_breakdown,
    fig6_fig7_poly_prec,
    fig8_restart_laplace3d,
    scaled_device,
    sec5d_spmv_model,
    sec5f_poly_degree,
    table2_restart_bentpipe,
    table3_suitesparse,
)

QUICK = ExperimentConfig(quick=True)


class TestCommonInfrastructure:
    def test_scaled_device_factor(self):
        dev = scaled_device(9216, 2_250_000)
        assert dev.l2_bytes == pytest.approx(6 * 1024 * 1024 * 9216 / 2_250_000, rel=0.01)

    def test_experiment_config_pick(self):
        assert ExperimentConfig(quick=True).pick("full", "quick") == "quick"
        assert ExperimentConfig(quick=False).pick("full", "quick") == "full"

    def test_all_experiments_registry_complete(self):
        assert len(ALL_EXPERIMENTS) == 11
        for module in ALL_EXPERIMENTS.values():
            assert hasattr(module, "run")

    def test_report_format_and_columns(self):
        report = ExperimentReport(
            experiment="X", title="t",
            rows=[{"a": 1, "b": 2.0}], columns=["a", "b"],
            parameters={"p": 1}, paper_reference={"r": "v"}, notes=["n"],
        )
        text = report.format()
        assert "X" in text and "paper reference" in text and "note: n" in text
        assert report.row_values("a") == [1]


@pytest.mark.slow
class TestFdSweeps:
    def test_figure1_ir_competitive_with_best_fd(self):
        report = fig1_fd_laplace3d.run(QUICK, grid=12)
        assert len(report.rows) >= 3
        ir_time = report.parameters["gmres-ir time [model s]"]
        double_time = report.parameters["gmres-double time [model s]"]
        best_fd = report.parameters["best FD time [model s]"]
        assert ir_time < double_time
        assert ir_time <= 1.3 * best_fd


class TestFigure3:
    def test_fp32_stagnates_fp64_and_ir_converge(self):
        report = fig3_convergence_bentpipe.run(QUICK, grid=32, max_restarts=150)
        by_solver = {row["solver"]: row for row in report.rows}
        assert by_solver["GMRES fp32"]["status"] != "converged"
        assert by_solver["GMRES fp32"]["final relative residual"] > 1e-9
        assert by_solver["GMRES fp64"]["status"] == "converged"
        assert by_solver["GMRES-IR"]["status"] == "converged"
        # IR follows double closely (within one restart cycle plus a 10% margin;
        # the paper notes rounding occasionally lets IR finish a little earlier).
        fp64_iters = by_solver["GMRES fp64"]["iterations"]
        ir_iters = by_solver["GMRES-IR"]["iterations"]
        assert ir_iters <= fp64_iters + QUICK.restart + 1
        assert abs(ir_iters - fp64_iters) <= 0.1 * fp64_iters + QUICK.restart + 1


class TestFigure4TableI:
    def test_speedups_have_paper_shape(self):
        report = fig4_table1_kernel_breakdown.run(QUICK, grid=48)
        speedups = {row["kernel"]: row["speedup"] for row in report.rows}
        assert speedups["SpMV"] > speedups["GEMV (Trans)"]
        assert speedups["SpMV"] > 1.8
        assert speedups["Total Time"] > 1.0
        assert 1.0 < speedups["Total Orthogonalization"] < 2.0


class TestFigures6and7:
    def test_ir_with_fp32_poly_is_fastest(self):
        report = fig6_fig7_poly_prec.run(QUICK, grid=96)
        rows = {row["configuration"]: row for row in report.rows}
        base = rows["fp64 GMRES + fp64 poly"]
        ir = rows["GMRES-IR + fp32 poly"]
        assert ir["solve time [model s]"] < base["solve time [model s]"]
        assert ir["relative residual (fp64)"] < 1e-9
        # Polynomial preconditioning shifts the cost toward the SpMV.
        assert base["SpMV share"] > 0.3


class TestSection5D:
    def test_model_columns_consistent(self):
        report = sec5d_spmv_model.run(QUICK, run_cache_simulation=False, measure_solves=False)
        for row in report.rows:
            assert row["paper 5w/(2w+1)"] == pytest.approx(
                5 * row["nnz/row"] / (2 * row["nnz/row"] + 1), rel=1e-6
            )
            assert row["x reuse fp32"] >= row["x reuse fp64"]


@pytest.mark.slow
class TestRestartSweeps:
    def test_table2_small_restart_fastest(self):
        report = table2_restart_bentpipe.run(QUICK, grid=48, restart_sizes=(10, 25, 50))
        times = report.row_values("double time [model s]")
        assert times[0] < times[-1]  # orthogonalization growth with restart size
        speedups = report.row_values("speedup")
        assert all(s > 1.0 for s in speedups)

    def test_figure8_large_restart_hurts_ir(self):
        report = fig8_restart_laplace3d.run(QUICK, grid=16, restart_sizes=(10, 100))
        small, large = report.rows[0], report.rows[-1]
        assert small["speedup"] > large["speedup"]
        assert large["IR/double iteration ratio"] > 1.5


class TestSection5F:
    def test_loss_of_accuracy_appears_at_high_degree(self):
        report = sec5f_poly_degree.run(QUICK, grid=96, degrees=[5, 40], include_ir=False)
        low, high = report.rows[0], report.rows[-1]
        assert low["fp32 poly status"] == "converged"
        assert high["fp32 poly status"] == "loss_of_accuracy"
        assert high["fp64 poly status"] == "converged"
        # The false-positive signature: implicit far below the true residual.
        assert high["fp32 poly implicit residual"] < 1e-9 < high["fp32 poly true residual"]


@pytest.mark.slow
class TestTableIII:
    def test_quick_subset_runs_and_reports_speedups(self):
        report = table3_suitesparse.run(QUICK)
        assert len(report.rows) >= 3
        for row in report.rows:
            assert row["speedup"] > 0
            assert row["paper speedup"] > 0
        # The easy problem (Transport proxy) must not show a large IR win.
        transport = next(r for r in report.rows if r["matrix"] == "Transport")
        hood = next(r for r in report.rows if r["matrix"] == "hood")
        assert hood["double iters"] > transport["double iters"]
