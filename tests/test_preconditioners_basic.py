"""Tests for identity, Jacobi, block-Jacobi and precision-wrapped preconditioners."""

import numpy as np
import pytest

from repro.linalg.context import set_context
from repro.perfmodel.timer import use_timer
from repro.preconditioners import (
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    PrecisionWrappedPreconditioner,
    make_preconditioner,
    wrap_for_precision,
)
from repro.sparse import CsrMatrix, from_scipy
from tests.conftest import dense


class TestIdentity:
    def test_apply_is_noop(self, rng):
        M = IdentityPreconditioner()
        x = rng.standard_normal(10)
        assert M.apply(x) is x
        assert M.is_identity
        assert M.spmvs_per_apply() == 0

    def test_precision_check(self, rng):
        M = IdentityPreconditioner(precision="single")
        with pytest.raises(TypeError):
            M.apply(rng.standard_normal(5))  # float64 into a single-precision M


class TestJacobi:
    def test_apply_divides_by_diagonal(self, laplace_small, rng):
        M = JacobiPreconditioner(laplace_small)
        x = rng.standard_normal(laplace_small.n_rows)
        np.testing.assert_allclose(M.apply(x), x / laplace_small.diagonal())

    def test_precision_storage(self, laplace_small):
        M = JacobiPreconditioner(laplace_small, precision="single")
        assert M.inverse_diagonal.dtype == np.float32

    def test_zero_diagonal_raises(self):
        A = CsrMatrix(
            np.array([0.0, 1.0]), np.array([0, 1], dtype=np.int32), np.array([0, 1, 2]), (2, 2)
        )
        with pytest.raises(ValueError):
            JacobiPreconditioner(A, zero_diagonal_tolerance=-1)

    def test_zero_diagonal_tolerance_replaces_with_identity_rows(self):
        A = CsrMatrix(
            np.array([0.0, 2.0]), np.array([0, 1], dtype=np.int32), np.array([0, 1, 2]), (2, 2)
        )
        M = JacobiPreconditioner(A, zero_diagonal_tolerance=0.0)
        np.testing.assert_allclose(M.apply(np.array([3.0, 4.0])), [3.0, 2.0])

    def test_metered_under_precond_label(self, laplace_small, rng):
        M = JacobiPreconditioner(laplace_small)
        with use_timer(name="t") as timer:
            M.apply(rng.standard_normal(laplace_small.n_rows))
        assert timer.calls_by_label() == {"Precond": 1}

    def test_improves_gmres_on_badly_scaled_problem(self, rng):
        """Jacobi fixes row scaling, cutting iteration counts."""
        import scipy.sparse as sp
        from repro.solvers import gmres

        # badly scaled SPD tridiagonal system
        n = 60
        scale = np.logspace(0, 1.5, n)
        T = np.diag(2 * np.ones(n)) + np.diag(-np.ones(n - 1), 1) + np.diag(-np.ones(n - 1), -1)
        A = from_scipy(sp.csr_matrix(np.diag(scale) @ T @ np.diag(scale)))
        b = np.ones(n)
        plain = gmres(A, b, restart=20, tol=1e-8, max_restarts=200)
        jacobi = gmres(A, b, restart=20, tol=1e-8, max_restarts=200,
                       preconditioner=JacobiPreconditioner(A))
        assert jacobi.converged
        assert jacobi.iterations <= plain.iterations


class TestBlockJacobi:
    def test_block_size_one_matches_jacobi(self, laplace_small, rng):
        bj = BlockJacobiPreconditioner(laplace_small, block_size=1)
        j = JacobiPreconditioner(laplace_small)
        x = rng.standard_normal(laplace_small.n_rows)
        np.testing.assert_allclose(bj.apply(x), j.apply(x), rtol=1e-12)

    def test_apply_inverts_diagonal_blocks(self, laplace_small, rng):
        k = 5
        M = BlockJacobiPreconditioner(laplace_small, block_size=k)
        D = dense(laplace_small)
        x = rng.standard_normal(laplace_small.n_rows)
        expected = np.zeros_like(x)
        for b in range(laplace_small.n_rows // k):
            sl = slice(b * k, (b + 1) * k)
            expected[sl] = np.linalg.solve(D[sl, sl], x[sl])
        np.testing.assert_allclose(M.apply(x), expected, rtol=1e-10)

    def test_uneven_final_block_padding(self, rng):
        import scipy.sparse as sp

        n = 10
        A = from_scipy(sp.csr_matrix(np.diag(np.arange(1.0, n + 1))))
        M = BlockJacobiPreconditioner(A, block_size=4)
        assert M.n_blocks == 3
        x = np.ones(n)
        np.testing.assert_allclose(M.apply(x), 1.0 / np.arange(1.0, n + 1))

    def test_precision(self, laplace_small):
        M = BlockJacobiPreconditioner(laplace_small, block_size=4, precision="single")
        assert M.inverse_blocks.dtype == np.float32
        assert M.precision.name == "single"

    def test_invalid_block_size(self, laplace_small):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(laplace_small, block_size=0)

    def test_non_square_matrix_rejected(self):
        import scipy.sparse as sp

        A = from_scipy(sp.csr_matrix(np.ones((3, 4))))
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(A, block_size=2)

    def test_singular_block_reported(self):
        import scipy.sparse as sp

        D = np.zeros((4, 4))
        D[0, 1] = D[1, 0] = 1.0  # block 0 singular? actually invertible; make block 1 zero
        D[2, 2] = 0.0
        A = from_scipy(sp.csr_matrix(D + 0))
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(A, block_size=2)

    def test_regularization_rescues_singular_block(self):
        import scipy.sparse as sp

        D = np.diag([1.0, 0.0, 2.0, 3.0])
        A = from_scipy(sp.csr_matrix(D))
        M = BlockJacobiPreconditioner(A, block_size=2, regularization=1e-8)
        assert np.all(np.isfinite(M.apply(np.ones(4))))

    def test_reduces_gmres_iterations(self, laplace_medium):
        from repro.solvers import gmres
        from repro import ones_rhs

        b = ones_rhs(laplace_medium)
        plain = gmres(laplace_medium, b, restart=20, tol=1e-8, max_restarts=60)
        precond = gmres(
            laplace_medium, b, restart=20, tol=1e-8, max_restarts=60,
            preconditioner=BlockJacobiPreconditioner(laplace_medium, block_size=24),
        )
        assert precond.converged
        assert precond.iterations < plain.iterations


class TestPrecisionWrapping:
    def test_wrap_same_precision_returns_original(self, laplace_small):
        M = JacobiPreconditioner(laplace_small, precision="double")
        assert wrap_for_precision(M, "double") is M

    def test_wrap_casts_and_returns_outer_precision(self, laplace_small, rng):
        M32 = JacobiPreconditioner(laplace_small, precision="single")
        wrapped = wrap_for_precision(M32, "double")
        assert isinstance(wrapped, PrecisionWrappedPreconditioner)
        x = rng.standard_normal(laplace_small.n_rows)
        y = wrapped.apply(x)
        assert y.dtype == np.float64
        np.testing.assert_allclose(y, x / laplace_small.diagonal(), rtol=1e-5)

    def test_wrapper_meters_casts(self, laplace_small, rng):
        M32 = JacobiPreconditioner(laplace_small, precision="single")
        wrapped = wrap_for_precision(M32, "double")
        with use_timer(name="t") as timer:
            wrapped.apply(rng.standard_normal(laplace_small.n_rows))
        calls = timer.calls_by_label()
        assert calls["Other"] == 2  # down-cast and up-cast
        assert calls["Precond"] == 1

    def test_wrapper_passthrough_properties(self, laplace_small):
        inner = BlockJacobiPreconditioner(laplace_small, block_size=4, precision="single")
        wrapped = PrecisionWrappedPreconditioner(inner, "double")
        assert wrapped.spmvs_per_apply() == inner.spmvs_per_apply()
        assert not wrapped.is_identity


class TestFactory:
    def test_make_by_name(self, laplace_small):
        assert make_preconditioner(None, laplace_small).is_identity
        assert make_preconditioner("identity", laplace_small).is_identity
        assert isinstance(make_preconditioner("jacobi", laplace_small), JacobiPreconditioner)
        assert isinstance(
            make_preconditioner("block_jacobi", laplace_small, block_size=4),
            BlockJacobiPreconditioner,
        )

    def test_make_poly_and_unknown(self, laplace_small):
        from repro.preconditioners import GmresPolynomialPreconditioner

        M = make_preconditioner("poly", laplace_small, degree=3)
        assert isinstance(M, GmresPolynomialPreconditioner)
        with pytest.raises(ValueError):
            make_preconditioner("ilu", laplace_small)
