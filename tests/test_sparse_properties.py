"""Tests for structural/numerical matrix property queries."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    CsrMatrix,
    avg_nonzeros_per_row,
    bandwidth,
    diagonal_dominance_ratio,
    from_scipy,
    is_numerically_symmetric,
    is_structurally_symmetric,
    max_nonzeros_per_row,
)
from repro.sparse.properties import symmetry_class


class TestCounts:
    def test_avg_nonzeros_per_row_laplacian(self, laplace_small):
        # interior 10x10 grid 5-point stencil: 460 nonzeros over 100 rows.
        assert avg_nonzeros_per_row(laplace_small) == pytest.approx(4.6)

    def test_max_nonzeros_per_row(self, laplace_small):
        assert max_nonzeros_per_row(laplace_small) == 5

    def test_empty_matrix(self):
        A = CsrMatrix(np.array([]), np.array([], dtype=np.int32), np.array([0]), (0, 0))
        assert avg_nonzeros_per_row(A) == 0.0
        assert max_nonzeros_per_row(A) == 0

    def test_bandwidth_of_laplacian(self, laplace_small):
        assert bandwidth(laplace_small) == 10  # grid width

    def test_bandwidth_of_diagonal(self):
        assert bandwidth(CsrMatrix.identity(7)) == 0


class TestSymmetry:
    def test_laplacian_is_spd_class(self, laplace_small):
        assert is_structurally_symmetric(laplace_small)
        assert is_numerically_symmetric(laplace_small)
        assert symmetry_class(laplace_small) == "spd"

    def test_bentpipe_is_nonsymmetric(self, bentpipe_small):
        assert is_numerically_symmetric(bentpipe_small) is False
        assert symmetry_class(bentpipe_small) == "n"

    def test_bentpipe_structurally_symmetric(self, bentpipe_small):
        # Convection-diffusion stencils have a symmetric pattern with
        # nonsymmetric values.
        assert is_structurally_symmetric(bentpipe_small)

    def test_structurally_nonsymmetric_pattern(self):
        A = from_scipy(sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]])))
        assert not is_structurally_symmetric(A)
        assert not is_numerically_symmetric(A)

    def test_symmetric_but_not_spd_class(self):
        # Symmetric with a non-dominant diagonal: classified "y", not "spd".
        D = np.array([[1.0, -5.0], [-5.0, 1.0]])
        A = from_scipy(sp.csr_matrix(D))
        assert is_numerically_symmetric(A)
        assert symmetry_class(A) == "y"

    def test_rectangular_never_symmetric(self):
        A = from_scipy(sp.csr_matrix(np.ones((2, 3))))
        assert not is_structurally_symmetric(A)
        assert not is_numerically_symmetric(A)

    def test_tolerance_in_numerical_symmetry(self):
        D = np.array([[2.0, 1.0 + 1e-15], [1.0, 2.0]])
        A = from_scipy(sp.csr_matrix(D))
        assert is_numerically_symmetric(A)


class TestDiagonalDominance:
    def test_laplacian_weakly_dominant(self, laplace_small):
        assert diagonal_dominance_ratio(laplace_small) >= 1.0

    def test_non_dominant_matrix(self):
        D = np.array([[1.0, 10.0], [10.0, 1.0]])
        A = from_scipy(sp.csr_matrix(D))
        assert diagonal_dominance_ratio(A) == pytest.approx(0.1)

    def test_diagonal_only_matrix_is_inf(self):
        assert diagonal_dominance_ratio(CsrMatrix.identity(3)) == np.inf

    def test_requires_square_nonempty(self):
        A = from_scipy(sp.csr_matrix(np.ones((2, 3))))
        with pytest.raises(ValueError):
            diagonal_dominance_ratio(A)
