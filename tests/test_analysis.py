"""Tests for the analysis layer (breakdowns, speedups, tables, model validation)."""

import numpy as np
import pytest

from repro.analysis import (
    BREAKDOWN_ORDER,
    breakdown_from_result,
    breakdown_from_timer,
    compare_spmv_models,
    format_kv,
    format_series,
    format_table,
    speedup_table,
)
from repro.matrices import bentpipe2d
from repro.perfmodel.costs import CostEstimate
from repro.perfmodel.device import get_device
from repro.perfmodel.timer import KernelTimer
from repro.solvers import gmres, gmres_ir


@pytest.fixture(scope="module")
def solver_pair():
    matrix = bentpipe2d(24)
    b = np.ones(matrix.n_rows)
    double = gmres(matrix, b, restart=20, tol=1e-8, max_restarts=200)
    mixed = gmres_ir(matrix, b, restart=20, tol=1e-8, max_restarts=200)
    return matrix, double, mixed


class TestBreakdown:
    def test_from_timer(self):
        t = KernelTimer("t")
        t.record("spmv", "double", CostEstimate(2.0, 1, 1))
        t.record("gemv_t", "double", CostEstimate(1.0, 1, 1))
        t.record("norm", "double", CostEstimate(0.5, 1, 1))
        b = breakdown_from_timer(t)
        assert b.total_seconds == pytest.approx(3.5)
        assert b.seconds("SpMV") == pytest.approx(2.0)
        assert b.orthogonalization_seconds == pytest.approx(1.5)
        assert b.fraction("SpMV") == pytest.approx(2.0 / 3.5)

    def test_from_result_and_rows(self, solver_pair):
        _, double, _ = solver_pair
        b = breakdown_from_result(double)
        rows = b.as_rows()
        labels = [r[0] for r in rows]
        assert labels[: len([l for l in BREAKDOWN_ORDER if l in labels])] == [
            l for l in BREAKDOWN_ORDER if l in labels
        ]
        assert sum(r[3] for r in rows) == pytest.approx(1.0)

    def test_orthogonalization_dominates_unpreconditioned_gmres(self, solver_pair):
        """Figure 4: orthogonalization is the bulk of unpreconditioned solve time."""
        _, double, _ = solver_pair
        b = breakdown_from_result(double)
        assert b.orthogonalization_fraction() > 0.5

    def test_empty_breakdown(self):
        b = breakdown_from_timer(KernelTimer("empty"))
        assert b.total_seconds == 0
        assert b.fraction("SpMV") == 0


class TestSpeedupTable:
    def test_table_rows_and_total(self, solver_pair):
        _, double, mixed = solver_pair
        table = speedup_table(double, mixed, baseline_name="double", comparison_name="ir")
        labels = [r.label for r in table.rows]
        assert "Total Time" in labels and "SpMV" in labels and "Total Orthogonalization" in labels
        assert table.total_speedup == pytest.approx(
            double.model_seconds / mixed.model_seconds, rel=1e-9
        )

    def test_spmv_speedup_largest(self, solver_pair):
        """The paper's key kernel-level finding: the SpMV gains the most."""
        _, double, mixed = solver_pair
        speedups = speedup_table(double, mixed).as_dict()
        assert speedups["SpMV"] >= speedups["GEMV (Trans)"]
        assert speedups["SpMV"] >= speedups["Norm"]

    def test_format_contains_all_rows(self, solver_pair):
        _, double, mixed = solver_pair
        text = speedup_table(double, mixed).format(scale=1e3, time_unit="ms")
        assert "SpMV" in text and "Total Time" in text and "ms" in text

    def test_missing_row_lookup(self, solver_pair):
        _, double, mixed = solver_pair
        table = speedup_table(double, mixed)
        with pytest.raises(KeyError):
            table.row("Nonexistent")

    def test_zero_comparison_gives_inf(self):
        from repro.analysis.speedup import SpeedupRow

        assert SpeedupRow("x", 1.0, 0.0).speedup == np.inf
        assert SpeedupRow("x", 0.0, 0.0).speedup == 1.0


class TestModelValidation:
    def test_compare_models_paper_scale(self):
        matrix = bentpipe2d(48)
        device = get_device("v100").scaled(matrix.n_rows / 1500 ** 2)
        comparison = compare_spmv_models(matrix, device)
        assert comparison.paper_formula_speedup == pytest.approx(2.27, abs=0.05)
        assert 1.8 < comparison.cost_model_speedup < 2.8
        assert comparison.reuse_fp32 > comparison.reuse_fp64
        row = comparison.as_row()
        assert row["matrix"] == matrix.name

    def test_cache_simulation_columns_optional(self):
        matrix = bentpipe2d(16)
        device = get_device("v100").scaled(0.001)
        without = compare_spmv_models(matrix, device, run_cache_simulation=False)
        assert without.simulated_hit_rate_fp32 is None
        with_sim = compare_spmv_models(
            matrix, device, run_cache_simulation=True, simulation_accesses=5_000
        )
        assert 0.0 <= with_sim.simulated_hit_rate_fp32 <= 1.0
        assert with_sim.simulated_hit_rate_fp32 >= with_sim.simulated_hit_rate_fp64 - 1e-9


class TestTableFormatting:
    def test_format_table_alignment_and_missing_cells(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10}]
        text = format_table(rows, ["a", "b"], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "empty" in format_table([], title=None) or format_table([]) == "(empty table)"

    def test_format_table_default_columns(self):
        text = format_table([{"x": 1.23456, "y": "z"}], float_format=".2f")
        assert "1.23" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1.5, "beta": "two"}, title="params")
        assert text.startswith("params")
        assert "alpha" in text and "two" in text

    def test_format_series(self):
        text = format_series([1, 2, 3], [0.1, 0.01, 0.001], x_label="it", y_label="res")
        assert "it" in text and "res" in text
        assert "0.001" in text
