"""Tests for repro.config."""

import pytest

from repro.config import ReproConfig, default_config, get_config, set_config


class TestDefaults:
    def test_paper_settings(self):
        cfg = default_config()
        assert cfg.rtol == 1e-10
        assert cfg.restart == 50
        assert cfg.device_name == "v100"
        assert cfg.meter_kernels is True

    def test_default_is_frozen(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.rtol = 1.0  # type: ignore[misc]


class TestSetConfig:
    def test_override_single_field(self):
        set_config(restart=25)
        assert get_config().restart == 25
        assert get_config().rtol == 1e-10

    def test_replace_whole_config(self):
        new = ReproConfig(rtol=1e-6, restart=10)
        set_config(new)
        assert get_config() is new

    def test_override_on_top_of_explicit_config(self):
        set_config(ReproConfig(restart=30), rtol=1e-8)
        assert get_config().restart == 30
        assert get_config().rtol == 1e-8

    def test_returns_active_config(self):
        out = set_config(seed=99)
        assert out is get_config()
        assert out.seed == 99

    def test_reset_between_tests_fixture_works(self):
        # The autouse fixture restores defaults; this test relies on the
        # previous tests having mutated the config.
        assert get_config().restart == 50
