"""Tests for repro.config."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import (
    ReproConfig,
    ServeConfig,
    default_config,
    get_config,
    rng,
    set_config,
)


class TestDefaults:
    def test_paper_settings(self):
        cfg = default_config()
        assert cfg.rtol == 1e-10
        assert cfg.restart == 50
        assert cfg.device_name == "v100"
        assert cfg.meter_kernels is True
        # The backend default honours REPRO_BACKEND, so only its shape is
        # asserted here (the env-var behaviour has its own tests below).
        assert cfg.backend == cfg.backend.strip().lower() != ""

    def test_default_is_frozen(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.rtol = 1.0  # type: ignore[misc]


class TestSetConfig:
    def test_override_single_field(self):
        set_config(restart=25)
        assert get_config().restart == 25
        assert get_config().rtol == 1e-10

    def test_replace_whole_config(self):
        new = ReproConfig(rtol=1e-6, restart=10)
        set_config(new)
        assert get_config() is new

    def test_override_on_top_of_explicit_config(self):
        set_config(ReproConfig(restart=30), rtol=1e-8)
        assert get_config().restart == 30
        assert get_config().rtol == 1e-8

    def test_returns_active_config(self):
        out = set_config(seed=99)
        assert out is get_config()
        assert out.seed == 99

    def test_reset_between_tests_fixture_works(self):
        # The autouse fixture restores defaults; this test relies on the
        # previous tests having mutated the config.
        assert get_config().restart == 50


class TestBackendSelection:
    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "SciPy")
        assert ReproConfig().backend == "scipy"  # normalised to lower case
        monkeypatch.delenv("REPRO_BACKEND")
        assert ReproConfig().backend == "numpy"

    def test_set_config_overrides_backend(self):
        set_config(backend="scipy")
        assert get_config().backend == "scipy"


class TestServeConfig:
    def test_defaults(self):
        serve = ReproConfig().serve
        assert serve == ServeConfig()
        assert serve.max_block == 8
        assert serve.policy == "auto"
        assert serve.max_sessions == 8
        assert serve.max_session_bytes is None
        assert serve.queue_depth == 64
        assert serve.fairness == "weighted"
        assert serve.workers == 2

    def test_is_frozen(self):
        with pytest.raises(Exception):
            ServeConfig().max_block = 2  # type: ignore[misc]

    def test_set_config_with_serve_bundle(self):
        set_config(serve=ServeConfig(max_block=4, fairness="fifo"))
        assert get_config().serve.max_block == 4
        assert get_config().serve.fairness == "fifo"
        # Untouched fields keep their defaults.
        assert get_config().serve.queue_depth == 64

    def test_replace_round_trips_canonical_fields(self):
        cfg = replace(ReproConfig(), serve=ServeConfig(workers=5))
        assert cfg.serve.workers == 5
        assert replace(cfg).serve == cfg.serve


class TestDeprecatedFlatServeFields:
    """The pre-ServeConfig flat spellings still work but warn (pinned)."""

    def test_constructor_keyword_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="serve_max_block"):
            cfg = ReproConfig(serve_max_block=3)
        assert cfg.serve.max_block == 3

    def test_read_property_warns(self):
        cfg = ReproConfig()
        with pytest.warns(DeprecationWarning, match="serve_policy"):
            assert cfg.serve_policy == cfg.serve.policy
        with pytest.warns(DeprecationWarning, match="serve_max_wait_ms"):
            assert cfg.serve_max_wait_ms == cfg.serve.max_wait_ms
        with pytest.warns(DeprecationWarning, match="serve_max_block"):
            assert cfg.serve_max_block == cfg.serve.max_block

    def test_set_config_override_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="serve_max_wait_ms"):
            set_config(serve_max_wait_ms=7.5)
        assert get_config().serve.max_wait_ms == 7.5

    def test_flat_override_composes_with_explicit_bundle(self):
        with pytest.warns(DeprecationWarning, match="serve_policy"):
            set_config(serve=ServeConfig(max_block=4), serve_policy="block")
        assert get_config().serve.max_block == 4
        assert get_config().serve.policy == "block"

    def test_unknown_keyword_still_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ReproConfig(serve_nonsense=1)

    def test_canonical_spellings_do_not_warn(self, recwarn):
        cfg = ReproConfig(serve=ServeConfig(max_block=2))
        assert cfg.serve.max_block == 2
        set_config(serve=ServeConfig(policy="sequential"))
        assert get_config().serve.policy == "sequential"
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations


class TestRngHelper:
    def test_default_seed_comes_from_config(self):
        a = rng().standard_normal(8)
        b = rng().standard_normal(8)
        np.testing.assert_array_equal(a, b)
        expected = np.random.default_rng(get_config().seed).standard_normal(8)
        np.testing.assert_array_equal(a, expected)

    def test_explicit_seed_wins(self):
        np.testing.assert_array_equal(
            rng(7).standard_normal(4), np.random.default_rng(7).standard_normal(4)
        )

    def test_tracks_config_seed(self):
        set_config(seed=99)
        np.testing.assert_array_equal(
            rng().standard_normal(4), np.random.default_rng(99).standard_normal(4)
        )
