"""Tests for repro.config."""

import numpy as np
import pytest

from repro.config import ReproConfig, default_config, get_config, rng, set_config


class TestDefaults:
    def test_paper_settings(self):
        cfg = default_config()
        assert cfg.rtol == 1e-10
        assert cfg.restart == 50
        assert cfg.device_name == "v100"
        assert cfg.meter_kernels is True
        # The backend default honours REPRO_BACKEND, so only its shape is
        # asserted here (the env-var behaviour has its own tests below).
        assert cfg.backend == cfg.backend.strip().lower() != ""

    def test_default_is_frozen(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.rtol = 1.0  # type: ignore[misc]


class TestSetConfig:
    def test_override_single_field(self):
        set_config(restart=25)
        assert get_config().restart == 25
        assert get_config().rtol == 1e-10

    def test_replace_whole_config(self):
        new = ReproConfig(rtol=1e-6, restart=10)
        set_config(new)
        assert get_config() is new

    def test_override_on_top_of_explicit_config(self):
        set_config(ReproConfig(restart=30), rtol=1e-8)
        assert get_config().restart == 30
        assert get_config().rtol == 1e-8

    def test_returns_active_config(self):
        out = set_config(seed=99)
        assert out is get_config()
        assert out.seed == 99

    def test_reset_between_tests_fixture_works(self):
        # The autouse fixture restores defaults; this test relies on the
        # previous tests having mutated the config.
        assert get_config().restart == 50


class TestBackendSelection:
    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "SciPy")
        assert ReproConfig().backend == "scipy"  # normalised to lower case
        monkeypatch.delenv("REPRO_BACKEND")
        assert ReproConfig().backend == "numpy"

    def test_set_config_overrides_backend(self):
        set_config(backend="scipy")
        assert get_config().backend == "scipy"


class TestRngHelper:
    def test_default_seed_comes_from_config(self):
        a = rng().standard_normal(8)
        b = rng().standard_normal(8)
        np.testing.assert_array_equal(a, b)
        expected = np.random.default_rng(get_config().seed).standard_normal(8)
        np.testing.assert_array_equal(a, expected)

    def test_explicit_seed_wins(self):
        np.testing.assert_array_equal(
            rng(7).standard_normal(4), np.random.default_rng(7).standard_normal(4)
        )

    def test_tracks_config_seed(self):
        set_config(seed=99)
        np.testing.assert_array_equal(
            rng().standard_normal(4), np.random.default_rng(99).standard_normal(4)
        )
