"""Tests for the host-side dense machinery (Givens QR, back substitution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.dense import (
    GivensWorkspace,
    back_substitute,
    givens_rotation,
    hessenberg_lstsq,
)


class TestGivensRotation:
    def test_annihilates_second_entry(self):
        c, s = givens_rotation(3.0, 4.0)
        rotated = np.array([[c, -s], [s, c]]) @ np.array([3.0, 4.0])
        assert rotated[1] == pytest.approx(0.0, abs=1e-14)
        assert abs(rotated[0]) == pytest.approx(5.0)

    def test_unit_norm(self):
        c, s = givens_rotation(-2.0, 7.0)
        assert c * c + s * s == pytest.approx(1.0)

    def test_zero_b(self):
        assert givens_rotation(5.0, 0.0) == (1.0, 0.0)

    def test_fp32_dtype_arithmetic(self):
        c, s = givens_rotation(1.0, 1e-3, dtype=np.float32)
        assert c * c + s * s == pytest.approx(1.0, rel=1e-6)

    @given(a=st.floats(-1e6, 1e6), b=st.floats(-1e6, 1e6))
    @settings(max_examples=100)
    def test_property_rotation(self, a, b):
        if a == 0 and b == 0:
            return
        c, s = givens_rotation(a, b)
        assert c * c + s * s == pytest.approx(1.0, rel=1e-9)
        assert s * a + c * b == pytest.approx(0.0, abs=1e-6 * (abs(a) + abs(b)))


class TestBackSubstitute:
    def test_matches_solve(self, rng):
        R = np.triu(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        b = rng.standard_normal(6)
        np.testing.assert_allclose(back_substitute(R, b), np.linalg.solve(R, b), rtol=1e-10)

    def test_singular_raises(self):
        R = np.array([[1.0, 2.0], [0.0, 0.0]])
        with pytest.raises(ZeroDivisionError):
            back_substitute(R, np.ones(2))

    def test_shape_check(self):
        with pytest.raises(ValueError):
            back_substitute(np.ones((2, 3)), np.ones(2))

    def test_preserves_fp32(self, rng):
        R = (np.triu(rng.standard_normal((4, 4))) + 4 * np.eye(4)).astype(np.float32)
        y = back_substitute(R, np.ones(4, dtype=np.float32))
        assert y.dtype == np.float32


class TestHessenbergLstsq:
    def test_consistent_system_zero_residual(self, rng):
        H = np.zeros((4, 3))
        H[:3, :3] = np.triu(rng.standard_normal((3, 3))) + 3 * np.eye(3)
        beta = 2.0
        y, res = hessenberg_lstsq(H, beta)
        assert res == pytest.approx(0.0, abs=1e-10)

    def test_residual_matches_direct_computation(self, rng):
        H = rng.standard_normal((5, 4))
        beta = 1.5
        y, res = hessenberg_lstsq(H, beta)
        rhs = np.zeros(5)
        rhs[0] = beta
        assert res == pytest.approx(np.linalg.norm(rhs - H @ y), rel=1e-10)


class TestGivensWorkspace:
    def _random_hessenberg(self, rng, m):
        H = np.zeros((m + 1, m))
        for j in range(m):
            H[: j + 2, j] = rng.standard_normal(j + 2)
            H[j + 1, j] = abs(H[j + 1, j]) + 0.5
        return H

    def test_incremental_qr_matches_lstsq(self, rng):
        m = 8
        H = self._random_hessenberg(rng, m)
        beta = 3.7
        ws = GivensWorkspace(m)
        ws.reset(beta)
        implicit = None
        for j in range(m):
            implicit = ws.append_column(H[: j + 1, j], H[j + 1, j])
        y_ref, res_ref = hessenberg_lstsq(H, beta)
        y = ws.solve()
        np.testing.assert_allclose(y, y_ref, rtol=1e-8)
        assert implicit == pytest.approx(res_ref, rel=1e-8)

    def test_implicit_residual_monotonically_nonincreasing(self, rng):
        m = 10
        H = self._random_hessenberg(rng, m)
        ws = GivensWorkspace(m)
        ws.reset(1.0)
        norms = [ws.append_column(H[: j + 1, j], H[j + 1, j]) for j in range(m)]
        assert all(b <= a + 1e-12 for a, b in zip(norms, norms[1:]))

    def test_partial_solve_mid_cycle(self, rng):
        m = 6
        H = self._random_hessenberg(rng, m)
        beta = 1.0
        ws = GivensWorkspace(m)
        ws.reset(beta)
        for j in range(3):
            ws.append_column(H[: j + 1, j], H[j + 1, j])
        y = ws.solve()
        y_ref, _ = hessenberg_lstsq(H[:4, :3], beta)
        np.testing.assert_allclose(y, y_ref, rtol=1e-8)

    def test_reset_clears_state(self, rng):
        ws = GivensWorkspace(4)
        ws.reset(2.0)
        ws.append_column(np.array([1.0]), 0.5)
        ws.reset(1.0)
        assert ws.size == 0
        assert ws.implicit_residual_norm == pytest.approx(1.0)

    def test_overflow_raises(self):
        ws = GivensWorkspace(1)
        ws.reset(1.0)
        ws.append_column(np.array([1.0]), 0.1)
        with pytest.raises(RuntimeError):
            ws.append_column(np.array([1.0, 2.0]), 0.1)

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            GivensWorkspace(0)

    def test_fp32_workspace_stays_fp32(self, rng):
        ws = GivensWorkspace(3, dtype=np.float32)
        ws.reset(1.0)
        ws.append_column(np.array([1.0], dtype=np.float32), 0.5)
        assert ws.R.dtype == np.float32
        assert ws.solve().dtype == np.float32

    @given(m=st.integers(min_value=1, max_value=12), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_lstsq_oracle(self, m, seed):
        rng = np.random.default_rng(seed)
        H = self._random_hessenberg(rng, m)
        beta = float(abs(rng.standard_normal()) + 0.1)
        ws = GivensWorkspace(m)
        ws.reset(beta)
        for j in range(m):
            ws.append_column(H[: j + 1, j], H[j + 1, j])
        y_ref, res_ref = hessenberg_lstsq(H, beta)
        np.testing.assert_allclose(ws.solve(), y_ref, rtol=1e-6, atol=1e-9)
        assert ws.implicit_residual_norm == pytest.approx(res_ref, rel=1e-6, abs=1e-10)
