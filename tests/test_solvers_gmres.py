"""Tests for restarted GMRES (Algorithm 1 of the paper)."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import ones_rhs
from repro.perfmodel.timer import KernelTimer, use_timer
from repro.preconditioners import GmresPolynomialPreconditioner, JacobiPreconditioner
from repro.solvers import SolverStatus, gmres
from repro.solvers.gmres import GmresWorkspace, run_gmres_cycle
from repro.ortho import make_ortho_manager
from repro.preconditioners.base import IdentityPreconditioner


def direct_solution(matrix, b):
    return spla.spsolve(matrix.to_scipy().tocsc(), b)


class TestConvergence:
    def test_spd_problem_converges_to_tolerance(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = gmres(laplace_small, b, restart=20, tol=1e-10)
        assert result.converged
        assert result.status == SolverStatus.CONVERGED
        assert result.relative_residual <= 1e-10
        np.testing.assert_allclose(result.x, direct_solution(laplace_small, b), rtol=1e-7)

    def test_nonsymmetric_problem(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        result = gmres(bentpipe_small, b, restart=25, tol=1e-9, max_restarts=200)
        assert result.converged
        np.testing.assert_allclose(result.x, direct_solution(bentpipe_small, b), rtol=1e-5)

    def test_random_diagonally_dominant(self, random_sparse, rng):
        b = rng.standard_normal(random_sparse.n_rows)
        result = gmres(random_sparse, b, restart=30, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, direct_solution(random_sparse, b), rtol=1e-8)

    def test_residual_reported_matches_recomputed(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = gmres(laplace_small, b, restart=20, tol=1e-10)
        explicit = np.linalg.norm(b - laplace_small.matvec(result.x)) / np.linalg.norm(b)
        assert result.relative_residual == pytest.approx(explicit, rel=1e-6)
        assert result.relative_residual_fp64 == pytest.approx(explicit, rel=1e-6)

    def test_initial_guess_used(self, laplace_small):
        b = ones_rhs(laplace_small)
        x_exact = direct_solution(laplace_small, b)
        result = gmres(laplace_small, b, x0=x_exact, restart=20, tol=1e-10)
        assert result.converged
        assert result.iterations == 0

    def test_zero_rhs_returns_zero(self, laplace_small):
        result = gmres(laplace_small, np.zeros(laplace_small.n_rows))
        assert result.converged
        np.testing.assert_allclose(result.x, 0.0)
        assert result.iterations == 0

    def test_tight_vs_loose_tolerance(self, laplace_small):
        b = ones_rhs(laplace_small)
        loose = gmres(laplace_small, b, restart=20, tol=1e-4)
        tight = gmres(laplace_small, b, restart=20, tol=1e-12)
        assert loose.iterations < tight.iterations
        assert loose.relative_residual <= 1e-4

    def test_unrestarted_matches_scipy_iteration_count_roughly(self, laplace_small):
        """Full GMRES (restart >= n) should converge in about as many
        iterations as scipy's gmres with the same setup."""
        b = ones_rhs(laplace_small)
        ours = gmres(laplace_small, b, restart=100, tol=1e-10)
        count = [0]

        def cb(_):
            count[0] += 1

        spla.gmres(
            laplace_small.to_scipy(), b, rtol=1e-10, restart=100, callback=cb,
            callback_type="pr_norm", maxiter=10,
        )
        assert abs(ours.iterations - count[0]) <= 10


class TestRestartBehaviour:
    def test_smaller_restart_needs_more_iterations(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        small = gmres(bentpipe_small, b, restart=10, tol=1e-8, max_restarts=400)
        large = gmres(bentpipe_small, b, restart=60, tol=1e-8, max_restarts=400)
        assert small.converged and large.converged
        assert small.iterations >= large.iterations
        assert small.restarts > large.restarts

    def test_restart_cap_respected(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = gmres(laplace_small, b, restart=5, tol=1e-14, max_restarts=2)
        assert result.restarts <= 2
        assert result.status in (SolverStatus.MAX_ITERATIONS, SolverStatus.CONVERGED)

    def test_max_iterations_cap(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        result = gmres(bentpipe_small, b, restart=20, tol=1e-12, max_iterations=37)
        assert result.iterations <= 40  # rounded up to the cycle boundary
        assert result.status == SolverStatus.MAX_ITERATIONS

    def test_details_record_configuration(self, laplace_small):
        result = gmres(laplace_small, ones_rhs(laplace_small), restart=17, tol=1e-8)
        assert result.details["restart"] == 17
        assert result.details["orthogonalization"] == "cgs2"
        assert result.details["preconditioner"] == "identity"
        assert result.details["basis_bytes"] == laplace_small.n_rows * 18 * 8


class TestPrecision:
    def test_fp32_solver_stagnates_above_fp64_tolerance(self, bentpipe_small):
        """The paper's central observation about single precision GMRES."""
        b = ones_rhs(bentpipe_small)
        result = gmres(
            bentpipe_small, b, precision="single", restart=25, tol=1e-10, max_restarts=100
        )
        assert not result.converged
        assert result.status == SolverStatus.MAX_ITERATIONS
        assert 1e-8 < result.relative_residual_fp64 < 1e-3

    def test_fp32_solver_reaches_fp32_level_tolerance(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = gmres(laplace_small, b, precision="single", restart=20, tol=1e-5)
        assert result.converged
        assert result.x.dtype == np.float32

    def test_precision_defaults_to_matrix_dtype(self, laplace_small):
        result = gmres(laplace_small.astype("single"), ones_rhs(laplace_small), tol=1e-4,
                       restart=20)
        assert result.precision == "single"

    def test_solution_dtype_matches_precision(self, laplace_small):
        result = gmres(laplace_small, ones_rhs(laplace_small), precision="double",
                       restart=20, tol=1e-8)
        assert result.x.dtype == np.float64


class TestPreconditionedGmres:
    def test_right_preconditioning_preserves_solution(self, stretched_small):
        b = ones_rhs(stretched_small)
        M = GmresPolynomialPreconditioner(stretched_small, degree=6)
        result = gmres(stretched_small, b, restart=20, tol=1e-10, preconditioner=M)
        assert result.converged
        np.testing.assert_allclose(result.x, direct_solution(stretched_small, b), rtol=1e-6)

    def test_mixed_precision_preconditioner_wrapped_automatically(self, laplace_small):
        # fp32 preconditioner inside fp64 GMRES: converges to fp32-limited
        # tolerances (the paper's configuration (a); pushing to 1e-10 on a
        # single cycle is exactly what Section V-F warns about).
        b = ones_rhs(laplace_small)
        M32 = JacobiPreconditioner(laplace_small, precision="single")
        result = gmres(laplace_small, b, restart=20, tol=1e-6, preconditioner=M32)
        assert result.converged
        assert "jacobi" in result.details["preconditioner"]

    def test_preconditioner_kernel_time_recorded(self, laplace_small):
        b = ones_rhs(laplace_small)
        M = JacobiPreconditioner(laplace_small)
        result = gmres(laplace_small, b, restart=20, tol=1e-8, preconditioner=M)
        assert result.timer.model_seconds_for("Precond") > 0


class TestOrthogonalizationChoices:
    @pytest.mark.parametrize("ortho", ["cgs", "cgs2", "mgs"])
    def test_all_orthos_converge(self, laplace_small, ortho):
        b = ones_rhs(laplace_small)
        result = gmres(laplace_small, b, restart=20, tol=1e-10, ortho=ortho)
        assert result.converged
        assert result.details["orthogonalization"] == ortho if ortho != "cgs1" else "cgs"

    def test_ortho_manager_instance_accepted(self, laplace_small):
        result = gmres(
            laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8,
            ortho=make_ortho_manager("mgs"),
        )
        assert result.converged

    def test_cgs2_fewer_kernel_calls_than_mgs(self, laplace_small):
        b = ones_rhs(laplace_small)
        r_cgs2 = gmres(laplace_small, b, restart=20, tol=1e-8, ortho="cgs2")
        r_mgs = gmres(laplace_small, b, restart=20, tol=1e-8, ortho="mgs")
        assert r_cgs2.timer.total_calls() < r_mgs.timer.total_calls()


class TestHistoriesAndTimers:
    def test_history_has_implicit_and_explicit_series(self, laplace_small):
        result = gmres(laplace_small, ones_rhs(laplace_small), restart=10, tol=1e-10)
        assert len(result.history.implicit_norms) == result.iterations
        assert len(result.history.explicit_norms) == result.restarts + 1
        assert result.history.implicit_series().shape[1] == 2

    def test_implicit_norms_decrease_within_cycle(self, laplace_small):
        result = gmres(laplace_small, ones_rhs(laplace_small), restart=50, tol=1e-10)
        norms = result.history.implicit_norms[:result.details["restart"]]
        assert all(b <= a * (1 + 1e-12) for a, b in zip(norms, norms[1:]))

    def test_external_timer_receives_records(self, laplace_small):
        timer = KernelTimer("external")
        result = gmres(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8, timer=timer)
        assert result.timer is timer
        assert timer.model_seconds_for("SpMV") > 0

    def test_enclosing_timer_sees_solver_kernels(self, laplace_small):
        with use_timer(name="outer") as outer:
            gmres(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8)
        assert outer.model_seconds_for("SpMV") > 0

    def test_kernel_breakdown_covers_expected_labels(self, laplace_small):
        result = gmres(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8)
        breakdown = result.kernel_breakdown()
        for label in ("SpMV", "GEMV (Trans)", "GEMV (No Trans)", "Norm", "Other"):
            assert breakdown.get(label, 0) > 0

    def test_summary_text(self, laplace_small):
        result = gmres(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8)
        text = result.summary()
        assert "gmres" in text and "converged" in text


class TestErrorsAndEdgeCases:
    def test_wrong_rhs_length(self, laplace_small):
        with pytest.raises(ValueError):
            gmres(laplace_small, np.ones(3))

    def test_defaults_come_from_config(self, laplace_small):
        from repro.config import set_config

        set_config(restart=7, rtol=1e-6)
        result = gmres(laplace_small, ones_rhs(laplace_small))
        assert result.details["restart"] == 7
        assert result.details["tolerance"] == 1e-6


class TestRunGmresCycle:
    def test_cycle_respects_max_steps(self, laplace_small):
        ws = GmresWorkspace(laplace_small.n_rows, 20, "double")
        r = ones_rhs(laplace_small)
        outcome = run_gmres_cycle(
            laplace_small, r, float(np.linalg.norm(r)), ws,
            ortho=make_ortho_manager("cgs2"),
            preconditioner=IdentityPreconditioner(),
            max_steps=4,
        )
        assert outcome.iterations == 4
        assert len(outcome.implicit_norms) == 4

    def test_cycle_precision_mismatch_raises(self, laplace_small):
        ws = GmresWorkspace(laplace_small.n_rows, 5, "single")
        r = ones_rhs(laplace_small)
        with pytest.raises(TypeError):
            run_gmres_cycle(
                laplace_small, r, 1.0, ws,
                ortho=make_ortho_manager("cgs2"),
                preconditioner=IdentityPreconditioner(precision="single"),
            )

    def test_zero_residual_cycle(self, laplace_small):
        ws = GmresWorkspace(laplace_small.n_rows, 5, "double")
        outcome = run_gmres_cycle(
            laplace_small, np.zeros(laplace_small.n_rows), 0.0, ws,
            ortho=make_ortho_manager("cgs2"),
            preconditioner=IdentityPreconditioner(),
        )
        assert outcome.iterations == 0
        np.testing.assert_allclose(outcome.update, 0.0)

    def test_cycle_update_reduces_residual(self, laplace_small):
        ws = GmresWorkspace(laplace_small.n_rows, 15, "double")
        b = ones_rhs(laplace_small)
        outcome = run_gmres_cycle(
            laplace_small, b, float(np.linalg.norm(b)), ws,
            ortho=make_ortho_manager("cgs2"),
            preconditioner=IdentityPreconditioner(),
        )
        new_residual = np.linalg.norm(b - laplace_small.matvec(outcome.update))
        assert new_residual < 0.5 * np.linalg.norm(b)
        assert new_residual == pytest.approx(outcome.final_implicit_norm, rel=1e-6)
