"""Tests for the kernel timer and the active-timer stack."""

import pytest

from repro.perfmodel.costs import CostEstimate
from repro.perfmodel.timer import (
    ORTHO_LABELS,
    KernelRecord,
    KernelTimer,
    active_timer,
    active_timers,
    canonical_label,
    pop_timer,
    push_timer,
    use_timer,
)


def cost(seconds=1.0, nbytes=8.0, flops=2.0):
    return CostEstimate(seconds=seconds, bytes=nbytes, flops=flops)


class TestCanonicalLabels:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("spmv", "SpMV"),
            ("SpMV", "SpMV"),
            ("gemv_t", "GEMV (Trans)"),
            ("GEMV (Trans)", "GEMV (Trans)"),
            ("gemv_n", "GEMV (No Trans)"),
            ("norm", "Norm"),
            ("dot", "Norm"),
            ("axpy", "Other"),
            ("cast", "Other"),
            ("Residual", "Other"),
            ("precond", "Precond"),
            ("Matrix copy", "Matrix copy"),
        ],
    )
    def test_mapping(self, raw, expected):
        assert canonical_label(raw) == expected

    def test_ortho_labels_match_paper(self):
        assert ORTHO_LABELS == ("GEMV (Trans)", "Norm", "GEMV (No Trans)")


class TestKernelRecord:
    def test_add(self):
        rec = KernelRecord(label="SpMV", precision="double")
        rec.add(cost(2.0, 16.0, 4.0), wall_seconds=0.5)
        rec.add(cost(1.0, 8.0, 2.0), wall_seconds=0.25)
        assert rec.calls == 2
        assert rec.model_seconds == 3.0
        assert rec.wall_seconds == 0.75
        assert rec.bytes == 24.0

    def test_merge_requires_same_label(self):
        a = KernelRecord("SpMV", "double", calls=1, model_seconds=1.0)
        b = KernelRecord("Norm", "double")
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_mixes_precisions(self):
        a = KernelRecord("SpMV", "double", calls=1, model_seconds=1.0)
        b = KernelRecord("SpMV", "single", calls=2, model_seconds=0.5)
        merged = a.merged_with(b)
        assert merged.calls == 3
        assert merged.precision == "mixed"


class TestKernelTimer:
    def test_record_and_totals(self):
        t = KernelTimer("t")
        t.record("spmv", "double", cost(1.0))
        t.record("spmv", "single", cost(0.5))
        t.record("gemv_t", "double", cost(2.0), wall_seconds=0.1)
        assert t.total_model_seconds() == pytest.approx(3.5)
        assert t.total_calls() == 3
        assert t.total_wall_seconds() == pytest.approx(0.1)
        assert set(t.labels()) == {"SpMV", "GEMV (Trans)"}

    def test_seconds_by_label_merges_precisions(self):
        t = KernelTimer("t")
        t.record("spmv", "double", cost(1.0))
        t.record("spmv", "single", cost(0.5))
        assert t.model_seconds_by_label()["SpMV"] == pytest.approx(1.5)

    def test_model_seconds_for_label_and_precision(self):
        t = KernelTimer("t")
        t.record("norm", "double", cost(1.0))
        t.record("norm", "single", cost(0.25))
        assert t.model_seconds_for("Norm") == pytest.approx(1.25)
        assert t.model_seconds_for("Norm", "single") == pytest.approx(0.25)

    def test_orthogonalization_seconds(self):
        t = KernelTimer("t")
        t.record("gemv_t", "double", cost(1.0))
        t.record("gemv_n", "double", cost(2.0))
        t.record("norm", "double", cost(0.5))
        t.record("spmv", "double", cost(10.0))
        assert t.orthogonalization_seconds() == pytest.approx(3.5)

    def test_merge_from(self):
        a, b = KernelTimer("a"), KernelTimer("b")
        a.record("spmv", "double", cost(1.0))
        b.record("spmv", "double", cost(2.0))
        b.record("norm", "single", cost(0.5))
        a.merge_from(b)
        assert a.total_model_seconds() == pytest.approx(3.5)
        assert a.model_seconds_for("SpMV") == pytest.approx(3.0)

    def test_reset(self):
        t = KernelTimer("t")
        t.record("spmv", "double", cost(1.0))
        t.reset()
        assert t.total_model_seconds() == 0.0
        assert t.records == []

    def test_summary_contains_labels(self):
        t = KernelTimer("solver")
        t.record("spmv", "double", cost(1.0))
        text = t.summary()
        assert "solver" in text and "SpMV" in text

    def test_wall_clock_context(self):
        t = KernelTimer("t")
        with t.wall_clock() as out:
            sum(range(1000))
        assert out[0] >= 0.0


class TestTimerStack:
    def test_push_pop(self):
        assert active_timer() is None
        t = KernelTimer("outer")
        push_timer(t)
        assert active_timer() is t
        assert pop_timer() is t
        assert active_timer() is None

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            pop_timer()

    def test_use_timer_creates_and_restores(self):
        with use_timer(name="auto") as t:
            assert active_timer() is t
        assert active_timer() is None

    def test_nested_timers_both_visible(self):
        with use_timer(name="outer") as outer:
            with use_timer(name="inner") as inner:
                stack = active_timers()
                assert stack == [outer, inner]
        assert active_timers() == []
