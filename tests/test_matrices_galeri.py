"""Tests for the Galeri-style PDE problem generators."""

import numpy as np
import pytest

from repro.matrices import (
    bentpipe2d,
    convection_diffusion_2d,
    laplace2d,
    laplace3d,
    stretched2d,
    uniflow2d,
)
from repro.sparse import (
    avg_nonzeros_per_row,
    diagonal_dominance_ratio,
    is_numerically_symmetric,
    is_structurally_symmetric,
)
from tests.conftest import dense


class TestLaplacians:
    def test_laplace2d_dimensions_and_stencil(self):
        A = laplace2d(8)
        assert A.shape == (64, 64)
        assert A.name == "Laplace2D8"
        diag = A.diagonal()
        np.testing.assert_allclose(diag, 4.0)
        assert avg_nonzeros_per_row(A) < 5.0 <= A.nnz_per_row().max()

    def test_laplace2d_spd(self):
        A = laplace2d(8)
        assert is_numerically_symmetric(A)
        eigvals = np.linalg.eigvalsh(dense(A))
        assert eigvals.min() > 0

    def test_laplace2d_rectangular(self):
        A = laplace2d(4, 6)
        assert A.shape == (24, 24)

    def test_laplace3d_dimensions(self):
        A = laplace3d(5)
        assert A.shape == (125, 125)
        np.testing.assert_allclose(A.diagonal(), 6.0)
        assert is_numerically_symmetric(A)

    def test_laplace3d_positive_definite(self):
        A = laplace3d(4)
        assert np.linalg.eigvalsh(dense(A)).min() > 0

    def test_laplace3d_bandwidth(self):
        A = laplace3d(6)
        assert A.bandwidth() == 36  # nx*ny for the z-coupling

    def test_known_eigenvalue_of_laplace2d(self):
        """Smallest eigenvalue of the (4,-1) 2D Laplacian is 8 sin^2(pi h / 2)."""
        n = 10
        A = laplace2d(n)
        h = 1.0 / (n + 1)
        expected = 8 * np.sin(np.pi * h / 2) ** 2
        eig_min = np.linalg.eigvalsh(dense(A)).min()
        assert eig_min == pytest.approx(expected, rel=1e-10)


class TestConvectionDiffusion:
    def test_zero_velocity_reduces_to_laplacian(self):
        A = convection_diffusion_2d(8, velocity=(0.0, 0.0))
        np.testing.assert_allclose(dense(A), dense(laplace2d(8)))

    def test_nonsymmetric_with_velocity(self):
        A = convection_diffusion_2d(8, velocity=(10.0, 0.0))
        assert is_structurally_symmetric(A)
        assert not is_numerically_symmetric(A)

    def test_central_coefficients(self):
        nx = 8
        h = 1.0 / (nx + 1)
        vx = 3.0
        A = convection_diffusion_2d(nx, epsilon=1.0, velocity=(vx, 0.0), scheme="central")
        D = dense(A)
        # East coupling of an interior node: -eps + vx*h/2.
        interior = nx * (nx // 2) + nx // 2
        assert D[interior, interior + 1] == pytest.approx(-1.0 + vx * h / 2)
        assert D[interior, interior - 1] == pytest.approx(-1.0 - vx * h / 2)

    def test_upwind_is_diagonally_dominant(self):
        A = convection_diffusion_2d(10, epsilon=0.01, velocity=(50.0, 30.0), scheme="upwind")
        assert diagonal_dominance_ratio(A) >= 0.999

    def test_central_high_peclet_not_dominant(self):
        A = convection_diffusion_2d(10, epsilon=0.01, velocity=(50.0, 30.0), scheme="central")
        assert diagonal_dominance_ratio(A) < 1.0

    def test_callable_velocity_field(self):
        def field(x, y):
            return 10 * y, -10 * x

        A = convection_diffusion_2d(8, velocity=field)
        assert not is_numerically_symmetric(A)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            convection_diffusion_2d(8, scheme="quick")


class TestNamedProblems:
    def test_uniflow_properties(self):
        A = uniflow2d(16)
        assert A.name == "UniFlow2D16"
        assert A.shape == (256, 256)
        assert not is_numerically_symmetric(A)

    def test_bentpipe_properties(self):
        A = bentpipe2d(16)
        assert A.name == "BentPipe2D16"
        assert not is_numerically_symmetric(A)
        # Convection-dominated: central differencing loses diagonal dominance.
        assert diagonal_dominance_ratio(A) < 1.0

    def test_bentpipe_harder_than_uniflow(self):
        """The paper orders the 2D problems by difficulty: BentPipe >> UniFlow."""
        from repro.solvers import gmres
        from repro import ones_rhs

        bp = bentpipe2d(24)
        uf = uniflow2d(24)
        r_bp = gmres(bp, ones_rhs(bp), restart=20, tol=1e-8, max_restarts=200)
        r_uf = gmres(uf, ones_rhs(uf), restart=20, tol=1e-8, max_restarts=200)
        assert r_bp.iterations > r_uf.iterations

    def test_stretched_properties(self):
        A = stretched2d(16, stretch=16)
        assert is_numerically_symmetric(A)
        eigvals = np.linalg.eigvalsh(dense(A))
        assert eigvals.min() > 0
        # Higher stretch worsens conditioning relative to the isotropic case.
        iso = np.linalg.eigvalsh(dense(laplace2d(16)))
        assert (eigvals.max() / eigvals.min()) > (iso.max() / iso.min())

    def test_stretched_invalid_factor(self):
        with pytest.raises(ValueError):
            stretched2d(8, stretch=0.0)

    def test_custom_names(self):
        assert bentpipe2d(8, name="custom").name == "custom"
        assert stretched2d(8, name="s").name == "s"
        assert laplace3d(4, name="l3").name == "l3"

    @pytest.mark.parametrize("builder", [laplace2d, uniflow2d, bentpipe2d, stretched2d])
    def test_row_count_scales_with_grid(self, builder):
        assert builder(12).n_rows == 144
        assert builder(6).n_rows == 36
