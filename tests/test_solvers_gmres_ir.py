"""Tests for GMRES-IR (Algorithm 2 of the paper)."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import ones_rhs
from repro.preconditioners import GmresPolynomialPreconditioner, JacobiPreconditioner
from repro.solvers import SolverStatus, gmres, gmres_ir


class TestConvergence:
    def test_reaches_double_precision_accuracy(self, laplace_small):
        """The headline property: fp32 inner cycles, fp64-level final accuracy."""
        b = ones_rhs(laplace_small)
        result = gmres_ir(laplace_small, b, restart=20, tol=1e-10)
        assert result.converged
        assert result.relative_residual_fp64 <= 1e-10
        x_ref = spla.spsolve(laplace_small.to_scipy().tocsc(), b)
        np.testing.assert_allclose(result.x, x_ref, rtol=1e-7)
        assert result.x.dtype == np.float64

    def test_beats_pure_fp32_accuracy(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        fp32 = gmres(bentpipe_small, b, precision="single", restart=25, tol=1e-10, max_restarts=60)
        ir = gmres_ir(bentpipe_small, b, restart=25, tol=1e-10, max_restarts=200)
        assert ir.converged
        assert ir.relative_residual_fp64 < 1e-10 < fp32.relative_residual_fp64

    def test_iteration_count_close_to_double(self, bentpipe_small):
        """Convergence of GMRES-IR follows double-precision GMRES closely
        (Figure 3); it may take up to m-1 extra iterations per the paper."""
        b = ones_rhs(bentpipe_small)
        m = 25
        double = gmres(bentpipe_small, b, precision="double", restart=m, tol=1e-9, max_restarts=300)
        ir = gmres_ir(bentpipe_small, b, restart=m, tol=1e-9, max_restarts=300)
        assert ir.converged and double.converged
        assert ir.iterations <= double.iterations + 2 * m
        assert ir.iterations % m == 0  # inner cycles always run full length

    def test_iterations_are_multiples_of_restart(self, laplace_small):
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=15, tol=1e-10)
        assert result.iterations % 15 == 0
        assert result.restarts == result.iterations // 15

    def test_zero_rhs(self, laplace_small):
        result = gmres_ir(laplace_small, np.zeros(laplace_small.n_rows))
        assert result.converged and result.iterations == 0

    def test_initial_guess(self, laplace_small):
        b = ones_rhs(laplace_small)
        x_ref = spla.spsolve(laplace_small.to_scipy().tocsc(), b)
        result = gmres_ir(laplace_small, b, x0=x_ref, restart=20, tol=1e-10)
        assert result.converged and result.iterations == 0

    def test_max_iterations_respected(self, bentpipe_small):
        result = gmres_ir(bentpipe_small, ones_rhs(bentpipe_small), restart=20,
                          tol=1e-12, max_iterations=45)
        assert result.iterations <= 60
        assert result.status == SolverStatus.MAX_ITERATIONS


class TestPrecisionConfigurations:
    def test_inner_precision_recorded(self, laplace_small):
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8)
        assert result.precision == "single/double"
        assert result.solver == "gmres-ir"

    def test_half_inner_precision_runs(self, laplace_small):
        result = gmres_ir(
            laplace_small, ones_rhs(laplace_small),
            inner_precision="half", restart=20, tol=1e-6, max_restarts=100,
        )
        # Unscaled fp16 inner cycles are very weak (this is exactly why the
        # three-precision solver normalises the residual before the fp16
        # solve); refinement still makes clear progress from the O(1) start.
        assert np.all(np.isfinite(result.x))
        assert result.relative_residual_fp64 < 5e-2

    def test_inner_wider_than_outer_rejected(self, laplace_small):
        with pytest.raises(ValueError):
            gmres_ir(laplace_small, ones_rhs(laplace_small),
                     inner_precision="double", outer_precision="single")

    def test_same_precision_ir_reduces_to_restarted_refinement(self, laplace_small):
        result = gmres_ir(
            laplace_small, ones_rhs(laplace_small),
            inner_precision="double", outer_precision="double", restart=20, tol=1e-10,
        )
        assert result.converged


class TestKernelAccounting:
    def test_fp32_and_fp64_kernels_recorded(self, bentpipe_small):
        result = gmres_ir(bentpipe_small, ones_rhs(bentpipe_small), restart=20,
                          tol=1e-8, max_restarts=100)
        timer = result.timer
        assert timer.model_seconds_for("SpMV", "single") > 0
        # The fp64 residual SpMVs are booked under "Other" (paper convention).
        assert timer.model_seconds_for("SpMV", "double") == 0
        assert timer.model_seconds_for("Other", "double") > 0

    def test_cast_overhead_included(self, laplace_small):
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8)
        other_calls = result.timer.calls_by_label()["Other"]
        # At least two casts per refinement (residual down, correction up).
        assert other_calls >= 2 * result.restarts

    def test_matrix_copies_tracked_in_details(self, laplace_small):
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=20, tol=1e-8)
        assert result.details["inner_matrix_bytes"] < result.details["outer_matrix_bytes"]

    def test_modelled_speedup_over_double_on_nontrivial_problem(self, bentpipe_small):
        """On the dimensionally scaled device (the experiments' setting) the
        fp32 inner iterations are cheaper per iteration, so GMRES-IR's
        modelled per-iteration cost beats double's."""
        from repro.linalg import use_device
        from repro.perfmodel import get_device

        b = ones_rhs(bentpipe_small)
        device = get_device("v100").scaled(bentpipe_small.n_rows / 1500 ** 2)
        with use_device(device):
            double = gmres(bentpipe_small, b, precision="double", restart=25, tol=1e-8,
                           max_restarts=300)
            ir = gmres_ir(bentpipe_small, b, restart=25, tol=1e-8, max_restarts=300)
        per_iter_double = double.model_seconds / double.iterations
        per_iter_ir = ir.model_seconds / ir.iterations
        assert per_iter_ir < per_iter_double


class TestPreconditionedIR:
    def test_fp32_polynomial_preconditioner(self, stretched_small):
        b = ones_rhs(stretched_small)
        M32 = GmresPolynomialPreconditioner(stretched_small, degree=6, precision="single")
        result = gmres_ir(stretched_small, b, restart=20, tol=1e-10, preconditioner=M32)
        assert result.converged
        assert result.relative_residual_fp64 <= 1e-10

    def test_fp64_preconditioner_wrapped_down(self, laplace_small):
        M64 = JacobiPreconditioner(laplace_small, precision="double")
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=20,
                          tol=1e-8, preconditioner=M64)
        assert result.converged

    def test_preconditioner_reduces_iterations(self, stretched_small):
        b = ones_rhs(stretched_small)
        plain = gmres_ir(stretched_small, b, restart=20, tol=1e-8, max_restarts=200)
        M32 = GmresPolynomialPreconditioner(stretched_small, degree=6, precision="single")
        precond = gmres_ir(stretched_small, b, restart=20, tol=1e-8,
                           max_restarts=200, preconditioner=M32)
        assert precond.iterations < plain.iterations


class TestRefinementFrequency:
    def test_refine_every_two_cycles(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        every1 = gmres_ir(bentpipe_small, b, restart=20, tol=1e-8, refine_every=1,
                          max_restarts=300)
        every2 = gmres_ir(bentpipe_small, b, restart=20, tol=1e-8, refine_every=2,
                          max_restarts=300)
        assert every1.converged and every2.converged
        # Fewer refinements when refining less often.
        assert every2.restarts <= every1.restarts

    def test_invalid_refine_every(self, laplace_small):
        with pytest.raises(ValueError):
            gmres_ir(laplace_small, ones_rhs(laplace_small), refine_every=0)


class TestHistory:
    def test_explicit_history_records_fp64_residuals(self, laplace_small):
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=10, tol=1e-10)
        assert len(result.history.explicit_norms) >= result.restarts
        assert min(result.history.explicit_norms) <= 1e-10

    def test_implicit_history_relative_to_original_rhs(self, laplace_small):
        result = gmres_ir(laplace_small, ones_rhs(laplace_small), restart=10, tol=1e-10)
        # Implicit estimates start near 1 and end near the tolerance.
        assert result.history.implicit_norms[0] < 1.5
        assert result.history.implicit_norms[-1] < 1e-6
