"""Tests for the orthogonalization managers (CGS, CGS2, MGS)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import MultiVector
from repro.ortho import (
    ClassicalGramSchmidt,
    ClassicalGramSchmidt2,
    ModifiedGramSchmidt,
    make_ortho_manager,
)
from repro.perfmodel.timer import use_timer

ALL_MANAGERS = [ClassicalGramSchmidt(), ClassicalGramSchmidt2(), ModifiedGramSchmidt()]


def build_basis(rng, n, k, dtype=np.float64):
    """Orthonormal basis of k random vectors stored in a MultiVector."""
    V = MultiVector(n, k + 1, "double" if dtype == np.float64 else "single")
    Q, _ = np.linalg.qr(rng.standard_normal((n, k)))
    for j in range(k):
        V.append(Q[:, j].astype(dtype))
    return V, Q.astype(dtype)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("cgs", ClassicalGramSchmidt),
        ("cgs1", ClassicalGramSchmidt),
        ("cgs2", ClassicalGramSchmidt2),
        ("CGS2", ClassicalGramSchmidt2),
        ("mgs", ModifiedGramSchmidt),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_ortho_manager(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_ortho_manager("householder")


@pytest.mark.parametrize("manager", ALL_MANAGERS, ids=lambda m: m.name)
class TestOrthogonalization:
    def test_remainder_orthogonal_to_basis(self, manager, rng):
        V, Q = build_basis(rng, 60, 5)
        w = rng.standard_normal(60)
        h, h_next = manager.orthogonalize(V, w)
        assert np.max(np.abs(Q.T @ w)) < 1e-10
        assert h.shape == (5,)
        assert h_next == pytest.approx(np.linalg.norm(w), rel=1e-12)

    def test_coefficients_reconstruct_projection(self, manager, rng):
        V, Q = build_basis(rng, 60, 4)
        w = rng.standard_normal(60)
        original = w.copy()
        h, _ = manager.orthogonalize(V, w)
        np.testing.assert_allclose(original, Q @ h + w, rtol=1e-10)

    def test_empty_basis_returns_norm_only(self, manager, rng):
        V = MultiVector(30, 3)
        w = rng.standard_normal(30)
        h, h_next = manager.orthogonalize(V, w)
        assert h.size == 0
        assert h_next == pytest.approx(np.linalg.norm(w))

    def test_vector_in_span_gives_small_remainder(self, manager, rng):
        V, Q = build_basis(rng, 40, 3)
        w = Q @ np.array([1.0, -2.0, 0.5])
        h, h_next = manager.orthogonalize(V, w)
        assert h_next < 1e-10
        np.testing.assert_allclose(h, [1.0, -2.0, 0.5], atol=1e-10)

    def test_kernel_calls_positive(self, manager):
        assert manager.kernel_calls_per_vector(5) >= 1

    def test_fp32_orthogonalization(self, manager, rng):
        V, Q = build_basis(rng, 50, 4, dtype=np.float32)
        w = rng.standard_normal(50).astype(np.float32)
        h, h_next = manager.orthogonalize(V, w)
        assert h.dtype == np.float32
        assert np.max(np.abs(Q.T @ w)) < 1e-3


class TestKernelMix:
    def test_cgs2_uses_four_gemvs_and_one_norm(self, rng):
        V, _ = build_basis(rng, 40, 3)
        w = rng.standard_normal(40)
        with use_timer(name="t") as timer:
            ClassicalGramSchmidt2().orthogonalize(V, w)
        calls = timer.calls_by_label()
        assert calls["GEMV (Trans)"] == 2
        assert calls["GEMV (No Trans)"] == 2
        assert calls["Norm"] == 1

    def test_cgs_uses_two_gemvs(self, rng):
        V, _ = build_basis(rng, 40, 3)
        w = rng.standard_normal(40)
        with use_timer(name="t") as timer:
            ClassicalGramSchmidt().orthogonalize(V, w)
        calls = timer.calls_by_label()
        assert calls["GEMV (Trans)"] == 1
        assert calls["GEMV (No Trans)"] == 1

    def test_mgs_launches_scale_with_basis_size(self, rng):
        V, _ = build_basis(rng, 40, 6)
        w = rng.standard_normal(40)
        with use_timer(name="t") as timer:
            ModifiedGramSchmidt().orthogonalize(V, w)
        # 6 dots + 6 axpys + 1 norm
        assert timer.total_calls() == 13

    def test_cgs2_stability_beats_cgs_on_illconditioned_set(self, rng):
        """CGS2 keeps the basis orthogonal where single-pass CGS degrades."""
        n, k = 80, 12
        # Nearly linearly dependent vectors.
        base = rng.standard_normal(n)
        vectors = [base + 1e-6 * rng.standard_normal(n) for _ in range(k)]

        def run(manager):
            V = MultiVector(n, k + 1)
            first = vectors[0] / np.linalg.norm(vectors[0])
            V.append(first)
            for vec in vectors[1:]:
                w = vec.copy()
                _, h_next = manager.orthogonalize(V, w)
                if h_next == 0:
                    break
                w /= h_next
                V.append(w)
            Q = V.block()
            return np.max(np.abs(Q.T @ Q - np.eye(Q.shape[1])))

        err_cgs2 = run(ClassicalGramSchmidt2())
        err_cgs = run(ClassicalGramSchmidt())
        assert err_cgs2 < 1e-10
        assert err_cgs2 <= err_cgs


class TestPropertyBased:
    @given(
        n=st.integers(min_value=5, max_value=60),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(0, 1000),
        name=st.sampled_from(["cgs", "cgs2", "mgs"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_arnoldi_invariant(self, n, k, seed, name):
        """After orthogonalization, w ⟂ span(V) and ||w|| = h_next."""
        if k >= n:
            return
        rng = np.random.default_rng(seed)
        V, Q = build_basis(rng, n, k)
        w = rng.standard_normal(n)
        manager = make_ortho_manager(name)
        h, h_next = manager.orthogonalize(V, w)
        assert np.max(np.abs(Q.T @ w)) < 1e-8 * max(1.0, np.linalg.norm(w))
        assert h_next == pytest.approx(np.linalg.norm(w), rel=1e-9)


# ---------------------------------------------------------------------- #
# block orthogonalization managers (Block-GMRES)                         #
# ---------------------------------------------------------------------- #
class TestBlockOrthogonalization:
    def _basis_with_block(self, rng, n, start, k, dtype=np.float64):
        """MultiVector holding `start` orthonormal columns + k raw columns."""
        prec = "double" if dtype == np.float64 else "single"
        V = MultiVector(n, start + k, prec)
        if start:
            Q, _ = np.linalg.qr(rng.standard_normal((n, start)))
            for j in range(start):
                V.append(Q[:, j].astype(dtype))
        W = rng.standard_normal((n, k)).astype(dtype)
        V.column_block(start, k)[:] = W
        return V, W.copy()

    @pytest.mark.parametrize("name", ["bcgs", "bcgs2"])
    def test_factory(self, name):
        from repro.ortho import make_block_ortho_manager

        mgr = make_block_ortho_manager(name)
        assert mgr.name == name
        with pytest.raises(ValueError):
            make_block_ortho_manager("nope")

    def test_block_is_orthonormalized(self, rng):
        from repro.ortho import make_block_ortho_manager

        n, start, k = 300, 12, 4
        V, _ = self._basis_with_block(rng, n, start, k)
        mgr = make_block_ortho_manager("bcgs2")
        panel, breakdown = mgr.orthogonalize_block(V, start, k)
        assert not breakdown
        assert panel.shape == (start + k, k)
        full = V._block[:, : start + k]
        gram = full.T @ full
        np.testing.assert_allclose(gram, np.eye(start + k), atol=1e-10)

    def test_panel_reconstructs_original_block(self, rng):
        """[V_old  V_new] @ panel must reproduce the pre-ortho block."""
        from repro.ortho import make_block_ortho_manager

        n, start, k = 200, 8, 3
        V, W_orig = self._basis_with_block(rng, n, start, k)
        mgr = make_block_ortho_manager("bcgs2")
        panel, _ = mgr.orthogonalize_block(V, start, k)
        reconstructed = V._block[:, : start + k] @ panel
        np.testing.assert_allclose(reconstructed, W_orig, rtol=1e-9, atol=1e-10)

    def test_initial_block_qr(self, rng):
        """start=0 performs the QR of the residual block: V0 S = R."""
        from repro.ortho import make_block_ortho_manager

        n, k = 150, 4
        V = MultiVector(n, 2 * k, "double")
        R = rng.standard_normal((n, k))
        V.column_block(0, k)[:] = R
        mgr = make_block_ortho_manager("bcgs2")
        panel, breakdown = mgr.orthogonalize_block(V, 0, k)
        assert not breakdown
        S = panel[:k, :k]
        assert np.allclose(S, np.triu(S))  # upper triangular
        np.testing.assert_allclose(V._block[:, :k] @ S, R, rtol=1e-10, atol=1e-10)

    def test_exact_zero_column_flags_breakdown(self, rng):
        from repro.ortho import make_block_ortho_manager

        n, k = 100, 3
        V = MultiVector(n, k, "double")
        R = rng.standard_normal((n, k))
        R[:, 1] = 0.0
        V.column_block(0, k)[:] = R
        mgr = make_block_ortho_manager("bcgs2")
        panel, breakdown = mgr.orthogonalize_block(V, 0, k)
        assert breakdown
        assert panel[1, 1] == 0.0
        np.testing.assert_array_equal(V.column(1), 0)
