"""Span integrity under chaos: tracing a fault-injected solver farm.

ISSUE 9's integration claim: with tracing on, *every* submitted request
yields exactly one complete, properly-nested span tree — no matter how
it ends (served, deadline-expired, dead on arrival, cancelled, faulted,
rejected at admission).  This drives the same adversarial client mix as
``test_chaos.py`` (fault-injecting backend + deadlines + cancels) and
then audits the span ledger instead of the futures:

* ``open_spans == 0`` at quiescence — nothing leaks;
* one root ``request`` span per telemetry-submitted request, each
  stamped with a terminal ``outcome``;
* every child chains to a span in its own trace and nests inside its
  parent's interval; per-request stages appear at most once and in
  order;
* the Chrome trace-event export of the wreckage is valid JSON whose
  complete-event count reconciles with the span buffer, and the metrics
  registry's exposition stays well-formed.
"""

from __future__ import annotations

import concurrent.futures
import json

import numpy as np
import pytest

from test_obs import assert_valid_exposition

from repro.backends import available_backends, get_backend
from repro.matrices import laplace2d
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    export_chrome_trace,
    prometheus_text,
)
from repro.serve import CircuitOpenError, RejectedError, SolverFarm
from repro.testing import FaultInjectingBackend, fault_injecting_session_factory

#: Per-request stage children, in lifecycle order.
STAGES = ("submit", "queued", "dispatch")

SESSION_KWARGS = dict(restart=10, tol=1e-8, max_restarts=80)


@pytest.fixture(scope="module")
def matrix():
    return laplace2d(8)


def _request_trees(tracer: Tracer):
    """Group finished spans into trees keyed by trace, keeping only the
    request traces (batch spans root their own traces)."""
    trees = {}
    for trace_id, spans in tracer.spans_by_trace().items():
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1, f"trace {trace_id} has {len(roots)} roots"
        if roots[0].name == "request":
            trees[trace_id] = (roots[0], [s for s in spans if s is not roots[0]])
    return trees


@pytest.mark.parametrize("backend_name", available_backends())
def test_every_request_yields_one_complete_span_tree(
    matrix, backend_name, tmp_path
):
    faulty = FaultInjectingBackend(
        get_backend(backend_name),
        seed=1234,
        nan_rate=0.002,
        exception_rate=0.001,
        latency_rate=0.01,
        latency_ms=1.0,
    )
    obs = Observability(tracer=Tracer(), registry=MetricsRegistry())
    farm = SolverFarm(
        workers=2,
        max_wait_ms=2.0,
        queue_depth=256,
        breaker_threshold=3,
        breaker_cooldown_ms=50.0,
        obs=obs,
    )
    for key in ("alpha", "beta"):
        farm.register(
            key,
            factory=fault_injecting_session_factory(
                matrix, faulty, max_block=4, **SESSION_KWARGS
            ),
            n_rows=matrix.n_rows,
        )

    rng = np.random.default_rng(99)
    futures = []
    rejected_synchronously = 0
    with farm:
        for i in range(60):
            key = ("alpha", "beta")[i % 2]
            b = rng.standard_normal(matrix.n_rows)
            if i % 10 == 7:
                deadline_ms = 0.0  # dead on arrival
            elif i % 5 == 3:
                deadline_ms = 30.0  # tight but usually makeable
            else:
                deadline_ms = None
            try:
                future = farm.submit(key, b, deadline_ms=deadline_ms)
            except (RejectedError, CircuitOpenError):
                rejected_synchronously += 1
                continue
            futures.append(future)
            if i % 12 == 5:
                future.cancel()
        done, not_done = concurrent.futures.wait(futures, timeout=120)
        assert not not_done
        # Scrape while the farm is live: closing it drops its series.
        live_text = prometheus_text(obs.registry)

    tracer = obs.tracer
    fleet = farm.stats().fleet

    # --- nothing leaks: every started span was closed ------------------ #
    assert tracer.open_spans == 0
    assert tracer.dropped_spans == 0  # capacity was never the constraint

    # --- one complete request tree per telemetry-submitted request ----- #
    trees = _request_trees(tracer)
    assert len(trees) == fleet.requests_submitted
    assert len(trees) == len(futures) + rejected_synchronously
    assert fleet.requests_submitted == (
        fleet.requests_completed + fleet.requests_failed
    )

    outcomes = {}
    for trace_id, (root, children) in trees.items():
        outcome = root.attrs.get("outcome")
        assert outcome, f"request trace {trace_id} has no terminal outcome"
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        assert root.attrs["tenant"] in ("alpha", "beta")
        # Children: known stages, each at most once, chained to the root,
        # nested inside its interval and mutually ordered.
        names = [s.name for s in children]
        assert set(names) <= set(STAGES)
        assert len(names) == len(set(names))
        staged = sorted(children, key=lambda s: STAGES.index(s.name))
        assert [s.name for s in staged] == [
            stage for stage in STAGES if stage in names
        ]
        for child in children:
            assert child.finished
            assert child.parent_id == root.span_id
            assert child.start_us >= root.start_us
            assert child.end_us <= root.end_us
        for earlier, later in zip(staged, staged[1:]):
            assert earlier.end_us <= later.start_us

    # The adversarial client mix actually exercised the failure paths.
    assert outcomes.get("converged", 0) > 0
    failure_modes = sum(
        count for outcome, count in outcomes.items() if outcome != "converged"
    )
    assert failure_modes > 0
    assert outcomes.get("rejected", 0) == rejected_synchronously

    # Dispatched requests hang off a batch span in the dispatcher's trace.
    batch_ids = {
        s.span_id for s in tracer.finished_spans() if s.name == "batch"
    }
    for _root, children in trees.values():
        for child in children:
            if child.name == "dispatch" and "batch" in child.attrs:
                assert child.attrs["batch"] in batch_ids

    # --- exports survive the wreckage ---------------------------------- #
    path = tmp_path / "chaos_trace.json"
    payload = export_chrome_trace(path, tracer=tracer)
    on_disk = json.loads(path.read_text())
    complete = [e for e in on_disk["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == len(tracer.finished_spans())
    assert on_disk["otherData"]["dropped_spans"] == 0
    assert payload["displayTimeUnit"] == "ms"

    assert_valid_exposition(live_text)
    assert f'repro_requests_submitted_total{{scope="farm",name="{farm.name}"}} ' \
        f"{fleet.requests_submitted}" in live_text
    # After close, the farm's series are retired from the exposition.
    assert f'name="{farm.name}"' not in prometheus_text(obs.registry)


def test_trace_capacity_overflow_is_accounted_not_fatal(matrix):
    """A tiny span buffer under real traffic: drops are counted, the
    exporter stays valid, and no span leaks open."""
    obs = Observability(tracer=Tracer(capacity=8), registry=None)
    farm = SolverFarm(workers=1, max_wait_ms=1.0, obs=obs)
    farm.register("lap", matrix, **SESSION_KWARGS)
    rng = np.random.default_rng(3)
    with farm:
        futures = [
            farm.submit("lap", rng.standard_normal(matrix.n_rows))
            for _ in range(12)
        ]
        done, not_done = concurrent.futures.wait(futures, timeout=120)
        assert not not_done
    tracer = obs.tracer
    assert tracer.open_spans == 0
    assert len(tracer.finished_spans()) == 8
    assert tracer.dropped_spans > 0
    payload = export_chrome_trace(tracer=tracer)
    assert payload["otherData"]["dropped_spans"] == tracer.dropped_spans
    assert len([e for e in payload["traceEvents"] if e["ph"] == "X"]) == 8
