"""Tests for reverse Cuthill–McKee and symmetric permutation."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.config import rng
from repro.sparse import (
    CsrMatrix,
    from_scipy,
    permute_symmetric,
    pseudo_peripheral_node,
    reverse_cuthill_mckee,
)
from tests.conftest import dense


def random_symmetric(n, density, seed):
    a = sp.random(n, n, density=density, random_state=rng(seed), format="csr")
    a = a + a.T + sp.identity(n) * 2.0
    return from_scipy(a.tocsr(), name=f"sym{n}")


class TestReverseCuthillMckee:
    def test_is_a_permutation(self, laplace_small):
        perm = reverse_cuthill_mckee(laplace_small)
        assert sorted(perm.tolist()) == list(range(laplace_small.n_rows))

    def test_reduces_bandwidth_of_shuffled_laplacian(self, laplace_medium, rng):
        # Destroy the natural ordering, then ask RCM to recover a banded one.
        n = laplace_medium.n_rows
        shuffle = rng.permutation(n)
        shuffled = permute_symmetric(laplace_medium, shuffle)
        assert shuffled.bandwidth() > laplace_medium.bandwidth()
        perm = reverse_cuthill_mckee(shuffled)
        restored = permute_symmetric(shuffled, perm)
        assert restored.bandwidth() < shuffled.bandwidth()
        assert restored.bandwidth() <= 3 * laplace_medium.bandwidth()

    def test_comparable_to_scipy_rcm(self, laplace_medium, rng):
        n = laplace_medium.n_rows
        shuffled = permute_symmetric(laplace_medium, rng.permutation(n))
        ours = permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled))
        scipy_perm = np.asarray(
            csgraph.reverse_cuthill_mckee(shuffled.to_scipy(), symmetric_mode=True)
        ).astype(np.int64)
        theirs = permute_symmetric(shuffled, scipy_perm)
        assert ours.bandwidth() <= 2 * max(theirs.bandwidth(), 1)

    def test_handles_nonsymmetric_pattern(self, bentpipe_small):
        perm = reverse_cuthill_mckee(bentpipe_small)
        assert sorted(perm.tolist()) == list(range(bentpipe_small.n_rows))

    def test_handles_disconnected_components(self):
        blocks = sp.block_diag(
            [sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]])) for _ in range(3)]
        ).tocsr()
        A = from_scipy(blocks)
        perm = reverse_cuthill_mckee(A)
        assert sorted(perm.tolist()) == list(range(6))

    def test_diagonal_matrix(self):
        A = CsrMatrix.identity(5)
        perm = reverse_cuthill_mckee(A)
        assert sorted(perm.tolist()) == list(range(5))

    def test_empty_matrix(self):
        A = CsrMatrix(np.array([]), np.array([], dtype=np.int32), np.array([0]), (0, 0))
        assert reverse_cuthill_mckee(A).size == 0

    def test_requires_square(self):
        A = CsrMatrix(
            np.array([1.0]), np.array([0], dtype=np.int32), np.array([0, 1]), (1, 2)
        )
        with pytest.raises(ValueError):
            reverse_cuthill_mckee(A)


class TestPseudoPeripheralNode:
    def test_path_graph_endpoint(self):
        # For a path graph the pseudo-peripheral node must be an endpoint.
        n = 20
        diags = sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        A = from_scipy(diags.tocsr())
        node = pseudo_peripheral_node(A)
        assert node in (0, n - 1)

    def test_empty_raises(self):
        A = CsrMatrix(np.array([]), np.array([], dtype=np.int32), np.array([0]), (0, 0))
        with pytest.raises(ValueError):
            pseudo_peripheral_node(A)


class TestPermuteSymmetric:
    def test_matches_dense_permutation(self, rng):
        A = random_symmetric(30, 0.15, 5)
        perm = rng.permutation(30)
        P = permute_symmetric(A, perm)
        expected = dense(A)[np.ix_(perm, perm)]
        np.testing.assert_allclose(dense(P), expected)

    def test_preserves_values_multiset(self, laplace_small, rng):
        perm = rng.permutation(laplace_small.n_rows)
        P = permute_symmetric(laplace_small, perm)
        np.testing.assert_allclose(
            np.sort(P.data), np.sort(laplace_small.data)
        )

    def test_identity_permutation_is_noop(self, laplace_small):
        perm = np.arange(laplace_small.n_rows)
        P = permute_symmetric(laplace_small, perm)
        np.testing.assert_allclose(dense(P), dense(laplace_small))

    def test_column_indices_sorted_within_rows(self, laplace_small, rng):
        P = permute_symmetric(laplace_small, rng.permutation(laplace_small.n_rows))
        for i in range(P.n_rows):
            row = P.indices[P.indptr[i]: P.indptr[i + 1]]
            assert np.all(np.diff(row) > 0)

    def test_invalid_permutation_rejected(self, laplace_small):
        with pytest.raises(ValueError):
            permute_symmetric(laplace_small, np.zeros(laplace_small.n_rows, dtype=int))
        with pytest.raises(ValueError):
            permute_symmetric(laplace_small, np.arange(5))

    def test_solution_consistency_through_permutation(self, laplace_small, rng):
        """Solving the permuted system gives the permuted solution."""
        import scipy.sparse.linalg as spla

        perm = rng.permutation(laplace_small.n_rows)
        P = permute_symmetric(laplace_small, perm)
        b = rng.standard_normal(laplace_small.n_rows)
        x = spla.spsolve(laplace_small.to_scipy().tocsc(), b)
        xp = spla.spsolve(P.to_scipy().tocsc(), b[perm])
        np.testing.assert_allclose(xp, x[perm], rtol=1e-8)
