"""Resilience tests for the serve layer: deadlines, cancellation, the
circuit breaker, and the shutdown/worker-survival races.

The contract under test (see the README's "Failure semantics" section):

* a request whose deadline lapses while queued fails fast with
  :class:`DeadlineExceededError` and is **never dispatched**;
* a near-deadline request is never held for the full micro-batching
  window;
* cancelling a queued future drops it before dispatch; cancelling an
  in-flight one resolves it with status ``CANCELLED`` within one restart
  cycle;
* ``set_exception`` on an already-cancelled future (the client-cancel vs
  worker-resolve race) must not kill a worker;
* a batch-level solver exception fails exactly that batch's futures and
  the dispatcher/worker keeps serving;
* an operator with consecutive hard failures is quarantined by its
  circuit breaker and readmitted through a half-open probe;
* at quiescence every telemetry sink satisfies
  ``submitted == completed + failed``.
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError, Future, InvalidStateError

import numpy as np
import pytest

from repro.backends import get_backend
from repro.matrices import laplace2d
from repro.preconditioners.base import Preconditioner
from repro.serve import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    OperatorSession,
    ReproServeError,
    SolverFarm,
)
from repro.serve.scheduler import PendingRequest, complete_future, fail_future
from repro.solvers import SolverStatus
from repro.testing import (
    FaultInjectedError,
    FaultInjectingBackend,
    fault_injecting_session_factory,
)


class SlowPrecond(Preconditioner):
    """Identity preconditioner with a per-application sleep.

    Gives a solve a controllable wall-clock duration, so tests can
    reliably observe in-flight state (running futures, busy dispatchers)
    without racing a fast solver.
    """

    def __init__(self, sleep_seconds: float, precision="double"):
        super().__init__(precision=precision, name="slow-identity")
        self.sleep_seconds = float(sleep_seconds)

    def apply(self, vector, out=None):
        time.sleep(self.sleep_seconds)
        if out is None:
            return vector.copy()
        out[...] = vector
        return out

    def apply_block(self, block, out=None):
        time.sleep(self.sleep_seconds)
        if out is None:
            return block.copy()
        out[...] = block
        return out


@pytest.fixture(scope="module")
def matrix():
    return laplace2d(10)  # n = 100


@pytest.fixture(scope="module")
def rhs(matrix):
    rng = np.random.default_rng(11)
    return rng.standard_normal(matrix.n_rows)


SESSION_KWARGS = dict(restart=8, tol=1e-8, max_restarts=60)


def make_session(matrix, **kwargs):
    defaults = dict(**SESSION_KWARGS, max_wait_ms=2.0)
    defaults.update(kwargs)
    return OperatorSession(matrix, **defaults)


def slow_session(matrix, sleep_seconds=0.005, **kwargs):
    """A session whose solves reliably take >= ~100 ms wall-clock."""
    defaults = dict(
        restart=15,
        tol=1e-12,
        max_restarts=200,
        preconditioner=SlowPrecond(sleep_seconds),
        max_block=1,
        max_wait_ms=1.0,
    )
    defaults.update(kwargs)
    return OperatorSession(matrix, **defaults)


def wait_until(predicate, timeout=10.0, interval=0.002):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def assert_accounted(stats):
    """The quiescence invariant of every telemetry sink."""
    assert stats.requests_submitted == (
        stats.requests_completed + stats.requests_failed
    )


# --------------------------------------------------------------------- #
# circuit breaker (unit)                                                #
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_ms=-1.0)

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, cooldown_ms=10_000.0)
        assert breaker.admit() is None
        assert breaker.record_failure() is False
        assert breaker.state == "closed"
        assert breaker.record_failure() is True  # the trip
        assert breaker.state == "open"
        assert breaker.trips == 1
        hint = breaker.admit()
        assert hint is not None and hint > 0.0

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown_ms=10_000.0)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        assert breaker.record_failure() is False  # streak restarted
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=10.0)
        assert breaker.record_failure() is True
        time.sleep(0.02)
        assert breaker.admit() is None  # the probe slot
        assert breaker.state == "half_open"
        assert breaker.admit() is not None  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.admit() is None

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=10.0)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.admit() is None
        assert breaker.record_failure() is True  # probe failed: re-trip
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.admit() is not None  # fresh cool-down

    def test_lost_probe_slot_is_reclaimed(self):
        # A probe that expires/cancels before producing an outcome must
        # not wedge the breaker half-open forever.
        breaker = CircuitBreaker(threshold=1, cooldown_ms=10.0)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.admit() is None  # probe vanishes without feedback
        time.sleep(0.02)  # longer than one cool-down
        assert breaker.admit() is None  # slot handed to the next request

    def test_late_failure_while_open_restarts_clock_without_trip(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=10_000.0)
        assert breaker.record_failure() is True
        assert breaker.record_failure() is False  # in-flight batch report
        assert breaker.trips == 1
        assert breaker.state == "open"


# --------------------------------------------------------------------- #
# the client-cancel vs worker-resolve race (satellite 3)                #
# --------------------------------------------------------------------- #
class TestFutureResolutionRace:
    def test_raw_set_exception_on_cancelled_future_raises(self):
        # The race being guarded against: a client cancels in the
        # hair's breadth between the worker popping the request and
        # resolving it.  Unguarded, this kills the worker thread.
        request = PendingRequest(np.ones(4))
        assert request.future.cancel() is True
        with pytest.raises(InvalidStateError):
            request.future.set_exception(RuntimeError("boom"))

    def test_fail_future_tolerates_cancelled_future(self):
        request = PendingRequest(np.ones(4))
        request.future.cancel()
        assert fail_future(request.future, RuntimeError("boom")) is False
        assert complete_future(request.future, object()) is False
        assert request.future.cancelled()

    def test_helpers_tolerate_already_resolved_future(self):
        future = Future()
        future.set_result("first")
        assert complete_future(future, "second") is False
        assert fail_future(future, RuntimeError("late")) is False
        assert future.result() == "first"

    def test_helpers_resolve_pending_futures_normally(self):
        future = Future()
        assert complete_future(future, 42) is True
        assert future.result() == 42
        failed = Future()
        assert fail_future(failed, RuntimeError("boom")) is True
        with pytest.raises(RuntimeError, match="boom"):
            failed.result()

    def test_serve_future_cancel_signals_control_even_when_running(self):
        request = PendingRequest(np.ones(4))
        assert request.future.set_running_or_notify_cancel() is True
        assert request.future.cancel() is False  # standard Future semantics
        assert request.control.cancelled  # but the token is signalled


# --------------------------------------------------------------------- #
# session deadlines                                                     #
# --------------------------------------------------------------------- #
class TestSessionDeadlines:
    def test_dead_on_arrival_deadline_fails_fast(self, matrix, rhs):
        with make_session(matrix) as session:
            future = session.submit(rhs, deadline_ms=0.0)
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=5)
            assert excinfo.value.deadline_ms == 0.0
            assert isinstance(excinfo.value, ReproServeError)
            stats = session.stats()
            # Never dispatched: no batch ever ran.
            assert stats.batches_dispatched == 0
            assert stats.requests_timed_out == 1
            assert stats.requests_failed == 1
            assert_accounted(stats)

    def test_queue_expiry_is_never_dispatched(self, matrix, rhs):
        # Occupy the (width-1) dispatcher with a slow solve; a request
        # whose deadline lapses while it waits behind it must fail with
        # DeadlineExceededError without ever reaching the solver.
        with slow_session(matrix) as session:
            blocker = session.submit(rhs)
            doomed = session.submit(rhs, deadline_ms=20.0)
            assert blocker.result(timeout=30).status is not None
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30)
            assert wait_until(
                lambda: session.stats().requests_timed_out == 1
            )
            stats = session.stats()
            assert stats.batches_dispatched == 1  # only the blocker
            assert_accounted(stats)

    def test_near_deadline_request_not_held_for_window(self, matrix, rhs):
        # Micro-batching window of 5 s, lone request with a 40 ms
        # deadline: the deadline-aware assembler must dispatch (or
        # expire) it in tens of milliseconds, not seconds.
        with make_session(
            matrix, max_block=4, max_wait_ms=5000.0
        ) as session:
            start = time.perf_counter()
            future = session.submit(rhs, deadline_ms=40.0)
            try:
                result = future.result(timeout=30)
                assert result.status in (
                    SolverStatus.CONVERGED,
                    SolverStatus.TIMED_OUT,
                )
            except DeadlineExceededError:
                pass  # expired at the dispatch boundary: equally valid
            elapsed = time.perf_counter() - start
            assert elapsed < 2.0, (
                f"near-deadline request held {elapsed:.2f}s by a 5s window"
            )


# --------------------------------------------------------------------- #
# session cancellation                                                  #
# --------------------------------------------------------------------- #
class TestSessionCancellation:
    def test_cancel_queued_request_is_dropped(self, matrix, rhs):
        with slow_session(matrix) as session:
            blocker = session.submit(rhs)
            queued = session.submit(rhs)
            assert queued.cancel() is True  # still queued: cancels cleanly
            assert queued.cancelled()
            with pytest.raises(CancelledError):
                queued.result(timeout=5)
            blocker.result(timeout=30)
            # The drop is accounted when the assembler sweeps the queue.
            assert wait_until(
                lambda: session.stats().requests_cancelled == 1
            )
            stats = session.stats()
            assert stats.batches_dispatched == 1
            assert_accounted(stats)

    def test_cancel_in_flight_resolves_cancelled(self, matrix, rhs):
        # tol is unreachable, so the solve runs until the token stops it:
        # cancel() returns False (the future is RUNNING) but the solve
        # resolves with status CANCELLED within one restart cycle.
        with slow_session(
            matrix, sleep_seconds=0.002, tol=1e-30, max_restarts=1_000_000
        ) as session:
            future = session.submit(rhs)
            assert wait_until(future.running, timeout=10.0)
            assert future.cancel() is False
            result = future.result(timeout=30)
            assert result.status == SolverStatus.CANCELLED
            assert np.all(np.isfinite(result.x))
            stats = session.stats()
            # Mid-solve cancellation is a *completed* request with a
            # CANCELLED status — and it is classified in the counter.
            assert stats.requests_completed == 1
            assert stats.requests_cancelled == 1
            assert_accounted(stats)

    def test_cancel_after_completion_is_noop(self, matrix, rhs):
        with make_session(matrix) as session:
            future = session.submit(rhs)
            result = future.result(timeout=30)
            assert result.converged
            assert future.cancel() is False
            assert future.result() is result


# --------------------------------------------------------------------- #
# shutdown races (satellite 4)                                          #
# --------------------------------------------------------------------- #
class TestCloseRaces:
    def test_close_no_drain_fails_queued_resolves_inflight(self, matrix, rhs):
        session = slow_session(matrix)
        inflight = session.submit(rhs)
        assert wait_until(inflight.running, timeout=10.0)
        queued = [session.submit(rhs) for _ in range(2)]
        session.close(drain=False, timeout=30)
        # The in-flight solve resolves normally; the queued ones fail
        # with RuntimeError — nobody hangs, nobody is lost.
        assert inflight.result(timeout=30).status is not None
        for future in queued:
            with pytest.raises(RuntimeError, match="closed"):
                future.result(timeout=5)
        stats = session.stats()
        assert stats.requests_submitted == 3
        assert stats.requests_completed == 1
        assert stats.requests_failed == 2
        assert_accounted(stats)

    def test_close_no_drain_with_cancelled_queued(self, matrix, rhs):
        session = slow_session(matrix)
        inflight = session.submit(rhs)
        assert wait_until(inflight.running, timeout=10.0)
        cancelled = session.submit(rhs)
        abandoned = session.submit(rhs)
        assert cancelled.cancel() is True
        session.close(drain=False, timeout=30)
        inflight.result(timeout=30)
        with pytest.raises(CancelledError):
            cancelled.result(timeout=5)
        with pytest.raises(RuntimeError, match="closed"):
            abandoned.result(timeout=5)
        stats = session.stats()
        assert stats.requests_cancelled == 1
        assert_accounted(stats)

    def test_close_is_idempotent(self, matrix, rhs):
        session = make_session(matrix)
        session.submit(rhs).result(timeout=30)
        session.close()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(rhs)


# --------------------------------------------------------------------- #
# dispatcher / worker survival after batch-level exceptions             #
# --------------------------------------------------------------------- #
class TestBatchExceptionContainment:
    def _spmm_bomb(self):
        # Only the *batched* operator product raises; width-1 solves (and
        # their spmv) pass through untouched.
        return FaultInjectingBackend(
            get_backend("numpy"),
            exception_rate=1.0,
            kernels={"spmm"},
            seed=3,
        )

    def test_dispatcher_survives_batch_exception(self, matrix, rhs):
        from repro.linalg.context import use_backend

        with use_backend(self._spmm_bomb()):
            session = OperatorSession(
                matrix,
                warmup=False,
                max_block=2,
                max_wait_ms=200.0,
                policy="block",
                **SESSION_KWARGS,
            )
        with session:
            first = session.submit(rhs)
            second = session.submit(rhs)
            # Both riders of the poisoned batch get the solver exception…
            for future in (first, second):
                with pytest.raises(FaultInjectedError):
                    future.result(timeout=30)
            # …and the dispatcher survives to serve the next (width-1,
            # spmm-free) request.
            assert session.submit(rhs).result(timeout=30).converged
            stats = session.stats()
            assert stats.requests_failed == 2
            assert stats.requests_completed == 1
            assert_accounted(stats)

    def test_farm_worker_survives_batch_exception(self, matrix, rhs):
        farm = SolverFarm(workers=1, max_wait_ms=200.0)
        farm.register(
            "flaky",
            factory=fault_injecting_session_factory(
                matrix,
                self._spmm_bomb(),
                warmup=False,
                max_block=2,
                policy="block",
                **SESSION_KWARGS,
            ),
            n_rows=matrix.n_rows,
        )
        farm.register("healthy", matrix, **SESSION_KWARGS)
        with farm:
            first = farm.submit("flaky", rhs)
            second = farm.submit("flaky", rhs)
            for future in (first, second):
                with pytest.raises(FaultInjectedError):
                    future.result(timeout=30)
            # The worker survives for this tenant and every other one.
            assert farm.submit("flaky", rhs).result(timeout=30).converged
            assert farm.submit("healthy", rhs).result(timeout=30).converged
            fleet = farm.stats().fleet
            assert fleet.requests_failed == 2
            assert fleet.requests_completed == 2
            assert_accounted(fleet)


# --------------------------------------------------------------------- #
# farm-level deadlines, cancellation and the breaker                    #
# --------------------------------------------------------------------- #
class TestFarmResilience:
    def test_farm_dead_on_arrival_deadline(self, matrix, rhs):
        farm = SolverFarm(workers=1, max_wait_ms=2.0)
        farm.register("op", matrix, **SESSION_KWARGS)
        with farm:
            future = farm.submit("op", rhs, deadline_ms=0.0)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5)
            stats = farm.stats()
            tenant = stats.tenants["op"].serve
            assert tenant.requests_timed_out == 1
            assert tenant.batches_dispatched == 0  # never dispatched
            assert_accounted(stats.fleet)

    def test_farm_cancel_resolves_and_is_accounted(self, matrix, rhs):
        farm = SolverFarm(workers=1, max_wait_ms=2.0)
        farm.register(
            "slow",
            matrix,
            preconditioner=SlowPrecond(0.005),
            restart=15,
            tol=1e-12,
            max_restarts=200,
        )
        with farm:
            blocker = farm.submit("slow", rhs)
            target = farm.submit("slow", rhs)
            target.cancel()
            blocker.result(timeout=60)
            # Whichever side of the pop the cancel landed on, the future
            # resolves — dropped while queued (CancelledError) or
            # deflated mid-solve (status CANCELLED) — and the tenant's
            # cancellation counter sees exactly one event.
            if target.cancelled():
                with pytest.raises(CancelledError):
                    target.result(timeout=5)
            else:
                assert target.result(timeout=60).status == (
                    SolverStatus.CANCELLED
                )
            assert wait_until(
                lambda: (
                    farm.stats().tenants["slow"].serve.requests_cancelled == 1
                )
            )
        assert_accounted(farm.stats().fleet)

    def test_breaker_quarantines_and_probe_readmits(self, matrix, rhs):
        faulty = FaultInjectingBackend(
            get_backend("numpy"), exception_rate=1.0, seed=5
        )
        farm = SolverFarm(
            workers=1,
            max_wait_ms=2.0,
            breaker_threshold=2,
            breaker_cooldown_ms=100.0,
        )
        farm.register(
            "bad",
            factory=fault_injecting_session_factory(
                matrix, faulty, **SESSION_KWARGS
            ),
            n_rows=matrix.n_rows,
        )
        farm.register("good", matrix, **SESSION_KWARGS)
        with farm:
            # Two consecutive hard failures trip the threshold-2 breaker.
            for _ in range(2):
                with pytest.raises(FaultInjectedError):
                    farm.submit("bad", rhs).result(timeout=30)

            # The trip is observed asynchronously (the worker feeds the
            # breaker); keep submitting until admission control slams
            # shut.  Resolve every straggler so no late failure report
            # keeps restarting the quarantine clock.
            stragglers = []
            open_error = None
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                try:
                    stragglers.append(farm.submit("bad", rhs))
                except CircuitOpenError as exc:
                    open_error = exc
                    break
                time.sleep(0.01)
            assert open_error is not None, "breaker never opened"
            assert open_error.key == "bad"
            assert open_error.retry_after_ms > 0.0
            for future in stragglers:
                with pytest.raises(FaultInjectedError):
                    future.result(timeout=30)

            # Quarantine: the warmed (poisoned) session was evicted.
            assert "bad" not in farm.registry.live_keys()
            stats = farm.stats()
            assert stats.tenants["bad"].breaker_trips >= 1
            assert stats.breaker_trips >= 1

            # A healthy tenant is untouched by the quarantine.
            assert farm.submit("good", rhs).result(timeout=30).converged

            # Heal the operator and wait out the cool-down: the half-open
            # probe re-warms the session and closes the breaker.
            faulty.exception_rate = 0.0
            time.sleep(0.15)
            probe = None
            deadline = time.perf_counter() + 10.0
            while probe is None and time.perf_counter() < deadline:
                try:
                    probe = farm.submit("bad", rhs)
                except CircuitOpenError:
                    time.sleep(0.05)
            assert probe is not None, "probe never admitted"
            assert probe.result(timeout=30).converged
            # Traffic has resumed for good.
            assert farm.submit("bad", rhs).result(timeout=30).converged
        assert_accounted(farm.stats().fleet)
