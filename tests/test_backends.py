"""Backend parity and dispatch tests.

The NumPy reference backend is the numerical ground truth; every other
backend must agree with it to a dtype-appropriate tolerance on the kernels
the solvers actually use (SpMV, SpMM, SpMV^T, GEMV, dot/norm/axpy),
including the structural edge cases (empty rows, zero-nnz matrices) where
segmented reductions are easy to get wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    KernelBackend,
    NumpyBackend,
    ScipyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.config import rng, set_config
from repro.linalg import get_context, kernels, use_backend
from repro.linalg.context import ExecutionContext, set_context
from repro.perfmodel import KernelTimer, use_timer
from repro.sparse import CsrMatrix

DTYPES = [np.float16, np.float32, np.float64]
#: Parity tolerance vs the reference: generous multiples of machine epsilon
#: to absorb different (but same-precision) accumulation orders.
RTOL = {np.float16: 1e-2, np.float32: 1e-5, np.float64: 1e-12}

NUMPY = NumpyBackend()
SCIPY = ScipyBackend()


def random_csr(n_rows, n_cols, density, dtype, seed=0):
    """Random CSR matrix with duplicates merged, in the requested dtype."""
    gen = rng(seed)
    nnz = max(1, int(density * n_rows * n_cols))
    rows = gen.integers(0, n_rows, size=nnz)
    cols = gen.integers(0, n_cols, size=nnz)
    values = gen.standard_normal(nnz)
    return CsrMatrix.from_coo(rows, cols, values, (n_rows, n_cols)).astype(
        np.dtype(dtype).name
    )


def empty_row_csr(dtype):
    """5×4 matrix whose rows 0, 2 and 4 are empty."""
    data = np.array([2.0, -1.0, 3.5], dtype=dtype)
    indices = np.array([1, 3, 0], dtype=np.int32)
    indptr = np.array([0, 0, 2, 2, 3, 3], dtype=np.int64)
    return CsrMatrix(data, indices, indptr, (5, 4), name="empty-rows")


def zero_nnz_csr(dtype):
    return CsrMatrix(
        np.zeros(0, dtype=dtype),
        np.zeros(0, dtype=np.int32),
        np.zeros(7, dtype=np.int64),
        (6, 3),
        name="zero-nnz",
    )


@pytest.mark.parametrize("dtype", DTYPES, ids=["fp16", "fp32", "fp64"])
class TestBackendParity:
    def test_spmv_matches_reference(self, dtype):
        A = random_csr(60, 40, 0.1, dtype, seed=1)
        x = rng(2).standard_normal(40).astype(dtype)
        ref = NUMPY.spmv(A, x)
        fast = SCIPY.spmv(A, x)
        assert fast.dtype == ref.dtype == np.dtype(dtype)
        np.testing.assert_allclose(fast, ref, rtol=RTOL[dtype], atol=RTOL[dtype])

    def test_spmv_out_parameter(self, dtype):
        A = random_csr(30, 30, 0.15, dtype, seed=3)
        x = rng(4).standard_normal(30).astype(dtype)
        out_np = np.full(30, np.nan, dtype=dtype)
        out_sp = np.full(30, np.nan, dtype=dtype)
        y_np = NUMPY.spmv(A, x, out=out_np)
        y_sp = SCIPY.spmv(A, x, out=out_sp)
        assert y_np is out_np and y_sp is out_sp
        np.testing.assert_allclose(out_sp, out_np, rtol=RTOL[dtype], atol=RTOL[dtype])

    def test_spmm_matches_reference(self, dtype):
        A = random_csr(50, 35, 0.12, dtype, seed=5)
        X = rng(6).standard_normal((35, 4)).astype(dtype)
        ref = NUMPY.spmm(A, X)
        fast = SCIPY.spmm(A, X)
        assert ref.shape == fast.shape == (50, 4)
        assert fast.dtype == ref.dtype == np.dtype(dtype)
        np.testing.assert_allclose(fast, ref, rtol=RTOL[dtype], atol=RTOL[dtype])

    def test_spmm_columns_match_spmv(self, dtype):
        A = random_csr(40, 40, 0.1, dtype, seed=7)
        X = rng(8).standard_normal((40, 3)).astype(dtype)
        for backend in (NUMPY, SCIPY):
            Y = backend.spmm(A, X)
            for j in range(X.shape[1]):
                np.testing.assert_allclose(
                    Y[:, j],
                    backend.spmv(A, np.ascontiguousarray(X[:, j])),
                    rtol=RTOL[dtype],
                    atol=RTOL[dtype],
                )

    def test_spmv_transpose_matches_reference(self, dtype):
        A = random_csr(45, 25, 0.1, dtype, seed=9)
        x = rng(10).standard_normal(45).astype(dtype)
        ref = NUMPY.spmv_transpose(A, x)
        fast = SCIPY.spmv_transpose(A, x)
        assert ref.shape == fast.shape == (25,)
        np.testing.assert_allclose(fast, ref, rtol=RTOL[dtype], atol=RTOL[dtype])

    def test_gemv_matches_reference(self, dtype):
        gen = rng(11)
        V = np.asfortranarray(gen.standard_normal((50, 6)).astype(dtype))
        w = gen.standard_normal(50).astype(dtype)
        np.testing.assert_allclose(
            SCIPY.gemv_transpose(V, w),
            NUMPY.gemv_transpose(V, w),
            rtol=RTOL[dtype],
            atol=RTOL[dtype],
        )
        h = gen.standard_normal(6).astype(dtype)
        w_np, w_sp = w.copy(), w.copy()
        NUMPY.gemv_notrans(V, h, w_np)
        SCIPY.gemv_notrans(V, h, w_sp)
        np.testing.assert_allclose(w_sp, w_np, rtol=RTOL[dtype], atol=RTOL[dtype])

    def test_empty_rows(self, dtype):
        A = empty_row_csr(dtype)
        x = np.arange(1, 5, dtype=dtype)
        ref = NUMPY.spmv(A, x)
        fast = SCIPY.spmv(A, x)
        assert ref[0] == ref[2] == ref[4] == 0
        np.testing.assert_allclose(fast, ref, rtol=RTOL[dtype], atol=RTOL[dtype])
        X = np.stack([x, -x], axis=1)
        np.testing.assert_allclose(
            SCIPY.spmm(A, X), NUMPY.spmm(A, X), rtol=RTOL[dtype], atol=RTOL[dtype]
        )

    def test_zero_nnz(self, dtype):
        A = zero_nnz_csr(dtype)
        x = np.ones(3, dtype=dtype)
        for backend in (NUMPY, SCIPY):
            assert np.all(backend.spmv(A, x) == 0)
            assert np.all(backend.spmm(A, np.ones((3, 2), dtype=dtype)) == 0)
            assert np.all(backend.spmv_transpose(A, np.ones(6, dtype=dtype)) == 0)

    def test_vector_kernels_match(self, dtype):
        gen = rng(12)
        x = gen.standard_normal(64).astype(dtype)
        y = gen.standard_normal(64).astype(dtype)
        assert SCIPY.dot(x, y) == pytest.approx(NUMPY.dot(x, y), rel=RTOL[dtype])
        assert SCIPY.norm2(x) == pytest.approx(NUMPY.norm2(x), rel=RTOL[dtype])
        y_np, y_sp = y.copy(), y.copy()
        NUMPY.axpy(0.5, x, y_np)
        SCIPY.axpy(0.5, x, y_sp)
        np.testing.assert_allclose(y_sp, y_np, rtol=RTOL[dtype], atol=RTOL[dtype])


class TestFp16Semantics:
    """SciPy has no fp16 sparse kernels; the backend must fall back, not upcast."""

    def test_fp16_spmv_stays_fp16(self):
        A = random_csr(30, 30, 0.2, np.float16, seed=13)
        x = np.ones(30, dtype=np.float16)
        y = SCIPY.spmv(A, x)
        assert y.dtype == np.float16
        np.testing.assert_array_equal(y, NUMPY.spmv(A, x))

    def test_fp16_accumulation_matches_reference_bitwise(self):
        # The fallback is the reference kernel itself, so even rounding is
        # identical — the half-precision experiments rely on this.
        A = random_csr(64, 64, 0.1, np.float16, seed=14)
        X = rng(15).standard_normal((64, 5)).astype(np.float16)
        np.testing.assert_array_equal(SCIPY.spmm(A, X), NUMPY.spmm(A, X))


class TestDispatch:
    def test_registry_lists_builtin_backends(self):
        assert {"numpy", "scipy"} <= set(available_backends())

    def test_get_backend_resolves_names_and_instances(self):
        assert get_backend("numpy") is get_backend("NumPy")  # case-insensitive
        instance = ScipyBackend()
        assert get_backend(instance) is instance
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda-imaginary")

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_config_selects_backend(self):
        set_config(backend="scipy")
        assert get_context().backend.name == "scipy"

    def test_set_config_takes_effect_on_live_context(self):
        # The README flow: solve once (materialising the lazy global
        # context), then switch backends via set_config — the existing
        # context must follow the config, not stay pinned.
        A = random_csr(8, 8, 0.4, np.float64, seed=18)
        A.matvec(np.ones(8))
        before = get_context()
        set_config(backend="scipy")
        assert get_context() is before
        assert get_context().backend.name == "scipy"
        set_config(backend="numpy")
        assert get_context().backend.name == "numpy"

    def test_explicit_context_backend_stays_pinned(self):
        set_context(ExecutionContext(backend="scipy"))
        set_config(backend="numpy")
        assert get_context().backend.name == "scipy"

    def test_use_backend_scopes_the_switch(self):
        outer = get_context().backend.name
        other = "scipy" if outer == "numpy" else "numpy"
        with use_backend(other) as ctx:
            assert ctx.backend.name == other
            assert get_context() is ctx
        assert get_context().backend.name == outer

    def test_matvec_routes_through_active_backend(self):
        calls = []

        class Probe(NumpyBackend):
            name = "probe"

            def spmv(self, matrix, x, out=None):
                calls.append(matrix.name)
                return super().spmv(matrix, x, out=out)

        A = random_csr(10, 10, 0.3, np.float64, seed=16)
        with use_backend(Probe()):
            A.matvec(np.ones(10))
            kernels.spmv(A, np.ones(10))
        assert len(calls) == 2

    def test_scipy_handle_is_cached_per_matrix(self):
        A = random_csr(20, 20, 0.2, np.float64, seed=17)
        x = np.ones(20)
        SCIPY.spmv(A, x)
        _, handle = A.backend_cache["scipy_csr"]
        SCIPY.spmv(A, x)
        assert A.backend_cache["scipy_csr"][1] is handle
        # A precision copy is a different matrix object with its own cache.
        A32 = A.astype("single")
        SCIPY.spmv(A32, np.ones(20, dtype=np.float32))
        assert A32.backend_cache["scipy_csr"][1] is not handle
        assert A32.backend_cache["scipy_csr"][1].dtype == np.float32

    def test_metered_kernels_agree_across_backends(self, laplace_small):
        b = np.ones(laplace_small.n_rows)
        with use_timer(KernelTimer("np")) as t_np:
            y_np = kernels.spmv(laplace_small, b)
        with use_backend("scipy"):
            with use_timer(KernelTimer("sp")) as t_sp:
                y_sp = kernels.spmv(laplace_small, b)
        np.testing.assert_allclose(y_sp, y_np, rtol=1e-12)
        # Metering is backend-independent: identical modelled cost.
        assert t_sp.total_model_seconds() == pytest.approx(t_np.total_model_seconds())

    def test_backend_protocol_is_abstract(self):
        with pytest.raises(TypeError):
            KernelBackend()  # abstract methods missing
