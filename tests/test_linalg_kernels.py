"""Tests for the instrumented linear-algebra kernels."""

import numpy as np
import pytest

from repro.linalg import kernels
from repro.linalg.context import ExecutionContext, set_context
from repro.perfmodel.timer import KernelTimer, use_timer
from tests.conftest import dense


class TestSpmvKernel:
    def test_correctness(self, laplace_small, rng):
        x = rng.standard_normal(laplace_small.n_cols)
        np.testing.assert_allclose(
            kernels.spmv(laplace_small, x), dense(laplace_small) @ x
        )

    def test_records_under_spmv_label(self, laplace_small):
        with use_timer(name="t") as timer:
            kernels.spmv(laplace_small, np.ones(laplace_small.n_cols))
        assert timer.calls_by_label() == {"SpMV": 1}
        assert timer.model_seconds_for("SpMV") > 0

    def test_custom_label_residual_goes_to_other(self, laplace_small):
        with use_timer(name="t") as timer:
            kernels.spmv(laplace_small, np.ones(laplace_small.n_cols), label="Residual")
        assert timer.calls_by_label() == {"Other": 1}

    def test_precision_mismatch_raises(self, laplace_small):
        x32 = np.ones(laplace_small.n_cols, dtype=np.float32)
        with pytest.raises(kernels.PrecisionMismatchError):
            kernels.spmv(laplace_small, x32)

    def test_fp32_matrix_and_vector(self, laplace_small):
        A32 = laplace_small.astype("single")
        x32 = np.ones(laplace_small.n_cols, dtype=np.float32)
        y = kernels.spmv(A32, x32)
        assert y.dtype == np.float32

    def test_records_precision(self, laplace_small):
        A32 = laplace_small.astype("single")
        with use_timer(name="t") as timer:
            kernels.spmv(laplace_small, np.ones(laplace_small.n_cols))
            kernels.spmv(A32, np.ones(laplace_small.n_cols, dtype=np.float32))
        assert timer.model_seconds_for("SpMV", "double") > 0
        assert timer.model_seconds_for("SpMV", "single") > 0


class TestSpmmKernel:
    def test_correctness(self, laplace_small, rng):
        X = rng.standard_normal((laplace_small.n_cols, 4))
        np.testing.assert_allclose(
            kernels.spmm(laplace_small, X), dense(laplace_small) @ X
        )

    def test_records_under_spmm_label(self, laplace_small):
        with use_timer(name="t") as timer:
            kernels.spmm(laplace_small, np.ones((laplace_small.n_cols, 3)))
        assert timer.calls_by_label() == {"SpMM": 1}
        assert timer.model_seconds_for("SpMM") > 0

    def test_batched_cost_beats_k_spmv_calls(self, laplace_small):
        k = 6
        X = np.ones((laplace_small.n_cols, k))
        with use_timer(name="batched") as batched:
            kernels.spmm(laplace_small, X)
        with use_timer(name="seq") as seq:
            for j in range(k):
                kernels.spmv(laplace_small, X[:, j].copy())
        # The batched kernel streams the matrix once; k SpMVs stream it k
        # times, so the modelled cost must favour batching.
        assert batched.total_model_seconds() < seq.total_model_seconds()

    def test_precision_mismatch_raises(self, laplace_small):
        with pytest.raises(kernels.PrecisionMismatchError):
            kernels.spmm(
                laplace_small, np.ones((laplace_small.n_cols, 2), dtype=np.float32)
            )

    def test_rejects_1d_input(self, laplace_small):
        with pytest.raises(ValueError):
            kernels.spmm(laplace_small, np.ones(laplace_small.n_cols))


class TestGemvKernels:
    def test_transpose_correctness(self, rng):
        V = rng.standard_normal((50, 6))
        w = rng.standard_normal(50)
        np.testing.assert_allclose(kernels.gemv_transpose(V, w), V.T @ w)

    def test_notrans_updates_in_place(self, rng):
        V = rng.standard_normal((50, 6))
        h = rng.standard_normal(6)
        w = rng.standard_normal(50)
        expected = w - V @ h
        out = kernels.gemv_notrans(V, h, w)
        assert out is w
        np.testing.assert_allclose(w, expected)

    def test_labels(self, rng):
        V = rng.standard_normal((20, 3))
        w = rng.standard_normal(20)
        with use_timer(name="t") as timer:
            h = kernels.gemv_transpose(V, w)
            kernels.gemv_notrans(V, h, w)
        assert timer.calls_by_label() == {"GEMV (Trans)": 1, "GEMV (No Trans)": 1}

    def test_mixed_precision_rejected(self, rng):
        V = rng.standard_normal((20, 3)).astype(np.float32)
        w = rng.standard_normal(20)
        with pytest.raises(kernels.PrecisionMismatchError):
            kernels.gemv_transpose(V, w)


class TestVectorKernels:
    def test_dot_and_norm(self, rng):
        x = rng.standard_normal(100)
        y = rng.standard_normal(100)
        assert kernels.dot(x, y) == pytest.approx(float(x @ y))
        assert kernels.norm2(x) == pytest.approx(float(np.linalg.norm(x)))

    def test_norm_fp32_accumulates_in_fp32(self):
        x = np.full(10_000, 1e-4, dtype=np.float32)
        value = kernels.norm2(x)
        # Just checks it computes without promoting to float64 internally
        # (the value itself is fine at this magnitude).
        assert value == pytest.approx(1e-2, rel=1e-3)

    def test_dot_and_norm_grouped_under_norm_label(self, rng):
        x = rng.standard_normal(10)
        with use_timer(name="t") as timer:
            kernels.dot(x, x)
            kernels.norm2(x)
        assert timer.calls_by_label() == {"Norm": 2}

    def test_axpy_in_place(self, rng):
        x = rng.standard_normal(30)
        y = rng.standard_normal(30)
        expected = y + 2.5 * x
        kernels.axpy(2.5, x, y)
        np.testing.assert_allclose(y, expected)

    def test_axpy_preserves_fp32(self):
        x = np.ones(10, dtype=np.float32)
        y = np.zeros(10, dtype=np.float32)
        kernels.axpy(0.5, x, y)
        assert y.dtype == np.float32

    def test_scal_in_place(self, rng):
        x = rng.standard_normal(30)
        expected = 3.0 * x
        kernels.scal(3.0, x)
        np.testing.assert_allclose(x, expected)

    def test_copy_with_and_without_out(self, rng):
        x = rng.standard_normal(30)
        c = kernels.copy(x)
        assert c is not x
        np.testing.assert_allclose(c, x)
        out = np.empty_like(x)
        assert kernels.copy(x, out) is out

    def test_axpy_scal_copy_land_in_other(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        with use_timer(name="t") as timer:
            kernels.axpy(1.0, x, y)
            kernels.scal(2.0, x)
            kernels.copy(x)
        assert set(timer.calls_by_label()) == {"Other"}
        assert timer.calls_by_label()["Other"] == 3


class TestCastKernel:
    def test_cast_down_and_up(self, rng):
        x = rng.standard_normal(40)
        low = kernels.cast(x, "single")
        assert low.dtype == np.float32
        back = kernels.cast(low, "double")
        assert back.dtype == np.float64
        np.testing.assert_allclose(back, x, rtol=1e-6)

    def test_same_precision_no_copy_no_meter(self, rng):
        x = rng.standard_normal(40)
        with use_timer(name="t") as timer:
            out = kernels.cast(x, "double")
        assert out is x
        assert timer.total_model_seconds() == 0

    def test_cast_metered_under_other(self, rng):
        x = rng.standard_normal(40)
        with use_timer(name="t") as timer:
            kernels.cast(x, "single")
        assert timer.calls_by_label() == {"Other": 1}


class TestPreconditionerKernels:
    def test_diag_scale(self, rng):
        d = rng.standard_normal(20)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(kernels.diag_scale(d, x), d * x)

    def test_block_diag_solve(self, rng):
        blocks = rng.standard_normal((4, 3, 3))
        x = rng.standard_normal(12)
        expected = np.concatenate([blocks[i] @ x[3 * i: 3 * i + 3] for i in range(4)])
        np.testing.assert_allclose(kernels.block_diag_solve(blocks, x), expected)

    def test_block_diag_solve_shape_check(self, rng):
        with pytest.raises(ValueError):
            kernels.block_diag_solve(rng.standard_normal((2, 3, 3)), rng.standard_normal(5))

    def test_precond_label(self, rng):
        d = rng.standard_normal(10)
        with use_timer(name="t") as timer:
            kernels.diag_scale(d, d.copy())
        assert timer.calls_by_label() == {"Precond": 1}


class TestMeteringSwitches:
    def test_no_timer_no_crash(self, laplace_small):
        kernels.spmv(laplace_small, np.ones(laplace_small.n_cols))

    def test_meter_disabled_records_nothing(self, laplace_small):
        set_context(ExecutionContext(meter=False))
        with use_timer(name="t") as timer:
            kernels.spmv(laplace_small, np.ones(laplace_small.n_cols))
            kernels.norm2(np.ones(5))
        assert timer.total_model_seconds() == 0.0

    def test_nested_timers_both_record(self, laplace_small):
        outer = KernelTimer("outer")
        with use_timer(outer):
            with use_timer(name="inner") as inner:
                kernels.spmv(laplace_small, np.ones(laplace_small.n_cols))
        assert outer.total_calls() == inner.total_calls() == 1

    def test_meter_helpers(self):
        with use_timer(name="t") as timer:
            kernels.meter_cast(1000, 8, 4)
            kernels.meter_host_dense(500)
            kernels.meter_host_transfer(4096)
        assert timer.total_model_seconds() > 0
        assert timer.total_calls() == 3
