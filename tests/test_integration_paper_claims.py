"""End-to-end integration tests asserting the paper's headline claims.

Each test corresponds to a sentence in the paper's abstract/conclusions and
exercises the full stack (matrix generator → preconditioner → solver →
performance model → analysis) on scaled problems.
"""

import numpy as np
import pytest

from repro import ones_rhs
from repro.analysis import speedup_table
from repro.linalg import use_device
from repro.matrices import bentpipe2d, stretched2d, uniflow2d
from repro.perfmodel import get_device
from repro.preconditioners import GmresPolynomialPreconditioner
from repro.solvers import SolverStatus, gmres, gmres_fd, gmres_ir


@pytest.fixture(scope="module")
def bentpipe_runs():
    """Shared GMRES double / IR runs on a moderately hard BentPipe problem."""
    matrix = bentpipe2d(48)
    b = np.ones(matrix.n_rows)
    device = get_device("v100").scaled(matrix.n_rows / 1500 ** 2)
    with use_device(device):
        double = gmres(matrix, b, precision="double", restart=25, tol=1e-10, max_restarts=300)
        single = gmres(matrix, b, precision="single", restart=25, tol=1e-10, max_restarts=60)
        mixed = gmres_ir(matrix, b, restart=25, tol=1e-10, max_restarts=300)
    return matrix, double, single, mixed


class TestHeadlineClaims:
    def test_ir_maintains_double_precision_accuracy(self, bentpipe_runs):
        """'GMRES-IR ... while maintaining double precision accuracy.'"""
        _, double, _, mixed = bentpipe_runs
        assert double.converged and mixed.converged
        assert mixed.relative_residual_fp64 <= 1e-10

    def test_fp32_alone_cannot_reach_double_accuracy(self, bentpipe_runs):
        """Figure 3's fp32 curve: stagnation well above the fp64 tolerance."""
        _, _, single, _ = bentpipe_runs
        assert not single.converged
        assert single.relative_residual_fp64 > 1e-8

    def test_ir_convergence_follows_double(self, bentpipe_runs):
        """'The convergence of the multiprecision version ... follows the
        double precision version closely.'"""
        _, double, _, mixed = bentpipe_runs
        assert mixed.iterations <= double.iterations + 25

    def test_ir_reduces_solve_time_for_unpreconditioned_problem(self, bentpipe_runs):
        """'GMRES-IR could reduce solve time by up to ... 1.4x for
        non-preconditioned problems' (we accept anything in 1.1-1.8 at scale)."""
        _, double, _, mixed = bentpipe_runs
        speedup = double.model_seconds / mixed.model_seconds
        assert 1.1 < speedup < 1.8

    def test_spmv_kernel_speedup_beyond_two(self, bentpipe_runs):
        """Section V-D: the SpMV speedup exceeds the naive 2x expectation."""
        _, double, _, mixed = bentpipe_runs
        speedups = speedup_table(double, mixed).as_dict()
        assert speedups["SpMV"] > 2.0
        assert speedups["SpMV"] < 2.7

    def test_orthogonalization_speedup_modest(self, bentpipe_runs):
        _, double, _, mixed = bentpipe_runs
        speedups = speedup_table(double, mixed).as_dict()
        assert 1.0 < speedups["Total Orthogonalization"] < 1.8

    def test_memory_footprint_of_ir_includes_both_matrices(self, bentpipe_runs):
        """GMRES-IR keeps fp64 and fp32 copies of A in memory."""
        _, _, _, mixed = bentpipe_runs
        assert mixed.details["inner_matrix_bytes"] > 0
        assert mixed.details["outer_matrix_bytes"] > mixed.details["inner_matrix_bytes"]


class TestPreconditionedClaims:
    def test_preconditioned_ir_speedup(self):
        """'... up to 1.5x for preconditioned problems' — polynomial
        preconditioning amplifies the fp32 SpMV advantage."""
        matrix = stretched2d(96, stretch=8)
        b = ones_rhs(matrix)
        device = get_device("v100").scaled(matrix.n_rows / 1500 ** 2)
        with use_device(device):
            poly64 = GmresPolynomialPreconditioner(matrix, degree=10, precision="double")
            poly32 = GmresPolynomialPreconditioner(matrix, degree=10, precision="single")
            ref = gmres(matrix, b, precision="double", restart=25, tol=1e-10,
                        preconditioner=poly64)
            mixed_prec = gmres(matrix, b, precision="double", restart=25, tol=1e-10,
                               preconditioner=poly32)
            ir = gmres_ir(matrix, b, restart=25, tol=1e-10, preconditioner=poly32)
        assert ref.converged and mixed_prec.converged and ir.converged
        assert ir.relative_residual_fp64 <= 1e-10
        speedup_prec = ref.model_seconds / mixed_prec.model_seconds
        speedup_ir = ref.model_seconds / ir.model_seconds
        assert speedup_prec > 1.2
        assert speedup_ir > 1.3

    def test_unpreconditioned_stretched_problem_stalls(self):
        """The Stretched2D problem motivates preconditioning: GMRES(m) makes
        little progress on it without a preconditioner."""
        matrix = stretched2d(96, stretch=8)
        b = ones_rhs(matrix)
        result = gmres(matrix, b, restart=25, tol=1e-10, max_restarts=40)
        assert not result.converged


class TestGmresFdComparison:
    def test_ir_needs_no_switch_tuning(self):
        """Figures 1-2: GMRES-IR is at least competitive with the *best*
        hand-tuned GMRES-FD switch point."""
        matrix = uniflow2d(48)
        b = ones_rhs(matrix)
        device = get_device("v100").scaled(matrix.n_rows / 2500 ** 2)
        with use_device(device):
            double = gmres(matrix, b, precision="double", restart=25, tol=1e-10,
                           max_restarts=300)
            ir = gmres_ir(matrix, b, restart=25, tol=1e-10, max_restarts=300)
            fd_times = []
            for switch in (50, 100, 150):
                fd = gmres_fd(matrix, b, switch_iteration=switch, restart=25, tol=1e-10,
                              max_restarts=300)
                assert fd.converged
                fd_times.append(fd.model_seconds)
        assert ir.converged
        assert ir.model_seconds <= 1.1 * min(fd_times)
        assert ir.model_seconds < double.model_seconds


class TestLossOfAccuracyClaim:
    def test_aggressive_fp32_preconditioner_false_positive_and_ir_fix(self):
        """Section V-F: a high-degree fp32 polynomial inside fp64 GMRES gives a
        false convergence signal; GMRES-IR with the same preconditioner does not."""
        matrix = stretched2d(96, stretch=8)
        b = ones_rhs(matrix)
        poly32 = GmresPolynomialPreconditioner(matrix, degree=40, precision="single")
        risky = gmres(matrix, b, precision="double", restart=25, tol=1e-10,
                      preconditioner=poly32, max_restarts=100)
        assert risky.status == SolverStatus.LOSS_OF_ACCURACY
        assert risky.relative_residual_fp64 > 1e-10
        fixed = gmres_ir(matrix, b, restart=25, tol=1e-10, preconditioner=poly32,
                         max_restarts=100)
        assert fixed.converged
        assert fixed.relative_residual_fp64 <= 1e-10
