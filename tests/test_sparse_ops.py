"""Tests for the raw CSR kernels (spmv/spmm, coo→csr, block-diagonal extraction).

The raw-array kernels under test are the *reference implementations* in
:mod:`repro.backends.numpy_backend`; :mod:`repro.sparse.ops` keeps only
deprecation shims that route through the active backend, pinned at the
bottom of this file.
"""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.numpy_backend import spmm, spmv, spmv_transpose
from repro.config import rng
from repro.sparse import ops
from repro.sparse.ops import coo_to_csr, extract_block_diagonal


def random_scipy(n_rows, n_cols, density, seed):
    return sp.random(
        n_rows, n_cols, density=density, random_state=rng(seed), format="csr"
    )


class TestSpmv:
    def test_matches_scipy_on_random_matrices(self):
        for seed in range(5):
            A = random_scipy(60, 40, 0.1, seed)
            x = rng(seed).standard_normal(40)
            y = spmv(A.data, A.indices, A.indptr, x)
            np.testing.assert_allclose(y, A @ x, rtol=1e-13)

    def test_empty_rows_give_zero(self):
        # Row 1 and the trailing row are empty.
        A = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 0.0], [0.0, 3.0], [0.0, 0.0]]))
        y = spmv(A.data, A.indices, A.indptr, np.array([1.0, 1.0]))
        np.testing.assert_allclose(y, [3.0, 0.0, 3.0, 0.0])

    def test_all_empty_matrix(self):
        A = sp.csr_matrix((3, 3))
        y = spmv(A.data, A.indices, A.indptr, np.ones(3))
        np.testing.assert_allclose(y, np.zeros(3))

    def test_preserves_fp32_dtype(self):
        A = random_scipy(30, 30, 0.2, 1).astype(np.float32)
        x = np.ones(30, dtype=np.float32)
        y = spmv(A.data, A.indices, A.indptr, x)
        assert y.dtype == np.float32

    def test_out_parameter(self):
        A = random_scipy(20, 20, 0.3, 2)
        x = np.ones(20)
        out = np.empty(20)
        y = spmv(A.data, A.indices, A.indptr, x, out=out)
        assert y is out
        np.testing.assert_allclose(out, A @ x)

    def test_out_wrong_length(self):
        A = random_scipy(20, 20, 0.3, 2)
        with pytest.raises(ValueError):
            spmv(A.data, A.indices, A.indptr, np.ones(20), out=np.empty(5))

    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
        density=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_scipy(self, n, m, seed, density):
        A = random_scipy(n, m, density, seed)
        x = rng(seed).standard_normal(m)
        y = spmv(A.data, A.indices, A.indptr, x)
        np.testing.assert_allclose(y, A @ x, rtol=1e-10, atol=1e-12)


class TestSpmm:
    def test_matches_scipy_on_random_matrices(self):
        for seed in range(3):
            A = random_scipy(40, 30, 0.12, seed)
            X = rng(seed).standard_normal((30, 5))
            Y = spmm(A.data, A.indices, A.indptr, X)
            np.testing.assert_allclose(Y, A @ X, rtol=1e-12)

    def test_columns_match_spmv(self):
        A = random_scipy(35, 35, 0.1, 7)
        X = rng(7).standard_normal((35, 4))
        Y = spmm(A.data, A.indices, A.indptr, X)
        for j in range(4):
            np.testing.assert_allclose(
                Y[:, j], spmv(A.data, A.indices, A.indptr, X[:, j].copy()), rtol=1e-13
            )

    def test_empty_rows_and_empty_matrix(self):
        A = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 0.0], [0.0, 3.0]]))
        X = np.array([[1.0, -1.0], [1.0, 2.0]])
        Y = spmm(A.data, A.indices, A.indptr, X)
        np.testing.assert_allclose(Y, A @ X)
        empty = sp.csr_matrix((4, 2))
        np.testing.assert_allclose(
            spmm(empty.data, empty.indices, empty.indptr, X), np.zeros((4, 2))
        )

    def test_preserves_fp32_dtype(self):
        A = random_scipy(20, 20, 0.2, 1).astype(np.float32)
        X = np.ones((20, 3), dtype=np.float32)
        assert spmm(A.data, A.indices, A.indptr, X).dtype == np.float32

    def test_out_parameter_and_validation(self):
        A = random_scipy(15, 15, 0.25, 2)
        X = np.ones((15, 2))
        out = np.empty((15, 2))
        Y = spmm(A.data, A.indices, A.indptr, X, out=out)
        assert Y is out
        with pytest.raises(ValueError):
            spmm(A.data, A.indices, A.indptr, X, out=np.empty((15, 3)))
        with pytest.raises(ValueError):
            spmm(A.data, A.indices, A.indptr, np.ones(15))


class TestSpmvTranspose:
    def test_matches_scipy(self):
        A = random_scipy(25, 35, 0.15, 3)
        x = rng(3).standard_normal(25)
        y = spmv_transpose(A.data, A.indices, A.indptr, x, 35)
        np.testing.assert_allclose(y, A.T @ x, rtol=1e-12)

    def test_wrong_x_length(self):
        A = random_scipy(10, 10, 0.2, 4)
        with pytest.raises(ValueError):
            spmv_transpose(A.data, A.indices, A.indptr, np.ones(11), 10)


class TestDeprecatedOpsShims:
    """repro.sparse.ops kernel names warn and route through the backend."""

    def test_shims_warn(self):
        A = random_scipy(12, 12, 0.3, 0)
        x = np.ones(12)
        X = np.ones((12, 2))
        with pytest.warns(DeprecationWarning):
            ops.spmv(A.data, A.indices, A.indptr, x)
        with pytest.warns(DeprecationWarning):
            ops.spmm(A.data, A.indices, A.indptr, X)
        with pytest.warns(DeprecationWarning):
            ops.spmv_transpose(A.data, A.indices, A.indptr, x, 12)

    def test_shims_match_reference(self):
        A = random_scipy(30, 20, 0.2, 3)
        x = rng(3).standard_normal(20)
        X = rng(4).standard_normal((20, 3))
        xt = rng(5).standard_normal(30)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            np.testing.assert_allclose(
                ops.spmv(A.data, A.indices, A.indptr, x), A @ x, rtol=1e-12
            )
            np.testing.assert_allclose(
                ops.spmm(A.data, A.indices, A.indptr, X), A @ X, rtol=1e-12
            )
            np.testing.assert_allclose(
                ops.spmv_transpose(A.data, A.indices, A.indptr, xt, 20),
                A.T @ xt,
                rtol=1e-12,
            )

    def test_shims_route_through_active_backend(self):
        from repro.linalg.context import use_backend

        A = random_scipy(25, 25, 0.2, 7)
        x = rng(7).standard_normal(25)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with use_backend("scipy"):
                y = ops.spmv(A.data, A.indices, A.indptr, x)
        np.testing.assert_allclose(y, A @ x, rtol=1e-12)

    def test_shim_out_and_validation(self):
        A = random_scipy(20, 20, 0.3, 2)
        out = np.empty(20)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            y = ops.spmv(A.data, A.indices, A.indptr, np.ones(20), out=out)
            assert y is out
            with pytest.raises(ValueError):
                ops.spmv(A.data, A.indices, A.indptr, np.ones(20), out=np.empty(5))
            with pytest.raises(ValueError):
                ops.spmm(A.data, A.indices, A.indptr, np.ones(20))


class TestCooToCsr:
    def test_simple_conversion(self):
        rows = np.array([1, 0, 1])
        cols = np.array([0, 1, 2])
        vals = np.array([3.0, 2.0, 4.0])
        data, indices, indptr = coo_to_csr(rows, cols, vals, (2, 3))
        np.testing.assert_array_equal(indptr, [0, 1, 3])
        np.testing.assert_array_equal(indices, [1, 0, 2])
        np.testing.assert_allclose(data, [2.0, 3.0, 4.0])

    def test_duplicates_summed(self):
        rows = np.array([0, 0, 0])
        cols = np.array([1, 1, 1])
        vals = np.array([1.0, 2.0, 3.0])
        data, indices, indptr = coo_to_csr(rows, cols, vals, (1, 2))
        np.testing.assert_allclose(data, [6.0])
        np.testing.assert_array_equal(indices, [1])

    def test_empty_input(self):
        data, indices, indptr = coo_to_csr(
            np.array([], dtype=int), np.array([], dtype=int), np.array([]), (3, 3)
        )
        assert data.size == 0
        np.testing.assert_array_equal(indptr, [0, 0, 0, 0])

    def test_out_of_range_indices(self):
        with pytest.raises(ValueError):
            coo_to_csr(np.array([5]), np.array([0]), np.array([1.0]), (3, 3))
        with pytest.raises(ValueError):
            coo_to_csr(np.array([0]), np.array([9]), np.array([1.0]), (3, 3))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            coo_to_csr(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))

    @given(
        n=st.integers(min_value=1, max_value=15),
        nnz=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_scipy_coo(self, n, nnz, seed):
        gen = rng(seed)
        rows = gen.integers(0, n, size=nnz)
        cols = gen.integers(0, n, size=nnz)
        vals = gen.standard_normal(nnz)
        data, indices, indptr = coo_to_csr(rows, cols, vals, (n, n))
        ours = sp.csr_matrix((data, indices, indptr), shape=(n, n)).toarray()
        ref = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).toarray()
        np.testing.assert_allclose(ours, ref, rtol=1e-12, atol=1e-14)


class TestExtractBlockDiagonal:
    def test_exact_blocks(self):
        D = np.array(
            [
                [1.0, 2.0, 0.0, 0.0],
                [3.0, 4.0, 0.0, 0.0],
                [9.0, 0.0, 5.0, 6.0],
                [0.0, 0.0, 7.0, 8.0],
            ]
        )
        A = sp.csr_matrix(D)
        blocks = extract_block_diagonal(A.data, A.indices, A.indptr, 4, 2)
        assert blocks.shape == (2, 2, 2)
        np.testing.assert_allclose(blocks[0], [[1, 2], [3, 4]])
        np.testing.assert_allclose(blocks[1], [[5, 6], [7, 8]])

    def test_padding_of_short_last_block(self):
        D = np.diag([1.0, 2.0, 3.0, 4.0, 5.0])
        A = sp.csr_matrix(D)
        blocks = extract_block_diagonal(A.data, A.indices, A.indptr, 5, 2)
        assert blocks.shape == (3, 2, 2)
        # Padded diagonal entry must be 1 so the block stays invertible.
        np.testing.assert_allclose(blocks[2], [[5.0, 0.0], [0.0, 1.0]])

    def test_block_size_one_is_diagonal(self, laplace_small):
        blocks = extract_block_diagonal(
            laplace_small.data, laplace_small.indices, laplace_small.indptr,
            laplace_small.n_rows, 1,
        )
        np.testing.assert_allclose(blocks[:, 0, 0], laplace_small.diagonal())

    def test_invalid_block_size(self, laplace_small):
        with pytest.raises(ValueError):
            extract_block_diagonal(
                laplace_small.data, laplace_small.indices, laplace_small.indptr,
                laplace_small.n_rows, 0,
            )

    def test_preserves_dtype(self, laplace_small):
        A32 = laplace_small.astype("single")
        blocks = extract_block_diagonal(A32.data, A32.indices, A32.indptr, A32.n_rows, 5)
        assert blocks.dtype == np.float32
