"""Tests for GMRES-FD, CG and the three-precision IR extension."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import ones_rhs
from repro.preconditioners import JacobiPreconditioner
from repro.solvers import (
    SolverStatus,
    cg,
    gmres,
    gmres_fd,
    gmres_ir,
    gmres_ir_three_precision,
)


class TestGmresFD:
    def test_converges_to_double_accuracy(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = gmres_fd(laplace_small, b, switch_iteration=20, restart=10, tol=1e-10)
        assert result.converged
        assert result.relative_residual_fp64 <= 1e-10
        assert result.x.dtype == np.float64

    def test_switch_at_zero_is_pure_double(self, laplace_small):
        b = ones_rhs(laplace_small)
        fd = gmres_fd(laplace_small, b, switch_iteration=0, restart=10, tol=1e-10)
        double = gmres(laplace_small, b, restart=10, tol=1e-10)
        assert fd.converged
        assert fd.details["high_iterations"] == double.iterations
        assert fd.details.get("low_iterations", 0) == 0

    def test_phase_split_recorded(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        result = gmres_fd(bentpipe_small, b, switch_iteration=50, restart=25,
                          tol=1e-9, max_restarts=300)
        assert result.details["switch_iteration"] == 50
        assert result.details["low_iterations"] == 50
        assert result.iterations == 50 + result.details["high_iterations"]

    def test_late_switch_wastes_fp32_iterations(self, laplace_small):
        """Switching far beyond what fp32 can exploit only adds iterations
        (the right-hand side of Figures 1 and 2)."""
        b = ones_rhs(laplace_small)
        double = gmres(laplace_small, b, restart=10, tol=1e-10)
        late = gmres_fd(laplace_small, b, switch_iteration=3 * double.iterations,
                        restart=10, tol=1e-10)
        assert late.converged
        assert late.iterations > double.iterations

    def test_fp32_phase_gives_high_phase_head_start(self, bentpipe_small):
        b = ones_rhs(bentpipe_small)
        double = gmres(bentpipe_small, b, restart=25, tol=1e-9, max_restarts=300)
        fd = gmres_fd(bentpipe_small, b, switch_iteration=100, restart=25, tol=1e-9,
                      max_restarts=300)
        assert fd.converged
        assert fd.details["high_iterations"] < double.iterations

    def test_histories_merged_with_offset(self, laplace_small):
        result = gmres_fd(laplace_small, ones_rhs(laplace_small), switch_iteration=20,
                          restart=10, tol=1e-10)
        its = result.history.implicit_iterations
        assert max(its) <= result.iterations + 1
        assert len(its) == result.iterations

    def test_negative_switch_rejected(self, laplace_small):
        with pytest.raises(ValueError):
            gmres_fd(laplace_small, ones_rhs(laplace_small), switch_iteration=-1)

    def test_preconditioned_fd(self, laplace_small):
        M = JacobiPreconditioner(laplace_small)
        result = gmres_fd(laplace_small, ones_rhs(laplace_small), switch_iteration=10,
                          restart=10, tol=1e-10, preconditioner=M)
        assert result.converged

    def test_solver_label(self, laplace_small):
        result = gmres_fd(laplace_small, ones_rhs(laplace_small), switch_iteration=10,
                          restart=10, tol=1e-8)
        assert result.solver == "gmres-fd"
        assert result.precision == "single->double"


class TestCG:
    def test_spd_convergence_matches_direct(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = cg(laplace_small, b, tol=1e-10)
        assert result.converged
        x_ref = spla.spsolve(laplace_small.to_scipy().tocsc(), b)
        np.testing.assert_allclose(result.x, x_ref, rtol=1e-6)

    def test_cg_fewer_kernel_calls_per_iteration_than_gmres(self, laplace_medium):
        b = ones_rhs(laplace_medium)
        r_cg = cg(laplace_medium, b, tol=1e-8)
        r_gm = gmres(laplace_medium, b, restart=30, tol=1e-8)
        calls_cg = r_cg.timer.total_calls() / max(r_cg.iterations, 1)
        calls_gm = r_gm.timer.total_calls() / max(r_gm.iterations, 1)
        assert calls_cg < calls_gm

    def test_preconditioned_cg(self, stretched_small):
        b = ones_rhs(stretched_small)
        plain = cg(stretched_small, b, tol=1e-8, max_iterations=5000)
        precond = cg(stretched_small, b, tol=1e-8, max_iterations=5000,
                     preconditioner=JacobiPreconditioner(stretched_small))
        assert precond.converged
        assert precond.iterations <= plain.iterations

    def test_fp32_cg_limited_accuracy(self, laplace_medium):
        b = ones_rhs(laplace_medium)
        result = cg(laplace_medium, b, precision="single", tol=1e-12, max_iterations=2000)
        assert not result.converged
        assert result.relative_residual_fp64 > 1e-12

    def test_nonspd_breakdown_detected(self, bentpipe_small):
        # A strongly nonsymmetric operator: pAp can go negative.
        b = ones_rhs(bentpipe_small)
        result = cg(bentpipe_small, b, tol=1e-10, max_iterations=2000)
        assert result.status in (SolverStatus.BREAKDOWN, SolverStatus.MAX_ITERATIONS)

    def test_zero_rhs(self, laplace_small):
        result = cg(laplace_small, np.zeros(laplace_small.n_rows))
        assert result.converged and result.iterations == 0

    def test_explicit_residual_checkpoints(self, laplace_medium):
        result = cg(laplace_medium, ones_rhs(laplace_medium), tol=1e-10,
                    explicit_residual_every=10)
        assert len(result.history.explicit_norms) >= result.iterations // 10

    def test_wrong_rhs_length(self, laplace_small):
        with pytest.raises(ValueError):
            cg(laplace_small, np.ones(7))


class TestThreePrecisionIR:
    def test_converges_to_double_accuracy(self, laplace_small):
        b = ones_rhs(laplace_small)
        result = gmres_ir_three_precision(laplace_small, b, restart=20, tol=1e-10,
                                          max_restarts=120)
        assert result.converged
        assert result.relative_residual_fp64 <= 1e-10
        assert result.solver == "gmres-ir3"
        assert result.precision == "half/single/double"

    def test_reports_half_and_fallback_cycle_counts(self, laplace_small):
        result = gmres_ir_three_precision(laplace_small, ones_rhs(laplace_small),
                                          restart=20, tol=1e-8, max_restarts=120)
        details = result.details
        assert details["half_precision_cycles"] + details["fp32_fallback_cycles"] >= 1
        assert details["half_precision_cycles"] >= 0

    def test_ill_conditioned_problem_falls_back_to_fp32(self, stretched_small):
        result = gmres_ir_three_precision(stretched_small, ones_rhs(stretched_small),
                                          restart=20, tol=1e-8, max_restarts=200)
        assert result.details["fp32_fallback_cycles"] >= 0
        assert result.relative_residual_fp64 < 1e-6

    def test_precision_ordering_enforced(self, laplace_small):
        with pytest.raises(ValueError):
            gmres_ir_three_precision(
                laplace_small, ones_rhs(laplace_small),
                inner_precision="double", middle_precision="single",
            )

    def test_zero_rhs(self, laplace_small):
        result = gmres_ir_three_precision(laplace_small, np.zeros(laplace_small.n_rows))
        assert result.converged

    def test_comparable_iterations_to_two_precision_ir(self, laplace_small):
        b = ones_rhs(laplace_small)
        two = gmres_ir(laplace_small, b, restart=20, tol=1e-8)
        three = gmres_ir_three_precision(laplace_small, b, restart=20, tol=1e-8,
                                         max_restarts=120)
        assert three.converged
        assert three.iterations <= 4 * two.iterations
