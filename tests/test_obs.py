"""Tests for repro.obs — tracing, solver probes, metrics and logging.

Covers the observability layer in isolation (tracer semantics, Chrome
export validity, Prometheus exposition-format validation, the stdlib
HTTP exporter, structured logging) plus its two integration seams: the
``probe=`` hook on the solver drivers and the ``obs=`` kwarg on the
serving facade.  The chaos-integration test (span integrity under
faults) lives in ``test_obs_chaos.py``.
"""

from __future__ import annotations

import gc
import json
import logging
import re
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.config import ObsConfig, ReproConfig, get_config, set_config
from repro.matrices import laplace2d
from repro.obs import (
    METRIC_NAME_RE,
    METRIC_NAMES,
    MetricsRegistry,
    Observability,
    ProbeEvent,
    PROBE_KINDS,
    RequestTrace,
    Tracer,
    export_chrome_trace,
    get_logger,
    log_event,
    prometheus_text,
    resolve_observability,
    span_probe,
    start_metrics_server,
)
from repro.obs.trace import _reset_default_tracer, default_tracer
from repro.perfmodel.costs import CostEstimate
from repro.perfmodel.timer import KernelTimer
from repro.serve.telemetry import LatencySummary
from repro.solvers import SolverStatus, block_gmres, cg, gmres


@pytest.fixture(autouse=True)
def _fresh_default_tracer():
    """Keep the process-default tracer out of cross-test state."""
    _reset_default_tracer()
    yield
    _reset_default_tracer()


@pytest.fixture
def matrix():
    return laplace2d(8)


# ---------------------------------------------------------------------- #
# tracer                                                                 #
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_root_span_starts_its_own_trace(self):
        tracer = Tracer()
        root = tracer.start_span("request", tenant="a")
        assert root.trace_id == root.span_id
        assert root.parent_id is None
        assert root.attrs == {"tenant": "a"}
        assert not root.finished

    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer()
        root = tracer.start_span("request")
        child = tracer.start_span("solve", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_finish_is_idempotent_first_closer_wins(self):
        tracer = Tracer()
        span = tracer.start_span("s")
        span.finish(outcome="first")
        end = span.end_us
        span.finish(outcome="second")
        assert span.end_us == end
        assert span.attrs["outcome"] == "second"  # attrs merge, end doesn't
        assert len(tracer.finished_spans()) == 1
        assert tracer.open_spans == 0

    def test_open_span_accounting(self):
        tracer = Tracer()
        spans = [tracer.start_span(f"s{i}") for i in range(3)]
        assert tracer.open_spans == 3
        for span in spans:
            span.finish()
        assert tracer.open_spans == 0

    def test_context_manager_records_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.start_span("risky") as span:
                raise ValueError("boom")
        assert span.finished
        assert "ValueError" in span.attrs["error"]

    def test_durations_are_nonnegative_and_ordered(self):
        tracer = Tracer()
        with tracer.start_span("outer") as outer:
            with tracer.start_span("inner", parent=outer) as inner:
                pass
        assert inner.start_us >= outer.start_us
        assert inner.end_us <= outer.end_us
        assert outer.duration_us >= inner.duration_us >= 0.0

    def test_capacity_bound_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.start_span(f"s{i}").finish()
        finished = tracer.finished_spans()
        assert len(finished) == 4
        assert [s.name for s in finished] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped_spans == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_empties_buffer(self):
        tracer = Tracer()
        tracer.start_span("s").finish()
        tracer.clear()
        assert tracer.finished_spans() == []
        assert tracer.dropped_spans == 0

    def test_spans_by_trace_groups_trees(self):
        tracer = Tracer()
        roots = [tracer.start_span("request") for _ in range(3)]
        for root in roots:
            tracer.start_span("solve", parent=root).finish()
            root.finish()
        groups = tracer.spans_by_trace()
        assert len(groups) == 3
        for root in roots:
            names = {s.name for s in groups[root.trace_id]}
            assert names == {"request", "solve"}

    def test_concurrent_span_churn_is_safe(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def churn():
            barrier.wait()
            for i in range(per_thread):
                root = tracer.start_span("request")
                child = tracer.start_span("solve", parent=root)
                child.event("probe", i=i)
                child.finish()
                root.finish(outcome="converged")

        threads = [threading.Thread(target=churn) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.open_spans == 0
        assert len(tracer.finished_spans()) == n_threads * per_thread * 2
        ids = [s.span_id for s in tracer.finished_spans()]
        assert len(set(ids)) == len(ids)  # no id reuse under contention


class TestRequestTrace:
    def test_full_lifecycle_produces_nested_tree(self):
        tracer = Tracer()
        trace = RequestTrace(tracer, tenant="a", deadline_ms=None)
        trace.submitted()
        trace.dequeued(batch=7, width=2)
        trace.finish("converged", iterations=12)
        spans = tracer.finished_spans()
        assert tracer.open_spans == 0
        by_name = {s.name: s for s in spans}
        assert set(by_name) == {"request", "submit", "queued", "dispatch"}
        root = by_name["request"]
        assert root.attrs["outcome"] == "converged"
        assert root.attrs["iterations"] == 12
        assert root.attrs["tenant"] == "a"
        # Stage spans chain to the root and stay inside its interval...
        stages = [by_name["submit"], by_name["queued"], by_name["dispatch"]]
        for stage in stages:
            assert stage.parent_id == root.span_id
            assert stage.trace_id == root.trace_id
            assert stage.start_us >= root.start_us
            assert stage.end_us <= root.end_us
        # ...and do not overlap each other.
        assert by_name["submit"].end_us <= by_name["queued"].start_us
        assert by_name["queued"].end_us <= by_name["dispatch"].start_us
        assert by_name["dispatch"].attrs["batch"] == 7

    def test_finish_is_one_shot(self):
        tracer = Tracer()
        trace = RequestTrace(tracer)
        trace.finish("cancelled")
        trace.finish("converged")
        trace.dequeued()  # post-terminal transitions are ignored
        roots = [s for s in tracer.finished_spans() if s.name == "request"]
        assert len(roots) == 1
        assert roots[0].attrs["outcome"] == "cancelled"
        assert tracer.open_spans == 0

    def test_finish_without_dequeue_closes_open_stage(self):
        tracer = Tracer()
        trace = RequestTrace(tracer)
        trace.submitted()
        trace.finish("deadline_exceeded")
        assert tracer.open_spans == 0
        names = {s.name for s in tracer.finished_spans()}
        assert names == {"request", "submit", "queued"}

    def test_rejected_is_an_immediately_closed_tree(self):
        tracer = Tracer()
        RequestTrace.rejected(tracer, "rejected", reason="queue_full")
        assert tracer.open_spans == 0
        roots = [s for s in tracer.finished_spans() if s.name == "request"]
        assert len(roots) == 1
        assert roots[0].attrs["outcome"] == "rejected"
        assert roots[0].attrs["reason"] == "queue_full"


# ---------------------------------------------------------------------- #
# Chrome trace-event export                                              #
# ---------------------------------------------------------------------- #
class TestChromeExport:
    def _traced_tracer(self):
        tracer = Tracer()
        trace = RequestTrace(tracer, tenant="a")
        trace.submitted()
        trace.dequeued(width=1)
        trace.root.event("gmres:restart", iteration=10, residual=1e-3)
        trace.finish("converged")
        return tracer

    def test_payload_is_valid_trace_event_json(self, tmp_path):
        tracer = self._traced_tracer()
        path = tmp_path / "trace.json"
        payload = export_chrome_trace(path, tracer=tracer)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["displayTimeUnit"] == "ms"
        assert on_disk["otherData"]["exporter"] == "repro.obs"
        assert on_disk["otherData"]["dropped_spans"] == 0

        events = on_disk["traceEvents"]
        assert events, "export produced no events"
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "M"}
        for event in events:
            assert event["pid"] == 1
            if event["ph"] == "X":  # complete event: interval with args
                assert event["dur"] >= 0
                assert event["ts"] >= 0
                assert "trace_id" in event["args"]
                assert "span_id" in event["args"]
            elif event["ph"] == "i":  # instant event: thread-scoped
                assert event["s"] == "t"
                assert "span_id" in event["args"]
            else:  # metadata: names the thread track
                assert event["name"] == "thread_name"
                assert event["args"]["name"]

    def test_span_counts_reconcile(self):
        tracer = self._traced_tracer()
        payload = export_chrome_trace(tracer=tracer)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == len(tracer.finished_spans())
        assert len(instants) == sum(
            len(s.events) for s in tracer.finished_spans()
        )
        roots = [e for e in complete if "parent_id" not in e["args"]]
        assert len(roots) == 1
        assert roots[0]["args"]["outcome"] == "converged"

    def test_export_without_tracer_raises(self):
        with pytest.raises(RuntimeError, match="tracing is not enabled"):
            export_chrome_trace()


# ---------------------------------------------------------------------- #
# solver probes                                                          #
# ---------------------------------------------------------------------- #
class TestSolverProbes:
    def test_gmres_probe_sequence(self, matrix):
        b = np.ones(matrix.n_rows)
        events = []
        result = gmres(
            matrix, b, restart=10, tol=1e-10, max_restarts=50,
            probe=events.append,
        )
        assert result.status == SolverStatus.CONVERGED
        assert events, "probe saw no events"
        assert all(isinstance(e, ProbeEvent) for e in events)
        assert {e.kind for e in events} <= set(PROBE_KINDS)
        assert all(e.solver == "gmres" for e in events)
        terminals = [e for e in events if e.kind == "terminal"]
        assert len(terminals) == 1
        assert events[-1] is terminals[0]
        assert terminals[0].status == result.status
        assert terminals[0].iteration == result.iterations
        assert terminals[0].residual == pytest.approx(result.relative_residual)
        restarts = [e for e in events if e.kind == "restart"]
        assert restarts, "no restart-boundary events for a multi-cycle solve"
        iters = [e.iteration for e in restarts]
        assert iters == sorted(iters)
        # Probes observe, never mutate: the solve matches an unprobed run.
        bare = gmres(matrix, b, restart=10, tol=1e-10, max_restarts=50)
        assert bare.iterations == result.iterations
        np.testing.assert_allclose(bare.x, result.x)

    def test_gmres_zero_rhs_emits_single_terminal(self, matrix):
        events = []
        gmres(matrix, np.zeros(matrix.n_rows), probe=events.append)
        assert [e.kind for e in events] == ["terminal"]
        assert events[0].residual == 0.0
        assert events[0].status == SolverStatus.CONVERGED

    def test_cg_probe_terminal(self, matrix):
        events = []
        result = cg(
            matrix, np.ones(matrix.n_rows), tol=1e-10,
            explicit_residual_every=5, probe=events.append,
        )
        terminals = [e for e in events if e.kind == "terminal"]
        assert len(terminals) == 1
        assert terminals[0].solver == "cg"
        assert terminals[0].status == result.status
        residuals = [e for e in events if e.kind == "residual"]
        assert all(e.iteration % 5 == 0 for e in residuals)

    def test_block_gmres_probe_reports_deflation_and_statuses(self, matrix):
        rng = np.random.default_rng(5)
        B = rng.standard_normal((matrix.n_rows, 3))
        events = []
        result = block_gmres(
            matrix, B, restart=8, tol=1e-8, max_restarts=60,
            probe=events.append,
        )
        terminals = [e for e in events if e.kind == "terminal"]
        assert len(terminals) == 1
        counts = terminals[0].extra["statuses"]
        assert sum(counts.values()) == B.shape[1]
        assert counts.get("CONVERGED", 0) == sum(
            1 for s in result.statuses if s == SolverStatus.CONVERGED
        )
        for event in events:
            if event.kind == "restart":
                # active == 0 is the final boundary: everything deflated.
                assert 0 <= event.active <= B.shape[1]
                assert event.deflated >= 0

    def test_span_probe_bridges_events_onto_span(self):
        tracer = Tracer()
        span = tracer.start_span("solve")
        hook = span_probe(span)
        hook(ProbeEvent(solver="gmres", kind="restart", iteration=10,
                        restarts=1, residual=1e-3))
        hook(ProbeEvent(solver="gmres", kind="terminal", iteration=12,
                        restarts=1, residual=1e-11,
                        status=SolverStatus.CONVERGED))
        span.finish()
        names = [name for name, _ts, _attrs in span.events]
        assert names == ["gmres:restart", "gmres:terminal"]
        _, _, attrs = span.events[-1]
        assert attrs["status"] == "CONVERGED"
        assert attrs["residual"] == 1e-11


# ---------------------------------------------------------------------- #
# metrics                                                                #
# ---------------------------------------------------------------------- #
#: One Prometheus text-format 0.0.4 sample line:
#:   name{label="value",...} value
#: Label values are quoted strings in which `\\`, `\"` and `\n` escapes
#: are legal and *any* other character — including `{`, `}` and `,` — may
#: appear raw, so the label block must be parsed as quoted strings, not
#: as "anything but braces".
_LABEL_RE = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{' + _LABEL_RE + r'(?:,' + _LABEL_RE + r')*\})?'
    r' (?P<value>-?[0-9.e+-]+|NaN|[+-]Inf)$'
)


def assert_valid_exposition(text: str):
    """Validate Prometheus text exposition format; return sample names."""
    names = []
    typed = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4 and parts[3] in (
                "counter", "gauge", "histogram", "untyped"
            ), line
            typed.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        base = re.sub(r"_(bucket|sum|count)$", "", match.group("name"))
        assert base in typed or match.group("name") in typed, (
            f"sample {line!r} precedes its # TYPE header"
        )
        names.append(match.group("name"))
    assert text == "" or text.endswith("\n")
    return names


class TestMetrics:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_widgets_total", "Widgets.", ("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        with pytest.raises(ValueError):
            c.inc(-1, kind="a")

    def test_label_set_must_match_declaration(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_widgets_total", "Widgets.", ("kind",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(kind="a", extra="b")

    def test_name_convention_is_enforced(self):
        reg = MetricsRegistry()
        for bad in ("widgets_total", "repro_CamelCase", "repro_", "repro_a-b"):
            with pytest.raises(ValueError):
                reg.counter(bad, "nope")

    def test_reregistration_conflicts_are_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "Things.", ("kind",))
        assert reg.counter("repro_things_total", "Things.", ("kind",)) is c
        with pytest.raises(ValueError):
            reg.gauge("repro_things_total", "Things.", ("kind",))
        with pytest.raises(ValueError):
            reg.counter("repro_things_total", "Things.", ("other",))

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        samples = dict(line.rsplit(" ", 1) for line in h.samples())
        assert samples['repro_latency_seconds_bucket{le="0.1"}'] == "1"
        assert samples['repro_latency_seconds_bucket{le="1"}'] == "3"
        assert samples['repro_latency_seconds_bucket{le="10"}'] == "4"
        assert samples['repro_latency_seconds_bucket{le="+Inf"}'] == "5"
        assert samples["repro_latency_seconds_count"] == "5"
        assert float(samples["repro_latency_seconds_sum"]) == pytest.approx(56.05)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_escape_check", "Escaping.", ("name",))
        g.set(1, name='with "quotes"\nand\\slash')
        (line,) = g.samples()
        assert '\\"quotes\\"' in line and "\\n" in line and "\\\\slash" in line
        assert "\n" not in line

    def test_hostile_label_values_survive_exposition(self):
        """Escaping pin: every text-format 0.0.4 special plus raw braces,
        commas and equals signs must round-trip through the exposition
        and still validate as a well-formed sample line."""
        reg = MetricsRegistry()
        g = reg.gauge("repro_escape_pin", "Hostile labels.", ("name",))
        hostile = 'a\\b"c"\nd{e},f=g'
        g.set(1, name=hostile)
        text = prometheus_text(reg)
        names = assert_valid_exposition(text)
        assert "repro_escape_pin" in names
        (line,) = [
            ln for ln in text.splitlines() if ln.startswith("repro_escape_pin{")
        ]
        # Escapes per the spec: backslash, double-quote and newline only.
        assert 'name="a\\\\b\\"c\\"\\nd{e},f=g"' in line
        assert "\n" not in line

    def test_exposition_format_is_valid(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "Reqs.", ("scope",)).inc(scope="x")
        reg.gauge("repro_depth", "Depth.").set(3)
        h = reg.histogram("repro_wait_seconds", "Waits.", ("scope",))
        h.observe(0.2, scope="x")
        names = assert_valid_exposition(prometheus_text(reg))
        assert "repro_requests_total" in names
        assert "repro_depth" in names
        assert "repro_wait_seconds_bucket" in names

    def test_catalog_names_are_valid_and_unique(self):
        assert len(set(METRIC_NAMES)) == len(METRIC_NAMES)
        for name in METRIC_NAMES:
            assert METRIC_NAME_RE.match(name), name

    def test_collector_retirement_on_false(self):
        reg = MetricsRegistry()
        calls = []

        def once(registry):
            calls.append(1)
            return False

        reg.register_collector(once)
        reg.expose()
        reg.expose()
        assert len(calls) == 1  # retired after the first scrape

    def test_session_collector_retires_with_its_session(self, matrix):
        reg = MetricsRegistry()
        session = repro.session(
            matrix, restart=10, tol=1e-8,
            obs=Observability(tracer=None, registry=reg),
        )
        with session:
            session.submit(np.ones(matrix.n_rows)).result()
            text = prometheus_text(reg)
            assert_valid_exposition(text)
            assert re.search(
                r'repro_requests_submitted_total\{scope="session",name="[^"]+"\} 1',
                text,
            )
        # Closing the session retires the collector AND drops its series:
        # a scrape must not keep exporting a dead session forever.
        text = prometheus_text(reg)
        assert_valid_exposition(text)
        assert 'scope="session"' not in text
        del session
        gc.collect()
        reg.collect()
        assert not reg._collectors  # weakref collector retired itself

    def test_farm_metrics_cover_breakers_and_queues(self, matrix):
        reg = MetricsRegistry()
        farm = repro.farm(
            workers=1, name="mfarm",
            obs=Observability(tracer=None, registry=reg),
        )
        farm.register("lap", matrix, restart=10, tol=1e-8)
        with farm:
            farm.submit("lap", np.ones(matrix.n_rows)).result()
            text = prometheus_text(reg)
            assert_valid_exposition(text)
            assert 'repro_breaker_state{name="mfarm",tenant="lap"} 0' in text
            assert 'repro_queue_depth{name="mfarm",tenant="lap"} 0' in text
            assert re.search(
                r'repro_requests_completed_total\{scope="farm",name="mfarm"\} 1',
                text,
            )
            assert re.search(
                r'repro_sessions_created_total\{name="mfarm"\} 1', text
            )
        # A closed farm's series disappear from the exposition.
        text = prometheus_text(reg)
        assert_valid_exposition(text)
        assert "mfarm" not in text


class TestHTTPExporter:
    def test_serves_metrics_on_ephemeral_port(self):
        reg = MetricsRegistry()
        reg.counter("repro_pings_total", "Pings.").inc()
        with start_metrics_server(port=0, registry=reg) as server:
            assert server.port != 0
            with urllib.request.urlopen(server.url, timeout=10) as response:
                assert response.status == 200
                assert "0.0.4" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert "repro_pings_total 1" in body
            assert_valid_exposition(body)
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/nope"), timeout=10
                )


# ---------------------------------------------------------------------- #
# structured logging                                                     #
# ---------------------------------------------------------------------- #
class TestLogging:
    def test_log_event_formats_key_values(self, caplog):
        logger = get_logger("serve")
        assert logger.name == "repro.serve"
        with caplog.at_level(logging.INFO, logger="repro"):
            log_event(logger, "batch_retry_sequential", width=4,
                      cause="nonfinite residual", ratio=0.3333333333)
        (record,) = caplog.records
        assert record.message.startswith("batch_retry_sequential ")
        assert "width=4" in record.message
        assert 'cause="nonfinite residual"' in record.message  # quoted: space
        assert "ratio=0.333333" in record.message  # floats use %.6g
        assert record.name == "repro.serve"

    def test_log_event_honours_level(self, caplog):
        logger = get_logger("serve.farm")
        with caplog.at_level(logging.WARNING, logger="repro"):
            log_event(logger, "ignored_info", detail="x")
            log_event(logger, "breaker_open", level=logging.WARNING, tenant="a")
        assert [r.message.split()[0] for r in caplog.records] == ["breaker_open"]
        assert caplog.records[0].levelno == logging.WARNING

    def test_root_logger_namespace(self):
        assert get_logger().name == "repro"


# ---------------------------------------------------------------------- #
# config + facade plumbing                                               #
# ---------------------------------------------------------------------- #
class TestObsConfig:
    def test_defaults_are_off_for_tracing_on_for_metrics(self):
        cfg = ReproConfig()
        assert cfg.obs.tracing is False
        assert cfg.obs.metrics is True
        assert cfg.obs.trace_capacity == 65536

    def test_frozen(self):
        with pytest.raises(Exception):
            ObsConfig().tracing = True  # type: ignore[misc]

    def test_config_driven_default_tracer(self):
        assert default_tracer() is None  # tracing off by default
        set_config(ReproConfig(obs=ObsConfig(tracing=True, trace_capacity=128)))
        _reset_default_tracer()
        tracer = default_tracer()
        assert isinstance(tracer, Tracer)
        assert default_tracer() is tracer  # lazy singleton
        assert tracer._capacity == 128

    def test_explicit_enable_overrides_config(self):
        tracer = repro.obs.enable_tracing(capacity=64)
        assert default_tracer() is tracer
        repro.obs.disable_tracing()
        assert default_tracer() is None  # even though config might say on

    def test_resolve_observability(self):
        assert resolve_observability(None).tracer is None  # config default
        tracer = Tracer()
        shorthand = resolve_observability(tracer)
        assert shorthand.tracer is tracer
        bundle = Observability.disabled()
        assert resolve_observability(bundle) is bundle
        with pytest.raises(TypeError):
            resolve_observability(42)

    def test_disabled_turns_everything_off(self):
        obs = Observability.disabled()
        assert obs.tracer is None and obs.registry is None

    def test_metrics_config_gates_default_registry(self):
        set_config(ReproConfig(obs=ObsConfig(metrics=False)))
        assert Observability().registry is None
        set_config(ReproConfig())
        assert Observability().registry is repro.obs.default_registry()

    def test_session_facade_accepts_obs(self, matrix):
        tracer = Tracer()
        with repro.session(matrix, restart=10, tol=1e-8, obs=tracer) as s:
            s.submit(np.ones(matrix.n_rows)).result()
        assert tracer.open_spans == 0
        roots = [x for x in tracer.finished_spans() if x.name == "request"]
        assert len(roots) == 1
        assert roots[0].attrs["outcome"] == "converged"


# ---------------------------------------------------------------------- #
# satellite pins: telemetry zeros + deterministic timer summaries        #
# ---------------------------------------------------------------------- #
class TestLatencySummaryEmptyWindow:
    def test_empty_window_is_all_zeros(self):
        summary = LatencySummary.from_seconds([])
        assert summary.count == 0
        assert summary.mean_ms == 0.0
        assert summary.p50_ms == 0.0
        assert summary.p95_ms == 0.0
        assert summary.max_ms == 0.0
        assert all(v == 0 for v in summary.as_dict().values())

    def test_empty_iterator_not_just_empty_list(self):
        summary = LatencySummary.from_seconds(iter(()))
        assert summary.count == 0 and summary.max_ms == 0.0

    def test_nonempty_window_converts_to_ms(self):
        summary = LatencySummary.from_seconds([0.001, 0.003])
        assert summary.count == 2
        assert summary.mean_ms == pytest.approx(2.0)
        assert summary.max_ms == pytest.approx(3.0)


class TestKernelTimerSummaryOrder:
    def test_equal_cost_labels_sort_by_name(self):
        timer = KernelTimer("t")
        # Insert in an order that would betray dict-insertion ordering.
        for label in ("zeta", "alpha", "mid"):
            timer.record(label, "double", CostEstimate(1.0, 0.0, 0.0))
        lines = timer.summary().splitlines()[1:]
        assert [line.split()[0] for line in lines] == ["alpha", "mid", "zeta"]

    def test_descending_cost_dominates(self):
        timer = KernelTimer("t")
        timer.record("cheap", "double", CostEstimate(0.5, 0.0, 0.0))
        timer.record("dear", "double", CostEstimate(2.0, 0.0, 0.0))
        timer.record("tied_b", "double", CostEstimate(1.0, 0.0, 0.0))
        timer.record("tied_a", "double", CostEstimate(1.0, 0.0, 0.0))
        lines = timer.summary().splitlines()[1:]
        labels = [line.split()[0] for line in lines]
        assert labels == ["dear", "tied_a", "tied_b", "cheap"]

    def test_summary_is_deterministic_across_insertion_orders(self):
        a, b = KernelTimer("x"), KernelTimer("x")
        costs = [("SpMV", 1.0), ("Norm", 1.0), ("Other", 0.25)]
        for label, seconds in costs:
            a.record(label, "double", CostEstimate(seconds, 0.0, 0.0))
        for label, seconds in reversed(costs):
            b.record(label, "double", CostEstimate(seconds, 0.0, 0.0))
        assert a.summary() == b.summary()
