"""Tests for the kernel cost model."""

import pytest

from repro.perfmodel.costs import DEFAULT_EFFICIENCY, CostEstimate, KernelCostModel
from repro.perfmodel.device import get_device


@pytest.fixture
def model():
    return KernelCostModel("v100")


class TestCostEstimate:
    def test_addition(self):
        a = CostEstimate(1.0, 10.0, 100.0)
        b = CostEstimate(2.0, 20.0, 200.0)
        c = a + b
        assert (c.seconds, c.bytes, c.flops) == (3.0, 30.0, 300.0)


class TestConstruction:
    def test_device_by_name_or_spec(self):
        assert KernelCostModel("v100").device.name == "v100"
        spec = get_device("a100")
        assert KernelCostModel(spec).device is spec

    def test_efficiency_overrides_merge(self):
        model = KernelCostModel("v100", efficiency={"spmv": {8: 0.5}})
        assert model.efficiency["spmv"][8] == 0.5
        # untouched entries keep defaults
        assert model.efficiency["spmv"][4] == DEFAULT_EFFICIENCY["spmv"][4]
        assert model.efficiency["gemv_t"] == DEFAULT_EFFICIENCY["gemv_t"]

    def test_unknown_width_falls_back_to_nearest(self, model):
        bw = model.efficiency_bandwidth("spmv", 16)
        assert bw > 0


class TestKernelCosts:
    def test_spmv_paper_scale_speedup(self, model):
        """At BentPipe2D1500 scale the modelled SpMV speedup must land in the
        paper's observed 2.3-2.6x range."""
        n, w, bw = 2_250_000, 5, 1500
        t64 = model.spmv(n, n, w * n, 8, bw).seconds
        t32 = model.spmv(n, n, w * n, 4, bw).seconds
        assert 2.2 <= t64 / t32 <= 2.7

    def test_gemv_trans_paper_scale_speedup(self, model):
        n, k = 2_250_000, 25
        t64 = model.gemv(n, k, 8, trans=True).seconds
        t32 = model.gemv(n, k, 4, trans=True).seconds
        assert 1.1 <= t64 / t32 <= 1.5  # paper: 1.28

    def test_gemv_notrans_paper_scale_speedup(self, model):
        n, k = 2_250_000, 25
        t64 = model.gemv(n, k, 8, trans=False).seconds
        t32 = model.gemv(n, k, 4, trans=False).seconds
        assert 1.35 <= t64 / t32 <= 1.75  # paper: 1.57

    def test_norm_modest_speedup(self, model):
        n = 2_250_000
        t64 = model.norm2(n, 8).seconds
        t32 = model.norm2(n, 4).seconds
        assert 1.0 <= t64 / t32 <= 1.6  # paper: 1.15

    def test_costs_scale_with_size(self, model):
        small = model.axpy(1000, 8).seconds
        large = model.axpy(1_000_000, 8).seconds
        assert large > small

    def test_launch_latency_floor(self, model):
        assert model.scal(1, 8).seconds >= model.device.launch_latency

    def test_bytes_and_flops_accounting(self, model):
        est = model.axpy(1000, 8)
        assert est.bytes == 3 * 1000 * 8
        assert est.flops == 2000
        dot = model.dot(500, 4)
        assert dot.bytes == 2 * 500 * 4

    def test_cast_counts_both_widths(self, model):
        est = model.cast(1000, 8, 4)
        assert est.bytes == 1000 * 12

    def test_host_transfer(self, model):
        est = model.host_transfer(1 << 20)
        assert est.seconds > model.device.host_transfer_latency

    def test_host_dense_op(self, model):
        small = model.host_dense_op(10)
        big = model.host_dense_op(10_000_000)
        assert big.seconds > small.seconds >= model.device.host_op_latency

    def test_copy_and_scal_traffic(self, model):
        assert model.copy(100, 8).bytes == 1600
        assert model.scal(100, 8).bytes == 1600

    def test_spmv_includes_rowptr_and_result(self, model):
        est = model.spmv(1000, 1000, 5000, 8, 10)
        # values + indices + compulsory x + rowptr + y
        assert est.bytes >= 5000 * 12 + 1000 * 8

    def test_memory_bound_kernels_insensitive_to_flops_peak(self):
        """The GMRES kernels are memory bound: doubling peak FLOPs must not
        change their modelled time."""
        import dataclasses

        v100 = get_device("v100")
        fast = dataclasses.replace(v100, name="v100-fast", flops_fp64=2 * v100.flops_fp64)
        t_base = KernelCostModel(v100).spmv(10_000, 10_000, 50_000, 8, 100).seconds
        t_fast = KernelCostModel(fast).spmv(10_000, 10_000, 50_000, 8, 100).seconds
        assert t_base == pytest.approx(t_fast)
