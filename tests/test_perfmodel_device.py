"""Tests for repro.perfmodel.device."""

import pytest

from repro.perfmodel.device import KNOWN_DEVICES, DeviceSpec, get_device


class TestGetDevice:
    def test_v100_default_values(self):
        v100 = get_device("v100")
        assert v100.name == "v100"
        assert v100.l2_bytes == 6 * 1024 * 1024
        assert v100.memory_bytes == 16 * 1024 ** 3
        assert v100.memory_bandwidth > 5e11
        assert v100.is_gpu

    def test_case_insensitive(self):
        assert get_device("V100") is get_device("v100")

    def test_unknown_device_raises_with_names(self):
        with pytest.raises(KeyError) as exc:
            get_device("h100")
        assert "v100" in str(exc.value)

    def test_known_devices_registry(self):
        assert {"v100", "a100", "p100", "host"} <= set(KNOWN_DEVICES)

    def test_host_is_not_gpu(self):
        assert not get_device("host").is_gpu

    def test_peak_flops_by_width(self):
        v100 = get_device("v100")
        assert v100.peak_flops(8) < v100.peak_flops(4) <= v100.peak_flops(2)


class TestScaledDevice:
    def test_scaling_capacities_and_latencies(self):
        v100 = get_device("v100")
        scaled = v100.scaled(0.01)
        assert scaled.l2_bytes == pytest.approx(v100.l2_bytes * 0.01, rel=0.01)
        assert scaled.launch_latency == pytest.approx(v100.launch_latency * 0.01)
        assert scaled.host_op_latency == pytest.approx(v100.host_op_latency * 0.01)
        assert scaled.memory_bytes == pytest.approx(v100.memory_bytes * 0.01, rel=0.01)

    def test_scaling_preserves_bandwidth_and_flops(self):
        v100 = get_device("v100")
        scaled = v100.scaled(0.001)
        assert scaled.memory_bandwidth == v100.memory_bandwidth
        assert scaled.flops_fp32 == v100.flops_fp32

    def test_scaled_name(self):
        assert "x0.5" in get_device("v100").scaled(0.5).name
        assert get_device("v100").scaled(0.5, name="tiny").name == "tiny"

    def test_scale_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            get_device("v100").scaled(0.0)
        with pytest.raises(ValueError):
            get_device("v100").scaled(-1)

    def test_upscaling_allowed(self):
        bigger = get_device("v100").scaled(2.0)
        assert bigger.l2_bytes == 2 * get_device("v100").l2_bytes

    def test_scaled_is_new_instance(self):
        v100 = get_device("v100")
        assert v100.scaled(0.5) is not v100
        assert isinstance(v100.scaled(0.5), DeviceSpec)
