"""Tests for the MultiVector (Krylov basis block)."""

import numpy as np
import pytest

from repro.linalg import MultiVector
from repro.perfmodel.timer import use_timer


class TestConstruction:
    def test_shape_and_precision(self):
        V = MultiVector(100, 11, "single")
        assert V.length == 100
        assert V.capacity == 11
        assert V.count == 0
        assert V.dtype == np.float32

    def test_column_major_storage(self):
        V = MultiVector(50, 5)
        assert V.block(5).flags["F_CONTIGUOUS"]

    def test_storage_bytes(self):
        V = MultiVector(100, 4, "double")
        assert V.storage_bytes() == 100 * 4 * 8

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MultiVector(-1, 5)
        with pytest.raises(ValueError):
            MultiVector(10, 0)


class TestAppendAndAccess:
    def test_append_and_column(self, rng):
        V = MultiVector(20, 3)
        v0 = rng.standard_normal(20)
        idx = V.append(v0)
        assert idx == 0
        assert V.count == 1
        np.testing.assert_allclose(V.column(0), v0)

    def test_append_casts_to_block_precision(self, rng):
        V = MultiVector(20, 3, "single")
        V.append(rng.standard_normal(20))  # float64 input
        assert V.column(0).dtype == np.float32

    def test_append_full_raises(self, rng):
        V = MultiVector(10, 1)
        V.append(rng.standard_normal(10))
        with pytest.raises(RuntimeError):
            V.append(rng.standard_normal(10))

    def test_append_wrong_length(self):
        V = MultiVector(10, 2)
        with pytest.raises(ValueError):
            V.append(np.ones(7))

    def test_column_out_of_range(self):
        V = MultiVector(10, 2)
        with pytest.raises(IndexError):
            V.column(2)

    def test_block_view_reflects_count(self, rng):
        V = MultiVector(10, 4)
        V.append(rng.standard_normal(10))
        V.append(rng.standard_normal(10))
        assert V.block().shape == (10, 2)
        assert V.block(1).shape == (10, 1)

    def test_block_out_of_range(self):
        with pytest.raises(IndexError):
            MultiVector(10, 2).block(3)

    def test_reset_and_set_count(self, rng):
        V = MultiVector(10, 4)
        V.append(rng.standard_normal(10))
        V.reset()
        assert V.count == 0
        V.set_count(0)
        with pytest.raises(ValueError):
            V.set_count(5)

    def test_column_views_are_writable(self, rng):
        V = MultiVector(10, 2)
        V.append(np.zeros(10))
        V.column(0)[:] = 7.0
        np.testing.assert_allclose(V.block(1)[:, 0], 7.0)


class TestBlockOperations:
    def test_project(self, rng):
        V = MultiVector(30, 5)
        vecs = [rng.standard_normal(30) for _ in range(3)]
        for v in vecs:
            V.append(v)
        w = rng.standard_normal(30)
        expected = np.column_stack(vecs).T @ w
        np.testing.assert_allclose(V.project(w), expected)

    def test_subtract_projection(self, rng):
        V = MultiVector(30, 5)
        for _ in range(2):
            V.append(rng.standard_normal(30))
        w = rng.standard_normal(30)
        h = rng.standard_normal(2)
        expected = w - V.block() @ h
        V.subtract_projection(w, h)
        np.testing.assert_allclose(w, expected)

    def test_combine(self, rng):
        V = MultiVector(30, 5)
        for _ in range(3):
            V.append(rng.standard_normal(30))
        y = rng.standard_normal(3)
        np.testing.assert_allclose(V.combine(y), V.block() @ y, rtol=1e-12)

    def test_block_ops_are_metered(self, rng):
        V = MultiVector(30, 5)
        V.append(rng.standard_normal(30))
        w = rng.standard_normal(30)
        with use_timer(name="t") as timer:
            h = V.project(w)
            V.subtract_projection(w, h)
            V.combine(np.ones(1))
        calls = timer.calls_by_label()
        assert calls["GEMV (Trans)"] == 1
        assert calls["GEMV (No Trans)"] == 2  # subtract + combine
