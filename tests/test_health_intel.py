"""Health intelligence: SLO engine, anomaly detection, adaptive sampling.

Four layers under test (ISSUE 10):

* :class:`repro.obs.Sampler` — deterministic head stride + tail keep
  rules, including the acceptance gates: head sampling honours the
  configured rate exactly over >= 1k requests, tail sampling retains
  100% of failed / timed-out requests.
* :class:`repro.obs.SloEngine` — sliding windows, burn-rate math and
  multi-window alerting, all under injected clocks.
* The anomaly detectors — convergence stagnation, residual spikes,
  non-finite residuals, breakdowns, latency spikes, breaker flapping and
  cost-model drift, from synthetic streams.
* :class:`repro.obs.HealthMonitor` end to end — the chaos alert
  integrity gate (fault episodes raise typed alerts and flip
  ``/healthz`` away from ``healthy``; a healthy replay raises zero
  alerts and burns zero budget) plus the ``/healthz`` + ``/slo`` HTTP
  surface, and trace-ledger reconciliation across ``farm.close``
  racing in-flight submits.
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.matrices import laplace2d
from repro.obs import (
    ALERT_SEVERITIES,
    AlertLedger,
    BreakerFlapDetector,
    ConvergenceWatch,
    HealthMonitor,
    LatencySpikeDetector,
    Observability,
    ProbeEvent,
    Sampler,
    SloEngine,
    SloPolicy,
    Tracer,
    cost_model_drift,
    prometheus_text,
    start_metrics_server,
    watch_health,
)
from repro.obs.metrics import MetricsRegistry
from repro.perfmodel.timer import KernelRecord
from repro.serve import DeadlineExceededError, RejectedError
from repro.solvers import SolverStatus
from repro.testing import FaultInjectingBackend, fault_injecting_session_factory
from repro.backends import get_backend


@pytest.fixture(scope="module")
def matrix():
    return laplace2d(8)  # n = 64


class FakeClock:
    """Injectable monotonic clock."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _request_roots(tracer):
    return [
        s
        for s in tracer.finished_spans()
        if s.parent_id is None and s.name == "request"
    ]


# ---------------------------------------------------------------------- #
# adaptive sampling                                                      #
# ---------------------------------------------------------------------- #
class TestSampler:
    def test_head_rate_is_exact_over_1k_requests(self):
        # Acceptance gate: configured rate +/- 2% over >= 1k requests.
        # The deterministic stride makes it exact.
        for rate in (0.1, 0.25, 0.5):
            sampler = Sampler(head_rate=rate)
            kept = sum(sampler.head_sample() for _ in range(1000))
            assert kept == int(1000 * rate)
            assert abs(kept / 1000 - rate) <= 0.02
            assert sampler.requests_seen == 1000
            assert sampler.head_sampled == kept

    def test_head_rate_extremes(self):
        assert all(Sampler(head_rate=1.0).head_sample() for _ in range(50))
        off = Sampler(head_rate=0.0)
        assert not any(off.head_sample() for _ in range(50))

    def test_tail_keeps_every_failure_outcome(self):
        sampler = Sampler(head_rate=0.0)
        for outcome in ("failed", "timed_out", "error", "rejected", "abandoned"):
            assert sampler.tail_keep(outcome, 10.0, False), outcome
        assert not sampler.tail_keep("converged", 10.0, False)
        assert not sampler.tail_keep("cancelled", 10.0, False)

    def test_tail_keeps_detector_flagged(self):
        sampler = Sampler(head_rate=0.0)
        assert sampler.tail_keep("converged", 10.0, True)

    def test_tail_keeps_slowest_decile(self):
        sampler = Sampler(head_rate=0.0, min_slow_samples=32)
        for us in range(1, 101):
            sampler.observe(float(us))
        assert sampler.tail_keep("converged", 99.0, False)  # top decile
        assert not sampler.tail_keep("converged", 50.0, False)  # median

    def test_tail_disabled_drops_everything(self):
        sampler = Sampler(head_rate=0.0, tail_keep=False)
        assert not sampler.tail_keep("failed", 10.0, True)


class TestAdaptiveTracingInServeLayer:
    def test_converged_requests_are_sampled_out(self, matrix):
        tracer = Tracer(sampler=Sampler(head_rate=0.0, tail_keep=True))
        obs = Observability(tracer=tracer, registry=None)
        with repro.session(matrix, restart=10, tol=1e-8, obs=obs) as session:
            rng = np.random.default_rng(0)
            for _ in range(6):
                session.submit(rng.standard_normal(matrix.n_rows)).result()
        assert _request_roots(tracer) == []
        assert tracer.sampled_out_traces == 6
        assert tracer.open_spans == 0

    def test_head_sampling_in_serve_path_is_exact(self, matrix):
        tracer = Tracer(sampler=Sampler(head_rate=0.5, tail_keep=False))
        obs = Observability(tracer=tracer, registry=None)
        with repro.session(matrix, restart=10, tol=1e-8, obs=obs) as session:
            rng = np.random.default_rng(1)
            for _ in range(20):
                session.submit(rng.standard_normal(matrix.n_rows)).result()
        roots = _request_roots(tracer)
        assert len(roots) == 10
        assert all(r.attrs.get("sampled") == "head" for r in roots)
        assert tracer.sampled_out_traces == 10

    def test_tail_retains_every_timed_out_request(self, matrix):
        # Acceptance gate: 100% retention of failed / timed-out requests
        # with head sampling fully off.
        tracer = Tracer(sampler=Sampler(head_rate=0.0, tail_keep=True))
        obs = Observability(tracer=tracer, registry=None)
        farm = repro.farm(workers=1, name="tailfarm", obs=obs)
        farm.register("lap", matrix, restart=10, tol=1e-8)
        rng = np.random.default_rng(2)
        n_bad = 0
        futures = []
        with farm:
            for i in range(12):
                deadline = 0.0 if i % 3 == 0 else None  # every 3rd is DOA
                try:
                    futures.append(
                        farm.submit(
                            "lap",
                            rng.standard_normal(matrix.n_rows),
                            deadline_ms=deadline,
                        )
                    )
                except (RejectedError, DeadlineExceededError):
                    n_bad += 1
                    continue
            for future in futures:
                try:
                    future.result(timeout=30)
                except DeadlineExceededError:
                    n_bad += 1
        assert n_bad > 0
        roots = _request_roots(tracer)
        bad_roots = [
            r for r in roots if r.attrs.get("outcome") not in ("converged",)
        ]
        assert len(bad_roots) == n_bad  # every failure retained
        assert all(r.attrs.get("sampled") == "tail" for r in bad_roots)
        # Ledger reconciles: kept roots + sampled out == every request seen.
        assert len(roots) + tracer.sampled_out_traces == 12
        assert tracer.open_spans == 0

    def test_deferred_trace_reconstructs_stage_children(self, matrix):
        tracer = Tracer(sampler=Sampler(head_rate=0.0, tail_keep=True))
        obs = Observability(tracer=tracer, registry=None)
        farm = repro.farm(workers=1, name="stagesfarm", obs=obs)
        farm.register("lap", matrix, restart=10, tol=1e-8)
        with farm:
            with pytest.raises(DeadlineExceededError):
                farm.submit(
                    "lap", np.ones(matrix.n_rows), deadline_ms=0.0
                ).result(timeout=30)
        (root,) = _request_roots(tracer)
        children = [
            s for s in tracer.finished_spans() if s.parent_id == root.span_id
        ]
        names = {c.name for c in children}
        assert "submit" in names  # stage marks were replayed into spans
        for child in children:
            assert child.start_us >= root.start_us - 0.01
            assert child.end_us <= (root.end_us or 0) + 0.01


# ---------------------------------------------------------------------- #
# SLO engine                                                             #
# ---------------------------------------------------------------------- #
class TestSloEngine:
    POLICY = SloPolicy(
        availability_target=0.99, fast_window_s=10.0, slow_window_s=100.0
    )

    def test_empty_windows_are_healthy(self):
        clock = FakeClock()
        engine = SloEngine(self.POLICY, clock=clock)
        engine.tracker("svc")
        status = engine.status("svc")
        assert status.fast.total == 0
        assert status.fast.availability == 1.0
        assert status.fast.burn_rate == 0.0
        assert not status.breached
        assert status.error_budget_remaining == 1.0

    def test_burn_rate_math(self):
        clock = FakeClock()
        engine = SloEngine(self.POLICY, clock=clock)
        tracker = engine.tracker("svc")
        # 10 requests, 1 failed: error rate 0.1 against a 0.01 budget.
        tracker.record_batch([0.001] * 10, 0.002, failed=1)
        status = engine.status("svc")
        assert status.fast.total == 10
        assert status.fast.bad == 1
        assert status.fast.availability == pytest.approx(0.9)
        assert status.fast.burn_rate == pytest.approx(10.0)
        # Both windows see the same events here -> both over threshold?
        # fast threshold 14.4 > 10: no burn alert despite the slow window.
        assert status.slow.burn_rate == pytest.approx(10.0)
        assert not status.burn_alert

    def test_multi_window_alert_requires_both_windows(self):
        clock = FakeClock()
        engine = SloEngine(self.POLICY, clock=clock)
        tracker = engine.tracker("svc")
        # Hard outage: 20/20 failed -> burn 100x in both windows.
        tracker.record_batch([0.001] * 20, 0.001, failed=20)
        status = engine.status("svc")
        assert status.burn_alert and status.breached
        assert status.error_budget_remaining == 0.0
        # Slide past the fast window but stay inside the slow one: the
        # fast window empties, so the alert clears (fast reacts first).
        clock.advance(50.0)
        status = engine.status("svc")
        assert status.fast.total == 0
        assert status.slow.total == 20
        assert not status.burn_alert

    def test_events_age_out_of_the_slow_window(self):
        clock = FakeClock()
        engine = SloEngine(self.POLICY, clock=clock)
        tracker = engine.tracker("svc")
        tracker.record_batch([0.001] * 5, 0.001, failed=5)
        clock.advance(101.0)
        status = engine.status("svc")
        assert status.slow.total == 0
        assert status.error_budget_remaining == 1.0

    def test_cancellations_are_neutral(self):
        clock = FakeClock()
        engine = SloEngine(self.POLICY, clock=clock)
        tracker = engine.tracker("svc")
        tracker.record_batch([0.001] * 4, 0.001, cancelled=2)
        tracker.record_cancelled()
        status = engine.status("svc")
        assert status.fast.total == 2  # only the two good completions count
        assert status.fast.availability == 1.0

    def test_latency_objective(self):
        clock = FakeClock()
        policy = SloPolicy(
            availability_target=0.99,
            latency_p95_ms=1.0,
            fast_window_s=10.0,
            slow_window_s=100.0,
        )
        engine = SloEngine(policy, clock=clock)
        tracker = engine.tracker("svc")
        tracker.record_batch([0.005] * 20, 0.005)  # 10 ms >> 1 ms bound
        status = engine.status("svc")
        assert status.fast.latency_p95_ms == pytest.approx(10.0)
        assert status.fast.latency_breached
        assert status.latency_alert and status.breached

    def test_rejections_count_against_availability(self):
        clock = FakeClock()
        engine = SloEngine(self.POLICY, clock=clock)
        tracker = engine.tracker("svc")
        tracker.record_rejected()
        tracker.record_timeout()
        tracker.record_abandoned()
        tracker.record_batch([0.001], 0.001)
        status = engine.status("svc")
        assert status.fast.total == 4
        assert status.fast.bad == 3

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(availability_target=1.5)
        with pytest.raises(ValueError):
            SloPolicy(fast_window_s=600.0, slow_window_s=300.0)
        assert SloPolicy(availability_target=0.999).error_budget == pytest.approx(
            0.001
        )


# ---------------------------------------------------------------------- #
# anomaly detectors                                                      #
# ---------------------------------------------------------------------- #
def _restart_event(iteration, restarts, residual, **kwargs):
    return ProbeEvent(
        solver="gmres",
        kind="restart",
        iteration=iteration,
        restarts=restarts,
        residual=residual,
        **kwargs,
    )


class TestAnomalyDetectors:
    def test_convergence_stagnation_fires_once(self):
        ledger = AlertLedger()
        watch = ConvergenceWatch(ledger, "svc/tenant")
        for restart in range(10):  # flat residual: no improvement at all
            watch(_restart_event(restart * 10, restart, 1e-3))
        alerts = [a for a in ledger.alerts() if a.detector == "convergence_stagnation"]
        assert len(alerts) == 1  # one-shot per watch, not one per boundary
        assert alerts[0].severity == "warning"
        assert alerts[0].component == "svc/tenant"
        assert watch.alerts == 1

    def test_steady_convergence_raises_nothing(self):
        ledger = AlertLedger()
        watch = ConvergenceWatch(ledger, "svc")
        residual = 1.0
        for restart in range(10):
            residual *= 0.5  # 50% improvement per boundary
            watch(_restart_event(restart * 10, restart, residual))
        watch(
            ProbeEvent(
                solver="gmres",
                kind="terminal",
                iteration=100,
                restarts=10,
                residual=residual,
                status=SolverStatus.CONVERGED,
            )
        )
        assert ledger.total == 0

    def test_residual_spike(self):
        ledger = AlertLedger()
        watch = ConvergenceWatch(ledger, "svc")
        watch(_restart_event(10, 0, 1e-6))
        watch(_restart_event(20, 1, 1e-3))  # 1000x over the best seen
        (alert,) = ledger.alerts()
        assert alert.detector == "residual_spike"
        assert alert.severity == "warning"

    def test_nonfinite_residual_is_critical(self):
        ledger = AlertLedger()
        watch = ConvergenceWatch(ledger, "svc")
        watch(_restart_event(10, 0, math.nan))
        (alert,) = ledger.alerts()
        assert alert.detector == "nonfinite_residual"
        assert alert.severity == "critical"

    def test_terminal_breakdown_is_critical(self):
        ledger = AlertLedger()
        watch = ConvergenceWatch(ledger, "svc")
        watch(
            ProbeEvent(
                solver="gmres",
                kind="terminal",
                iteration=10,
                restarts=1,
                residual=1e-3,
                status=SolverStatus.BREAKDOWN,
            )
        )
        (alert,) = ledger.alerts()
        assert alert.detector == "solver_breakdown"
        assert alert.severity == "critical"

    def test_latency_spike_detector(self):
        ledger = AlertLedger()
        detector = LatencySpikeDetector(ledger, warmup=4, min_ms=1.0)
        for _ in range(6):
            assert detector.observe("svc", 0.010) is None  # steady 10 ms
        alert = detector.observe("svc", 0.200)  # 20x the EMA
        assert alert is not None and alert.detector == "latency_spike"
        # The spike was excluded from the EMA: steady traffic stays quiet.
        assert detector.observe("svc", 0.010) is None

    def test_breaker_flap_detector(self):
        clock = FakeClock()
        ledger = AlertLedger(clock=clock)
        detector = BreakerFlapDetector(ledger, flap_threshold=3, clock=clock)
        detector.observe("farm/t", 1)
        clock.advance(5.0)
        detector.observe("farm/t", 2)
        clock.advance(5.0)
        detector.observe("farm/t", 3)
        flapping = [a for a in ledger.alerts() if a.detector == "breaker_flapping"]
        assert len(flapping) == 1
        assert flapping[0].severity == "critical"
        trips = [a for a in ledger.alerts() if a.detector == "breaker_trip"]
        assert len(trips) == 3

    def test_cost_model_drift(self):
        class StubTimer:
            name = "stub"

            def __init__(self, records):
                self.records = records

        drifted = KernelRecord(label="spmv", precision="fp64")
        drifted.calls = 50
        drifted.model_seconds = 0.001
        drifted.wall_seconds = 0.100  # 100x the model: drift
        steady = KernelRecord(label="dot", precision="fp64")
        steady.calls = 50
        steady.model_seconds = 0.010
        steady.wall_seconds = 0.012  # 1.2x: fine
        ledger = AlertLedger()
        fired = cost_model_drift(StubTimer([drifted, steady]), ledger)
        assert len(fired) == 1
        assert fired[0].detector == "cost_model_drift"
        assert "spmv" in fired[0].component


# ---------------------------------------------------------------------- #
# health monitor                                                         #
# ---------------------------------------------------------------------- #
class TestHealthMonitor:
    def test_empty_monitor_is_healthy(self):
        report = HealthMonitor().health()
        assert report.state == "healthy"
        assert report.alerts_total == 0

    def test_critical_alert_makes_unhealthy_then_ages_out(self):
        clock = FakeClock()
        monitor = HealthMonitor(alert_window_s=120.0, clock=clock)
        monitor.ledger.emit("solve_error", "critical", "svc", "boom")
        report = monitor.health()
        assert report.state == "unhealthy"
        assert report.components["svc"].state == "unhealthy"
        assert any("critical" in r for r in report.components["svc"].reasons)
        clock.advance(121.0)  # alert leaves the active window
        assert monitor.health().state == "healthy"

    def test_warning_alert_degrades(self):
        monitor = HealthMonitor()
        monitor.ledger.emit("queue_saturation", "warning", "farm/t", "full")
        report = monitor.health()
        assert report.state == "degraded"
        assert report.components["farm/t"].state == "degraded"

    def test_slo_breach_makes_unhealthy(self):
        clock = FakeClock()
        policy = SloPolicy(
            availability_target=0.99, fast_window_s=10.0, slow_window_s=100.0
        )
        monitor = HealthMonitor(policy, clock=clock)
        monitor.tracker("svc").record_batch([0.001] * 20, 0.001, failed=20)
        report = monitor.health()
        assert report.state == "unhealthy"
        assert report.slo["svc"].breached
        assert any(
            "SLO breached" in r for r in report.components["svc"].reasons
        )

    def test_healthz_payload_schema(self):
        monitor = HealthMonitor()
        monitor.register_component("svc")
        payload = monitor.healthz()
        assert payload["status"] == "healthy"
        assert payload["components"]["svc"] == {"state": "healthy", "reasons": []}
        assert payload["alerts"] == {"active": 0, "total": 0}
        assert payload["slo"] == {}
        json.dumps(payload)  # must be JSON-serializable

    def test_observe_batch_holdoff(self):
        clock = FakeClock()
        monitor = HealthMonitor(holdoff_s=30.0, clock=clock)

        class Report:
            exception = RuntimeError("kernel fault")
            nonfinite = False
            statuses = ()
            width = 2

        assert monitor.observe_batch("svc", Report(), 0.001) == 1
        assert monitor.observe_batch("svc", Report(), 0.001) == 0  # held off
        clock.advance(31.0)
        assert monitor.observe_batch("svc", Report(), 0.001) == 1


class TestHealthEndpoints:
    def test_healthz_and_slo_endpoints(self):
        reg = MetricsRegistry()
        monitor = HealthMonitor()
        monitor.tracker("svc").record_batch([0.001], 0.002)
        with start_metrics_server(port=0, registry=reg, health=monitor) as server:
            base = server.url.rsplit("/", 1)[0]
            with urllib.request.urlopen(base + "/healthz", timeout=10) as response:
                assert response.status == 200
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["status"] == "healthy"
            assert "svc" in payload["components"]
            with urllib.request.urlopen(base + "/slo", timeout=10) as response:
                slo = json.loads(response.read().decode("utf-8"))
            assert slo["svc"]["fast"]["total"] == 1
            assert slo["svc"]["breached"] is False

            # A critical alert flips /healthz to 503 with the same schema.
            monitor.ledger.emit("solve_error", "critical", "svc", "boom")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/healthz", timeout=10)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["status"] == "unhealthy"

    def test_endpoints_404_without_monitor(self):
        reg = MetricsRegistry()
        with start_metrics_server(port=0, registry=reg) as server:
            base = server.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/healthz", timeout=10)
            assert excinfo.value.code == 404

    def test_watch_health_publishes_slo_metrics(self):
        reg = MetricsRegistry()
        monitor = HealthMonitor()
        monitor.tracker("svc").record_batch([0.001] * 4, 0.002, failed=1)
        monitor.ledger.emit("residual_spike", "warning", "svc", "spike")
        watch_health(monitor, registry=reg)
        text = prometheus_text(reg)
        assert 'repro_slo_availability_ratio{scope="svc",window="fast"} 0.75' in text
        assert 'repro_slo_burn_rate{scope="svc",window="fast"}' in text
        assert 'repro_slo_error_budget_remaining_ratio{scope="svc"}' in text
        assert 'repro_alerts_total{detector="residual_spike"} 1' in text
        assert 'repro_alerts_active{severity="warning"} 1' in text
        assert 'repro_alerts_active{severity="critical"} 0' in text
        # 1 failure in 4 against a 99.9% target breaches both windows.
        assert 'repro_slo_breached{scope="svc"} 1' in text
        assert 'repro_health_state{component="svc"} 2' in text  # unhealthy


# ---------------------------------------------------------------------- #
# chaos integration: the alert integrity gate                            #
# ---------------------------------------------------------------------- #
#: Detectors wired into the dispatch path; chaos alerts must be typed.
CHAOS_DETECTORS = {
    "solve_error",
    "solve_nonfinite",
    "solver_breakdown",
    "nonfinite_residual",
    "residual_spike",
    "convergence_stagnation",
    "latency_spike",
    "queue_saturation",
    "breaker_trip",
    "breaker_flapping",
}


def _run_farm(matrix, backend, monitor, tracer, *, n_requests, seed):
    obs = Observability(tracer=tracer, registry=None, health=monitor)
    farm = repro.farm(
        workers=2, name="chaosfarm", obs=obs, breaker_threshold=100
    )
    farm.register(
        "t1",
        factory=fault_injecting_session_factory(
            matrix, backend, restart=10, tol=1e-8, max_restarts=40, max_block=4
        ),
        n_rows=matrix.n_rows,
    )
    rng = np.random.default_rng(seed)
    with farm:
        futures = [
            farm.submit("t1", rng.standard_normal(matrix.n_rows))
            for _ in range(n_requests)
        ]
        done, not_done = concurrent.futures.wait(futures, timeout=120)
        assert not not_done
    return futures


class TestChaosAlertIntegrity:
    def test_fault_episodes_raise_typed_alerts(self, matrix):
        faulty = FaultInjectingBackend(
            get_backend("numpy"),
            seed=11,
            nan_rate=0.05,
            exception_rate=0.01,
            kernels={"spmv", "spmm"},
        )
        monitor = HealthMonitor(holdoff_s=0.0)
        tracer = Tracer(sampler=Sampler(head_rate=0.0, tail_keep=True))
        futures = _run_farm(
            matrix, faulty, monitor, tracer, n_requests=16, seed=5
        )
        assert faulty.total_injected > 0

        n_bad = 0
        for future in futures:
            exc = future.exception(timeout=0)
            if exc is not None:
                n_bad += 1
            elif future.result(timeout=0).status is not SolverStatus.CONVERGED:
                n_bad += 1
        assert n_bad > 0  # the adversary landed at these rates

        # Every alert is typed and severity-tagged; at least one fired.
        alerts = monitor.ledger.alerts()
        assert len(alerts) >= 1
        for alert in alerts:
            assert alert.detector in CHAOS_DETECTORS, alert
            assert alert.severity in ALERT_SEVERITIES
            assert alert.component.startswith("chaosfarm")
        assert any(a.severity == "critical" for a in alerts)

        # /healthz transitioned away from healthy while alerts are active.
        payload = monitor.healthz()
        assert payload["status"] != "healthy"
        assert payload["alerts"]["total"] == len(alerts)

        # Detector-flagged batches forced tail retention: every failed
        # request's trace survived sampling.
        roots = _request_roots(tracer)
        bad_roots = [
            r for r in roots if r.attrs.get("outcome") != "converged"
        ]
        assert len(bad_roots) >= n_bad
        assert len(roots) + tracer.sampled_out_traces == 16
        assert tracer.open_spans == 0

    def test_healthy_replay_raises_zero_alerts(self, matrix):
        monitor = HealthMonitor(holdoff_s=0.0)
        tracer = Tracer(sampler=Sampler(head_rate=0.0, tail_keep=True))
        futures = _run_farm(
            matrix,
            get_backend("numpy"),
            monitor,
            tracer,
            n_requests=16,
            seed=5,
        )
        for future in futures:
            assert future.result(timeout=0).status is SolverStatus.CONVERGED

        assert monitor.ledger.total == 0  # zero false positives
        report = monitor.health()
        assert report.state == "healthy"
        for status in report.slo.values():  # zero SLO burn anywhere
            assert status.fast.burn_rate == 0.0
            assert status.slow.burn_rate == 0.0
        # ... and nothing needed to be tail-kept.
        assert _request_roots(tracer) == []
        assert tracer.sampled_out_traces == 16


# ---------------------------------------------------------------------- #
# trace ledger across farm.close racing in-flight submits (satellite)    #
# ---------------------------------------------------------------------- #
class TestTraceLedgerAcrossClose:
    @pytest.mark.parametrize("drain", [True, False])
    def test_every_submit_gets_a_terminal_outcome(self, matrix, drain):
        tracer = Tracer()  # no sampler: every request must leave a root
        obs = Observability(tracer=tracer, registry=None)
        farm = repro.farm(workers=2, name=f"closefarm-{drain}", obs=obs)
        farm.register("lap", matrix, restart=10, tol=1e-8)
        rng = np.random.default_rng(7)
        futures = []
        submitted = 0
        try:
            for _ in range(24):
                futures.append(
                    farm.submit("lap", rng.standard_normal(matrix.n_rows))
                )
                submitted += 1
        except RejectedError:
            pass
        farm.close(drain=drain)  # races the in-flight requests

        done, not_done = concurrent.futures.wait(futures, timeout=60)
        assert not not_done

        n_ok = n_failed = 0
        for future in futures:
            if future.cancelled() or future.exception(timeout=0) is not None:
                n_failed += 1
            else:
                assert future.result(timeout=0).status in SolverStatus
                n_ok += 1
        assert n_ok + n_failed == submitted
        if not drain:
            pass  # abandonment is timing-dependent; the ledger check below
            # is the invariant either way.

        # Telemetry reconciles at quiescence.
        fleet = farm.stats().fleet
        assert fleet.requests_submitted == submitted
        assert fleet.requests_submitted == (
            fleet.requests_completed + fleet.requests_failed
        )

        # Span ledger: one finished request root per submit, every root
        # carries a terminal outcome, nothing left open.
        roots = _request_roots(tracer)
        assert len(roots) == submitted
        for root in roots:
            assert "outcome" in root.attrs, root.attrs
        assert tracer.open_spans == 0
