"""Block-GMRES: batched multi-RHS solves, per-column tracking, deflation.

Covers the whole batched path: parity of `block_gmres`/`block_gmres_ir`
with the sequential solvers to solver tolerance, the `solve_many` entry
point (chunking, 1-D inputs, method dispatch), per-RHS convergence
bookkeeping (mixed hard/easy right-hand sides, a stagnating column, zero
and duplicate columns), preconditioned blocks (including the batched
polynomial application), and the band-Hessenberg Givens workspace
against a dense least-squares oracle.

These tests run under whichever backend ``REPRO_BACKEND`` selects, so
the SciPy CI leg exercises the same parity claims on the fast path.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.config import rng
from repro.linalg.dense import BlockGivensWorkspace
from repro.matrices import bentpipe2d, laplace3d
from repro.ortho import make_block_ortho_manager
from repro.preconditioners.base import IdentityPreconditioner
from repro.preconditioners.jacobi import JacobiPreconditioner
from repro.preconditioners.polynomial import GmresPolynomialPreconditioner
from repro.solvers import (
    SolverStatus,
    StagnationTest,
    block_gmres,
    block_gmres_ir,
    gmres,
    gmres_ir,
    solve_many,
)
from repro.solvers.block_gmres import BlockGmresWorkspace, run_block_gmres_cycle
from repro.sparse import CsrMatrix


@pytest.fixture
def matrix():
    return laplace3d(8)  # n = 512, SPD


def _rhs_block(matrix, k, seed=42):
    return rng(seed).standard_normal((matrix.n_rows, k))


# ---------------------------------------------------------------------- #
# parity with the sequential solvers                                     #
# ---------------------------------------------------------------------- #
class TestBlockGmresParity:
    def test_matches_sequential_to_solver_tolerance(self, matrix):
        tol = 1e-9
        B = _rhs_block(matrix, 5)
        res = block_gmres(matrix, B, restart=30, tol=tol)
        assert res.converged
        assert res.n_rhs == 5
        for c in range(5):
            seq = gmres(matrix, B[:, c], restart=30, tol=tol)
            assert seq.converged
            assert res.relative_residuals_fp64[c] <= tol
            diff = np.linalg.norm(res.X[:, c] - seq.x) / np.linalg.norm(seq.x)
            # Both solutions satisfy ||b - A x|| <= tol ||b||; their gap is
            # bounded by cond(A) * 2 tol, far below this threshold here.
            assert diff < 1e-6

    def test_single_column_block_matches_gmres(self, matrix):
        b = _rhs_block(matrix, 1)
        res = block_gmres(matrix, b, restart=25, tol=1e-8)
        seq = gmres(matrix, b[:, 0], restart=25, tol=1e-8)
        assert res.statuses[0] == SolverStatus.CONVERGED
        assert res.relative_residuals_fp64[0] <= 1e-8
        assert np.linalg.norm(res.X[:, 0] - seq.x) / np.linalg.norm(seq.x) < 1e-6

    def test_nonsymmetric_problem(self):
        matrix = bentpipe2d(16)  # n = 256, convection dominated
        B = _rhs_block(matrix, 4, seed=3)
        res = block_gmres(matrix, B, restart=40, tol=1e-8, max_restarts=30)
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-8

    def test_initial_guess_block(self, matrix):
        B = _rhs_block(matrix, 3)
        X0 = rng(9).standard_normal(B.shape)
        res = block_gmres(matrix, B, X0, restart=30, tol=1e-8)
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-8

    def test_shared_timer_and_column_view(self, matrix):
        B = _rhs_block(matrix, 3)
        res = block_gmres(matrix, B, restart=30, tol=1e-8)
        assert res.timer.total_calls() > 0
        one = res.column(1)
        assert one.status == SolverStatus.CONVERGED
        assert one.timer is res.timer
        np.testing.assert_array_equal(one.x, res.X[:, 1])
        assert one.details["column"] == 1
        assert "block iterations" in res.summary()


class TestBlockGmresPreconditioned:
    def test_jacobi_default_apply_block(self, matrix):
        M = JacobiPreconditioner(matrix)
        B = _rhs_block(matrix, 4)
        res = block_gmres(matrix, B, restart=30, tol=1e-9, preconditioner=M)
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-9

    def test_polynomial_batched_apply(self, matrix):
        M = GmresPolynomialPreconditioner(matrix, degree=8)
        B = _rhs_block(matrix, 4)
        res = block_gmres(matrix, B, restart=15, tol=1e-9, preconditioner=M)
        assert res.converged
        for c in range(4):
            seq = gmres(matrix, B[:, c], restart=30, tol=1e-9, preconditioner=M)
            diff = np.linalg.norm(res.X[:, c] - seq.x) / np.linalg.norm(seq.x)
            assert diff < 1e-6

    def test_polynomial_apply_block_matches_columnwise(self, matrix):
        M = GmresPolynomialPreconditioner(matrix, degree=7)
        V = np.asfortranarray(_rhs_block(matrix, 5, seed=8))
        out = np.asfortranarray(np.empty_like(V))
        got = M.apply_block(V, out=out)
        assert got is out
        for c in range(5):
            np.testing.assert_allclose(
                got[:, c], M.apply(V[:, c].copy()), rtol=1e-10, atol=1e-12
            )

    def test_precision_wrapped_apply_block_stays_batched(self, matrix):
        """The mixed-precision wrapper delegates to the inner *batched*
        application (one spmm chain), matching its column-wise apply."""
        from repro.preconditioners.mixed import PrecisionWrappedPreconditioner

        inner = GmresPolynomialPreconditioner(matrix, degree=6, precision="single")
        wrapped = PrecisionWrappedPreconditioner(inner, outer_precision="double")
        V = np.asfortranarray(_rhs_block(matrix, 4, seed=12))
        out = np.asfortranarray(np.empty_like(V))
        got = wrapped.apply_block(V, out=out)
        assert got is out
        for c in range(4):
            np.testing.assert_allclose(
                got[:, c], wrapped.apply(V[:, c].copy()), rtol=1e-5, atol=1e-6
            )

    def test_mixed_precision_preconditioned_block_ir(self, matrix):
        """block_gmres_ir with an fp64 preconditioner (wrapped to fp32 inner)
        converges and matches the sequential mixed path."""
        M = GmresPolynomialPreconditioner(matrix, degree=6)  # fp64
        B = _rhs_block(matrix, 3)
        res = block_gmres_ir(matrix, B, restart=15, tol=1e-10, preconditioner=M)
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-10

    def test_power_form_apply_block(self, matrix):
        M = GmresPolynomialPreconditioner(matrix, degree=5, apply_method="power")
        V = np.asfortranarray(_rhs_block(matrix, 3, seed=8))
        got = M.apply_block(V)
        for c in range(3):
            np.testing.assert_allclose(
                got[:, c], M.apply(V[:, c].copy()), rtol=1e-10, atol=1e-12
            )


# ---------------------------------------------------------------------- #
# per-RHS convergence bookkeeping and deflation                          #
# ---------------------------------------------------------------------- #
class TestPerColumnBookkeeping:
    def test_mixed_hard_easy_iteration_counts(self, matrix):
        """An easy column (near an eigenvector) deflates early with a small
        per-column iteration count; the hard random columns keep going."""
        from scipy.sparse.linalg import eigsh

        _vals, vecs = eigsh(matrix.to_scipy(), k=1, which="SM")
        easy = vecs[:, 0]
        B = _rhs_block(matrix, 3, seed=5)
        B[:, 1] = easy  # GMRES resolves a near-eigenvector in a few steps
        res = block_gmres(matrix, B, restart=12, tol=1e-8, max_restarts=30)
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-8
        assert res.iterations[1] < res.iterations[0]
        assert res.iterations[1] < res.iterations[2]
        # The easy column's count reflects when its implicit estimate hit the
        # target, not the whole block's run time.
        assert res.iterations[1] <= 12
        assert res.block_iterations >= res.iterations.max()

    def test_stagnating_column_is_deflated_with_status(self):
        """A column of a singular system stagnates and is deflated with
        STAGNATION while the solvable columns converge with correct counts."""
        n = 24
        diag = np.ones(n)
        diag[0] = 0.0  # singular direction
        A = CsrMatrix.from_scipy(sp.diags(diag).tocsr())
        B = np.zeros((n, 3))
        B[0, 0] = 1.0  # unsolvable: e_0 is outside the range of A
        B[:, 1] = rng(1).standard_normal(n)
        B[0, 1] = 0.0  # solvable exactly
        B[:, 2] = rng(2).standard_normal(n)
        B[0, 2] = 0.0
        res = block_gmres(
            A,
            B,
            restart=6,
            tol=1e-10,
            max_restarts=40,
            stagnation=StagnationTest(patience=2, min_reduction=0.5),
            # The singular column's implicit estimate lives in a noise-spanned
            # space; disable the loss-of-accuracy test so the stagnation
            # detector is what fires deterministically.
            loss_of_accuracy_check=False,
        )
        assert res.statuses[0] == SolverStatus.STAGNATION
        assert res.statuses[1] == SolverStatus.CONVERGED
        assert res.statuses[2] == SolverStatus.CONVERGED
        assert res.relative_residuals_fp64[1] <= 1e-10
        assert res.relative_residuals_fp64[2] <= 1e-10
        # identity-on-subspace system: solvable columns finish in one step
        assert res.iterations[1] <= 2
        assert res.iterations[2] <= 2

    def test_budget_exhaustion_marks_remaining_columns(self, matrix):
        B = _rhs_block(matrix, 3)
        res = block_gmres(matrix, B, restart=5, tol=1e-12, max_iterations=10)
        assert res.block_iterations <= 10
        assert all(
            s in (SolverStatus.MAX_ITERATIONS, SolverStatus.CONVERGED)
            for s in res.statuses
        )
        assert any(s == SolverStatus.MAX_ITERATIONS for s in res.statuses)

    def test_zero_rhs_column_deflates_immediately(self, matrix):
        B = _rhs_block(matrix, 3)
        B[:, 1] = 0.0
        res = block_gmres(matrix, B, restart=20, tol=1e-8)
        assert res.statuses[1] == SolverStatus.CONVERGED
        assert res.iterations[1] == 0
        np.testing.assert_array_equal(res.X[:, 1], 0)
        assert res.relative_residuals[1] == 0.0
        assert res.statuses[0] == SolverStatus.CONVERGED  # others unaffected

    def test_duplicate_rhs_columns(self, matrix):
        """Exactly duplicated columns (a rank-deficient block) both converge."""
        B = _rhs_block(matrix, 3)
        B[:, 2] = B[:, 0]
        res = block_gmres(matrix, B, restart=30, tol=1e-8)
        assert res.converged
        np.testing.assert_allclose(res.X[:, 0], res.X[:, 2], rtol=1e-6, atol=1e-9)

    def test_caller_rhs_block_is_not_mutated(self, matrix):
        """Deflation compacts internal buffers only — a Fortran-ordered
        caller block (which np.asfortranarray would alias) stays intact and
        the fp64 residual recheck uses the right columns."""
        from scipy.sparse.linalg import eigsh

        _vals, vecs = eigsh(matrix.to_scipy(), k=1, which="SM")
        B = np.asfortranarray(_rhs_block(matrix, 3, seed=5))
        B[:, 0] = vecs[:, 0]  # deflates before the others
        B_before = B.copy()
        res = block_gmres(matrix, B, restart=12, tol=1e-8, max_restarts=30)
        np.testing.assert_array_equal(B, B_before)
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-8

    def test_histories_per_column(self, matrix):
        B = _rhs_block(matrix, 2)
        res = block_gmres(matrix, B, restart=10, tol=1e-8)
        for c in range(2):
            h = res.histories[c]
            assert h.explicit_norms[-1] <= 1e-8
            assert len(h.implicit_norms) >= res.iterations[c] - 1
            # implicit estimates are recorded every block step
            assert h.implicit_iterations == sorted(h.implicit_iterations)


# ---------------------------------------------------------------------- #
# solve_many entry point                                                 #
# ---------------------------------------------------------------------- #
class TestSolveMany:
    def test_chunks_by_block_size(self, matrix):
        B = _rhs_block(matrix, 7)
        res = solve_many(matrix, B, block_size=3, restart=25, tol=1e-8)
        assert res.n_rhs == 7
        assert res.block_size == 3
        assert res.details["n_blocks"] == 3
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-8
        assert len(res.histories) == 7
        assert len(res.iterations) == 7

    def test_one_dimensional_rhs(self, matrix):
        b = _rhs_block(matrix, 1)[:, 0]
        res = solve_many(matrix, b, restart=25, tol=1e-8)
        assert res.n_rhs == 1
        seq = gmres(matrix, b, restart=25, tol=1e-8)
        assert np.linalg.norm(res.X[:, 0] - seq.x) / np.linalg.norm(seq.x) < 1e-6

    def test_gmres_ir_method(self, matrix):
        B = _rhs_block(matrix, 4)
        res = solve_many(matrix, B, method="gmres-ir", restart=25, tol=1e-9)
        assert res.solver == "block-gmres-ir"
        assert res.converged
        assert res.relative_residuals_fp64.max() <= 1e-9

    def test_shared_timer_across_chunks(self, matrix):
        B = _rhs_block(matrix, 4)
        res = solve_many(matrix, B, block_size=2, restart=25, tol=1e-8)
        assert res.timer.total_calls() > 0

    def test_x0_block_and_validation(self, matrix):
        B = _rhs_block(matrix, 4)
        X0 = np.zeros_like(B)
        res = solve_many(matrix, B, X0, block_size=2, restart=25, tol=1e-8)
        assert res.converged
        with pytest.raises(ValueError):
            solve_many(matrix, B, X0[:, :2], block_size=2)
        with pytest.raises(ValueError):
            solve_many(matrix, B, method="nope")
        with pytest.raises(ValueError):
            solve_many(matrix, np.empty((matrix.n_rows, 0)))


# ---------------------------------------------------------------------- #
# blocked GMRES-IR                                                       #
# ---------------------------------------------------------------------- #
class TestBlockGmresIr:
    def test_matches_sequential_gmres_ir(self, matrix):
        tol = 1e-10
        B = _rhs_block(matrix, 4)
        res = block_gmres_ir(matrix, B, restart=25, tol=tol)
        assert res.converged
        assert res.precision == "single/double"
        for c in range(4):
            seq = gmres_ir(matrix, B[:, c], restart=25, tol=tol)
            assert seq.converged
            assert res.relative_residuals_fp64[c] <= tol
            diff = np.linalg.norm(res.X[:, c] - seq.x) / np.linalg.norm(seq.x)
            assert diff < 1e-6

    def test_deflation_across_refinements(self, matrix):
        from scipy.sparse.linalg import eigsh

        _vals, vecs = eigsh(matrix.to_scipy(), k=1, which="SM")
        B = _rhs_block(matrix, 3)
        B[:, 0] = vecs[:, 0]
        res = block_gmres_ir(matrix, B, restart=12, tol=1e-10, max_restarts=25)
        assert res.converged
        assert res.iterations[0] <= res.iterations[1]

    def test_refine_every_two(self, matrix):
        B = _rhs_block(matrix, 3)
        res = block_gmres_ir(matrix, B, restart=10, tol=1e-10, refine_every=2)
        assert res.converged
        assert res.details["refine_every"] == 2

    def test_zero_block_short_circuit(self, matrix):
        B = np.zeros((matrix.n_rows, 2))
        res = block_gmres_ir(matrix, B, restart=10, tol=1e-10)
        assert res.converged
        np.testing.assert_array_equal(res.X, 0)


# ---------------------------------------------------------------------- #
# band-Hessenberg Givens workspace                                       #
# ---------------------------------------------------------------------- #
class TestBlockGivensWorkspace:
    def _random_band_hessenberg(self, steps, k, seed=0):
        """Random band Hessenberg (column q has entries to row q + k)."""
        gen = rng(seed)
        cols = steps * k
        H = np.zeros((cols + k, cols))
        for q in range(cols):
            H[: q + k + 1, q] = gen.standard_normal(q + k + 1)
        return H

    def test_residuals_and_solution_match_lstsq_oracle(self):
        steps, k = 4, 3
        H = self._random_band_hessenberg(steps, k, seed=2)
        S = np.triu(rng(3).standard_normal((k, k))) + 3 * np.eye(k)
        ws = BlockGivensWorkspace(max_cols=steps * k, band=k)
        ws.reset(S)
        rhs = np.zeros((steps * k + k, k))
        rhs[:k, :k] = S
        for j in range(steps):
            q = j * k
            ws.append_block(H[: q + 2 * k, q : q + k])
            norms = ws.residual_norms()
            for c in range(k):
                y_ref, *_ = np.linalg.lstsq(
                    H[: q + 2 * k, : q + k], rhs[: q + 2 * k, c], rcond=None
                )
                r_ref = np.linalg.norm(
                    rhs[: q + 2 * k, c] - H[: q + 2 * k, : q + k] @ y_ref
                )
                assert norms[c] == pytest.approx(r_ref, rel=1e-9, abs=1e-12)
        Y = ws.solve(out=np.empty((steps * k, k)))
        for c in range(k):
            y_ref, *_ = np.linalg.lstsq(H, rhs[:, c], rcond=None)
            np.testing.assert_allclose(Y[:, c], y_ref, rtol=1e-8, atol=1e-10)

    def test_narrower_active_band_after_deflation(self):
        k, steps = 2, 3
        ws = BlockGivensWorkspace(max_cols=12, band=4)  # built for block size 4
        S = np.triu(rng(5).standard_normal((k, k))) + 2 * np.eye(k)
        ws.reset(S)  # deflated to width 2
        assert ws.active_band == k
        H = self._random_band_hessenberg(steps, k, seed=7)
        for j in range(steps):
            q = j * k
            ws.append_block(H[: q + 2 * k, q : q + k])
        Y = ws.solve(out=np.empty((steps * k, k)))
        rhs = np.zeros((steps * k + k, k))
        rhs[:k, :k] = S
        for c in range(k):
            y_ref, *_ = np.linalg.lstsq(H, rhs[:, c], rcond=None)
            np.testing.assert_allclose(Y[:, c], y_ref, rtol=1e-8, atol=1e-10)

    def test_zero_diagonal_coefficients_are_zeroed(self):
        """A fully zero Hessenberg column (deflated direction) yields a zero
        coefficient row instead of a division blow-up."""
        k = 2
        ws = BlockGivensWorkspace(max_cols=4, band=k)
        S = np.eye(k)
        ws.reset(S)
        panel = np.zeros((2 * k, k))
        panel[:, 1] = rng(8).standard_normal(2 * k)
        panel[0, 0] = 0.0  # column 0 entirely zero
        ws.append_block(panel)
        Y = ws.solve(out=np.empty((k, k)))
        np.testing.assert_array_equal(Y[0], 0)

    def test_validation(self):
        ws = BlockGivensWorkspace(max_cols=6, band=2)
        with pytest.raises(ValueError):
            ws.reset(np.ones((3, 3)))  # wider than the band
        ws.reset(np.eye(2))
        with pytest.raises(ValueError):
            ws.append_block(np.ones((3, 2)))  # wrong panel shape
        with pytest.raises(ValueError):
            BlockGivensWorkspace(max_cols=0, band=2)


# ---------------------------------------------------------------------- #
# cycle-level invariants                                                 #
# ---------------------------------------------------------------------- #
class TestBlockCycle:
    def test_workspace_reuse_is_deterministic(self, matrix):
        k = 4
        ws = BlockGmresWorkspace(matrix.n_rows, 10, k, "double")
        ortho = make_block_ortho_manager("bcgs2")
        precond = IdentityPreconditioner(precision="double")
        R = np.asfortranarray(_rhs_block(matrix, k, seed=6))
        out1 = run_block_gmres_cycle(
            matrix, R, ws, ortho=ortho, preconditioner=precond
        )
        first = out1.update.copy()
        out2 = run_block_gmres_cycle(
            matrix, R, ws, ortho=ortho, preconditioner=precond
        )
        np.testing.assert_array_equal(first, out2.update)

    def test_deflated_width_cycles_on_same_workspace(self, matrix):
        """One workspace serves cycles of shrinking width (deflation)."""
        ws = BlockGmresWorkspace(matrix.n_rows, 8, 4, "double")
        ortho = make_block_ortho_manager("bcgs2")
        precond = IdentityPreconditioner(precision="double")
        for k in (4, 2, 1):
            R = np.asfortranarray(_rhs_block(matrix, k, seed=k))
            out = run_block_gmres_cycle(
                matrix, R, ws, ortho=ortho, preconditioner=precond
            )
            assert out.iterations == 8
            assert out.update.shape == (matrix.n_rows, k)
            assert out.implicit.shape == (8, k)

    def test_precision_mismatch_raises(self, matrix):
        ws = BlockGmresWorkspace(matrix.n_rows, 5, 2, "single")
        ortho = make_block_ortho_manager("bcgs2")
        precond = IdentityPreconditioner(precision="single")
        R = np.asfortranarray(_rhs_block(matrix, 2))
        with pytest.raises(TypeError):
            run_block_gmres_cycle(matrix, R, ws, ortho=ortho, preconditioner=precond)

    def test_implicit_estimates_track_true_residuals(self, matrix):
        """The per-column implicit estimates agree with explicitly computed
        residuals of the reconstructed iterates at the end of a cycle."""
        k = 3
        ws = BlockGmresWorkspace(matrix.n_rows, 12, k, "double")
        ortho = make_block_ortho_manager("bcgs2")
        precond = IdentityPreconditioner(precision="double")
        R = np.asfortranarray(_rhs_block(matrix, k, seed=11))
        out = run_block_gmres_cycle(matrix, R, ws, ortho=ortho, preconditioner=precond)
        dense_A = matrix.to_scipy().toarray()
        for c in range(k):
            true_res = np.linalg.norm(R[:, c] - dense_A @ out.update[:, c])
            assert out.implicit[-1, c] == pytest.approx(true_res, rel=1e-6, abs=1e-10)
