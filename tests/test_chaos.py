"""Chaos test: the solver farm under a fault-injecting kernel backend.

The fault-tolerance layer's headline claim (ISSUE 8): *no failure mode
can hang a future or lose a request*.  This test drives a farm whose
kernels randomly raise, poison results with NaN, and stall — while the
client mixes plain submits with tight deadlines, dead-on-arrival
deadlines and cancellations — and then audits the wreckage:

* **no hung futures** — every future resolves within a bounded wait;
* **no lost requests** — every submit resolves with a terminal outcome:
  a result carrying a terminal status, an exception, or a cancellation;
* **telemetry reconciles** — at quiescence the fleet counters satisfy
  ``submitted == completed + failed``, and the timeout / cancellation /
  breaker-trip classifiers match the outcomes the client observed.

Runs on every available backend: the invariants are properties of the
serve layer, not of any one kernel implementation.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.backends import available_backends, get_backend
from repro.matrices import laplace2d
from repro.serve import (
    CircuitOpenError,
    DeadlineExceededError,
    RejectedError,
    SolverFarm,
)
from repro.solvers import SolverStatus
from repro.testing import (
    FaultInjectedError,
    FaultInjectingBackend,
    fault_injecting_session_factory,
)

#: Exceptions a future may legitimately resolve with under chaos.
EXPECTED_FAILURES = (FaultInjectedError, DeadlineExceededError, RuntimeError)

SESSION_KWARGS = dict(restart=10, tol=1e-8, max_restarts=80)


@pytest.fixture(scope="module")
def matrix():
    return laplace2d(8)  # n = 64: small, so the chaos run stays fast


@pytest.mark.parametrize("backend_name", available_backends())
def test_farm_survives_chaos(matrix, backend_name):
    faulty = FaultInjectingBackend(
        get_backend(backend_name),
        seed=1234,
        nan_rate=0.002,
        exception_rate=0.001,
        latency_rate=0.01,
        latency_ms=1.0,
    )
    farm = SolverFarm(
        workers=2,
        max_wait_ms=2.0,
        queue_depth=256,
        breaker_threshold=3,
        breaker_cooldown_ms=50.0,
    )
    for key in ("alpha", "beta"):
        farm.register(
            key,
            factory=fault_injecting_session_factory(
                matrix, faulty, max_block=4, **SESSION_KWARGS
            ),
            n_rows=matrix.n_rows,
        )

    rng = np.random.default_rng(99)
    futures = []
    rejected_synchronously = 0
    with farm:
        for i in range(60):
            key = ("alpha", "beta")[i % 2]
            b = rng.standard_normal(matrix.n_rows)
            # Mix the client behaviours: plain, tight deadline, DOA.
            if i % 10 == 7:
                deadline_ms = 0.0  # dead on arrival
            elif i % 5 == 3:
                deadline_ms = 30.0  # tight but usually makeable
            else:
                deadline_ms = None
            try:
                future = farm.submit(key, b, deadline_ms=deadline_ms)
            except (RejectedError, CircuitOpenError):
                # Admission control: counted as submitted+failed by the
                # telemetry, no future to track.
                rejected_synchronously += 1
                continue
            futures.append(future)
            if i % 12 == 5:
                future.cancel()

        # --- no hung futures ------------------------------------------ #
        done, not_done = concurrent.futures.wait(futures, timeout=120)
        assert not not_done, f"{len(not_done)} futures hung under chaos"

    # --- every submit resolved with a terminal outcome ----------------- #
    n_results = 0
    n_exceptions = 0
    n_cancelled_futures = 0
    n_status = {status: 0 for status in SolverStatus}
    for future in futures:
        if future.cancelled():
            n_cancelled_futures += 1
            continue
        exc = future.exception(timeout=0)
        if exc is not None:
            assert isinstance(exc, EXPECTED_FAILURES), repr(exc)
            n_exceptions += 1
            continue
        result = future.result(timeout=0)
        assert result.status in SolverStatus
        assert result.x.shape == (matrix.n_rows,)
        n_results += 1
        n_status[result.status] += 1

    assert n_results + n_exceptions + n_cancelled_futures == len(futures)
    # The DOA deadlines alone guarantee the failure paths were exercised.
    assert n_exceptions + n_cancelled_futures > 0
    assert n_results > 0

    # --- telemetry reconciles with the observed outcomes --------------- #
    stats = farm.stats()
    fleet = stats.fleet
    assert fleet.requests_submitted == len(futures) + rejected_synchronously
    assert fleet.requests_completed == n_results
    assert fleet.requests_failed == (
        n_exceptions + n_cancelled_futures + rejected_synchronously
    )
    assert fleet.requests_submitted == (
        fleet.requests_completed + fleet.requests_failed
    )

    # Classifier reconciliation: queue expiries surfaced as
    # DeadlineExceededError, mid-solve expiries as TIMED_OUT results —
    # both feed the same fleet timeout counter.  Same for cancellation.
    n_deadline_exceptions = sum(
        1
        for future in futures
        if not future.cancelled()
        and isinstance(future.exception(timeout=0), DeadlineExceededError)
    )
    assert fleet.requests_timed_out == (
        n_deadline_exceptions + n_status[SolverStatus.TIMED_OUT]
    )
    assert fleet.requests_cancelled == (
        n_cancelled_futures + n_status[SolverStatus.CANCELLED]
    )

    # Breaker accounting is internally consistent (trips are possible but
    # not guaranteed at these fault rates).
    assert stats.breaker_trips == sum(
        tenant.breaker_trips for tenant in stats.tenants.values()
    )
    assert stats.breaker_trips >= 0

    # The adversary actually showed up.
    assert faulty.total_injected > 0


@pytest.mark.parametrize("backend_name", available_backends())
def test_chaos_with_pure_nan_poisoning_is_contained(matrix, backend_name):
    """NaN-only chaos: silent corruption becomes BREAKDOWN, never a hang."""
    faulty = FaultInjectingBackend(
        get_backend(backend_name),
        seed=7,
        nan_rate=0.05,
        kernels={"spmv", "spmm"},
    )
    farm = SolverFarm(workers=1, max_wait_ms=1.0, breaker_threshold=100)
    farm.register(
        "noisy",
        factory=fault_injecting_session_factory(
            matrix, faulty, max_block=2, **SESSION_KWARGS
        ),
        n_rows=matrix.n_rows,
    )
    rng = np.random.default_rng(3)
    with farm:
        futures = [
            farm.submit("noisy", rng.standard_normal(matrix.n_rows))
            for _ in range(12)
        ]
        done, not_done = concurrent.futures.wait(futures, timeout=120)
        assert not not_done
    statuses = []
    for future in futures:
        try:
            statuses.append(future.result(timeout=0).status)
        except EXPECTED_FAILURES:
            statuses.append(None)
        except CancelledError:  # pragma: no cover - not expected here
            statuses.append(None)
    # Every request terminated; poisoned solves classified as BREAKDOWN
    # (or recovered via retry / re-solve), none iterated on garbage
    # forever.
    assert len(statuses) == 12
    fleet = farm.stats().fleet
    assert fleet.requests_submitted == (
        fleet.requests_completed + fleet.requests_failed
    )
    assert faulty.total_injected > 0
