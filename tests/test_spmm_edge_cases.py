"""SpMM edge cases the Block-GMRES path leans on, pinned on both backends.

The batched kernel must agree with a loop of single-vector SpMVs for
every operand shape/layout the block solvers produce: ``k = 1`` (and
``k = 0``) column blocks, Fortran-ordered basis panels, sliced
(non-contiguous) operands, empty-row and zero-nnz matrices, and
stencil matrices that take the cached DIA fast path as well as
irregular matrices that take the gather path.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import get_backend
from repro.config import rng
from repro.matrices import laplace3d
from repro.sparse.csr import CsrMatrix

BACKENDS = ["numpy", "scipy"]
DTYPES = [np.float16, np.float32, np.float64]

#: dtype-appropriate agreement between spmm and looped spmv (they may sum
#: in different orders, e.g. the DIA fast path vs the CSR row reduce).
RTOL = {np.float16: 2e-2, np.float32: 2e-5, np.float64: 1e-12}
ATOL = {np.float16: 2e-2, np.float32: 1e-5, np.float64: 1e-13}


def _random_csr(n_rows, n_cols, density, seed, dtype=np.float64):
    A = sp.random(n_rows, n_cols, density=density, random_state=rng(seed), format="csr")
    return CsrMatrix(A.data.astype(dtype), A.indices, A.indptr, A.shape)


def _assert_matches_looped_spmv(backend, matrix, X, Y):
    """Each spmm column must equal the corresponding spmv to dtype tolerance."""
    dt = matrix.data.dtype.type
    for j in range(X.shape[1]):
        ref = backend.spmv(matrix, np.ascontiguousarray(X[:, j]))
        np.testing.assert_allclose(
            Y[:, j], ref, rtol=RTOL[dt], atol=ATOL[dt], err_msg=f"column {j}"
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestSpmmEdgeCases:
    def test_k1_column_block(self, name):
        backend = get_backend(name)
        A = _random_csr(40, 30, 0.15, 0)
        X = rng(1).standard_normal((30, 1))
        Y = backend.spmm(A, X)
        assert Y.shape == (40, 1)
        _assert_matches_looped_spmv(backend, A, X, Y)
        out = np.empty((40, 1))
        assert backend.spmm(A, X, out=out) is out
        _assert_matches_looped_spmv(backend, A, X, out)

    def test_k0_column_block(self, name):
        backend = get_backend(name)
        A = _random_csr(10, 10, 0.3, 2)
        Y = backend.spmm(A, np.empty((10, 0)))
        assert Y.shape == (10, 0)
        out = np.empty((10, 0))
        assert backend.spmm(A, np.empty((10, 0)), out=out) is out

    def test_fortran_ordered_operands(self, name):
        backend = get_backend(name)
        A = _random_csr(50, 50, 0.1, 3)
        X = np.asfortranarray(rng(3).standard_normal((50, 4)))
        out = np.asfortranarray(np.empty((50, 4)))
        Y = backend.spmm(A, X, out=out)
        assert Y is out
        _assert_matches_looped_spmv(backend, A, X, Y)
        np.testing.assert_allclose(Y, backend.spmm(A, np.ascontiguousarray(X)))

    def test_sliced_noncontiguous_operands(self, name):
        backend = get_backend(name)
        A = _random_csr(30, 30, 0.2, 4)
        big = rng(4).standard_normal((30, 8))
        X = big[:, ::2]  # non-contiguous column slice
        assert not X.flags.c_contiguous and not X.flags.f_contiguous
        Y = backend.spmm(A, X)
        _assert_matches_looped_spmv(backend, A, X, Y)
        out_big = np.zeros((30, 8))
        out = out_big[:, ::2]
        assert backend.spmm(A, X, out=out) is out
        _assert_matches_looped_spmv(backend, A, X, out)
        # untouched interleaved columns stay zero
        np.testing.assert_array_equal(out_big[:, 1::2], 0)

    def test_empty_rows(self, name):
        backend = get_backend(name)
        D = np.zeros((6, 4))
        D[0, 1] = 2.0
        D[3, 0] = -1.0
        D[3, 3] = 4.0
        A = CsrMatrix.from_scipy(sp.csr_matrix(D))
        X = rng(5).standard_normal((4, 3))
        Y = backend.spmm(A, X)
        np.testing.assert_allclose(Y, D @ X, rtol=1e-13)
        out = np.full((6, 3), np.nan)
        backend.spmm(A, X, out=out)
        np.testing.assert_allclose(out, D @ X, rtol=1e-13)
        _assert_matches_looped_spmv(backend, A, X, Y)

    def test_zero_nnz_matrix(self, name):
        backend = get_backend(name)
        A = CsrMatrix.from_scipy(sp.csr_matrix((5, 3)))
        X = rng(6).standard_normal((3, 2))
        np.testing.assert_array_equal(backend.spmm(A, X), np.zeros((5, 2)))
        out = np.full((5, 2), 7.0)
        backend.spmm(A, X, out=out)
        np.testing.assert_array_equal(out, 0)

    @pytest.mark.parametrize("dtype", DTYPES, ids=["fp16", "fp32", "fp64"])
    def test_stencil_matrix_dia_path_matches_looped_spmv(self, name, dtype):
        """Stencil matrices (DIA-eligible on the numpy backend) stay correct."""
        backend = get_backend(name)
        A = laplace3d(6).astype(np.dtype(dtype).name)  # n = 216, 7 diagonals
        X = np.asfortranarray(rng(7).standard_normal((A.n_cols, 5)).astype(dtype))
        out = np.asfortranarray(np.empty((A.n_rows, 5), dtype=dtype))
        Y = backend.spmm(A, X, out=out)
        assert Y is out
        _assert_matches_looped_spmv(backend, A, X, Y)
        # out= path and allocating path agree bitwise on the same backend.
        np.testing.assert_array_equal(Y, backend.spmm(A, X))

    def test_irregular_matrix_gather_path(self, name):
        """Matrices with too many diagonals take the gather path."""
        backend = get_backend(name)
        A = _random_csr(80, 80, 0.08, 8)
        X = rng(8).standard_normal((80, 6))
        out = np.empty((80, 6))
        Y = backend.spmm(A, X, out=out)
        _assert_matches_looped_spmv(backend, A, X, Y)
        np.testing.assert_array_equal(Y, backend.spmm(A, X))

    def test_shape_validation(self, name):
        backend = get_backend(name)
        A = _random_csr(20, 10, 0.2, 9)
        with pytest.raises(ValueError):
            backend.spmm(A, np.ones(10))  # 1-D
        with pytest.raises(ValueError):
            backend.spmm(A, np.ones((11, 2)))  # wrong row count
        with pytest.raises(ValueError):
            backend.spmm(A, np.ones((10, 2)), out=np.empty((20, 3)))

    def test_rectangular_stencil_like(self, name):
        """DIA slicing handles rectangular shapes (offsets past the square)."""
        backend = get_backend(name)
        D = np.zeros((4, 7))
        for i in range(4):
            D[i, i] = 2.0
            D[i, i + 3] = -1.0
        A = CsrMatrix.from_scipy(sp.csr_matrix(D))
        X = rng(10).standard_normal((7, 3))
        np.testing.assert_allclose(backend.spmm(A, X), D @ X, rtol=1e-13)
        out = np.empty((4, 3))
        backend.spmm(A, X, out=out)
        np.testing.assert_allclose(out, D @ X, rtol=1e-13)


def test_instrumented_spmm_agrees_with_looped_spmv():
    """The metered spmm wrapper and CsrMatrix.matmat agree with looped spmv."""
    from repro.linalg import kernels

    A = laplace3d(5)
    X = rng(11).standard_normal((A.n_cols, 4))
    Y = kernels.spmm(A, X)
    for j in range(4):
        np.testing.assert_allclose(
            Y[:, j], kernels.spmv(A, np.ascontiguousarray(X[:, j])), rtol=1e-12
        )
    np.testing.assert_array_equal(A.matmat(X), Y)
