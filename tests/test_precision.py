"""Tests for repro.precision."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.precision import (
    DOUBLE,
    HALF,
    PRECISIONS,
    SINGLE,
    as_precision,
    promote,
    unit_roundoff,
)


class TestPrecisionDescriptors:
    def test_byte_widths(self):
        assert HALF.bytes == 2
        assert SINGLE.bytes == 4
        assert DOUBLE.bytes == 8

    def test_dtypes(self):
        assert HALF.dtype == np.float16
        assert SINGLE.dtype == np.float32
        assert DOUBLE.dtype == np.float64

    def test_epsilon_matches_numpy(self):
        assert SINGLE.epsilon == pytest.approx(np.finfo(np.float32).eps)
        assert DOUBLE.epsilon == pytest.approx(np.finfo(np.float64).eps)

    def test_unit_roundoff_is_half_epsilon(self):
        for prec in (HALF, SINGLE, DOUBLE):
            assert prec.unit_roundoff == pytest.approx(prec.epsilon / 2)

    def test_numpy_name(self):
        assert SINGLE.numpy_name == "float32"
        assert DOUBLE.numpy_name == "float64"

    def test_ordering(self):
        assert HALF < SINGLE < DOUBLE
        assert DOUBLE >= SINGLE
        assert SINGLE <= SINGLE

    def test_astype_converts(self):
        x = np.ones(4, dtype=np.float64)
        y = SINGLE.astype(x)
        assert y.dtype == np.float32

    def test_astype_no_copy_when_same(self):
        x = np.ones(4, dtype=np.float32)
        assert SINGLE.astype(x) is x

    def test_str(self):
        assert str(SINGLE) == "single"


class TestAsPrecision:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("half", HALF),
            ("fp16", HALF),
            ("float16", HALF),
            ("single", SINGLE),
            ("float", SINGLE),
            ("fp32", SINGLE),
            ("float32", SINGLE),
            ("double", DOUBLE),
            ("fp64", DOUBLE),
            ("float64", DOUBLE),
        ],
    )
    def test_string_aliases(self, alias, expected):
        assert as_precision(alias) is expected

    def test_case_insensitive(self):
        assert as_precision("Double") is DOUBLE
        assert as_precision("FP32") is SINGLE

    def test_from_numpy_dtype(self):
        assert as_precision(np.dtype(np.float32)) is SINGLE
        assert as_precision(np.float64) is DOUBLE

    def test_from_precision_is_identity(self):
        assert as_precision(SINGLE) is SINGLE

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError):
            as_precision("quad")

    def test_unsupported_dtype_raises(self):
        with pytest.raises(ValueError):
            as_precision(np.int32)

    def test_registry_covers_all_aliases(self):
        assert set(PRECISIONS.values()) == {HALF, SINGLE, DOUBLE}


class TestPromote:
    def test_promote_widens(self):
        assert promote("single", "double") is DOUBLE
        assert promote("half", "single") is SINGLE

    def test_promote_same(self):
        assert promote("double", DOUBLE) is DOUBLE

    @given(
        a=st.sampled_from(["half", "single", "double"]),
        b=st.sampled_from(["half", "single", "double"]),
    )
    def test_promote_commutative_and_idempotent(self, a, b):
        assert promote(a, b) is promote(b, a)
        assert promote(a, a) is as_precision(a)
        assert promote(a, b).bytes == max(as_precision(a).bytes, as_precision(b).bytes)


def test_unit_roundoff_helper():
    assert unit_roundoff("single") == pytest.approx(np.finfo(np.float32).eps / 2)
    assert unit_roundoff("double") < unit_roundoff("single") < unit_roundoff("half")
