"""Tests for the SuiteSparse proxies and the problem registry."""

import numpy as np
import pytest

from repro.matrices import PROXY_SPECS, ProblemRecord, build_proxy, get_problem, list_problems, list_proxies
from repro.matrices.suitesparse_proxies import ProxySpec
from repro.sparse import is_numerically_symmetric


class TestProxySpecs:
    def test_all_table_iii_matrices_present(self):
        expected = {
            "atmosmodj", "Dubcova3", "stomach", "SiO2", "parabolic_fem",
            "lung2", "hood", "cfd2", "Transport", "filter3D",
        }
        assert set(PROXY_SPECS) == expected
        assert list_proxies() == list(PROXY_SPECS)

    def test_paper_statistics_recorded(self):
        spec = PROXY_SPECS["hood"]
        assert spec.uf_id == 1266
        assert spec.original_n == 220_542
        assert spec.paper_speedup == pytest.approx(1.55)
        assert spec.preconditioner == ("block_jacobi", 42)

    def test_every_spec_has_positive_paper_values(self):
        for spec in PROXY_SPECS.values():
            assert spec.original_n > 0 and spec.original_nnz > 0
            assert spec.paper_double_iters > 0 and spec.paper_ir_iters > 0
            assert spec.paper_speedup > 0
            assert spec.symmetry in ("n", "y", "spd")

    def test_default_dims_are_scaled_down(self):
        for spec in PROXY_SPECS.values():
            assert spec.default_dim < spec.original_n

    @pytest.mark.parametrize("name", list(PROXY_SPECS))
    def test_proxy_builds_and_matches_symmetry_class(self, name):
        spec = PROXY_SPECS[name]
        A = spec.build(min(spec.default_dim, 2500))
        assert A.is_square
        assert A.nnz > 0
        expected_symmetric = spec.symmetry in ("y", "spd")
        assert is_numerically_symmetric(A) == expected_symmetric

    def test_build_proxy_custom_dimension(self):
        small = build_proxy("SiO2", 900)
        large = build_proxy("SiO2", 4900)
        assert small.n_rows < large.n_rows

    def test_build_proxy_unknown_name(self):
        with pytest.raises(KeyError):
            build_proxy("does_not_exist")

    def test_preconditioner_at_scale(self):
        assert PROXY_SPECS["cfd2"].preconditioner_at_scale() == ("poly", 8)
        assert PROXY_SPECS["hood"].preconditioner_at_scale() == ("block_jacobi", 42)
        assert PROXY_SPECS["atmosmodj"].preconditioner_at_scale() is None

    def test_hood_proxy_has_line_blocks(self):
        A = build_proxy("hood")
        assert A.n_rows % 42 == 0

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            PROXY_SPECS["hood"].default_dim = 1  # type: ignore[misc]


class TestRegistry:
    def test_galeri_and_proxies_registered(self):
        names = set(list_problems())
        assert {"BentPipe2D", "UniFlow2D", "Laplace3D", "Stretched2D", "Laplace2D"} <= names
        assert "hood" in names

    def test_kind_filter(self):
        galeri = list_problems(kind="galeri")
        proxies = list_problems(kind="suitesparse-proxy")
        assert "BentPipe2D" in galeri and "BentPipe2D" not in proxies
        assert "hood" in proxies

    def test_lookup_case_insensitive(self):
        rec = get_problem("bentpipe2d")
        assert isinstance(rec, ProblemRecord)
        assert rec.name == "BentPipe2D"

    def test_builder_produces_matrix(self):
        rec = get_problem("Laplace2D")
        A = rec.builder(8)
        assert A.n_rows == 64

    def test_unknown_problem(self):
        with pytest.raises(KeyError):
            get_problem("nonexistent")

    def test_paper_sizes_recorded(self):
        assert get_problem("BentPipe2D").paper_size == 1500
        assert get_problem("hood").paper_size == 220_542
