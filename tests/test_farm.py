"""Tests for the multi-tenant solver farm (:mod:`repro.serve.farm`) and
the warmed-session LRU registry (:mod:`repro.serve.registry`).

Covers the farm acceptance properties: eviction can never lose a future
(queues belong to the farm, re-warm is transparent), a hot tenant cannot
starve the others beyond its weight, backpressure is a synchronous
:class:`RejectedError` with a retry hint, and the ``asyncio`` front
resolves through the same queues and worker pool.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

import repro
from repro.config import ServeConfig, rng, set_config
from repro.matrices import laplace2d, laplace3d
from repro.serve import (
    FarmStats,
    OperatorSession,
    RejectedError,
    SessionRegistry,
    SolverFarm,
)
from repro.solvers import ResultLike


@pytest.fixture(scope="module")
def matrix():
    return laplace3d(6)  # n = 216: small enough for eviction-churn tests


def make_session(matrix, **kwargs):
    defaults = dict(restart=8, tol=1e-8, max_restarts=60)
    defaults.update(kwargs)
    return OperatorSession(matrix, **defaults)


def make_farm(**kwargs):
    defaults = dict(workers=2, max_wait_ms=2.0)
    defaults.update(kwargs)
    return SolverFarm(**defaults)


SESSION_KWARGS = dict(restart=8, tol=1e-8, max_restarts=60)


class TestSessionRegistry:
    def registry(self, matrix, **kwargs):
        reg = SessionRegistry(**kwargs)
        for key in ("a", "b", "c"):
            reg.register(key, lambda: make_session(matrix))
        return reg

    def test_builds_lazily_and_caches(self, matrix):
        reg = self.registry(matrix, max_sessions=4)
        assert reg.live_count == 0
        first = reg.get_or_create("a")
        assert reg.get_or_create("a") is first
        assert reg.live_count == 1
        assert reg.creations == 1

    def test_unknown_key_raises(self, matrix):
        reg = self.registry(matrix)
        with pytest.raises(KeyError, match="nope"):
            reg.get_or_create("nope")

    def test_lru_eviction_order(self, matrix):
        reg = self.registry(matrix, max_sessions=2)
        reg.get_or_create("a")
        reg.get_or_create("b")
        reg.get_or_create("a")  # a is now MRU
        reg.get_or_create("c")  # evicts b, the LRU
        assert set(reg.live_keys()) == {"a", "c"}
        assert reg.evictions == 1

    def test_rewarm_after_eviction_is_transparent(self, matrix):
        reg = self.registry(matrix, max_sessions=1)
        first = reg.get_or_create("a")
        reg.get_or_create("b")  # evicts a
        again = reg.get_or_create("a")  # re-warms through the factory
        assert again is not first
        assert reg.creations == 3
        assert reg.evictions == 2
        # The re-warmed session is a fully working session.
        b = np.ones(matrix.n_rows)
        assert again.solve(b).converged

    def test_peek_does_not_build_or_touch_recency(self, matrix):
        reg = self.registry(matrix, max_sessions=2)
        assert reg.peek("a") is None
        reg.get_or_create("a")
        reg.get_or_create("b")
        reg.peek("a")  # must NOT promote a to MRU
        reg.get_or_create("c")  # evicts a (still LRU despite the peek)
        assert set(reg.live_keys()) == {"b", "c"}

    def test_byte_budget_evicts_lru_but_never_mru(self, matrix):
        one = make_session(matrix).estimated_bytes()
        reg = self.registry(matrix, max_sessions=8, max_bytes=int(1.5 * one))
        reg.get_or_create("a")
        reg.get_or_create("b")  # over budget -> a evicted
        assert reg.live_keys() == ["b"]
        # A single oversized session is served, not wedged.
        tight = self.registry(matrix, max_sessions=8, max_bytes=1)
        assert tight.get_or_create("a") is not None
        assert tight.live_count == 1

    def test_evicted_session_finishes_in_flight_work(self, matrix):
        # release(), not close(): a worker holding the session across the
        # eviction can still run its current dispatch.
        reg = self.registry(matrix, max_sessions=1)
        session = reg.get_or_create("a")
        reg.get_or_create("b")  # evicts a
        result = session._solve_block(
            np.ones((matrix.n_rows, 1), dtype=np.float64, order="F")
        )
        assert result.converged

    def test_reregister_replaces_live_session(self, matrix):
        reg = self.registry(matrix, max_sessions=4)
        old = reg.get_or_create("a")
        reg.register("a", lambda: make_session(matrix, restart=5))
        new = reg.get_or_create("a")
        assert new is not old
        assert new.restart == 5

    def test_release_all_keeps_factories(self, matrix):
        reg = self.registry(matrix, max_sessions=4)
        reg.get_or_create("a")
        reg.release_all()
        assert reg.live_count == 0
        assert reg.get_or_create("a") is not None


class TestFarmBasics:
    def test_serves_multiple_operators(self, matrix):
        other = laplace2d(12)
        with make_farm() as farm:
            farm.register("big", matrix, **SESSION_KWARGS)
            farm.register("small", other, **SESSION_KWARGS)
            fb = farm.submit("big", np.ones(matrix.n_rows))
            fs = farm.submit("small", np.ones(other.n_rows))
            assert fb.result(timeout=30).converged
            assert fs.result(timeout=30).converged
            assert fb.result().x.shape == (matrix.n_rows,)

    def test_result_matches_direct_session_solve(self, matrix):
        b = rng(3).standard_normal(matrix.n_rows)
        with make_farm(workers=1) as farm:
            farm.register("op", matrix, **SESSION_KWARGS)
            served = farm.submit("op", b).result(timeout=30)
        with make_session(matrix) as session:
            direct = session.solve(b)
        np.testing.assert_array_equal(served.x, direct.x)

    def test_unknown_key_raises(self, matrix):
        with make_farm() as farm:
            farm.register("op", matrix, **SESSION_KWARGS)
            with pytest.raises(KeyError, match="nope"):
                farm.submit("nope", np.ones(matrix.n_rows))

    def test_validation_error_resolves_future(self, matrix):
        with make_farm() as farm:
            farm.register("op", matrix, **SESSION_KWARGS)
            bad = farm.submit("op", np.ones(7))
            with pytest.raises(ValueError, match=f"length-{matrix.n_rows}"):
                bad.result(timeout=5)
            nan = farm.submit("op", np.full(matrix.n_rows, np.nan))
            with pytest.raises(ValueError, match="non-finite"):
                nan.result(timeout=5)

    def test_factory_registration_requires_n_rows(self, matrix):
        with make_farm() as farm:
            with pytest.raises(ValueError, match="n_rows"):
                farm.register("op", factory=lambda: make_session(matrix))
            farm.register(
                "op",
                factory=lambda: make_session(matrix),
                n_rows=matrix.n_rows,
            )
            assert farm.submit("op", np.ones(matrix.n_rows)).result(30).converged

    def test_register_rejects_ambiguous_arguments(self, matrix):
        with make_farm() as farm:
            with pytest.raises(ValueError, match="exactly one"):
                farm.register("op")
            with pytest.raises(ValueError, match="exactly one"):
                farm.register(
                    "op", matrix, factory=lambda: make_session(matrix)
                )

    def test_broken_factory_fails_only_that_tenant(self, matrix):
        def broken():
            raise RuntimeError("warmup exploded")

        with make_farm(workers=1) as farm:
            farm.register("bad", factory=broken, n_rows=matrix.n_rows)
            farm.register("good", matrix, **SESSION_KWARGS)
            doomed = farm.submit("bad", np.ones(matrix.n_rows))
            fine = farm.submit("good", np.ones(matrix.n_rows))
            with pytest.raises(RuntimeError, match="warmup exploded"):
                doomed.result(timeout=30)
            assert fine.result(timeout=30).converged

    def test_close_drains_queued_work(self, matrix):
        farm = make_farm()
        farm.register("op", matrix, **SESSION_KWARGS)
        futures = [farm.submit("op", np.ones(matrix.n_rows)) for _ in range(6)]
        farm.close()  # drain=True default
        assert all(f.result(timeout=1).converged for f in futures)
        with pytest.raises(RuntimeError, match="closed"):
            farm.submit("op", np.ones(matrix.n_rows))

    def test_close_without_drain_fails_queued(self, matrix):
        farm = make_farm(workers=1, max_wait_ms=50.0)
        farm.register("op", matrix, **SESSION_KWARGS)
        futures = [farm.submit("op", np.ones(matrix.n_rows)) for _ in range(8)]
        farm.close(drain=False)
        outcomes = []
        for f in futures:
            try:
                outcomes.append(f.result(timeout=5).converged)
            except RuntimeError as exc:
                assert "closed" in str(exc)
                outcomes.append("failed")
        # Everything resolved one way or the other: nothing hangs.
        assert len(outcomes) == 8

    def test_knobs_default_from_config(self, matrix):
        set_config(serve=ServeConfig(queue_depth=5, fairness="fifo", workers=3))
        farm = make_farm(workers=None, max_wait_ms=None)
        try:
            assert farm.queue_depth == 5
            assert farm.fairness == "fifo"
            assert farm.workers == 3
        finally:
            farm.close()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="fairness"):
            SolverFarm(fairness="anarchy")
        with pytest.raises(ValueError, match="queue_depth"):
            SolverFarm(queue_depth=0)
        with pytest.raises(ValueError, match="workers"):
            SolverFarm(workers=0)
        with pytest.raises(ValueError, match="weight"):
            with make_farm() as farm:
                farm.register("op", laplace2d(4), weight=0.0)


class TestFarmEvictionUnderLoad:
    def test_no_lost_futures_with_eviction_churn(self, matrix):
        """More tenants than session slots + concurrent clients: every
        accepted future resolves, evictions and re-warms happen."""
        keys = ["t0", "t1", "t2", "t3"]
        with make_farm(max_sessions=2, queue_depth=256) as farm:
            for key in keys:
                farm.register(key, matrix, **SESSION_KWARGS)
            results, errors = [], []
            lock = threading.Lock()

            def client(key, seed):
                try:
                    futures = [
                        farm.submit(
                            key, rng(seed + i).standard_normal(matrix.n_rows)
                        )
                        for i in range(4)
                    ]
                    resolved = [f.result(timeout=60) for f in futures]
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    with lock:
                        errors.append((key, exc))
                else:
                    with lock:
                        results.extend(resolved)

            threads = [
                threading.Thread(target=client, args=(key, 100 * i))
                for i, key in enumerate(keys)
                for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert len(results) == len(keys) * 2 * 4
            assert all(r.converged for r in results)
            stats = farm.stats()
        assert stats.fleet.requests_completed == len(results)
        # 4 tenants through 2 slots: sessions were evicted and re-warmed.
        assert stats.evictions > 0
        assert stats.sessions_created > len(keys) - 2
        assert stats.sessions_live <= 2

    def test_fairness_under_skewed_mix(self, matrix):
        """A hot tenant floods the farm; equal-weight cold tenants still
        get served close to their share while they have work queued."""
        with make_farm(
            workers=1, max_sessions=4, queue_depth=512, max_wait_ms=0.0
        ) as farm:
            for key in ("hot", "cold1", "cold2"):
                farm.register(key, matrix, **SESSION_KWARGS)
            b = np.ones(matrix.n_rows)
            futures = []
            # Interleave: the hot tenant submits 10x the cold tenants.
            for i in range(40):
                futures.append(farm.submit("hot", b))
                if i % 10 == 0:
                    futures.append(farm.submit("cold1", b))
                    futures.append(farm.submit("cold2", b))
            for f in futures:
                assert f.result(timeout=60).converged
            stats = farm.stats()
        hot = stats.tenants["hot"]
        assert hot.serve.requests_completed == 40
        for key in ("cold1", "cold2"):
            tenant = stats.tenants[key]
            assert tenant.serve.requests_completed == 4
            # The cold tenants' requests never waited behind the whole hot
            # backlog: weighted dispatch serves them at their share.
            assert (
                tenant.serve.queue_wait.max_ms
                < stats.tenants["hot"].serve.queue_wait.max_ms
            )


class TestFarmBackpressure:
    def test_rejects_when_queue_full_with_retry_hint(self, matrix):
        farm = make_farm(workers=1, queue_depth=2, max_wait_ms=50.0)
        farm.register("op", matrix, **SESSION_KWARGS)
        accepted = []
        try:
            with pytest.raises(RejectedError) as excinfo:
                for _ in range(64):
                    accepted.append(farm.submit("op", np.ones(matrix.n_rows)))
            assert excinfo.value.retry_after_ms > 0
            assert "retry" in str(excinfo.value)
        finally:
            farm.close()
        # Backpressure never fails accepted work.
        assert all(f.result(timeout=30).converged for f in accepted)

    def test_rejections_are_counted_per_tenant(self, matrix):
        farm = make_farm(workers=1, queue_depth=1, max_wait_ms=50.0)
        farm.register("op", matrix, **SESSION_KWARGS)
        rejected = 0
        for _ in range(8):
            try:
                farm.submit("op", np.ones(matrix.n_rows))
            except RejectedError:
                rejected += 1
        stats = farm.stats()
        farm.close()
        assert rejected > 0
        assert stats.tenants["op"].rejected == rejected
        assert stats.rejections == rejected


class TestFarmAsyncio:
    def test_asubmit_resolves_on_event_loop(self, matrix):
        async def drive(farm):
            results = await asyncio.gather(
                *(
                    farm.asubmit("op", rng(i).standard_normal(matrix.n_rows))
                    for i in range(5)
                )
            )
            return results

        with make_farm() as farm:
            farm.register("op", matrix, **SESSION_KWARGS)
            results = asyncio.run(drive(farm))
        assert len(results) == 5
        assert all(r.converged for r in results)

    def test_asubmit_propagates_validation_error(self, matrix):
        async def drive(farm):
            with pytest.raises(ValueError, match="length-"):
                await farm.asubmit("op", np.ones(3))

        with make_farm() as farm:
            farm.register("op", matrix, **SESSION_KWARGS)
            asyncio.run(drive(farm))

    def test_session_asubmit_matches_submit(self, matrix):
        b = rng(11).standard_normal(matrix.n_rows)
        with make_session(matrix) as session:
            sync = session.submit(b).result(timeout=30)

            async def drive():
                return await session.asubmit(b)

            result = asyncio.run(drive())
        np.testing.assert_array_equal(result.x, sync.x)


class TestFarmTelemetrySnapshot:
    def test_stats_shape_and_json_roundtrip(self, matrix):
        with make_farm() as farm:
            farm.register("a", matrix, weight=2.0, **SESSION_KWARGS)
            farm.register("b", matrix, **SESSION_KWARGS)
            futures = [farm.submit("a", np.ones(matrix.n_rows)) for _ in range(3)]
            futures += [farm.submit("b", np.ones(matrix.n_rows))]
            for f in futures:
                f.result(timeout=30)
            stats = farm.stats()
        assert isinstance(stats, FarmStats)
        assert stats.fleet.requests_completed == 4
        a, b = stats.tenants["a"], stats.tenants["b"]
        assert a.weight == 2.0
        assert a.expected_share == pytest.approx(2.0 / 3.0)
        assert a.fairness_share == pytest.approx(0.75)
        assert b.fairness_share == pytest.approx(0.25)
        shares = sum(t.fairness_share for t in stats.tenants.values())
        assert shares == pytest.approx(1.0)
        payload = json.dumps(stats.as_dict())  # BENCH_farm.json round-trip
        parsed = json.loads(payload)
        assert parsed["fleet"]["requests_completed"] == 4
        assert parsed["tenants"]["a"]["serve"]["requests_completed"] == 3
        assert parsed["sessions_live"] >= 1


class TestServeFacade:
    def test_repro_session_is_operator_session(self, matrix):
        with repro.session(matrix, **SESSION_KWARGS) as session:
            assert isinstance(session, OperatorSession)
            assert session.submit(np.ones(matrix.n_rows)).result(30).converged

    def test_repro_farm_is_solver_farm(self, matrix):
        with repro.farm(workers=1) as farm:
            assert isinstance(farm, SolverFarm)
            farm.register("op", matrix, **SESSION_KWARGS)
            assert farm.submit("op", np.ones(matrix.n_rows)).result(30).converged

    def test_deprecated_top_level_exports_warn_but_work(self):
        for name in (
            "OperatorSession",
            "SolveScheduler",
            "ServeResult",
            "BatchingPolicy",
            "ServeStats",
            "ServeTelemetry",
        ):
            with pytest.warns(DeprecationWarning, match=f"repro.{name}"):
                assert getattr(repro, name) is getattr(repro.serve, name)

    def test_unknown_top_level_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="does_not_exist"):
            repro.does_not_exist


class TestResultProtocol:
    def test_all_result_types_satisfy_result_like(self, matrix):
        b = np.ones(matrix.n_rows)
        single = repro.gmres(matrix, b, restart=8, tol=1e-8)
        multi = repro.solve_many(
            matrix, rng(5).standard_normal((matrix.n_rows, 2))
        )
        with make_session(matrix) as session:
            served = session.submit(b).result(timeout=30)
        for result in (single, multi, served):
            assert isinstance(result, ResultLike)
            assert result.status is not None
            assert result.converged in (True, False)
            assert result.residual_history is not None
            assert isinstance(result.summary(), str)

    def test_multi_result_unified_names(self, matrix):
        multi = repro.solve_many(
            matrix, rng(6).standard_normal((matrix.n_rows, 2))
        )
        assert multi.converged == all(
            s == repro.SolverStatus.CONVERGED for s in multi.statuses
        )
        assert multi.residual_history is multi.histories
        assert multi.status == repro.SolverStatus.CONVERGED

    def test_all_converged_is_deprecated(self, matrix):
        multi = repro.solve_many(
            matrix, rng(7).standard_normal((matrix.n_rows, 2))
        )
        with pytest.warns(DeprecationWarning, match="all_converged"):
            assert multi.all_converged == multi.converged
