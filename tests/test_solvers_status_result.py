"""Tests for status tests, SolveResult and ConvergenceHistory."""

import numpy as np
import pytest

from repro.perfmodel.timer import KernelTimer
from repro.solvers import (
    ConvergenceHistory,
    LossOfAccuracyTest,
    MaxIterationsTest,
    ResidualTest,
    SolveResult,
    SolverStatus,
    StagnationTest,
)


class TestStatusTests:
    def test_residual_test(self):
        t = ResidualTest(tolerance=1e-8)
        assert t.passes(1e-9)
        assert t.passes(1e-8)
        assert not t.passes(1e-7)

    def test_max_iterations_test(self):
        t = MaxIterationsTest(max_iterations=100)
        assert not t.exceeded(99)
        assert t.exceeded(100)
        assert t.exceeded(101)

    def test_loss_of_accuracy_triggers_on_divergence(self):
        t = LossOfAccuracyTest(tolerance=1e-10, divergence_factor=10)
        assert t.triggered(implicit_norm=1e-11, explicit_norm=1e-4)

    def test_loss_of_accuracy_not_triggered_when_both_converged(self):
        t = LossOfAccuracyTest(tolerance=1e-10)
        assert not t.triggered(1e-11, 1e-11)

    def test_loss_of_accuracy_not_triggered_when_implicit_above_tol(self):
        t = LossOfAccuracyTest(tolerance=1e-10)
        assert not t.triggered(1e-6, 1e-3)

    def test_loss_of_accuracy_respects_divergence_factor(self):
        t = LossOfAccuracyTest(tolerance=1e-10, divergence_factor=1e6)
        assert not t.triggered(1e-11, 1e-8)
        assert t.triggered(1e-16, 1e-8)

    def test_stagnation_detects_flat_residuals(self):
        t = StagnationTest(patience=3, min_reduction=0.9)
        assert not t.update(1.0)
        flags = [t.update(0.99), t.update(0.985), t.update(0.99)]
        assert flags[-1] is True

    def test_stagnation_resets_on_improvement(self):
        t = StagnationTest(patience=2, min_reduction=0.9)
        t.update(1.0)
        t.update(0.99)
        assert not t.update(0.5)  # big improvement resets the counter
        assert not t.update(0.49)
        t.reset()
        assert not t.update(0.49)


class TestConvergenceHistory:
    def test_record_and_series(self):
        h = ConvergenceHistory()
        for i, r in enumerate([1.0, 0.5, 0.25]):
            h.record_implicit(i + 1, r)
        h.record_explicit(0, 1.0)
        h.record_explicit(3, 0.2)
        assert h.implicit_series().shape == (3, 2)
        assert h.explicit_series().shape == (2, 2)
        assert h.best_explicit() == 0.2

    def test_empty_history(self):
        h = ConvergenceHistory()
        assert h.implicit_series().shape == (0, 2)
        assert h.best_explicit() == np.inf

    def test_merge_with_offset(self):
        a = ConvergenceHistory()
        a.record_implicit(1, 0.5)
        a.record_explicit(1, 0.5)
        b = ConvergenceHistory()
        b.record_implicit(1, 0.1)
        merged = a.merged_with(b, iteration_offset=10)
        assert merged.implicit_iterations == [1, 11]
        assert merged.implicit_norms == [0.5, 0.1]
        # originals untouched
        assert a.implicit_iterations == [1]


class TestSolveResult:
    def make_result(self, status=SolverStatus.CONVERGED):
        timer = KernelTimer("t")
        from repro.perfmodel.costs import CostEstimate

        timer.record("spmv", "double", CostEstimate(2.0, 10, 10), wall_seconds=0.5)
        timer.record("gemv_t", "double", CostEstimate(1.0, 10, 10), wall_seconds=0.1)
        return SolveResult(
            x=np.zeros(3),
            status=status,
            iterations=10,
            restarts=2,
            relative_residual=1e-11,
            relative_residual_fp64=1e-11,
            history=ConvergenceHistory(),
            timer=timer,
            solver="gmres",
            precision="double",
        )

    def test_converged_flag(self):
        assert self.make_result().converged
        assert not self.make_result(SolverStatus.MAX_ITERATIONS).converged
        assert not self.make_result(SolverStatus.LOSS_OF_ACCURACY).converged

    def test_time_properties(self):
        r = self.make_result()
        assert r.model_seconds == pytest.approx(3.0)
        assert r.wall_seconds == pytest.approx(0.6)

    def test_kernel_breakdown(self):
        r = self.make_result()
        breakdown = r.kernel_breakdown()
        assert breakdown["SpMV"] == pytest.approx(2.0)
        assert breakdown["GEMV (Trans)"] == pytest.approx(1.0)

    def test_summary_mentions_status_and_counts(self):
        text = self.make_result().summary()
        assert "converged" in text
        assert "10" in text

    def test_status_enum_string(self):
        assert str(SolverStatus.LOSS_OF_ACCURACY) == "loss_of_accuracy"
        assert SolverStatus("converged") == SolverStatus.CONVERGED
