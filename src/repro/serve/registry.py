"""Session registry: LRU cache of warmed operator sessions under a budget.

A solver farm serves many operators, but warmed sessions are expensive to
keep — each one pins working-precision matrix copies, backend plans and a
pool of Krylov workspaces (see :meth:`OperatorSession.estimated_bytes`).
The :class:`SessionRegistry` is the piece that makes "many operators" and
"bounded memory" compatible: operators are *registered* as factories
(cheap, unbounded), while warmed *sessions* are built on first use, kept
hot in an LRU cache, and evicted when the configured session-count or byte
budget is exceeded.  A re-request of an evicted operator transparently
re-warms it through its stored factory.

Eviction uses :meth:`OperatorSession.release` rather than ``close``: the
evicted session stops accepting new work, but a farm worker holding a
reference across the eviction can still finish its in-flight dispatch —
the warmed state is freed when the last reference drops.  Futures can
therefore never be lost to an eviction; the farm's per-tenant queues live
in the farm, not in the sessions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .session import OperatorSession

__all__ = ["SessionRegistry"]


class SessionRegistry:
    """LRU cache of warmed :class:`OperatorSession` objects by operator key.

    Parameters
    ----------
    max_sessions:
        At most this many warmed sessions are kept live; requesting one
        more evicts the least-recently-used first.  At least 1 (the
        session being requested is never evicted to make room for itself).
    max_bytes:
        Optional byte budget over the live sessions' estimated resident
        state (:meth:`OperatorSession.estimated_bytes`).  Evicts LRU-first
        until under budget, but never the most recent session — one
        oversized operator is served, not wedged.
    on_create / on_evict:
        Optional ``callable(key)`` lifecycle hooks (the farm wires these
        to :class:`~repro.serve.telemetry.FarmTelemetry`).

    Sessions are built *under the registry lock*: concurrent requests for
    the same cold key warm it exactly once, at the price of serializing
    warm-ups of different keys (warm-up is one SpMV + one SpMM per stored
    matrix — short next to the solves it amortizes).
    """

    def __init__(
        self,
        *,
        max_sessions: int = 8,
        max_bytes: Optional[int] = None,
        on_create: Optional[Callable[[str], None]] = None,
        on_evict: Optional[Callable[[str], None]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None for unlimited)")
        self.max_sessions = int(max_sessions)
        self.max_bytes = max_bytes
        self._on_create = on_create
        self._on_evict = on_evict
        self._lock = threading.RLock()
        self._factories: Dict[str, Callable[[], "OperatorSession"]] = {}
        # Insertion order = recency order: oldest (LRU) first.
        self._sessions: "OrderedDict[str, OperatorSession]" = OrderedDict()
        self._evictions = 0
        self._creations = 0

    # ------------------------------------------------------------------ #
    # registration                                                       #
    # ------------------------------------------------------------------ #
    def register(self, key: str, factory: Callable[[], "OperatorSession"]) -> None:
        """Register ``factory`` as the builder of ``key``'s session.

        Cheap — nothing is warmed until :meth:`get_or_create`.  Re-register
        to replace the factory; a live session built by the old factory is
        evicted so the next request re-warms through the new one.
        """
        with self._lock:
            replaced = key in self._factories
            self._factories[key] = factory
            if replaced and key in self._sessions:
                self._evict_locked(key)

    def registered_keys(self) -> List[str]:
        with self._lock:
            return list(self._factories)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._factories

    # ------------------------------------------------------------------ #
    # lookup / build                                                     #
    # ------------------------------------------------------------------ #
    def get_or_create(self, key: str) -> "OperatorSession":
        """The warmed session for ``key``, building (or re-warming) it if cold.

        Marks the session most-recently-used and enforces the budgets,
        evicting LRU sessions as needed — never ``key`` itself.
        """
        with self._lock:
            if key not in self._factories:
                raise KeyError(f"no operator registered under key {key!r}")
            session = self._sessions.get(key)
            if session is None:
                # Make room *before* warming so peak live count never
                # exceeds max_sessions.
                while len(self._sessions) >= self.max_sessions:
                    self._evict_lru_locked()
                session = self._factories[key]()
                self._sessions[key] = session
                self._creations += 1
                if self._on_create is not None:
                    self._on_create(key)
            self._sessions.move_to_end(key)
            self._enforce_bytes_locked()
            return session

    def peek(self, key: str) -> Optional["OperatorSession"]:
        """The live session for ``key`` without building or touching recency."""
        with self._lock:
            return self._sessions.get(key)

    def live_keys(self) -> List[str]:
        """Keys with a warmed session, LRU first."""
        with self._lock:
            return list(self._sessions)

    @property
    def live_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def evictions(self) -> int:
        """Lifetime count of sessions evicted (budget or explicit)."""
        with self._lock:
            return self._evictions

    @property
    def creations(self) -> int:
        """Lifetime count of sessions warmed (including re-warms)."""
        with self._lock:
            return self._creations

    def estimated_bytes(self) -> int:
        """Summed :meth:`OperatorSession.estimated_bytes` of live sessions."""
        with self._lock:
            return sum(s.estimated_bytes() for s in self._sessions.values())

    # ------------------------------------------------------------------ #
    # eviction                                                           #
    # ------------------------------------------------------------------ #
    def evict(self, key: str) -> bool:
        """Explicitly evict ``key``'s warmed session (returns whether one was)."""
        with self._lock:
            if key not in self._sessions:
                return False
            self._evict_locked(key)
            return True

    def _evict_lru_locked(self) -> None:
        key = next(iter(self._sessions))
        self._evict_locked(key)

    def _evict_locked(self, key: str) -> None:
        session = self._sessions.pop(key)
        self._evictions += 1
        # release(), not close(): a farm worker mid-dispatch on this
        # session finishes its batch; the warmed state is freed when the
        # last reference drops (see module docstring).
        session.release()
        if self._on_evict is not None:
            self._on_evict(key)

    def _enforce_bytes_locked(self) -> None:
        if self.max_bytes is None:
            return
        # Workspace pools grow with traffic, so re-measure instead of
        # trusting creation-time sizes.  Never evict the MRU session:
        # one oversized operator is served, not wedged.
        while len(self._sessions) > 1:
            total = sum(s.estimated_bytes() for s in self._sessions.values())
            if total <= self.max_bytes:
                break
            self._evict_lru_locked()

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def release_all(self) -> None:
        """Evict every live session (factories stay registered)."""
        with self._lock:
            for key in list(self._sessions):
                self._evict_locked(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"<SessionRegistry live={len(self._sessions)}/{self.max_sessions} "
                f"registered={len(self._factories)} evictions={self._evictions}>"
            )
