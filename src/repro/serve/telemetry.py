"""Service telemetry: per-request latency, batch occupancy, throughput.

The serve layer's observable surface.  A :class:`ServeTelemetry` instance
is owned by one :class:`~repro.serve.scheduler.SolveScheduler` and updated
from two threads (client submits, dispatcher completions) under its own
lock; :meth:`ServeTelemetry.snapshot` freezes everything into an immutable
:class:`ServeStats` dataclass, which is what ``benchmarks/_harness.py
--serve`` dumps into ``BENCH_serve.json``.

Latency accounting per request:

* **queue wait** — from ``submit()`` to the dispatcher popping the request
  into a batch (the price of micro-batching; bounded by ``max_wait_ms``
  when traffic is sparse);
* **solve** — wall time of the batched solve the request rode in (shared
  by all requests of the batch, by construction of batching);
* **total latency** — the sum, i.e. submit-to-future-resolution as the
  client experiences it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "LatencySummary",
    "ServeStats",
    "ServeTelemetry",
    "TelemetryFanout",
    "TenantStats",
    "FarmStats",
    "FarmTelemetry",
    "LATENCY_WINDOW",
]

#: Samples kept per latency series for the percentile summaries.  A
#: long-lived session serves an unbounded number of requests; the lifetime
#: counters stay exact while the latency distributions cover the most
#: recent window (4096 requests is plenty for stable p50/p95 and keeps
#: both memory and snapshot cost bounded).
LATENCY_WINDOW = 4096


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency series (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, samples: Iterable[float]) -> "LatencySummary":
        samples = list(samples)
        if not samples:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, max_ms=0.0)
        ms = np.asarray(samples, dtype=np.float64) * 1e3
        return cls(
            count=int(ms.size),
            mean_ms=float(ms.mean()),
            p50_ms=float(np.percentile(ms, 50)),
            p95_ms=float(np.percentile(ms, 95)),
            max_ms=float(ms.max()),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "max_ms": self.max_ms,
        }


@dataclass(frozen=True)
class ServeStats:
    """Immutable snapshot of a session's service counters.

    Attributes
    ----------
    requests_submitted / requests_completed / requests_failed:
        Lifetime request counters.  ``failed`` counts requests whose future
        resolved with an exception (rejected inputs, solver errors) — a
        column that merely did not converge completes *successfully* with a
        non-``CONVERGED`` status.
    requests_retried:
        Requests whose batched solve did not converge and that were
        re-solved through the width-1 path before resolving (batch-failure
        containment; see :mod:`repro.serve.scheduler`).
    requests_timed_out:
        Requests that hit their ``deadline_ms`` — either expired in the
        queue (failing fast with ``DeadlineExceededError``, also counted
        in ``requests_failed``) or resolved with status ``TIMED_OUT``
        mid-solve (also counted in ``requests_completed``).
    requests_cancelled:
        Requests cancelled by their client — dropped from the queue
        (their future resolves as cancelled; also counted in
        ``requests_failed``) or resolved with status ``CANCELLED``
        mid-solve (also counted in ``requests_completed``).  At
        quiescence ``submitted == completed + failed`` always holds; the
        timeout/cancellation counters classify *why* within those two.
    batches_dispatched:
        Number of batched solves the scheduler ran.
    batch_occupancy:
        Histogram ``{width: batches}`` of dispatched block widths — the
        direct readout of how well micro-batching coalesced the traffic.
    queue_wait / solve / latency:
        :class:`LatencySummary` of the per-request queue wait, solve time
        and total latency, over the most recent :data:`LATENCY_WINDOW`
        requests (counters are lifetime; the distributions are windowed
        so a long-lived session stays bounded in memory).
    rhs_per_second:
        Completed requests per second of service uptime (first submit to
        last completion) — the throughput number the serving gate checks.
    block_iterations:
        Total block-Arnoldi steps across all dispatches.
    """

    requests_submitted: int
    requests_completed: int
    requests_failed: int
    requests_retried: int
    requests_timed_out: int
    requests_cancelled: int
    batches_dispatched: int
    batch_occupancy: Dict[int, int]
    queue_wait: LatencySummary
    solve: LatencySummary
    latency: LatencySummary
    rhs_per_second: float
    elapsed_seconds: float
    block_iterations: int

    @property
    def mean_batch_occupancy(self) -> float:
        total = sum(self.batch_occupancy.values())
        if total == 0:
            return 0.0
        return sum(k * v for k, v in self.batch_occupancy.items()) / total

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``BENCH_serve.json``)."""
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_retried": self.requests_retried,
            "requests_timed_out": self.requests_timed_out,
            "requests_cancelled": self.requests_cancelled,
            "batches_dispatched": self.batches_dispatched,
            "batch_occupancy": {str(k): v for k, v in sorted(self.batch_occupancy.items())},
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "queue_wait": self.queue_wait.as_dict(),
            "solve": self.solve.as_dict(),
            "latency": self.latency.as_dict(),
            "rhs_per_second": self.rhs_per_second,
            "elapsed_seconds": self.elapsed_seconds,
            "block_iterations": self.block_iterations,
        }


class ServeTelemetry:
    """Thread-safe accumulator behind :class:`ServeStats` snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._retried = 0
        self._timed_out = 0
        self._cancelled = 0
        self._batches = 0
        self._occupancy: Dict[int, int] = {}
        # Bounded windows: lifetime counters stay exact, the latency
        # distributions cover the most recent LATENCY_WINDOW requests.
        self._queue_waits: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._solves: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._block_iterations = 0
        self._first_submit: Optional[float] = None
        self._last_completion: Optional[float] = None

    # ------------------------------------------------------------------ #
    # recording (called by the scheduler)                                #
    # ------------------------------------------------------------------ #
    def record_submitted(self) -> None:
        now = time.perf_counter()
        with self._lock:
            self._submitted += 1
            if self._first_submit is None:
                self._first_submit = now

    def record_rejected(self) -> None:
        """A request failed validation before ever entering the queue."""
        with self._lock:
            self._submitted += 1
            self._failed += 1

    def record_timeout(self) -> None:
        """An already-submitted request expired in the queue.

        The batch assembler found its deadline lapsed and failed it fast
        with ``DeadlineExceededError`` — it was never dispatched.
        """
        with self._lock:
            self._failed += 1
            self._timed_out += 1

    def record_cancelled(self) -> None:
        """An already-submitted request was cancelled while queued.

        Its future resolved as cancelled; the request was dropped before
        dispatch and no solver work was spent on it.
        """
        with self._lock:
            self._failed += 1
            self._cancelled += 1

    def record_abandoned(self) -> None:
        """An already-submitted request was failed by a non-drain close."""
        with self._lock:
            self._failed += 1

    def record_batch(
        self,
        queue_waits: List[float],
        solve_seconds: "float | List[float]",
        *,
        block_iterations: int = 0,
        failed: int = 0,
        retried: int = 0,
        timed_out: int = 0,
        cancelled: int = 0,
    ) -> None:
        """Account one dispatched batch.

        ``queue_waits`` has one entry per request in the batch;
        ``solve_seconds`` is the batch solve wall time (a scalar shared by
        every request, or one entry per request when sequential retries
        gave some of them extra solve time); ``failed`` counts requests
        whose future was resolved with an exception (the rest completed)
        and ``retried`` those that went through the width-1 retry.
        ``timed_out`` / ``cancelled`` count requests of this batch that
        resolved with status ``TIMED_OUT`` / ``CANCELLED`` mid-solve —
        they still count as completed (their future carries a result).
        """
        now = time.perf_counter()
        occupancy = len(queue_waits)
        if isinstance(solve_seconds, (int, float)):
            solve_seconds = [float(solve_seconds)] * occupancy
        if len(solve_seconds) != occupancy:
            raise ValueError("solve_seconds must match the batch occupancy")
        with self._lock:
            self._batches += 1
            self._occupancy[occupancy] = self._occupancy.get(occupancy, 0) + 1
            self._completed += occupancy - failed
            self._failed += failed
            self._retried += retried
            self._timed_out += timed_out
            self._cancelled += cancelled
            self._block_iterations += block_iterations
            self._queue_waits.extend(queue_waits)
            self._solves.extend(solve_seconds)
            self._latencies.extend(
                w + s for w, s in zip(queue_waits, solve_seconds)
            )
            self._last_completion = now

    # ------------------------------------------------------------------ #
    # reading                                                            #
    # ------------------------------------------------------------------ #
    def snapshot(self) -> ServeStats:
        """Freeze the counters into an immutable :class:`ServeStats`."""
        with self._lock:
            if self._first_submit is not None and self._last_completion is not None:
                elapsed = max(self._last_completion - self._first_submit, 0.0)
            else:
                elapsed = 0.0
            throughput = self._completed / elapsed if elapsed > 0 else 0.0
            return ServeStats(
                requests_submitted=self._submitted,
                requests_completed=self._completed,
                requests_failed=self._failed,
                requests_retried=self._retried,
                requests_timed_out=self._timed_out,
                requests_cancelled=self._cancelled,
                batches_dispatched=self._batches,
                batch_occupancy=dict(self._occupancy),
                queue_wait=LatencySummary.from_seconds(self._queue_waits),
                solve=LatencySummary.from_seconds(self._solves),
                latency=LatencySummary.from_seconds(self._latencies),
                rhs_per_second=throughput,
                elapsed_seconds=elapsed,
                block_iterations=self._block_iterations,
            )


class TelemetryFanout:
    """Forward the recording half of :class:`ServeTelemetry` to many sinks.

    The farm accounts every event twice — once in the tenant's own
    telemetry, once in the fleet-wide aggregate — so both levels report
    exact counters and true (not re-derived) latency percentiles.  A
    fanout bundles the two sinks behind the single-telemetry interface
    :func:`~repro.serve.scheduler.run_batch` expects; ``snapshot()``
    reads the *first* sink (the tenant).
    """

    def __init__(self, *sinks: ServeTelemetry) -> None:
        if not sinks:
            raise ValueError("TelemetryFanout needs at least one sink")
        self._sinks = sinks

    def record_submitted(self) -> None:
        for sink in self._sinks:
            sink.record_submitted()

    def record_rejected(self) -> None:
        for sink in self._sinks:
            sink.record_rejected()

    def record_timeout(self) -> None:
        for sink in self._sinks:
            sink.record_timeout()

    def record_cancelled(self) -> None:
        for sink in self._sinks:
            sink.record_cancelled()

    def record_abandoned(self) -> None:
        for sink in self._sinks:
            sink.record_abandoned()

    def record_batch(self, queue_waits, solve_seconds, **kwargs) -> None:
        for sink in self._sinks:
            sink.record_batch(queue_waits, solve_seconds, **kwargs)

    def snapshot(self) -> ServeStats:
        return self._sinks[0].snapshot()


@dataclass(frozen=True)
class TenantStats:
    """One tenant's slice of a :class:`FarmStats` snapshot.

    ``fairness_share`` is the tenant's fraction of all completed fleet
    requests; ``expected_share`` its registered weight over the total
    registered weight — the two numbers whose divergence the fairness
    accounting watches (a starved tenant shows ``fairness_share`` well
    below ``expected_share`` while it has queued work).
    """

    key: str
    weight: float
    queue_depth: int
    rejected: int
    evictions: int
    breaker_trips: int
    fairness_share: float
    expected_share: float
    serve: ServeStats

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "weight": self.weight,
            "queue_depth": self.queue_depth,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "breaker_trips": self.breaker_trips,
            "fairness_share": self.fairness_share,
            "expected_share": self.expected_share,
            "serve": self.serve.as_dict(),
        }


@dataclass(frozen=True)
class FarmStats:
    """Immutable snapshot of a :class:`~repro.serve.farm.SolverFarm`.

    ``fleet`` aggregates every request of every tenant (RHS/s, latency
    percentiles, occupancy) from its own exact counters — it is not a
    re-summation of the per-tenant snapshots.  ``tenants`` maps operator
    key to :class:`TenantStats`.
    """

    fleet: ServeStats
    tenants: Dict[str, TenantStats]
    sessions_live: int
    sessions_created: int
    evictions: int
    rejections: int
    breaker_trips: int
    estimated_session_bytes: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``BENCH_farm.json``)."""
        return {
            "fleet": self.fleet.as_dict(),
            "tenants": {k: t.as_dict() for k, t in sorted(self.tenants.items())},
            "sessions_live": self.sessions_live,
            "sessions_created": self.sessions_created,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "breaker_trips": self.breaker_trips,
            "estimated_session_bytes": self.estimated_session_bytes,
        }


class FarmTelemetry:
    """Thread-safe fleet-and-tenant accumulator of a solver farm.

    Owns one :class:`ServeTelemetry` per tenant plus a fleet-wide one;
    :meth:`sink` hands the farm a :class:`TelemetryFanout` recording into
    both.  Registry lifecycle events (session creations, LRU evictions)
    and admission rejections are counted here as well, so one
    :meth:`snapshot` call captures the whole observable state of the
    farm.

    With an :class:`~repro.obs.slo.SloEngine` attached (``slo=``), every
    sink additionally fans out into the engine's per-tenant
    (``"<scope>/<key>"``) and fleet (``"<scope>"``) trackers — the SLO
    ledger rides the existing fanout, no extra hook points in the farm.
    """

    def __init__(self, *, slo=None, scope: str = "farm") -> None:
        self._lock = threading.Lock()
        self._fleet = ServeTelemetry()
        self._tenants: Dict[str, ServeTelemetry] = {}
        self._sinks: Dict[str, TelemetryFanout] = {}
        self._rejected: Dict[str, int] = {}
        self._evictions: Dict[str, int] = {}
        self._breaker_trips: Dict[str, int] = {}
        self._creations = 0
        self._slo = slo
        self._scope = scope

    # ------------------------------------------------------------------ #
    # recording                                                          #
    # ------------------------------------------------------------------ #
    def tenant(self, key: str) -> ServeTelemetry:
        """The per-tenant telemetry for ``key`` (created on first use)."""
        with self._lock:
            telemetry = self._tenants.get(key)
            if telemetry is None:
                telemetry = self._tenants[key] = ServeTelemetry()
            return telemetry

    def sink(self, key: str) -> TelemetryFanout:
        """A recording sink feeding both ``key``'s telemetry and the fleet's."""
        with self._lock:
            fanout = self._sinks.get(key)
            if fanout is None:
                tenant = self._tenants.get(key)
                if tenant is None:
                    tenant = self._tenants[key] = ServeTelemetry()
                sinks = [tenant, self._fleet]
                if self._slo is not None:
                    sinks.append(self._slo.tracker(f"{self._scope}/{key}"))
                    sinks.append(self._slo.tracker(self._scope))
                fanout = self._sinks[key] = TelemetryFanout(*sinks)
            return fanout

    def record_rejected(self, key: str) -> None:
        """One admission rejection (backpressure) for tenant ``key``."""
        with self._lock:
            self._rejected[key] = self._rejected.get(key, 0) + 1
        self.sink(key).record_rejected()

    def record_eviction(self, key: str) -> None:
        """The registry evicted ``key``'s warmed session."""
        with self._lock:
            self._evictions[key] = self._evictions.get(key, 0) + 1

    def record_breaker_trip(self, key: str) -> None:
        """``key``'s circuit breaker tripped (its session is quarantined)."""
        with self._lock:
            self._breaker_trips[key] = self._breaker_trips.get(key, 0) + 1

    def record_creation(self, key: str) -> None:
        """The registry built (or rebuilt after eviction) ``key``'s session."""
        with self._lock:
            self._creations += 1

    # ------------------------------------------------------------------ #
    # reading                                                            #
    # ------------------------------------------------------------------ #
    @property
    def evictions(self) -> int:
        with self._lock:
            return sum(self._evictions.values())

    def snapshot(
        self,
        *,
        weights: Optional[Dict[str, float]] = None,
        queue_depths: Optional[Dict[str, int]] = None,
        sessions_live: int = 0,
        estimated_session_bytes: int = 0,
    ) -> FarmStats:
        """Freeze everything into a :class:`FarmStats`.

        ``weights`` / ``queue_depths`` carry the farm's current per-tenant
        scheduling state (registered weight, queued requests), which lives
        in the farm, not here; tenants missing from the maps default to
        weight 1 and an empty queue.
        """
        weights = weights or {}
        queue_depths = queue_depths or {}
        with self._lock:
            tenant_telemetry = dict(self._tenants)
            rejected = dict(self._rejected)
            evictions = dict(self._evictions)
            breaker_trips = dict(self._breaker_trips)
            creations = self._creations
        fleet = self._fleet.snapshot()
        total_weight = sum(weights.get(key, 1.0) for key in tenant_telemetry) or 1.0
        completed = fleet.requests_completed
        tenants: Dict[str, TenantStats] = {}
        for key, telemetry in tenant_telemetry.items():
            stats = telemetry.snapshot()
            tenants[key] = TenantStats(
                key=key,
                weight=weights.get(key, 1.0),
                queue_depth=queue_depths.get(key, 0),
                rejected=rejected.get(key, 0),
                evictions=evictions.get(key, 0),
                breaker_trips=breaker_trips.get(key, 0),
                fairness_share=(
                    stats.requests_completed / completed if completed else 0.0
                ),
                expected_share=weights.get(key, 1.0) / total_weight,
                serve=stats,
            )
        return FarmStats(
            fleet=fleet,
            tenants=tenants,
            sessions_live=sessions_live,
            sessions_created=creations,
            evictions=sum(evictions.values()),
            rejections=sum(rejected.values()),
            breaker_trips=sum(breaker_trips.values()),
            estimated_session_bytes=estimated_session_bytes,
        )
