"""Operator sessions: register a matrix once, serve many right-hand sides.

An :class:`OperatorSession` owns everything about a solver configuration
that is expensive and amortizable across requests, so that the per-request
cost is just the solve itself:

* the **pinned execution context** — backend handle, device cost model and
  metering flag are captured at construction, so the session keeps serving
  with the same backend even if another thread later flips the global
  context (the dispatcher installs the pinned context thread-locally per
  dispatch, see :func:`repro.linalg.context.use_context`);
* the **working-precision matrix copies** and the backend's cached
  per-matrix plans (SciPy handles, DIA/SpMM plans, row geometry), built
  eagerly by a warm-up pass instead of lazily on the first paying request;
* the **preconditioner**, set up once and pre-wrapped for the working
  precision;
* a **per-width pool of Krylov workspaces** — a
  :class:`~repro.solvers.gmres.GmresWorkspace` for the width-1 path and
  :class:`~repro.solvers.block_gmres.BlockGmresWorkspace` per block width
  — so dispatches reuse pooled Krylov storage, extending the PR-2
  allocation-free contract across whole solves (a steady-state dispatch
  allocates no basis memory);
* the **micro-batching scheduler** (:class:`~repro.serve.scheduler.SolveScheduler`)
  and its telemetry.

Solves are serialized on a session-level lock — the modelled device is one
GPU, and the pooled workspaces are shared mutable state — so concurrent
``submit()`` and direct ``solve()`` calls are safe from any thread.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

import numpy as np

from ..config import get_config
from ..linalg.context import ExecutionContext, get_context, use_context
from ..obs import resolve_observability
from ..obs.metrics import watch_session
from ..precision import Precision, as_precision
from ..preconditioners.base import Preconditioner
from ..preconditioners.mixed import wrap_for_precision
from ..solvers.block_gmres import BlockGmresWorkspace, block_gmres, block_gmres_ir
from ..solvers.gmres import GmresWorkspace, gmres
from ..solvers.gmres_ir import gmres_ir
from ..solvers.result import MultiSolveResult, SolveResult
from ..sparse.csr import CsrMatrix
from .policy import BatchingPolicy
from .scheduler import SolveScheduler
from .telemetry import ServeStats, ServeTelemetry, TelemetryFanout

__all__ = ["OperatorSession", "validate_rhs"]


def validate_rhs(b: np.ndarray, n_rows: int) -> np.ndarray:
    """Normalize one right-hand side to an owned length-``n_rows`` column.

    The single validation path of the serve layer: shape-checks, rejects
    non-finite entries (they would poison a shared Krylov basis — and a
    direct NaN solve is equally meaningless), and copies so a caller
    mutating its array afterwards cannot corrupt a queued batch.  Raises
    :class:`ValueError` on invalid input.  Module-level so the farm can
    validate against a registered operator's dimensions without forcing
    its (possibly evicted) session to be rebuilt first.
    """
    column = np.asarray(b, dtype=np.float64)
    if column.ndim == 2 and column.shape[1] == 1:
        column = column[:, 0]
    if column.ndim != 1 or column.shape[0] != n_rows:
        raise ValueError(
            f"right-hand side must be a length-{n_rows} vector, "
            f"got shape {np.asarray(b).shape}"
        )
    if not np.all(np.isfinite(column)):
        raise ValueError(
            "right-hand side contains non-finite entries; rejecting it "
            "before it can poison a shared Krylov basis"
        )
    return np.array(column, copy=True)


def _nbytes_of(obj: object, depth: int = 2) -> int:
    """Estimated array bytes held by ``obj`` (recursing into attributes,
    dict values and the basis :class:`MultiVector` of a workspace)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if depth <= 0:
        return 0
    if isinstance(obj, dict):
        return sum(_nbytes_of(v, depth - 1) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes_of(v, depth - 1) for v in obj)
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return sum(_nbytes_of(v, depth - 1) for v in attrs.values())
    return 0


class OperatorSession:
    """A served operator: matrix + solver config registered once.

    Parameters
    ----------
    matrix:
        The system matrix shared by every request of this session.
    method:
        ``"gmres"`` (Block-GMRES in one working precision) or
        ``"gmres-ir"`` (blocked mixed-precision iterative refinement).
    precision:
        Working precision (for ``"gmres-ir"``: the *outer* precision).
    inner_precision:
        Inner precision of ``"gmres-ir"`` (ignored otherwise).
    restart / tol / max_restarts:
        Solver configuration, defaulting from :class:`~repro.config.ReproConfig`
        exactly like the direct solver entry points.
    ortho / block_ortho:
        Orthogonalization for the width-1 path (``"cgs2"``, the
        single-vector default) and the batched path (``"bcgs2"``).
    preconditioner:
        Optional right preconditioner.  Constructed by the caller (its
        setup cost is paid once, outside any request); the session
        pre-wraps it for the working precision.
    meter:
        Whether served solves run with kernel metering (default off — a
        service wants wall-clock throughput, not modelled breakdowns; the
        per-request telemetry is independent of this flag).
    fp64_check:
        Recompute each column's final residual in fp64 (one extra SpMV per
        request; on by default because served results advertise it).
    retry_failed:
        Re-solve a column that did not converge inside a batch through the
        width-1 path before resolving its future (default on).  A batch of
        linearly dependent right-hand sides is rank-deficient as a block
        and can defeat the shared-basis solver even though each column
        alone is easy; the retry contains that batching artefact at the
        cost of one extra sequential solve.  Disable to surface raw batch
        statuses.
    max_block / max_wait_ms / policy:
        Micro-batching knobs, defaulting from ``ReproConfig.serve``
        (:class:`~repro.config.ServeConfig`).  ``policy`` accepts a
        mode string (``"auto"`` / ``"block"`` / ``"sequential"``) or a
        ready :class:`~repro.serve.policy.BatchingPolicy`.
    warmup:
        Run the plan-building warm-up at construction (default True).
    obs:
        Observability wiring — an :class:`repro.obs.Observability`
        bundle, a bare :class:`repro.obs.Tracer`, or ``None`` to resolve
        from ``ReproConfig.obs`` (tracing off, metrics on by default).
        When a tracer is present every request gets a span tree
        (``request`` → ``submit``/``queued``/``dispatch``) and every
        dispatch a ``batch`` tree with solver probe events; when a
        metrics registry is present the session's stats are published
        for Prometheus scraping.
    solver_kwargs:
        Extra keyword arguments forwarded verbatim to the block driver
        (e.g. ``stagnation=...``, ``refine_every=...``).
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        *,
        method: str = "gmres",
        precision: Union[str, Precision] = "double",
        inner_precision: Union[str, Precision] = "single",
        restart: Optional[int] = None,
        tol: Optional[float] = None,
        max_restarts: Optional[int] = None,
        preconditioner: Optional[Preconditioner] = None,
        ortho: str = "cgs2",
        block_ortho: str = "bcgs2",
        meter: bool = False,
        fp64_check: bool = True,
        retry_failed: bool = True,
        max_block: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        policy: Union[str, BatchingPolicy, None] = None,
        telemetry: Optional[ServeTelemetry] = None,
        name: Optional[str] = None,
        warmup: bool = True,
        obs=None,
        **solver_kwargs,
    ) -> None:
        if method not in ("gmres", "gmres-ir"):
            raise ValueError(
                f"unknown method {method!r}; choose 'gmres' or 'gmres-ir'"
            )
        cfg = get_config()
        self.method = method
        self.restart = cfg.restart if restart is None else int(restart)
        self.tol = cfg.rtol if tol is None else float(tol)
        self.max_restarts = cfg.max_restarts if max_restarts is None else int(max_restarts)
        self.max_block = cfg.serve.max_block if max_block is None else int(max_block)
        if self.max_block < 1:
            raise ValueError("max_block must be at least 1")
        wait = cfg.serve.max_wait_ms if max_wait_ms is None else float(max_wait_ms)
        self.retry_failed = bool(retry_failed)
        self.name = name or f"serve-{matrix.name or 'operator'}"
        self.obs = resolve_observability(obs)
        #: The session's tracer (None = tracing off; the scheduler and
        #: the shared dispatch core read this on every hot-path decision).
        self.tracer = self.obs.tracer
        #: Optional HealthMonitor (explicit via obs=): the dispatch core
        #: runs its detectors and the telemetry feeds its SLO tracker.
        self.health = self.obs.health
        if self.health is not None:
            telemetry = TelemetryFanout(
                telemetry if telemetry is not None else ServeTelemetry(),
                self.health.tracker(self.name),
            )

        # Pin the execution context: resolve the (possibly config-lazy)
        # backend of the *current* context into an explicit instance, so
        # the session keeps dispatching to it for its whole lifetime.
        base = get_context()
        self.context = ExecutionContext(
            base.device,
            meter=meter,
            backend=base.backend,
            cost_model=base.cost_model,
        )

        outer = as_precision(precision)
        inner = as_precision(inner_precision)
        shared_kwargs = dict(
            restart=self.restart,
            tol=self.tol,
            max_restarts=self.max_restarts,
            fp64_check=fp64_check,
            **solver_kwargs,
        )
        if method == "gmres":
            self._work_precision = outer
            self._matrices: List[CsrMatrix] = [matrix.astype(outer)]
            self._matrix = self._matrices[0]
            wrapped = (
                wrap_for_precision(preconditioner, outer)
                if preconditioner is not None
                else None
            )
            self._single_driver = gmres
            self._block_driver = block_gmres
            precision_kwargs = dict(precision=outer)
        else:
            self._work_precision = inner  # Krylov workspaces live here
            self._matrices = [matrix.astype(outer), matrix.astype(inner)]
            self._matrix = self._matrices[0]
            wrapped = (
                wrap_for_precision(preconditioner, inner)
                if preconditioner is not None
                else None
            )
            self._single_driver = gmres_ir
            self._block_driver = block_gmres_ir
            precision_kwargs = dict(inner_precision=inner, outer_precision=outer)
        self.preconditioner = wrapped
        self._single_kwargs = dict(
            shared_kwargs,
            preconditioner=wrapped,
            ortho=ortho,
            **precision_kwargs,
        )
        self._block_kwargs = dict(
            shared_kwargs,
            preconditioner=wrapped,
            ortho=block_ortho,
            **precision_kwargs,
        )

        spmvs_per_iteration = 1 + (
            wrapped.spmvs_per_apply() if wrapped is not None else 0
        )
        if isinstance(policy, BatchingPolicy):
            self.policy = policy
        else:
            mode = policy if policy is not None else cfg.serve.policy
            self.policy = BatchingPolicy(
                self._matrix,
                self.context.cost_model,
                max_block=self.max_block,
                mode=mode,
                precision=self._work_precision,
                basis_columns=self.restart,
                spmvs_per_iteration=spmvs_per_iteration,
            )

        self._workspaces: Dict[int, BlockGmresWorkspace] = {}
        self._single_workspace: Optional[GmresWorkspace] = None
        self._solve_lock = threading.Lock()
        self._closed = False
        if warmup:
            self._warmup()
        self.scheduler = SolveScheduler(
            self,
            max_block=self.max_block,
            max_wait_ms=wait,
            policy=self.policy,
            telemetry=telemetry,
        )
        if self.obs.registry is not None:
            watch_session(self, registry=self.obs.registry)

    # ------------------------------------------------------------------ #
    # shape / state queries                                              #
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return self._matrix.n_rows

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> ServeStats:
        """Current service-telemetry snapshot."""
        return self.scheduler.stats()

    def validate_rhs(self, b: np.ndarray) -> np.ndarray:
        """Normalize one right-hand side to an owned length-``n`` column.

        The single validation path shared by :meth:`submit` (via the
        scheduler) and :meth:`solve`: shape-checks, rejects non-finite
        entries (they would poison a shared Krylov basis — and a direct
        NaN solve is equally meaningless), and copies so a caller mutating
        its array afterwards cannot corrupt a queued batch.  Raises
        :class:`ValueError` on invalid input.
        """
        return validate_rhs(b, self.n_rows)

    def estimated_bytes(self) -> int:
        """Estimated resident bytes of the session's amortizable state.

        Counts the stored working-precision matrix copies (CSR arrays and
        any cached precision casts) and the pooled Krylov workspaces —
        the memory the :class:`~repro.serve.registry.SessionRegistry`
        budget accounts for when deciding LRU eviction.  An estimate, not
        an audit: backend-internal plan caches are keyed on the matrices
        and die with them, but are not themselves walked.
        """
        total = 0
        for matrix in self._matrices:
            total += (
                matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
            )
        for ws in self._workspaces.values():
            total += _nbytes_of(ws)
        if self._single_workspace is not None:
            total += _nbytes_of(self._single_workspace)
        return total

    def workspace_for(self, width: int) -> "BlockGmresWorkspace | GmresWorkspace":
        """The pooled Krylov workspace for a dispatch of ``width`` columns.

        Width 1 pools one :class:`GmresWorkspace` (the single-vector
        path); wider dispatches get the narrowest pooled
        :class:`BlockGmresWorkspace` that fits, creating one per new
        width.  A wider pooled block workspace serves narrower dispatches
        with bit-identical numerics (every cycle buffer is sliced to the
        active width), so the pool stays small — typically one block entry
        at ``max_block``.  Callers must hold the session solve lock (the
        dispatcher and :meth:`solve` do).
        """
        if width < 1:
            raise ValueError("width must be at least 1")
        if width == 1:
            if self._single_workspace is None:
                self._single_workspace = GmresWorkspace(
                    self.n_rows, self.restart, self._work_precision
                )
            return self._single_workspace
        best: Optional[BlockGmresWorkspace] = None
        for ws in self._workspaces.values():
            if ws.block_size >= width and (
                best is None or ws.block_size < best.block_size
            ):
                best = ws
        if best is None:
            best = BlockGmresWorkspace(
                self.n_rows, self.restart, width, self._work_precision
            )
            self._workspaces[width] = best
        return best

    # ------------------------------------------------------------------ #
    # solving                                                            #
    # ------------------------------------------------------------------ #
    def _warmup(self) -> None:
        """Build every lazily-cached plan before the first paying request.

        One raw SpMV and one width-``max_block`` SpMM per stored matrix
        (backend handles, DIA/SpMM plans, row geometry), one block
        preconditioner application (recurrence scratch), and the
        ``max_block``-wide Krylov workspace.
        """
        with use_context(self.context):
            backend = self.context.backend
            for matrix in self._matrices:
                x = np.zeros(matrix.n_rows, dtype=matrix.dtype)
                X = np.zeros(
                    (matrix.n_rows, self.max_block), dtype=matrix.dtype, order="F"
                )
                backend.spmv(matrix, x)
                backend.spmm(matrix, X)
            if self.preconditioner is not None:
                dtype = self.preconditioner.precision.dtype
                block = np.zeros((self.n_rows, self.max_block), dtype=dtype, order="F")
                out = np.empty_like(block)
                self.preconditioner.apply_block(block, out=out)
            self.workspace_for(1)
            self.workspace_for(self.max_block)

    @staticmethod
    def _as_multi(result: SolveResult) -> MultiSolveResult:
        """Adapt a single-vector :class:`SolveResult` to the batch shape.

        The scheduler demultiplexes every dispatch through
        :meth:`MultiSolveResult.split`; width-1 dispatches run the
        single-vector driver, so its result is wrapped into an equivalent
        one-column batch (same arrays, statuses and timer).
        """
        return MultiSolveResult(
            X=result.x.reshape(-1, 1),
            statuses=[result.status],
            iterations=np.array([result.iterations], dtype=np.int64),
            block_iterations=result.iterations,
            restarts=result.restarts,
            relative_residuals=np.array([result.relative_residual]),
            relative_residuals_fp64=np.array([result.relative_residual_fp64]),
            histories=[result.history],
            timer=result.timer,
            solver=result.solver,
            precision=result.precision,
            block_size=1,
            details=dict(result.details),
        )

    def _solve_block(
        self, B: np.ndarray, *, controls: Optional[List] = None, probe=None
    ) -> MultiSolveResult:
        """Run one dispatch under the pinned context (the scheduler hook).

        Width-1 dispatches run the canonical *single-vector* driver
        (``gmres`` / ``gmres_ir``) — the unbatched service path is exactly
        the library's standard solver, bit for bit — while wider
        dispatches run the Block-GMRES drivers.  Both reuse pooled
        workspaces and are serialized on the session solve lock.

        ``controls`` carries one optional
        :class:`~repro.solvers.SolveControl` per column (deadline /
        cancellation tokens of the requests riding this dispatch); the
        solvers poll them at restart boundaries and deflate stopped
        columns without disturbing their batchmates.  ``probe`` is the
        optional convergence hook forwarded to the driver (see
        :class:`repro.obs.ProbeEvent`); ``None`` keeps the driver call
        identical to the untraced path.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        width = B.shape[1]
        if controls is not None and len(controls) != width:
            raise ValueError(
                f"controls must have one entry per column: got {len(controls)} "
                f"for a width-{width} block"
            )
        with self._solve_lock:
            workspace = self.workspace_for(width)
            with use_context(self.context):
                if width == 1:
                    single_kwargs = self._single_kwargs
                    if probe is not None:
                        single_kwargs = dict(single_kwargs, probe=probe)
                    result = self._single_driver(
                        self._matrix,
                        B[:, 0],
                        workspace=workspace,
                        control=controls[0] if controls is not None else None,
                        **single_kwargs,
                    )
                    return self._as_multi(result)
                block_kwargs = self._block_kwargs
                if probe is not None:
                    block_kwargs = dict(block_kwargs, probe=probe)
                return self._block_driver(
                    self._matrix,
                    B,
                    workspace=workspace,
                    controls=controls,
                    **block_kwargs,
                )

    def submit(
        self, b: np.ndarray, *, deadline_ms: Optional[float] = None
    ) -> "object":
        """Enqueue one right-hand side; returns ``Future[ServeResult]``.

        The scheduler may coalesce it with other waiting requests into one
        batched solve (see :class:`~repro.serve.scheduler.SolveScheduler`).
        ``deadline_ms`` bounds the request end to end: expiry in the queue
        fails the future fast with
        :class:`~repro.serve.errors.DeadlineExceededError`; expiry
        mid-solve resolves it normally with status ``TIMED_OUT``.
        Cancelling the future reaches an in-flight solve cooperatively
        (status ``CANCELLED`` within one restart cycle).
        """
        return self.scheduler.submit(b, deadline_ms=deadline_ms)

    async def asubmit(
        self, b: np.ndarray, *, deadline_ms: Optional[float] = None
    ) -> "object":
        """Awaitable :meth:`submit`: resolve one request on the event loop.

        The ``asyncio`` front of the ``Future``-based scheduler — the
        request still rides the same micro-batching queue and worker
        machinery; only the waiting is non-blocking::

            result = await session.asubmit(b)

        Validation errors surface as the usual :class:`ValueError` when
        awaited; a queue-expired ``deadline_ms`` as
        :class:`~repro.serve.errors.DeadlineExceededError`.
        """
        import asyncio

        return await asyncio.wrap_future(
            self.scheduler.submit(b, deadline_ms=deadline_ms)
        )

    def solve(self, b: np.ndarray) -> SolveResult:
        """Synchronous direct solve of one right-hand side (no batching).

        Runs the exact machinery a width-1 dispatch runs — the canonical
        single-vector driver under the pinned context with the pooled
        workspace — so a request served through an unbatched scheduler
        resolves bit-identically to this call, and both are bit-identical
        to :func:`repro.solvers.gmres.gmres` with the session's
        configuration.  Bypasses the queue and the telemetry.
        """
        multi = self._solve_block(self.validate_rhs(b).reshape(-1, 1))
        return multi.split()[0]

    def solve_many(self, B: np.ndarray) -> MultiSolveResult:
        """Synchronous batched solve of a caller-assembled block.

        Chunks wider-than-``max_block`` blocks like
        :func:`repro.solvers.block_gmres.solve_many`, reusing the pooled
        workspaces.  Bypasses the queue and the telemetry.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim == 1:
            B = B.reshape(-1, 1)
        results = [
            self._solve_block(np.asfortranarray(B[:, start : start + self.max_block]))
            for start in range(0, B.shape[1], self.max_block)
        ]
        if len(results) == 1:
            return results[0]
        merged = results[0]
        for extra in results[1:]:
            merged.timer.merge_from(extra.timer)
        return MultiSolveResult(
            X=np.concatenate([r.X for r in results], axis=1),
            statuses=[s for r in results for s in r.statuses],
            iterations=np.concatenate([r.iterations for r in results]),
            block_iterations=sum(r.block_iterations for r in results),
            restarts=sum(r.restarts for r in results),
            relative_residuals=np.concatenate(
                [r.relative_residuals for r in results]
            ),
            relative_residuals_fp64=np.concatenate(
                [r.relative_residuals_fp64 for r in results]
            ),
            histories=[h for r in results for h in r.histories],
            timer=merged.timer,
            solver=merged.solver,
            precision=merged.precision,
            block_size=self.max_block,
            details=dict(merged.details, n_blocks=len(results)),
        )

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the scheduler down; ``drain=True`` finishes queued work."""
        self.scheduler.close(drain=drain, timeout=timeout)
        self._closed = True

    def release(self, *, timeout: Optional[float] = None) -> None:
        """Retire the session from service without invalidating in-flight work.

        The eviction path of the :class:`~repro.serve.registry.SessionRegistry`:
        the scheduler is shut down (draining its own queue), so no *new*
        ``submit()`` is accepted — but unlike :meth:`close` the session is
        **not** marked closed, so a farm worker holding a reference across
        the eviction can still finish its current dispatch through
        ``_solve_block``.  The warmed plans and workspaces are freed when
        the last reference is dropped.
        """
        self.scheduler.close(drain=True, timeout=timeout)

    def __enter__(self) -> "OperatorSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OperatorSession {self.name!r} method={self.method!r} "
            f"backend={self.context.backend.name!r} max_block={self.max_block} "
            f"policy={self.policy.mode!r}>"
        )
