"""Per-operator circuit breaker: quarantine poisoned operators, probe back.

The paper treats low-precision breakdown as an expected, recoverable event
for *one* solve; at farm scale the same philosophy needs a fleet-level
form.  An operator whose solves keep breaking down (an indefinite matrix
registered by mistake, a preconditioner whose scratch was corrupted, a
backend fault) would otherwise burn a worker per batch forever, starving
the healthy tenants.  The :class:`CircuitBreaker` is the standard
three-state answer:

* **closed** — traffic flows; consecutive *hard* failures (solver
  exceptions, ``BREAKDOWN`` statuses, non-finite results) are counted,
  any success resets the streak.  Deadline and cancellation outcomes are
  neutral: they say something about the client, not the operator.
* **open** — after ``threshold`` consecutive failures the breaker trips:
  the farm evicts the warmed session (quarantine) and every submit fails
  fast with :class:`~repro.serve.errors.CircuitOpenError` carrying the
  remaining ``retry_after_ms`` cool-down.
* **half-open** — once the cool-down elapses, exactly **one** probe
  request is admitted.  Its success closes the breaker (traffic resumes,
  the session re-warms through the registry); its failure re-opens the
  breaker for a fresh cool-down.

Thread-safe; every transition is taken under the breaker's own lock.
Time is measured on the monotonic clock.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

__all__ = ["CircuitBreaker", "BREAKER_STATES"]

#: The three states of the classic circuit-breaker automaton.
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Parameters
    ----------
    threshold:
        Consecutive hard failures that trip the breaker (N >= 1).
    cooldown_ms:
        Quarantine length after a trip; submits during it are rejected
        with the remaining time as ``retry_after_ms``.
    """

    def __init__(self, *, threshold: int = 3, cooldown_ms: float = 1000.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        self.threshold = int(threshold)
        self.cooldown_seconds = float(cooldown_ms) / 1e3
        self._lock = threading.Lock()
        self._state = "closed"
        self._streak = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._probe_at = 0.0
        self._trips = 0

    # ------------------------------------------------------------------ #
    # admission (called at submit time)                                  #
    # ------------------------------------------------------------------ #
    def admit(self) -> Optional[float]:
        """Decide whether a request may enter.

        Returns ``None`` when the request is admitted (closed state, or
        the half-open probe slot), otherwise the remaining cool-down in
        milliseconds the rejection should advertise.
        """
        with self._lock:
            if self._state == "closed":
                return None
            now = time.monotonic()
            if self._state == "open":
                remaining = self._opened_at + self.cooldown_seconds - now
                if remaining > 0:
                    return max(remaining * 1e3, 0.0)
                # Cool-down over: go half-open and admit this request as
                # the probe.
                self._state = "half_open"
                self._probe_inflight = True
                self._probe_at = now
                return None
            # half-open: one probe at a time; everyone else keeps backing
            # off for (at least) another cool-down.  A probe slot older
            # than one cool-down is considered lost (the probe request
            # expired, was cancelled or was abandoned before it produced
            # an outcome) and is handed to this request — otherwise a
            # vanished probe would wedge the breaker half-open forever.
            if self._probe_inflight and now - self._probe_at < self.cooldown_seconds:
                return self.cooldown_seconds * 1e3
            self._probe_inflight = True
            self._probe_at = now
            return None

    # ------------------------------------------------------------------ #
    # outcome feedback (called after a batch resolves)                   #
    # ------------------------------------------------------------------ #
    def record_success(self) -> None:
        """A dispatch on this operator completed healthily."""
        with self._lock:
            self._streak = 0
            self._probe_inflight = False
            self._state = "closed"

    def record_failure(self) -> bool:
        """A hard failure (exception / breakdown / non-finite result).

        Returns ``True`` when this failure *trips* the breaker (closed →
        open, or a failed half-open probe re-opening it) — the caller
        quarantines the session exactly on trips.
        """
        with self._lock:
            now = time.monotonic()
            if self._state == "half_open":
                # The probe failed: straight back to open, fresh cool-down.
                self._state = "open"
                self._probe_inflight = False
                self._opened_at = now
                self._streak = self.threshold
                self._trips += 1
                return True
            if self._state == "open":
                # Late failure report from a batch that was in flight when
                # the breaker tripped; the quarantine clock restarts.
                self._opened_at = now
                return False
            self._streak += 1
            if self._streak >= self.threshold:
                self._state = "open"
                self._opened_at = now
                self._trips += 1
                return True
            return False

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (see module doc)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._streak

    @property
    def trips(self) -> int:
        """Lifetime count of closed/half-open → open transitions."""
        with self._lock:
            return self._trips

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker state={self.state!r} "
            f"streak={self.consecutive_failures}/{self.threshold} "
            f"trips={self.trips}>"
        )
