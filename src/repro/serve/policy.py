"""Batching policy: sequential-vs-block decision and block-width choice.

The scheduler asks the policy, every time it is about to dispatch, how wide
the batch should be given how many requests are waiting.  The ``"auto"``
mode answers from the analytic kernel cost model
(:meth:`repro.perfmodel.costs.KernelCostModel.block_iteration_speedup`):
blocking wins exactly when the per-iteration work is dominated by matrix
traversals (one SpMM streams the matrix once for ``k`` right-hand sides,
where ``k`` sequential solves stream it ``k`` times), which is the paper's
SpMM-amortization argument applied to the serving workload.  A polynomial
preconditioner of degree ``d`` multiplies the SpMVs per iteration by
``d + 1`` and therefore pushes the decision firmly toward blocking; a
plain unpreconditioned solve is orthogonalization-dominated and gains
little, which the model reflects.

The decision is *modelled* (the library's V100 performance model, like
every cost in :mod:`repro.perfmodel`), deterministic per operator, and
overridable: ``ReproConfig.serve.policy`` (or the ``policy=`` argument of
:class:`~repro.serve.session.OperatorSession`) forces ``"block"`` or
``"sequential"`` unconditionally.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..perfmodel.costs import KernelCostModel
from ..precision import as_precision
from ..sparse.csr import CsrMatrix

__all__ = ["BatchingPolicy", "POLICY_MODES"]

#: Valid policy modes.
POLICY_MODES = ("auto", "block", "sequential")

#: Modelled per-RHS speedup a width must clear before "auto" prefers it
#: over a narrower dispatch (guards against batching on wash-level gains).
AUTO_THRESHOLD = 1.05


class BatchingPolicy:
    """Chooses the dispatch width for one operator.

    Parameters
    ----------
    matrix:
        The session's operator (its dimensions, nnz and bandwidth feed the
        cost model).
    cost_model:
        The :class:`KernelCostModel` of the session's execution context.
    max_block:
        Hard cap on the dispatch width (the scheduler's queue capacity per
        batch).
    mode:
        ``"auto"`` — consult the cost model; ``"block"`` — always dispatch
        every waiting request up to ``max_block``; ``"sequential"`` —
        always dispatch width 1.
    precision:
        Working precision of the session's solves (sets the value width
        the cost model prices).
    basis_columns:
        Representative per-column Krylov dimension used in the ortho terms
        (the session passes its restart length).
    spmvs_per_iteration:
        Operator applications per Krylov step: 1 for a plain solve, plus
        the preconditioner's :meth:`spmvs_per_apply`.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        cost_model: KernelCostModel,
        *,
        max_block: int,
        mode: str = "auto",
        precision="double",
        basis_columns: int = 25,
        spmvs_per_iteration: int = 1,
    ) -> None:
        if mode not in POLICY_MODES:
            raise ValueError(
                f"unknown batching policy mode {mode!r}; choose from {POLICY_MODES}"
            )
        if max_block < 1:
            raise ValueError("max_block must be at least 1")
        self.mode = mode
        self.max_block = int(max_block)
        self._n_rows = matrix.n_rows
        self._n_cols = matrix.n_cols
        self._nnz = matrix.nnz
        self._bandwidth = matrix.bandwidth()
        self._value_bytes = as_precision(precision).bytes
        self._basis_columns = max(1, int(basis_columns))
        self._spmvs = max(1, int(spmvs_per_iteration))
        self._model = cost_model
        self._speedups: Dict[int, float] = {1: 1.0}

    # ------------------------------------------------------------------ #
    # cost-model consultation                                            #
    # ------------------------------------------------------------------ #
    def modelled_speedup(self, k: int) -> float:
        """Modelled per-RHS speedup of a width-``k`` block dispatch (cached)."""
        if k <= 0:
            raise ValueError("k must be positive")
        cached = self._speedups.get(k)
        if cached is None:
            cached = self._speedups[k] = self._model.block_iteration_speedup(
                self._n_rows,
                self._n_cols,
                self._nnz,
                k,
                self._value_bytes,
                basis_columns=self._basis_columns,
                spmvs_per_iteration=self._spmvs,
                matrix_bandwidth=self._bandwidth,
            )
        return cached

    def decision_table(self, max_width: Optional[int] = None) -> Dict[int, float]:
        """Modelled speedup for every width up to ``max_width`` (debugging /
        benchmark introspection)."""
        top = self.max_block if max_width is None else min(max_width, self.max_block)
        return {k: self.modelled_speedup(k) for k in range(1, top + 1)}

    # ------------------------------------------------------------------ #
    # the scheduler's question                                           #
    # ------------------------------------------------------------------ #
    def block_width(self, waiting: int) -> int:
        """Width to dispatch given ``waiting`` queued requests (>= 1).

        ``"auto"`` picks the width with the best modelled per-RHS speedup
        among the feasible ones, falling back to 1 when no width clears
        :data:`AUTO_THRESHOLD` — requests left in the queue simply form the
        next batch.
        """
        if waiting < 1:
            raise ValueError("block_width needs at least one waiting request")
        feasible = min(waiting, self.max_block)
        if self.mode == "sequential" or feasible == 1:
            return 1
        if self.mode == "block":
            return feasible
        best_width, best_speedup = 1, 1.0
        for k in range(2, feasible + 1):
            speedup = self.modelled_speedup(k)
            if speedup > best_speedup:
                best_width, best_speedup = k, speedup
        if best_speedup < AUTO_THRESHOLD:
            return 1
        return best_width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BatchingPolicy mode={self.mode!r} max_block={self.max_block} "
            f"spmvs_per_iteration={self._spmvs}>"
        )
