"""Micro-batching scheduler: coalesce single-RHS requests into block solves.

The serving workload the roadmap targets is many independent clients, each
submitting *one* right-hand side against a shared operator.  Block-GMRES
(PR 3) only pays off when right-hand sides arrive in blocks, so this module
supplies the missing coupling: a thread-safe queue plus one dispatcher
thread that

1. waits for the first request, then keeps collecting until either
   ``max_block`` requests are waiting or ``max_wait_ms`` has elapsed since
   the *oldest* waiting request arrived (whichever comes first);
2. asks the :class:`~repro.serve.policy.BatchingPolicy` how wide the
   dispatch should be, assembles the column block, and runs **one**
   batched solve through the session (one SpMM per block iteration for the
   whole batch);
3. demultiplexes the :class:`~repro.solvers.result.MultiSolveResult` back
   into the per-request futures — each client gets its own column, with
   its own terminal status.

Failure isolation: a request that fails *validation* (wrong shape,
non-finite entries — which would poison the shared Krylov basis of every
batchmate) is rejected at ``submit()`` time and never enters a batch.  A
request that merely fails to *converge* resolves successfully with a
non-``CONVERGED`` status while its batchmates complete normally (the block
solver tracks per-column statuses and deflates converged columns).  On
top of that, a column that did not converge *inside a batch* is retried
once through the width-1 canonical path before its future resolves
(unless the session disables ``retry_failed``): a batch of linearly
dependent right-hand sides — e.g. several clients submitting the same
vector — is rank-deficient as a block and can defeat the shared-basis
solver even though every column alone is easy, so the sequential retry
turns a batching artefact into at most one extra solve.  Only an
unexpected solver exception fails the batch it was part of.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..obs.log import get_logger, log_event
from ..obs.probe import span_probe
from ..obs.trace import RequestTrace
from ..solvers.result import ConvergenceHistory, SolveResult, SolverStatus
from ..solvers.status import SolveControl
from .errors import DeadlineExceededError
from .telemetry import ServeStats, ServeTelemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .session import OperatorSession

__all__ = [
    "BatchReport",
    "PendingRequest",
    "ServeFuture",
    "ServeResult",
    "SolveScheduler",
    "run_batch",
    "complete_future",
    "fail_future",
    "sweep_expired",
    "expire_requests",
    "deadline_slack_seconds",
]


@dataclass
class ServeResult:
    """What a client's future resolves to: one column plus serving metadata.

    The solver fields mirror :class:`~repro.solvers.result.SolveResult`
    (``solve_result`` holds the full per-column object, shared timer and
    all); the serving fields say how the request travelled through the
    scheduler.
    """

    x: np.ndarray
    status: SolverStatus
    iterations: int
    relative_residual: float
    relative_residual_fp64: float
    history: ConvergenceHistory
    solve_result: SolveResult
    #: seconds the request waited in the queue before dispatch
    queue_wait_seconds: float
    #: wall seconds of the batched solve the request rode in
    solve_seconds: float
    #: how many requests shared the batch (1 = unbatched dispatch)
    batch_size: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return self.status == SolverStatus.CONVERGED

    @property
    def residual_history(self) -> ConvergenceHistory:
        """:class:`~repro.solvers.result.ResultLike` name for ``history``."""
        return self.history

    @property
    def latency_seconds(self) -> float:
        """Submit-to-resolution latency as the client experienced it."""
        return self.queue_wait_seconds + self.solve_seconds

    def summary(self) -> str:
        """Solver summary plus one line of serving metadata
        (:class:`~repro.solvers.result.ResultLike`)."""
        lines = [
            self.solve_result.summary(),
            f"  served: batch of {self.batch_size}, "
            f"queue wait {self.queue_wait_seconds * 1e3:.1f} ms, "
            f"solve {self.solve_seconds * 1e3:.1f} ms",
        ]
        return "\n".join(lines)


class ServeFuture(Future):
    """A future whose ``cancel()`` also reaches an in-flight solve.

    While the request is still queued this behaves exactly like
    :class:`concurrent.futures.Future`: ``cancel()`` returns ``True`` and
    the batch assembler drops the request before dispatch.  Once the batch
    is running a standard future can no longer be cancelled — here
    ``cancel()`` still returns ``False`` (the solve cannot be stopped
    *immediately*), but the request's cooperative
    :class:`~repro.solvers.SolveControl` token is signalled, so the solver
    deflates the column at the next poll point and the future resolves
    normally with status ``CANCELLED`` within one restart cycle.
    """

    def __init__(self, control: SolveControl) -> None:
        super().__init__()
        self.control = control

    def cancel(self) -> bool:
        cancelled = super().cancel()
        # Signal the cooperative token regardless of the state transition:
        # for a queued request it is moot (the drop happens at assembly),
        # for an in-flight one it is the only lever that works.
        self.control.cancel()
        return cancelled


class PendingRequest:
    """One queued right-hand side: the validated column, its future, its
    cooperative control token (deadline + cancellation), the enqueue
    timestamp, and — when tracing is on — the request's span state
    machine (shared by :class:`SolveScheduler` queues and the farm's
    per-tenant queues)."""

    __slots__ = ("b", "future", "control", "deadline_ms", "enqueued_at", "trace")

    def __init__(
        self, b: np.ndarray, *, deadline_ms: Optional[float] = None
    ) -> None:
        self.b = b
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)
        if self.deadline_ms is None:
            self.control = SolveControl()
        else:
            self.control = SolveControl.with_timeout(self.deadline_ms)
        self.future: ServeFuture = ServeFuture(self.control)
        self.enqueued_at = time.perf_counter()
        #: :class:`repro.obs.RequestTrace` when the owner traces, else None.
        self.trace = None

    @property
    def expired(self) -> bool:
        """True when the request's deadline already lapsed."""
        return self.control.expired()


# --------------------------------------------------------------------- #
# future resolution and queue maintenance (shared with the farm)        #
# --------------------------------------------------------------------- #
def complete_future(future: Future, result: object) -> bool:
    """``set_result`` that tolerates a future already resolved elsewhere.

    A client can cancel a future in the hair's breadth between a worker
    popping its request and resolving it; ``set_result`` on a cancelled
    future raises ``InvalidStateError`` and would kill the worker.
    Returns ``True`` when the result actually landed.
    """
    try:
        future.set_result(result)
        return True
    except InvalidStateError:
        return False


def fail_future(future: Future, exc: BaseException) -> bool:
    """``set_exception`` with the same already-resolved tolerance."""
    try:
        future.set_exception(exc)
        return True
    except InvalidStateError:
        return False


def sweep_expired(queue: Deque[PendingRequest]) -> List[PendingRequest]:
    """Remove and return queued requests whose deadline already lapsed.

    The caller holds the queue's lock; the removed requests still need
    :func:`expire_requests` (outside the lock) to resolve their futures.
    """
    expired: List[PendingRequest] = []
    if not queue:
        return expired
    keep: List[PendingRequest] = []
    for request in queue:
        (expired if request.expired else keep).append(request)
    if expired:
        queue.clear()
        queue.extend(keep)
    return expired


def expire_requests(expired: List[PendingRequest], telemetry) -> None:
    """Fail swept-out requests fast with :class:`DeadlineExceededError`."""
    for request in expired:
        if request.future.set_running_or_notify_cancel():
            budget = request.deadline_ms
            shown = "?" if budget is None else format(budget, ".0f")
            fail_future(
                request.future,
                DeadlineExceededError(
                    f"request deadline of {shown} ms lapsed in the queue; "
                    "the request was never dispatched",
                    deadline_ms=budget,
                ),
            )
            telemetry.record_timeout()
            if request.trace is not None:
                request.trace.finish("deadline_exceeded")
        else:
            # Cancelled while queued: the sweep doubles as the drop point.
            telemetry.record_cancelled()
            if request.trace is not None:
                request.trace.finish("cancelled")


def deadline_slack_seconds(queue: Deque[PendingRequest]) -> Optional[float]:
    """Seconds until the tightest queued deadline (None when none is set).

    The caller holds the queue's lock.  The batch assemblers cap their
    micro-batching wait window by this slack, so a near-deadline request
    is dispatched (or expired) promptly instead of being held for the
    full ``max_wait_ms``.
    """
    slack: Optional[float] = None
    for request in queue:
        remaining = request.control.remaining_seconds()
        if remaining is not None and (slack is None or remaining < slack):
            slack = remaining
    return slack


class SolveScheduler:
    """Thread-safe micro-batching front of one :class:`OperatorSession`.

    Parameters
    ----------
    session:
        The owning session; the scheduler calls its ``_solve_block`` for
        each dispatch (pinned context, pooled workspaces).
    max_block:
        Queue capacity per batch — at most this many requests ride in one
        dispatch (also the cap the policy works under).
    max_wait_ms:
        Micro-batching window: a waiting request is dispatched at most
        this many milliseconds after it became the oldest in the queue,
        full batch or not.  The latency/throughput dial: larger windows
        coalesce sparser traffic into wider (cheaper per RHS) blocks at
        the price of queue-wait latency.
    policy:
        :class:`~repro.serve.policy.BatchingPolicy` consulted per dispatch.
    telemetry:
        Optional shared :class:`ServeTelemetry` (a fresh one by default).
    """

    def __init__(
        self,
        session: "OperatorSession",
        *,
        max_block: int,
        max_wait_ms: float,
        policy,
        telemetry: Optional[ServeTelemetry] = None,
    ) -> None:
        if max_block < 1:
            raise ValueError("max_block must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._session = session
        self.max_block = int(max_block)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.policy = policy
        self.telemetry = telemetry if telemetry is not None else ServeTelemetry()
        self._queue: Deque[PendingRequest] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        # The dispatcher thread starts lazily on the first submit():  a
        # registry-cached warm session that is only ever driven through the
        # farm's shared worker pool (or through direct solve()/solve_many()
        # calls) never pins a thread of its own.
        self._dispatcher: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # client side                                                        #
    # ------------------------------------------------------------------ #
    def submit(
        self, b: np.ndarray, *, deadline_ms: Optional[float] = None
    ) -> "Future[ServeResult]":
        """Enqueue one right-hand side; returns a future of its result.

        Validation happens here, synchronously, so a malformed request is
        rejected *before* it can share a Krylov basis with anyone else:
        its future fails with ``ValueError`` and no batchmate sees it.

        ``deadline_ms`` bounds the request end to end: a deadline that
        lapses while the request is still queued fails its future fast
        with :class:`~repro.serve.errors.DeadlineExceededError` (the
        request is never dispatched); one that lapses mid-solve resolves
        the future normally with status ``TIMED_OUT`` and the best
        iterate reached.  Cancelling the returned future while queued
        drops the request before dispatch; cancelling in flight stops the
        solve cooperatively within one restart cycle (status
        ``CANCELLED``).
        """
        tracer = getattr(self._session, "tracer", None)
        try:
            column = self._validated_column(b)
        except ValueError as exc:
            failed: Future = Future()
            failed.set_exception(exc)
            self.telemetry.record_rejected()
            if tracer is not None:
                # Telemetry counts sync rejections as submitted+failed;
                # mirror that with an immediately-closed span tree so the
                # trace ledger reconciles against the counters.
                RequestTrace.rejected(
                    tracer, "rejected", session=self._session.name, error=repr(exc)
                )
            return failed
        request = PendingRequest(column, deadline_ms=deadline_ms)
        if tracer is not None:
            request.trace = RequestTrace(
                tracer, session=self._session.name, deadline_ms=deadline_ms
            )
        if request.expired:
            # Dead on arrival (non-positive budget): fail fast without
            # ever touching the queue — still through the future, so the
            # caller sees a single error surface.
            self.telemetry.record_submitted()
            expire_requests([request], self.telemetry)
            return request.future
        if request.trace is not None:
            # Admission decided before the queue append: once appended the
            # dispatcher may advance the trace concurrently.
            request.trace.submitted()
        with self._wakeup:
            if self._closed:
                if request.trace is not None:
                    # Not counted by telemetry (the submit raises instead
                    # of failing a future), so the outcome is distinct
                    # from the counted rejections.
                    request.trace.finish("closed")
                raise RuntimeError("scheduler is closed; no new requests accepted")
            self._queue.append(request)
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._run,
                    name=f"repro-serve-dispatcher-{self._session.name}",
                    daemon=True,
                )
                self._dispatcher.start()
            self._wakeup.notify_all()
        self.telemetry.record_submitted()
        return request.future

    def _validated_column(self, b: np.ndarray) -> np.ndarray:
        # One validation path for both entry points (see
        # OperatorSession.validate_rhs): shape normalization, the
        # non-finite rejection, and the defensive copy.
        return self._session.validate_rhs(b)

    def stats(self) -> ServeStats:
        """Current :class:`ServeStats` snapshot."""
        return self.telemetry.snapshot()

    @property
    def pending(self) -> int:
        """Requests currently waiting in the queue."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # shutdown                                                           #
    # ------------------------------------------------------------------ #
    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting requests and shut the dispatcher down.

        ``drain=True`` (default) lets already-queued requests complete;
        ``drain=False`` fails them with :class:`RuntimeError`.
        """
        with self._wakeup:
            dispatcher = self._dispatcher
            if self._closed and (dispatcher is None or not dispatcher.is_alive()):
                return
            self._closed = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            else:
                abandoned = []
            self._wakeup.notify_all()
        for request in abandoned:
            if request.future.set_running_or_notify_cancel():
                if fail_future(
                    request.future,
                    RuntimeError("scheduler closed before the request was served"),
                ):
                    self.telemetry.record_abandoned()
                if request.trace is not None:
                    request.trace.finish("abandoned")
            else:
                self.telemetry.record_cancelled()
                if request.trace is not None:
                    request.trace.finish("cancelled")
        if dispatcher is not None and threading.current_thread() is not dispatcher:
            dispatcher.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    # dispatcher                                                         #
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            if batch:
                self._dispatch(batch)

    def _collect_batch(self) -> Optional[List[PendingRequest]]:
        """Block until a batch is due; pop and return it (None = shut down)."""
        expired: List[PendingRequest] = []
        with self._wakeup:
            while True:
                expired.extend(sweep_expired(self._queue))
                # Break on swept-out expirations too: their futures must
                # be resolved now, not after the next submit wakes us.
                if self._queue or self._closed or expired:
                    break
                self._wakeup.wait()
            # Micro-batching window: measured from when the dispatcher
            # starts assembling this batch (it may already hold requests
            # that queued up during the previous solve).  A fresh window
            # per batch lets the in-flight clients' follow-up requests
            # coalesce with the ones that waited, instead of locking the
            # traffic into two alternating half-width cohorts; each batch
            # adds at most one max_wait_ms window on top of the in-flight
            # solve to any request's wait.  When more arrivals cannot
            # change the dispatch (width-1 scheduler, sequential policy)
            # the window is pure latency, so it is skipped.  The window is
            # additionally capped by the tightest queued deadline: a
            # near-deadline request is never held for the full window.
            can_batch = self.max_block > 1 and getattr(
                self.policy, "mode", "auto"
            ) != "sequential"
            if self._queue and can_batch:
                window_ends = time.perf_counter() + self.max_wait_seconds
                while len(self._queue) < self.max_block and not self._closed:
                    remaining = window_ends - time.perf_counter()
                    slack = deadline_slack_seconds(self._queue)
                    if slack is not None:
                        remaining = min(remaining, slack)
                    if remaining <= 0:
                        break
                    self._wakeup.wait(timeout=remaining)
                    expired.extend(sweep_expired(self._queue))
                    if not self._queue:
                        break
            expired.extend(sweep_expired(self._queue))
            if not self._queue:
                popped: List[PendingRequest] = []
            else:
                width = self.policy.block_width(len(self._queue))
                popped = [self._queue.popleft() for _ in range(width)]
            closed = self._closed
        expire_requests(expired, self.telemetry)
        if not popped:
            # close(drain=False) emptied the queue mid-window (or every
            # queued request expired); hand control back to the outer
            # loop, which exits once closed.
            return None if closed else []
        batch = []
        for request in popped:
            # Transition the future to RUNNING; a client that cancelled
            # while queued is dropped here and never enters the block.
            if request.future.set_running_or_notify_cancel():
                batch.append(request)
            else:
                self.telemetry.record_cancelled()
                if request.trace is not None:
                    request.trace.finish("cancelled")
        return batch

    def _dispatch(self, batch: List[PendingRequest]) -> None:
        run_batch(
            self._session,
            batch,
            self.telemetry,
            tracer=getattr(self._session, "tracer", None),
            health=getattr(self._session, "health", None),
            component=self._session.name,
        )


@dataclass
class BatchReport:
    """What one dispatch did — the circuit breaker's food.

    ``statuses`` holds the terminal status of every resolved column,
    ``exception`` the batch-level solver error when the whole dispatch
    blew up, and ``nonfinite`` whether any resolved column carried a
    non-finite residual.  :attr:`hard_failure` / :attr:`healthy`
    implement the breaker's outcome policy: exceptions, breakdowns and
    non-finite results indict the *operator*; deadline and cancellation
    outcomes indict the client's budget and are neutral (neither failure
    nor success).
    """

    width: int
    statuses: List[SolverStatus] = field(default_factory=list)
    exception: Optional[BaseException] = None
    nonfinite: bool = False

    #: statuses that say nothing about the operator's health
    NEUTRAL_STATUSES = (SolverStatus.TIMED_OUT, SolverStatus.CANCELLED)

    @property
    def hard_failure(self) -> bool:
        return (
            self.exception is not None
            or self.nonfinite
            or any(s == SolverStatus.BREAKDOWN for s in self.statuses)
        )

    @property
    def healthy(self) -> bool:
        return not self.hard_failure and any(
            s not in self.NEUTRAL_STATUSES for s in self.statuses
        )


#: Structured-log channel of the dispatch core (see :mod:`repro.obs.log`).
_LOGGER = get_logger("serve")


def _chain_probes(*probes):
    """Fan one solver ``probe=`` stream out to several consumers."""
    live = [p for p in probes if p is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def fanout(event):
        for probe in live:
            probe(event)

    return fanout


def run_batch(
    session: "OperatorSession",
    batch: List[PendingRequest],
    telemetry: ServeTelemetry,
    *,
    tracer=None,
    tenant: Optional[str] = None,
    health=None,
    component: Optional[str] = None,
) -> BatchReport:
    """Run one assembled batch and resolve its futures (the dispatch core).

    Shared by the per-session :class:`SolveScheduler` dispatcher and the
    farm's worker pool (:mod:`repro.serve.farm`): assemble the column
    block, run the batched solve through ``session._solve_block`` (pinned
    context, pooled workspaces, one per-request control token per
    column), apply the width-1 retry containment to non-converged
    columns, demultiplex per-column :class:`ServeResult` objects into the
    request futures, and account the batch in ``telemetry``.  Solver
    exceptions are forwarded to every future of the batch; this function
    itself never raises.  Returns a :class:`BatchReport` the farm feeds
    into the tenant's circuit breaker.

    When ``tracer`` (a :class:`repro.obs.Tracer`) is given, the dispatch
    is traced: one ``batch`` span with ``batch_assembly`` / ``solve`` /
    ``demux`` children, solver probe events on the solve span, and every
    request's trace advanced to ``dispatch`` and finished with its
    terminal outcome.  ``tenant`` labels the farm's batches.  With a
    sampling tracer, batch spans are only created when at least one
    request of the batch is head-sampled (a fully tail-deferred batch
    costs no span allocations unless its requests get kept).

    When ``health`` (a :class:`repro.obs.HealthMonitor`) is given, a
    convergence watch rides the solver probe stream, the finished
    :class:`BatchReport` and solve wall time feed the batch-level
    detectors, and any alert tail-flags every trace of the batch
    (``component`` names the alert scope; defaults to the session name).
    """
    dispatched_at = time.perf_counter()
    queue_waits = [dispatched_at - r.enqueued_at for r in batch]
    width = len(batch)
    if component is None:
        component = session.name
    watch = None if health is None else health.convergence_watch(component)

    batch_span = None
    probe = None
    trace_batch = tracer is not None and (
        tracer.sampler is None
        or any(r.trace is not None and r.trace.sampled for r in batch)
    )
    if trace_batch:
        attrs: Dict[str, object] = {"session": session.name, "width": width}
        if tenant is not None:
            attrs["tenant"] = tenant
        batch_span = tracer.start_span("batch", **attrs)
    for request in batch:
        if request.trace is not None:
            request.trace.dequeued(
                batch=None if batch_span is None else batch_span.span_id,
                width=width,
            )

    assembly_span = (
        None if batch_span is None
        else tracer.start_span("batch_assembly", parent=batch_span)
    )
    B = np.empty((session.n_rows, width), dtype=np.float64, order="F")
    for c, request in enumerate(batch):
        B[:, c] = request.b
    controls = [request.control for request in batch]
    if assembly_span is not None:
        assembly_span.finish()

    failed = 0
    retried = 0
    report = BatchReport(width=width)
    solve_span = None
    try:
        if batch_span is not None:
            solve_span = tracer.start_span("solve", parent=batch_span)
            probe = _chain_probes(watch, span_probe(solve_span))
        else:
            probe = watch
        start = time.perf_counter()
        multi = session._solve_block(B, controls=controls, probe=probe)
        solve_seconds = time.perf_counter() - start
        columns = multi.split()
        solve_times = [solve_seconds] * width
        retry_errors: Dict[int, BaseException] = {}
        if width > 1 and session.retry_failed:
            no_retry = (
                SolverStatus.CONVERGED,
                SolverStatus.TIMED_OUT,
                SolverStatus.CANCELLED,
            )
            for c, column in enumerate(columns):
                if column.status in no_retry:
                    # Converged columns need no retry; timed-out and
                    # cancelled ones must not get one — the client's
                    # budget is spent, more solver work would violate it.
                    continue
                # Batch-failure containment: re-solve the column alone
                # through the width-1 canonical path (see module doc).
                # A retry failure is attributable to exactly this
                # request, so it must not touch the batchmates.  The
                # retry inherits the request's control token, keeping
                # the deadline binding across both attempts.
                log_event(
                    _LOGGER,
                    "batch_retry_sequential",
                    session=session.name,
                    tenant=tenant if tenant is not None else "",
                    column=c,
                    width=width,
                    status=column.status.name,
                )
                retry_span = (
                    None if batch_span is None
                    else tracer.start_span("retry", parent=batch_span, column=c)
                )
                start = time.perf_counter()
                try:
                    retry = session._solve_block(
                        np.asfortranarray(B[:, c : c + 1]),
                        controls=[batch[c].control],
                        probe=_chain_probes(
                            watch,
                            None if retry_span is None else span_probe(retry_span),
                        ),
                    ).split()[0]
                except Exception as exc:  # noqa: BLE001 - per-column
                    retry_errors[c] = exc
                    if retry_span is not None:
                        retry_span.finish(error=repr(exc))
                else:
                    retry.details["retried_sequential"] = True
                    columns[c] = retry
                    if retry_span is not None:
                        retry_span.finish(status=retry.status.name)
                solve_times[c] += time.perf_counter() - start
                retried += 1
        if solve_span is not None:
            solve_span.finish(block_iterations=multi.block_iterations)
    except Exception as exc:  # noqa: BLE001 - forwarded to the futures
        solve_seconds = time.perf_counter() - dispatched_at
        solve_times = [solve_seconds] * width
        failed = width
        report.exception = exc
        if solve_span is not None:
            solve_span.finish(error=repr(exc))
        alerts = 0 if watch is None else watch.alerts
        if health is not None:
            alerts += health.observe_batch(component, report, solve_seconds)
        for request in batch:
            fail_future(request.future, exc)
            if request.trace is not None:
                if alerts:
                    request.trace.mark_keep()
                request.trace.finish("error", error=repr(exc))
    else:
        report.statuses = [column.status for column in columns]
        report.nonfinite = any(
            not np.isfinite(column.relative_residual) for column in columns
        )
        # Detector verdicts must land before the per-request finishes so a
        # flagged batch's deferred traces are retained by the tail rules.
        alerts = 0 if watch is None else watch.alerts
        if health is not None:
            alerts += health.observe_batch(component, report, solve_seconds)
        if alerts:
            for request in batch:
                if request.trace is not None:
                    request.trace.mark_keep()
        demux_span = (
            None if batch_span is None
            else tracer.start_span("demux", parent=batch_span)
        )
        for c, request in enumerate(batch):
            column = columns[c]
            details: Dict[str, object] = {
                "block_iterations": multi.block_iterations
            }
            if c in retry_errors:
                # The retry itself blew up: the request still resolves
                # with its (non-converged) batch result; only the
                # retry error is recorded for this one column.
                details["retry_error"] = repr(retry_errors[c])
            complete_future(
                request.future,
                ServeResult(
                    x=column.x,
                    status=column.status,
                    iterations=column.iterations,
                    relative_residual=column.relative_residual,
                    relative_residual_fp64=column.relative_residual_fp64,
                    history=column.history,
                    solve_result=column,
                    queue_wait_seconds=queue_waits[c],
                    solve_seconds=solve_times[c],
                    batch_size=width,
                    details=details,
                ),
            )
            if request.trace is not None:
                request.trace.finish(
                    column.status.name.lower(), iterations=column.iterations
                )
        if demux_span is not None:
            demux_span.finish()
    if batch_span is not None:
        batch_span.finish(
            failed=failed,
            retried=retried,
            statuses=[s.name for s in report.statuses],
        )
    telemetry.record_batch(
        queue_waits,
        solve_times,
        block_iterations=0 if failed else multi.block_iterations,
        failed=failed,
        retried=retried,
        timed_out=sum(
            1 for s in report.statuses if s == SolverStatus.TIMED_OUT
        ),
        cancelled=sum(
            1 for s in report.statuses if s == SolverStatus.CANCELLED
        ),
    )
    return report
