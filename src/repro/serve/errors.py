"""The serve layer's error hierarchy.

Every error the service layer raises *by policy* — admission control,
deadlines, circuit breaking — derives from :class:`ReproServeError`, so a
client can catch one type and branch on the subclass (or on the
``retry_after_ms`` hint most of them carry).  Solver-level failures are
deliberately **not** errors: a request that merely fails to converge
resolves its future successfully with a non-``CONVERGED`` status (see the
"Failure semantics" section of the README).

* :class:`RejectedError` — backpressure: the tenant queue is full.
* :class:`DeadlineExceededError` — the request's ``deadline_ms`` lapsed
  while it was still queued; it was never dispatched to a solver.
* :class:`CircuitOpenError` — the operator's circuit breaker is open
  (consecutive breakdown/non-finite failures tripped it); the session is
  quarantined until the cool-down elapses and a probe succeeds.

All three are *fail-fast*: they reach the caller either synchronously at
``submit()`` or through the future without any solver work being spent on
the doomed request.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproServeError",
    "RejectedError",
    "DeadlineExceededError",
    "CircuitOpenError",
]


class ReproServeError(RuntimeError):
    """Base of every policy error raised by :mod:`repro.serve`."""


class RejectedError(ReproServeError):
    """A submit was refused by admission control (tenant queue full).

    Backpressure, not failure: the farm is protecting its latency by
    bounding queued work per tenant.  ``retry_after_ms`` is the farm's
    estimate of when the queue will have drained enough to accept the
    request — a hint, not a promise.
    """

    def __init__(self, message: str, *, retry_after_ms: float) -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class DeadlineExceededError(ReproServeError):
    """A request's deadline lapsed before it could be dispatched.

    Raised into the request's *future* (never synchronously): the batch
    assembler found the request already past its ``deadline_ms`` while it
    was still queued and dropped it without spending any solver work on
    it.  A deadline that lapses *during* a solve does not raise — the
    future resolves normally with status ``TIMED_OUT`` and the best
    iterate reached (see :class:`repro.solvers.SolveControl`).
    """

    def __init__(self, message: str, *, deadline_ms: Optional[float] = None) -> None:
        super().__init__(message)
        #: the request's original deadline budget in milliseconds, if known
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)


class CircuitOpenError(ReproServeError):
    """The operator's circuit breaker is open; the request was not accepted.

    After ``breaker_threshold`` consecutive breakdown/non-finite failures
    the farm quarantines the operator (its warmed session is evicted) for
    a cool-down; submits during the cool-down fail fast with this error.
    ``retry_after_ms`` is the remaining cool-down — after it elapses the
    breaker goes half-open and admits one probe request before deciding
    whether to readmit traffic.
    """

    def __init__(
        self, message: str, *, key: str = "", retry_after_ms: float = 0.0
    ) -> None:
        super().__init__(message)
        self.key = str(key)
        self.retry_after_ms = float(retry_after_ms)
