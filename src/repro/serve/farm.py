"""Solver farm: many operators, many tenants, one shared worker pool.

:class:`~repro.serve.session.OperatorSession` (PR 4) serves one operator
with a dedicated dispatcher thread — the right shape for a single hot
operator, the wrong one for a fleet: N operators would pin N threads and
N warmed sessions regardless of traffic.  The :class:`SolverFarm` is the
multi-tenant form of the same service:

* **registration is cheap** — ``register(key, matrix, ...)`` stores a
  session *factory*; the expensive warm-up happens on first traffic, and
  the warmed session lives in an LRU
  :class:`~repro.serve.registry.SessionRegistry` under a session-count /
  byte budget.  An evicted operator transparently re-warms on its next
  request;
* **queues belong to the farm, not the sessions** — each tenant has a
  bounded queue of :class:`~repro.serve.scheduler.PendingRequest`, so an
  eviction can never lose a future;
* **admission control** — a submit against a full tenant queue raises
  :class:`RejectedError` carrying a ``retry_after_ms`` hint, instead of
  queueing unbounded work (backpressure the client can act on);
* **fault tolerance** — per-request deadlines (queue expiry fails fast
  with :class:`~repro.serve.errors.DeadlineExceededError`, mid-solve
  expiry resolves with status ``TIMED_OUT``), cooperative cancellation
  through the futures, and a per-operator
  :class:`~repro.serve.breaker.CircuitBreaker`: an operator whose solves
  keep breaking down is quarantined (its warmed session evicted, submits
  failing fast with :class:`~repro.serve.errors.CircuitOpenError`) until
  a cool-down elapses and a half-open probe succeeds;
* **a shared worker pool** drains the queues.  Each worker repeatedly
  picks the neediest ready tenant — under ``fairness="weighted"`` the one
  with the smallest served-work/weight ratio (deficit-style weighted
  round-robin, so a hot tenant cannot starve the others beyond its
  weight); under ``"fifo"`` the tenant holding the globally oldest
  request — marks it busy (one worker per tenant at a time: batches must
  not be split across workers), micro-batches its queue exactly like the
  single-session scheduler, and runs the shared dispatch core
  :func:`~repro.serve.scheduler.run_batch`;
* **two-level telemetry** — every event is recorded in the tenant's own
  :class:`~repro.serve.telemetry.ServeTelemetry` *and* the fleet-wide one
  via a :class:`~repro.serve.telemetry.TelemetryFanout`;
  :meth:`SolverFarm.stats` snapshots the whole farm (per-tenant RHS/s,
  queue depths, fairness shares, evictions) as a
  :class:`~repro.serve.telemetry.FarmStats`.

Every knob defaults from ``ReproConfig.serve``
(:class:`~repro.config.ServeConfig`); constructor arguments override.

Quickstart::

    farm = repro.farm(workers=2, max_sessions=4)
    farm.register("poisson", A, preconditioner=M, restart=15)
    farm.register("helmholtz", B, tol=1e-6)
    with farm:
        futures = [farm.submit("poisson", rhs) for rhs in many_rhs]
        result = await farm.asubmit("helmholtz", other_rhs)  # asyncio front
        print(farm.stats().as_dict())
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..config import get_config
from ..obs import resolve_observability
from ..obs.log import get_logger, log_event
from ..obs.metrics import watch_farm
from ..obs.trace import RequestTrace
from ..sparse.csr import CsrMatrix
from .breaker import BREAKER_STATES, CircuitBreaker
from .errors import CircuitOpenError, RejectedError
from .registry import SessionRegistry
from .scheduler import (
    BatchReport,
    PendingRequest,
    ServeResult,
    deadline_slack_seconds,
    expire_requests,
    fail_future,
    run_batch,
    sweep_expired,
)
from .session import OperatorSession, validate_rhs
from .telemetry import FarmStats, FarmTelemetry

__all__ = ["RejectedError", "CircuitOpenError", "SolverFarm", "FAIRNESS_MODES"]

#: Recognized values of ``ServeConfig.fairness``.
FAIRNESS_MODES = ("weighted", "fifo")

#: Structured-log channel of the farm (see :mod:`repro.obs.log`).
_LOGGER = get_logger("serve.farm")


class _Tenant:
    """Farm-side state of one registered operator (not the session)."""

    __slots__ = ("key", "n_rows", "weight", "queue", "busy", "served", "breaker")

    def __init__(
        self, key: str, n_rows: int, weight: float, breaker: CircuitBreaker
    ) -> None:
        self.key = key
        self.n_rows = n_rows
        self.weight = weight
        self.queue: Deque[PendingRequest] = deque()
        #: a worker is currently batching/dispatching this tenant —
        #: no second worker may touch its queue (batches must coalesce,
        #: not race).
        self.busy = False
        #: requests completed, the numerator of the deficit ratio
        self.served = 0
        #: quarantines the operator after consecutive hard failures
        self.breaker = breaker


class SolverFarm:
    """Multi-operator, multi-tenant solver service over a shared worker pool.

    Parameters (all defaulting from ``ReproConfig.serve``)
    ----------
    max_sessions / max_session_bytes:
        Budgets of the warmed-session LRU cache
        (:class:`~repro.serve.registry.SessionRegistry`).
    queue_depth:
        Bound on each tenant's queue; a submit beyond it raises
        :class:`RejectedError`.
    fairness:
        ``"weighted"`` (deficit-style weighted round-robin, the default)
        or ``"fifo"`` (globally oldest request first).
    workers:
        Size of the shared dispatch pool.  Solves on one *session* are
        serialized on its solve lock (the modelled device is one GPU), but
        workers overlap across tenants: while one dispatch runs, other
        workers batch, validate, warm sessions and demux results.
    max_wait_ms:
        Per-tenant micro-batching window, exactly as in
        :class:`~repro.serve.scheduler.SolveScheduler`.
    breaker_threshold / breaker_cooldown_ms:
        Per-operator circuit breaker: ``breaker_threshold`` consecutive
        hard failures (solver exceptions, breakdowns, non-finite results)
        quarantine the operator for ``breaker_cooldown_ms`` — its warmed
        session is evicted and submits fail fast with
        :class:`~repro.serve.errors.CircuitOpenError` — after which one
        probe request decides whether traffic resumes.
    """

    def __init__(
        self,
        *,
        max_sessions: Optional[int] = None,
        max_session_bytes: Optional[int] = None,
        queue_depth: Optional[int] = None,
        fairness: Optional[str] = None,
        workers: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown_ms: Optional[float] = None,
        name: str = "farm",
        obs=None,
    ) -> None:
        cfg = get_config().serve
        self.name = name
        self.queue_depth = cfg.queue_depth if queue_depth is None else int(queue_depth)
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.fairness = cfg.fairness if fairness is None else str(fairness)
        if self.fairness not in FAIRNESS_MODES:
            raise ValueError(
                f"unknown fairness mode {self.fairness!r}; choose from {FAIRNESS_MODES}"
            )
        self.workers = cfg.workers if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.max_wait_seconds = (
            cfg.max_wait_ms if max_wait_ms is None else float(max_wait_ms)
        ) / 1e3
        self.breaker_threshold = (
            cfg.breaker_threshold
            if breaker_threshold is None
            else int(breaker_threshold)
        )
        self.breaker_cooldown_ms = (
            cfg.breaker_cooldown_ms
            if breaker_cooldown_ms is None
            else float(breaker_cooldown_ms)
        )
        self.obs = resolve_observability(obs)
        #: The farm's tracer (None = tracing off); farm-queued requests
        #: get their span trees from here, not from the sessions.
        self.tracer = self.obs.tracer
        #: Optional HealthMonitor (explicit via obs=): its SLO trackers
        #: ride the telemetry fanout and the farm registers itself for
        #: breaker/queue health.
        self.health = self.obs.health
        self.telemetry = FarmTelemetry(
            slo=None if self.health is None else self.health.slo,
            scope=self.name,
        )
        if self.health is not None:
            self.health.watch_farm(self)

        def _on_evict(key: str) -> None:
            self.telemetry.record_eviction(key)
            log_event(_LOGGER, "session_evicted", farm=self.name, tenant=key)

        self.registry = SessionRegistry(
            max_sessions=cfg.max_sessions if max_sessions is None else int(max_sessions),
            max_bytes=(
                cfg.max_session_bytes
                if max_session_bytes is None
                else max_session_bytes
            ),
            on_create=self.telemetry.record_creation,
            on_evict=_on_evict,
        )
        self._tenants: Dict[str, _Tenant] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._threads: List[threading.Thread] = []
        if self.obs.registry is not None:
            watch_farm(self, registry=self.obs.registry)

    # ------------------------------------------------------------------ #
    # registration                                                       #
    # ------------------------------------------------------------------ #
    def register(
        self,
        key: str,
        matrix: Optional[CsrMatrix] = None,
        *,
        factory: Optional[Callable[[], OperatorSession]] = None,
        n_rows: Optional[int] = None,
        weight: float = 1.0,
        **session_kwargs,
    ) -> None:
        """Register operator ``key``; cheap — nothing is warmed yet.

        Either pass ``matrix`` (plus any :class:`OperatorSession` keyword
        arguments, e.g. ``preconditioner=``, ``restart=``, ``method=``) and
        the farm builds the session factory, or pass a ready ``factory``
        together with ``n_rows`` (needed to validate right-hand sides
        without forcing a cold session to warm).  ``weight`` is the
        tenant's fairness share under ``fairness="weighted"``.

        Tenants are served *concurrently* by the worker pool, so state
        shared between operators must be thread-safe.  In particular, do
        not register the same mutable solver state under several keys:
        neither one stateful preconditioner instance (e.g.
        :class:`~repro.preconditioners.polynomial.GmresPolynomialPreconditioner`
        owns recurrence scratch) nor one :class:`CsrMatrix` object (the
        backends cache kernel plans *with scratch buffers* on the matrix,
        see ``CsrMatrix.backend_cache``) — concurrent dispatches would
        race on that scratch.  Within one operator the session solve lock
        serializes everything, so this only matters across keys; distinct
        operators naturally have distinct matrices.
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        if (matrix is None) == (factory is None):
            raise ValueError("pass exactly one of matrix= or factory=")
        if factory is None:
            rows = matrix.n_rows

            def factory(matrix=matrix, kwargs=dict(session_kwargs)) -> OperatorSession:
                return OperatorSession(matrix, name=f"{self.name}:{key}", **kwargs)

        else:
            if session_kwargs:
                raise ValueError(
                    "session keyword arguments only apply with matrix=; "
                    "bake them into the factory instead"
                )
            if n_rows is None:
                raise ValueError("factory= registration requires n_rows=")
            rows = int(n_rows)
        with self._wakeup:
            if self._closed:
                raise RuntimeError("farm is closed")
            tenant = self._tenants.get(key)
            if tenant is None:
                self._tenants[key] = _Tenant(
                    key,
                    rows,
                    float(weight),
                    CircuitBreaker(
                        threshold=self.breaker_threshold,
                        cooldown_ms=self.breaker_cooldown_ms,
                    ),
                )
            else:
                tenant.n_rows = rows
                tenant.weight = float(weight)
        self.registry.register(key, factory)

    def registered_keys(self) -> List[str]:
        with self._lock:
            return list(self._tenants)

    # ------------------------------------------------------------------ #
    # client side                                                        #
    # ------------------------------------------------------------------ #
    def submit(
        self, key: str, b: np.ndarray, *, deadline_ms: Optional[float] = None
    ) -> "Future[ServeResult]":
        """Enqueue one right-hand side for operator ``key``.

        Returns a ``Future[ServeResult]``.  Validation failures resolve
        the future with ``ValueError`` (mirroring
        :meth:`SolveScheduler.submit`); a full tenant queue raises
        :class:`RejectedError` and a quarantined operator
        :class:`~repro.serve.errors.CircuitOpenError`, both
        *synchronously* — backpressure must reach the caller before the
        work is accepted, not inside the future.

        ``deadline_ms`` bounds the request end to end: expiry while
        queued fails the future fast with
        :class:`~repro.serve.errors.DeadlineExceededError` (the request
        is never dispatched); expiry mid-solve resolves it normally with
        status ``TIMED_OUT``.  Cancelling the future reaches an in-flight
        solve cooperatively (status ``CANCELLED`` within one restart
        cycle).
        """
        with self._lock:
            tenant = self._tenants.get(key)
        if tenant is None:
            raise KeyError(f"no operator registered under key {key!r}")
        sink = self.telemetry.sink(key)
        try:
            column = validate_rhs(b, tenant.n_rows)
        except ValueError as exc:
            failed: "Future[ServeResult]" = Future()
            failed.set_exception(exc)
            sink.record_rejected()
            if self.tracer is not None:
                RequestTrace.rejected(
                    self.tracer,
                    "rejected",
                    farm=self.name,
                    tenant=key,
                    error=repr(exc),
                )
            return failed
        request = PendingRequest(column, deadline_ms=deadline_ms)
        if self.tracer is not None:
            request.trace = RequestTrace(
                self.tracer, farm=self.name, tenant=key, deadline_ms=deadline_ms
            )
        if request.expired:
            # Dead on arrival (non-positive budget): fail fast through
            # the future without ever touching the queue.
            sink.record_submitted()
            expire_requests([request], sink)
            return request.future
        retry_hint: Optional[float] = None
        breaker_hint: Optional[float] = None
        if request.trace is not None:
            # Admission decided before the queue append: once appended a
            # worker may advance the trace concurrently.  A rejection below
            # finishes the already-advanced trace, which is still a single
            # complete tree.
            request.trace.submitted()
        with self._wakeup:
            if self._closed:
                if request.trace is not None:
                    # Not telemetry-counted (the submit raises), so the
                    # outcome is distinct from the counted rejections.
                    request.trace.finish("closed")
                raise RuntimeError("farm is closed; no new requests accepted")
            if len(tenant.queue) >= self.queue_depth:
                retry_hint = self._retry_after_ms_locked(tenant)
                self._wakeup.notify_all()
            else:
                breaker_hint = tenant.breaker.admit()
                if breaker_hint is None:
                    tenant.queue.append(request)
                    self._ensure_workers_locked()
                    self._wakeup.notify_all()
        if retry_hint is not None:
            self.telemetry.record_rejected(key)
            if request.trace is not None:
                request.trace.finish("rejected", reason="queue_full")
            raise RejectedError(
                f"tenant {key!r} queue is full ({self.queue_depth} pending); "
                f"retry in ~{retry_hint:.0f} ms",
                retry_after_ms=retry_hint,
            )
        if breaker_hint is not None:
            self.telemetry.record_rejected(key)
            if request.trace is not None:
                request.trace.finish("rejected", reason="circuit_open")
            raise CircuitOpenError(
                f"operator {key!r} is quarantined after consecutive solve "
                f"failures; retry in ~{breaker_hint:.0f} ms",
                key=key,
                retry_after_ms=breaker_hint,
            )
        sink.record_submitted()
        return request.future

    async def asubmit(
        self, key: str, b: np.ndarray, *, deadline_ms: Optional[float] = None
    ) -> ServeResult:
        """Awaitable :meth:`submit` — the ``asyncio`` front of the farm.

        The request rides the same queues and worker pool; only the
        waiting is non-blocking.  :class:`RejectedError` and
        :class:`~repro.serve.errors.CircuitOpenError` raise immediately
        (before any awaiting); validation errors surface as ``ValueError``
        and queue-expired deadlines as
        :class:`~repro.serve.errors.DeadlineExceededError` when awaited.
        """
        import asyncio

        return await asyncio.wrap_future(
            self.submit(key, b, deadline_ms=deadline_ms)
        )

    def _retry_after_ms_locked(self, tenant: _Tenant) -> float:
        """Drain-time estimate for one queue-depth of backlog (a hint)."""
        stats = self.telemetry.tenant(tenant.key).snapshot()
        per_batch_ms = stats.solve.mean_ms
        if per_batch_ms <= 0.0:
            per_batch_ms = max(self.max_wait_seconds * 1e3, 1.0)
        session = self.registry.peek(tenant.key)
        width = session.max_block if session is not None else 1
        batches = max(1.0, len(tenant.queue) / max(1, width))
        return per_batch_ms * batches / self.workers

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    def pending(self, key: Optional[str] = None) -> int:
        """Queued requests — one tenant's, or the whole farm's."""
        with self._lock:
            if key is not None:
                tenant = self._tenants.get(key)
                return len(tenant.queue) if tenant is not None else 0
            return sum(len(t.queue) for t in self._tenants.values())

    def stats(self) -> FarmStats:
        """Snapshot the whole farm: fleet + per-tenant + registry state."""
        with self._lock:
            weights = {k: t.weight for k, t in self._tenants.items()}
            depths = {k: len(t.queue) for k, t in self._tenants.items()}
        return self.telemetry.snapshot(
            weights=weights,
            queue_depths=depths,
            sessions_live=self.registry.live_count,
            estimated_session_bytes=self.registry.estimated_bytes(),
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def breaker_states(self) -> Dict[str, int]:
        """Each tenant's breaker state as a :data:`BREAKER_STATES` index.

        ``0`` = closed (healthy), ``1`` = open (quarantined), ``2`` =
        half-open (probing).  This is what the metrics collector exports
        as the ``repro_breaker_state`` gauge.
        """
        with self._lock:
            tenants = list(self._tenants.values())
        return {t.key: BREAKER_STATES.index(t.breaker.state) for t in tenants}

    # ------------------------------------------------------------------ #
    # worker pool                                                        #
    # ------------------------------------------------------------------ #
    def _ensure_workers_locked(self) -> None:
        # Lazy like the scheduler's dispatcher: an idle farm pins no
        # threads until its first request.
        if self._threads:
            return
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker,
                name=f"repro-farm-worker-{self.name}-{i}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _pick_tenant_locked(self) -> Optional[_Tenant]:
        """The neediest ready tenant (non-empty queue, no worker on it)."""
        ready = [
            t for t in self._tenants.values() if t.queue and not t.busy
        ]
        if not ready:
            return None
        if self.fairness == "fifo":
            return min(ready, key=lambda t: t.queue[0].enqueued_at)
        # Deficit-style weighted round-robin: serve the tenant with the
        # smallest served-work/weight ratio, ties broken by oldest head
        # request.  A hot tenant's ratio races ahead, so idle-then-active
        # tenants always win the next worker — that is the fairness.
        return min(
            ready, key=lambda t: (t.served / t.weight, t.queue[0].enqueued_at)
        )

    def _worker(self) -> None:
        # Purely event-driven: workers sleep on the condition until a
        # submit, a batch completion or close() notifies them — no idle
        # polling tick.  Liveness argument: a ready tenant (non-empty
        # queue, not busy) is picked without waiting, so queued deadlines
        # are always in the hands of some worker's batch assembler, which
        # bounds its own waits by the tightest deadline.
        while True:
            with self._wakeup:
                tenant = self._pick_tenant_locked()
                while tenant is None:
                    if self._closed and not any(
                        t.queue for t in self._tenants.values()
                    ):
                        return
                    self._wakeup.wait()
                    tenant = self._pick_tenant_locked()
                tenant.busy = True
            try:
                self._serve_one(tenant)
            finally:
                with self._wakeup:
                    tenant.busy = False
                    self._wakeup.notify_all()

    def _serve_one(self, tenant: _Tenant) -> None:
        """Batch and dispatch one round of ``tenant``'s queue (tenant is busy).

        Any exception is contained: session build failures resolve the
        queued futures (never raise into the worker loop), and
        :func:`run_batch` already forwards solver errors to the futures.
        The batch outcome feeds the tenant's circuit breaker; a trip
        quarantines the operator (evicts its warmed session).
        """
        sink = self.telemetry.sink(tenant.key)
        try:
            session = self.registry.get_or_create(tenant.key)
        except Exception as exc:  # noqa: BLE001 - forwarded to the futures
            # The factory (warm-up) failed: fail this tenant's currently
            # queued requests — batchmates-to-be of the broken session —
            # and keep the farm serving everyone else.  A broken factory
            # is as hard a failure as a broken solve, so it feeds the
            # breaker too.
            with self._wakeup:
                doomed = list(tenant.queue)
                tenant.queue.clear()
            log_event(
                _LOGGER,
                "session_warmup_failed",
                level=logging.WARNING,
                farm=self.name,
                tenant=tenant.key,
                doomed=len(doomed),
                error=repr(exc),
            )
            for request in doomed:
                if request.future.set_running_or_notify_cancel():
                    if fail_future(request.future, exc):
                        sink.record_abandoned()
                    if request.trace is not None:
                        request.trace.finish("error", error=repr(exc))
                else:
                    sink.record_cancelled()
                    if request.trace is not None:
                        request.trace.finish("cancelled")
            self._feed_breaker(
                tenant, BatchReport(width=len(doomed), exception=exc)
            )
            return
        batch = self._collect_batch(tenant, session)
        if not batch:
            return
        report = run_batch(
            session,
            batch,
            sink,
            tracer=self.tracer,
            tenant=tenant.key,
            health=self.health,
            component=f"{self.name}/{tenant.key}",
        )
        self._feed_breaker(tenant, report)
        with self._lock:
            tenant.served += len(batch)

    def _feed_breaker(self, tenant: _Tenant, report: BatchReport) -> None:
        """Update ``tenant``'s breaker from one dispatch outcome.

        Hard failures (exceptions, breakdowns, non-finite results) count
        against the operator; healthy dispatches reset the streak; a
        batch made up purely of timed-out/cancelled columns says nothing
        about the operator and leaves the breaker untouched.  Exactly on
        a trip the warmed session is evicted — quarantine, not just
        rejection — so a poisoned session cannot serve the probe either.
        """
        if report.hard_failure:
            if tenant.breaker.record_failure():
                self.registry.evict(tenant.key)
                self.telemetry.record_breaker_trip(tenant.key)
                log_event(
                    _LOGGER,
                    "breaker_open",
                    level=logging.WARNING,
                    farm=self.name,
                    tenant=tenant.key,
                    threshold=self.breaker_threshold,
                    cooldown_ms=self.breaker_cooldown_ms,
                    cause=(
                        repr(report.exception)
                        if report.exception is not None
                        else "nonfinite" if report.nonfinite else "breakdown"
                    ),
                )
        elif report.healthy:
            tenant.breaker.record_success()

    def _collect_batch(
        self, tenant: _Tenant, session: OperatorSession
    ) -> List[PendingRequest]:
        """Pop one dispatch's worth of ``tenant``'s queue (micro-batching).

        Mirrors :meth:`SolveScheduler._collect_batch`: wait up to the
        micro-batching window for the queue to fill to the session's
        ``max_block`` — skipped when more arrivals cannot change the
        dispatch (width-1 session, sequential policy) or the farm is
        draining — then let the policy choose the width.  The window is
        capped by the tightest queued deadline, and requests whose
        deadline already lapsed are failed fast here, never dispatched.
        """
        sink = self.telemetry.sink(tenant.key)
        expired: List[PendingRequest] = []
        with self._wakeup:
            expired.extend(sweep_expired(tenant.queue))
            can_batch = (
                session.max_block > 1
                and getattr(session.policy, "mode", "auto") != "sequential"
            )
            if can_batch and not self._closed:
                window_ends = time.perf_counter() + self.max_wait_seconds
                while len(tenant.queue) < session.max_block and not self._closed:
                    remaining = window_ends - time.perf_counter()
                    slack = deadline_slack_seconds(tenant.queue)
                    if slack is not None:
                        remaining = min(remaining, slack)
                    if remaining <= 0:
                        break
                    self._wakeup.wait(timeout=remaining)
                    expired.extend(sweep_expired(tenant.queue))
                    if not tenant.queue:
                        # Nothing left to batch (everything expired or
                        # was cancelled): resolve the sweep now instead
                        # of idling out the window.
                        break
            expired.extend(sweep_expired(tenant.queue))
            if not tenant.queue:
                popped: List[PendingRequest] = []
            else:
                width = session.policy.block_width(len(tenant.queue))
                popped = [tenant.queue.popleft() for _ in range(width)]
        expire_requests(expired, sink)
        batch = []
        for request in popped:
            # Transition the future to RUNNING; a client that cancelled
            # while queued is dropped here and never enters the block.
            if request.future.set_running_or_notify_cancel():
                batch.append(request)
            else:
                sink.record_cancelled()
                if request.trace is not None:
                    request.trace.finish("cancelled")
        return batch

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting requests, stop the workers, release the sessions.

        ``drain=True`` (default) serves everything already queued first;
        ``drain=False`` fails queued requests with :class:`RuntimeError`.
        """
        with self._wakeup:
            if self._closed and not self._threads:
                return
            self._closed = True
            abandoned: List[tuple] = []
            if not drain:
                for tenant in self._tenants.values():
                    abandoned.extend((tenant.key, r) for r in tenant.queue)
                    tenant.queue.clear()
            threads = list(self._threads)
            self._threads.clear()
            self._wakeup.notify_all()
        for key, request in abandoned:
            sink = self.telemetry.sink(key)
            if request.future.set_running_or_notify_cancel():
                if fail_future(
                    request.future,
                    RuntimeError("farm closed before the request was served"),
                ):
                    sink.record_abandoned()
                if request.trace is not None:
                    request.trace.finish("abandoned")
            else:
                sink.record_cancelled()
                if request.trace is not None:
                    request.trace.finish("cancelled")
        for thread in threads:
            if threading.current_thread() is not thread:
                thread.join(timeout=timeout)
        self.registry.release_all()

    def __enter__(self) -> "SolverFarm":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SolverFarm {self.name!r} tenants={len(self._tenants)} "
            f"workers={self.workers} fairness={self.fairness!r} "
            f"sessions={self.registry.live_count}/{self.registry.max_sessions}>"
        )
