"""repro.serve — the solver service layer.

The paper evaluates mixed-precision GMRES as a *kernel*; the roadmap's
north star is served throughput.  This package is the layer between the
two: it turns the batched multi-RHS capability of
:func:`repro.solvers.block_gmres.solve_many` (one SpMM per block iteration,
BLAS-3 orthogonalization) into a service for the realistic workload shape —
many independent clients, each submitting one right-hand side against a
shared operator.

Pieces
------
:class:`OperatorSession`
    Registers a matrix + solver configuration once and owns the expensive
    amortizable state: pinned backend context, cached backend plans,
    preconditioner setup, a per-width pool of allocation-free Krylov
    workspaces, and the scheduler.
:class:`SolveScheduler`
    Thread-safe micro-batching queue: ``session.submit(b)`` returns a
    ``Future``; waiting requests are coalesced up to ``max_block`` wide or
    ``max_wait_ms`` old (whichever first), dispatched as **one** batched
    solve, and the per-column results are demultiplexed back to the
    futures — including per-column failure statuses, so one diverging
    right-hand side cannot fail its batchmates.
:class:`BatchingPolicy`
    Decides sequential-vs-block and the dispatch width per operator from
    the analytic kernel cost model (SpMM vs ``k`` SpMVs, GEMM vs ``k``
    GEMVs); overridable via ``ReproConfig.serve.policy``.
:class:`ServeTelemetry` / :class:`ServeStats`
    Per-request queue-wait/solve latency, batch-occupancy histogram and
    throughput counters, snapshotted as an immutable dataclass (dumped by
    ``benchmarks/_harness.py --serve`` into ``BENCH_serve.json``).

:class:`SolverFarm` / :class:`SessionRegistry`
    The multi-tenant form: many operators registered by key, warmed
    sessions LRU-cached under a session-count/byte budget, bounded
    per-tenant queues with :class:`RejectedError` backpressure, and a
    shared worker pool with weighted-fair dispatch.  Fleet and per-tenant
    accounting via :class:`FarmTelemetry` / :class:`FarmStats`
    (``benchmarks/_harness.py --farm`` → ``BENCH_farm.json``).

Fault tolerance (see the README's "Failure semantics" section)
    Every policy error derives from :class:`ReproServeError`:
    :class:`RejectedError` (queue full), :class:`DeadlineExceededError`
    (a request's ``deadline_ms`` lapsed while queued; never dispatched)
    and :class:`CircuitOpenError` (operator quarantined by its
    :class:`CircuitBreaker` after consecutive hard solve failures).
    Deadlines that lapse *mid-solve* and client cancellations resolve
    futures normally with statuses ``TIMED_OUT`` / ``CANCELLED`` via the
    cooperative :class:`repro.solvers.SolveControl` token.

Quickstart (one operator — see :func:`repro.session`)::

    import numpy as np
    import repro

    A = repro.matrices.laplace3d(32)
    M = repro.GmresPolynomialPreconditioner(A, degree=16)
    with repro.session(
        A, preconditioner=M, restart=15, tol=1e-8, max_block=8
    ) as session:
        futures = [session.submit(np.random.rand(A.n_rows)) for _ in range(32)]
        results = [f.result() for f in futures]
        print(session.stats().as_dict())

Many operators — see :func:`repro.farm`::

    with repro.farm(workers=2, max_sessions=4) as f:
        f.register("poisson", A, preconditioner=M, restart=15)
        result = f.submit("poisson", np.random.rand(A.n_rows)).result()
        print(f.stats().as_dict())
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RejectedError,
    ReproServeError,
)
from .farm import FAIRNESS_MODES, SolverFarm
from .policy import BatchingPolicy, POLICY_MODES
from .registry import SessionRegistry
from .scheduler import PendingRequest, ServeFuture, ServeResult, SolveScheduler
from .session import OperatorSession
from .telemetry import (
    FarmStats,
    FarmTelemetry,
    LatencySummary,
    ServeStats,
    ServeTelemetry,
    TenantStats,
)

#: The curated public surface of the serve layer: the two service fronts
#: (session and farm), their building blocks, and the telemetry types a
#: client reads.  Internal plumbing (TelemetryFanout, run_batch, the
#: worker machinery) is importable from the submodules but not part of
#: the supported API.
__all__ = [
    # single-operator service
    "OperatorSession",
    "SolveScheduler",
    "ServeResult",
    "ServeFuture",
    "PendingRequest",
    # multi-tenant farm
    "SolverFarm",
    "SessionRegistry",
    "FAIRNESS_MODES",
    # errors and fault tolerance
    "ReproServeError",
    "RejectedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "CircuitBreaker",
    "BREAKER_STATES",
    # batching policy
    "BatchingPolicy",
    "POLICY_MODES",
    # telemetry
    "ServeTelemetry",
    "ServeStats",
    "FarmTelemetry",
    "FarmStats",
    "TenantStats",
    "LatencySummary",
]
