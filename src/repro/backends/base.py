"""The kernel-backend protocol.

A :class:`KernelBackend` supplies the raw computational primitives that the
instrumented layer (:mod:`repro.linalg.kernels`) dispatches to.  The split
of responsibilities is deliberate:

* the **backend** executes arithmetic — nothing else.  Its sparse methods
  take a :class:`~repro.sparse.csr.CsrMatrix` (any object exposing
  ``data``/``indices``/``indptr``/``shape`` and a ``backend_cache`` dict
  works) and dense NumPy arrays, and return NumPy arrays;
* the **instrumented layer** keeps the precision discipline
  (same-dtype enforcement), performance-model metering and timer
  bookkeeping, so every backend is metered identically.

Backends must preserve the *working-precision accumulation semantics* the
paper relies on: an fp32 SpMV accumulates in fp32 (the stagnation of the
fp32 inner solver around 1e-5…1e-6 relative residual is part of what the
paper studies).  Backends that cannot honour that for a dtype (e.g. SciPy
has no fp16 sparse kernels) must fall back to the NumPy reference for it
rather than silently upcasting.

Buffer-ownership contract (the ``out=``/``work=`` discipline): every kernel
that produces an array accepts an optional pre-allocated ``out`` buffer and,
when given one, must write its result *into that buffer and return it* —
never a freshly allocated array.  ``out`` must not alias any input unless a
kernel's docstring explicitly allows it.  This is what lets the solvers run
their steady-state iteration allocation-free, and it is the contract a
future accelerator backend needs anyway (there, a fresh allocation is a
device malloc on the critical path).

Future accelerator backends (Numba, CuPy, ...) plug in by subclassing
:class:`KernelBackend` and registering a factory with
:func:`repro.backends.register_backend`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sparse.csr import CsrMatrix

__all__ = ["KernelBackend"]


class KernelBackend(abc.ABC):
    """Abstract set of computational kernels behind the instrumented layer.

    Attributes
    ----------
    name:
        Registry key of the backend (``"numpy"``, ``"scipy"``, ...).
    """

    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # sparse kernels                                                     #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def spmv(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """CSR matrix–vector product ``y = A x``.

        ``out`` must not alias ``x``.
        """

    @abc.abstractmethod
    def spmv_transpose(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """CSR transpose product ``y = A^T x``.  ``out`` must not alias ``x``."""

    @abc.abstractmethod
    def spmm(
        self,
        matrix: "CsrMatrix",
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched multi-RHS product ``Y = A X`` for a dense block ``X``
        of shape ``(n_cols, k)``.  ``out`` must not alias ``X``."""

    # ------------------------------------------------------------------ #
    # dense block (orthogonalization) kernels                            #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def gemv_transpose(
        self,
        V: np.ndarray,
        w: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``h = V^T w`` for a tall-skinny basis block ``V`` (n × k).

        ``out``, when given, is the length-``k`` coefficient buffer.
        """

    @abc.abstractmethod
    def gemv_notrans(
        self,
        V: np.ndarray,
        h: np.ndarray,
        w: np.ndarray,
        *,
        alpha: float = -1.0,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``w += alpha * (V h)`` in place on ``w``; returns ``w``.

        The default ``alpha=-1`` is the Gram-Schmidt subtraction the paper
        times as "GEMV (No Trans)"; ``alpha=+1`` with a pre-zeroed ``w``
        forms the solution update ``V y`` without a negated-coefficient
        copy.  ``work``, when given, is a length-``n`` scratch vector the
        backend may use for the intermediate product ``V h`` so the call
        allocates nothing; it must not alias ``w``.
        """

    # ------------------------------------------------------------------ #
    # dense block-of-vectors (BLAS-3 orthogonalization) kernels          #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def gemm_transpose(
        self,
        V: np.ndarray,
        W: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``H = V^T W`` for a tall-skinny basis block ``V`` (n × j) against
        a dense block of vectors ``W`` (n × k) — the BLAS-3 analogue of
        :meth:`gemv_transpose` used by block orthogonalization.

        ``out``, when given, is the caller-owned ``(j, k)`` coefficient
        block; it must be C-contiguous so the product can be formed
        directly into it.  ``out`` must not alias ``V`` or ``W``.
        """

    @abc.abstractmethod
    def gemm_notrans(
        self,
        V: np.ndarray,
        H: np.ndarray,
        W: np.ndarray,
        *,
        alpha: float = -1.0,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``W += alpha * (V H)`` in place on ``W`` (n × k); returns ``W``.

        The BLAS-3 analogue of :meth:`gemv_notrans`: ``alpha=-1`` is the
        block Gram-Schmidt subtraction ``W -= V H``; ``alpha=+1`` with a
        pre-zeroed ``W`` forms the block solution update ``V Y``.
        ``work``, when given, is an ``(n, k)`` C-contiguous scratch block
        for the intermediate product ``V H`` so the call allocates nothing;
        it must not alias ``W``.
        """

    # ------------------------------------------------------------------ #
    # vector kernels                                                     #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Dot product accumulated in the operand dtype."""

    @abc.abstractmethod
    def norm2(self, x: np.ndarray) -> float:
        """Euclidean norm accumulated in the operand dtype (no intermediate
        array — the reduction is a single fused dot)."""

    @abc.abstractmethod
    def axpy(
        self,
        alpha: float,
        x: np.ndarray,
        y: np.ndarray,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``y += alpha x`` in place; returns ``y``.

        ``work``, when given, is caller-owned scratch of ``x``'s shape for
        the scaled intermediate ``alpha x``, so the update allocates
        nothing (without it the backend may form a temporary); it must not
        alias ``x`` or ``y``.
        """

    @abc.abstractmethod
    def scal(self, alpha: float, x: np.ndarray) -> np.ndarray:
        """``x *= alpha`` in place; returns ``x``."""

    @abc.abstractmethod
    def copy(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy of ``x`` (into ``out`` when given; returns the copy)."""

    # ------------------------------------------------------------------ #
    # preconditioner application kernels                                 #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def diag_scale(
        self,
        scale: np.ndarray,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Elementwise product ``scale * x`` (point-Jacobi application).

        ``out`` may alias ``x`` (the product is elementwise).
        """

    @abc.abstractmethod
    def block_diag_solve(
        self,
        inv_blocks: np.ndarray,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply explicit block-diagonal inverses: ``inv_blocks`` has shape
        ``(n_blocks, k, k)``, ``x`` length ``n_blocks * k``.  ``out`` must
        not alias ``x``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
