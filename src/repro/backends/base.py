"""The kernel-backend protocol.

A :class:`KernelBackend` supplies the raw computational primitives that the
instrumented layer (:mod:`repro.linalg.kernels`) dispatches to.  The split
of responsibilities is deliberate:

* the **backend** executes arithmetic — nothing else.  Its sparse methods
  take a :class:`~repro.sparse.csr.CsrMatrix` (any object exposing
  ``data``/``indices``/``indptr``/``shape`` and a ``backend_cache`` dict
  works) and dense NumPy arrays, and return NumPy arrays;
* the **instrumented layer** keeps the precision discipline
  (same-dtype enforcement), performance-model metering and timer
  bookkeeping, so every backend is metered identically.

Backends must preserve the *working-precision accumulation semantics* the
paper relies on: an fp32 SpMV accumulates in fp32 (the stagnation of the
fp32 inner solver around 1e-5…1e-6 relative residual is part of what the
paper studies).  Backends that cannot honour that for a dtype (e.g. SciPy
has no fp16 sparse kernels) must fall back to the NumPy reference for it
rather than silently upcasting.

Future accelerator backends (Numba, CuPy, ...) plug in by subclassing
:class:`KernelBackend` and registering a factory with
:func:`repro.backends.register_backend`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sparse.csr import CsrMatrix

__all__ = ["KernelBackend"]


class KernelBackend(abc.ABC):
    """Abstract set of computational kernels behind the instrumented layer.

    Attributes
    ----------
    name:
        Registry key of the backend (``"numpy"``, ``"scipy"``, ...).
    """

    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # sparse kernels                                                     #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def spmv(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """CSR matrix–vector product ``y = A x``."""

    @abc.abstractmethod
    def spmv_transpose(self, matrix: "CsrMatrix", x: np.ndarray) -> np.ndarray:
        """CSR transpose product ``y = A^T x``."""

    @abc.abstractmethod
    def spmm(
        self,
        matrix: "CsrMatrix",
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched multi-RHS product ``Y = A X`` for a dense block ``X``
        of shape ``(n_cols, k)``."""

    # ------------------------------------------------------------------ #
    # dense block (orthogonalization) kernels                            #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def gemv_transpose(self, V: np.ndarray, w: np.ndarray) -> np.ndarray:
        """``h = V^T w`` for a tall-skinny basis block ``V`` (n × k)."""

    @abc.abstractmethod
    def gemv_notrans(
        self, V: np.ndarray, h: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """``w -= V h`` in place on ``w``; returns ``w``."""

    # ------------------------------------------------------------------ #
    # vector kernels                                                     #
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Dot product accumulated in the operand dtype."""

    @abc.abstractmethod
    def norm2(self, x: np.ndarray) -> float:
        """Euclidean norm accumulated in the operand dtype."""

    @abc.abstractmethod
    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``y += alpha x`` in place; returns ``y``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
