"""Pure-NumPy reference backend.

The raw CSR kernels here are the library's numerical ground truth (moved
from :mod:`repro.sparse.ops`, which still re-exports them): vectorised
NumPy with no per-row Python loops, following the HPC-Python guidance —
``np.add.reduceat`` for the row sums of the SpMV/SpMM and
``np.bincount``/fancy indexing for scatter operations.

Accumulation precision note: ``np.add.reduceat`` accumulates in the dtype
of its operand, so an fp32 SpMV really is computed in fp32 — important,
because the numerical behaviour of the fp32 inner solver (stagnation around
1e-5…1e-6 relative residual) is part of what the paper studies.  This is
why the reference lives here and faster backends are validated against it
(see ``tests/test_backends.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .base import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sparse.csr import CsrMatrix

__all__ = ["spmv", "spmv_transpose", "spmm", "NumpyBackend"]


def spmv(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSR sparse matrix–vector product ``y = A x``.

    Parameters
    ----------
    data, indices, indptr:
        CSR arrays of ``A`` (``n_rows + 1 = len(indptr)``).
    x:
        Dense vector of length ``n_cols``; it is used in the matrix's value
        dtype (mixed inputs are multiplied under NumPy promotion rules, so
        callers who care about the working precision must pass matching
        dtypes — the instrumented kernels enforce this).
    out:
        Optional pre-allocated output vector of length ``n_rows``.

    Returns
    -------
    numpy.ndarray
        ``y`` with dtype equal to the product dtype.
    """
    n_rows = indptr.size - 1
    products = data * x[indices]
    if out is None:
        out = np.zeros(n_rows, dtype=products.dtype)
    else:
        if out.shape[0] != n_rows:
            raise ValueError("output vector has wrong length")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    # Reduce only over the starts of non-empty rows: consecutive non-empty
    # starts delimit exactly the nonzeros of the earlier row (empty rows in
    # between contribute nothing), every start is < len(products), and the
    # final segment runs to the end of the product array.
    sums = np.add.reduceat(products, starts[nonempty])
    out[nonempty] = sums
    return out


def spmv_transpose(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    n_cols: int,
) -> np.ndarray:
    """CSR transpose product ``y = A.T x``.

    Not used inside GMRES (which never needs ``A^T``), provided for
    completeness and for building normal-equation style diagnostics.  The
    scatter-add accumulates in float64 (``np.bincount`` limitation) and the
    result is cast back to the product dtype.
    """
    n_rows = indptr.size - 1
    if x.shape[0] != n_rows:
        raise ValueError("x must have length n_rows for the transpose product")
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
    weights = data * x[rows]
    y = np.bincount(indices, weights=weights, minlength=n_cols)
    return y.astype(weights.dtype, copy=False)


def spmm(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    X: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched CSR product ``Y = A X`` against a dense block ``X`` (n × k).

    The multi-RHS analogue of :func:`spmv`: one gather of the ``k``-wide
    rows of ``X`` followed by one segmented ``np.add.reduceat`` along the
    nonzero axis, so all ``k`` right-hand sides share a single pass over
    the matrix.  Accumulation happens in the product dtype, matching the
    single-vector kernel.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError("spmm expects a 2-D block of column vectors")
    n_rows = indptr.size - 1
    k = X.shape[1]
    products = data[:, None] * X[indices, :]
    if out is None:
        out = np.zeros((n_rows, k), dtype=products.dtype)
    else:
        if out.shape != (n_rows, k):
            raise ValueError("output block has wrong shape")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    sums = np.add.reduceat(products, starts[nonempty], axis=0)
    out[nonempty, :] = sums
    return out


class NumpyBackend(KernelBackend):
    """Reference backend: every kernel is the vectorised NumPy ground truth."""

    name = "numpy"

    # -------------------------------- sparse -------------------------- #
    def spmv(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return spmv(matrix.data, matrix.indices, matrix.indptr, x, out=out)

    def spmv_transpose(self, matrix: "CsrMatrix", x: np.ndarray) -> np.ndarray:
        return spmv_transpose(
            matrix.data, matrix.indices, matrix.indptr, x, matrix.shape[1]
        )

    def spmm(
        self,
        matrix: "CsrMatrix",
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return spmm(matrix.data, matrix.indices, matrix.indptr, X, out=out)

    # -------------------------------- dense --------------------------- #
    def gemv_transpose(self, V: np.ndarray, w: np.ndarray) -> np.ndarray:
        return V.T @ w

    def gemv_notrans(
        self, V: np.ndarray, h: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        w -= V @ h
        return w

    # -------------------------------- vector -------------------------- #
    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.dot(x, y))

    def norm2(self, x: np.ndarray) -> float:
        # Accumulate in the working dtype (np.dot keeps the dtype), then sqrt.
        return float(np.sqrt(np.dot(x, x)))

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y += x.dtype.type(alpha) * x
        return y
