"""Pure-NumPy reference backend.

The raw CSR kernels here are the library's numerical ground truth (moved
from :mod:`repro.sparse.ops`, which keeps only deprecation shims that
route through the active backend): vectorised NumPy with no per-row
Python loops, following the HPC-Python guidance —
``np.add.reduceat`` for the row sums of the SpMV/SpMM and
``np.bincount``/fancy indexing for scatter operations.

Accumulation precision note: ``np.add.reduceat`` accumulates in the dtype
of its operand, so an fp32 SpMV really is computed in fp32 — important,
because the numerical behaviour of the fp32 inner solver (stagnation around
1e-5…1e-6 relative residual) is part of what the paper studies.  This is
why the reference lives here and faster backends are validated against it
(see ``tests/test_backends.py``).

Allocation discipline: when a caller supplies ``out=``, the class methods
run allocation-free.  The SpMV caches its row-geometry arrays and per-dtype
gather/reduce scratch in the matrix's ``backend_cache`` (keyed on the
``indptr`` identity, so a structurally different matrix gets a fresh plan),
and the dense GEMV kernels write through ``np.dot(..., out=...)`` /
caller-provided ``work`` buffers.  The arithmetic — gather, multiply,
segmented reduce — is bit-identical to the allocating path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .base import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sparse.csr import CsrMatrix

__all__ = ["spmv", "spmv_transpose", "spmm", "NumpyBackend"]


def spmv(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSR sparse matrix–vector product ``y = A x``.

    Parameters
    ----------
    data, indices, indptr:
        CSR arrays of ``A`` (``n_rows + 1 = len(indptr)``).
    x:
        Dense vector of length ``n_cols``; it is used in the matrix's value
        dtype (mixed inputs are multiplied under NumPy promotion rules, so
        callers who care about the working precision must pass matching
        dtypes — the instrumented kernels enforce this).
    out:
        Optional pre-allocated output vector of length ``n_rows``.

    Returns
    -------
    numpy.ndarray
        ``y`` with dtype equal to the product dtype.
    """
    n_rows = indptr.size - 1
    products = data * x[indices]
    if out is None:
        out = np.zeros(n_rows, dtype=products.dtype)
    else:
        if out.shape[0] != n_rows:
            raise ValueError("output vector has wrong length")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    # Reduce only over the starts of non-empty rows: consecutive non-empty
    # starts delimit exactly the nonzeros of the earlier row (empty rows in
    # between contribute nothing), every start is < len(products), and the
    # final segment runs to the end of the product array.
    sums = np.add.reduceat(products, starts[nonempty])
    out[nonempty] = sums
    return out


def spmv_transpose(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    n_cols: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSR transpose product ``y = A.T x``.

    Not used inside GMRES (which never needs ``A^T``), provided for
    completeness and for building normal-equation style diagnostics.  The
    scatter-add accumulates in float64 (``np.bincount`` limitation) and the
    result is cast back to the product dtype (written into ``out`` when one
    is given).
    """
    n_rows = indptr.size - 1
    if x.shape[0] != n_rows:
        raise ValueError("x must have length n_rows for the transpose product")
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
    weights = data * x[rows]
    y = np.bincount(indices, weights=weights, minlength=n_cols)
    if out is None:
        return y.astype(weights.dtype, copy=False)
    if out.shape[0] != n_cols:
        raise ValueError("output vector has wrong length")
    np.copyto(out, y, casting="same_kind")
    return out


def spmm(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    X: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched CSR product ``Y = A X`` against a dense block ``X`` (n × k).

    The multi-RHS analogue of :func:`spmv`: one gather of the ``k``-wide
    rows of ``X`` followed by one segmented ``np.add.reduceat`` along the
    nonzero axis, so all ``k`` right-hand sides share a single pass over
    the matrix.  Accumulation happens in the product dtype, matching the
    single-vector kernel.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError("spmm expects a 2-D block of column vectors")
    n_rows = indptr.size - 1
    k = X.shape[1]
    products = data[:, None] * X[indices, :]
    if out is None:
        out = np.zeros((n_rows, k), dtype=products.dtype)
    else:
        if out.shape != (n_rows, k):
            raise ValueError("output block has wrong shape")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    sums = np.add.reduceat(products, starts[nonempty], axis=0)
    out[nonempty, :] = sums
    return out


def _copy_block(target: np.ndarray, source: np.ndarray) -> None:
    """Copy a 2-D block without the ufunc's mixed-layout buffering.

    Assigning a C-ordered block into a Fortran-ordered one (or vice versa)
    makes NumPy's iterator fall back to internal buffering — a transient
    allocation of up to two buffer chunks on every call.  Column-wise 1-D
    copies are buffer-free and elementwise identical.
    """
    if target.flags.c_contiguous == source.flags.c_contiguous:
        target[:] = source
    else:
        for c in range(target.shape[1]):
            target[:, c] = source[:, c]


_SPMV_PLAN_KEY = "numpy_spmv_plan"


def _spmv_plan(matrix: "CsrMatrix") -> Optional[dict]:
    """Cached row geometry + per-dtype scratch for the ``out=`` SpMV path.

    The plan is keyed on the identity of the matrix's ``indptr`` array
    (matrices are treated as structurally immutable); ``rows`` is ``None``
    when every row is non-empty, which skips the zero-fill and the fancy
    scatter on the hot path.
    """
    cache = getattr(matrix, "backend_cache", None)
    if cache is None:
        return None
    plan = cache.get(_SPMV_PLAN_KEY)
    if plan is None or plan["indptr"] is not matrix.indptr:
        nonempty = np.diff(matrix.indptr) > 0
        plan = {
            "indptr": matrix.indptr,
            "starts": np.ascontiguousarray(matrix.indptr[:-1][nonempty]),
            # np.take converts non-intp index arrays on every call; cache the
            # widened copy once so the hot path gathers without a temporary.
            "indices": np.ascontiguousarray(matrix.indices, dtype=np.intp),
            "rows": None if nonempty.all() else np.flatnonzero(nonempty),
            "scratch": {},
        }
        cache[_SPMV_PLAN_KEY] = plan
    return plan


#: DIA-format SpMM eligibility: at most this many distinct diagonals and at
#: most 2x storage blow-up from padding (stencil matrices sit at ~1x).
_DIA_MAX_DIAGONALS = 48
_DIA_MAX_PAD_FACTOR = 2.0


def _dia_plan(matrix: "CsrMatrix", plan: dict) -> Optional[dict]:
    """Cached DIA (diagonal) view of a stencil-like matrix, or ``None``.

    Finite-difference matrices concentrate their nonzeros on a handful of
    diagonals.  Storing those diagonals densely turns the SpMM gather into
    pure *slicing* — each diagonal contributes ``Y[lo:hi] += vals[lo:hi] *
    X[lo+d:hi+d]`` — which is how the batched product actually amortizes
    the matrix traversal on this backend (the CSR gather/reduceat path
    costs more than ``k`` independent SpMVs).  Built lazily, once per
    matrix; matrices whose diagonal count or padding blow-up exceeds the
    thresholds are marked ineligible and use the gather path.
    """
    dia = plan.get("dia", None)
    if dia is False:
        return None
    if dia is not None:
        return dia
    n_rows = matrix.shape[0]
    nnz = matrix.data.size
    counts = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    offs = matrix.indices.astype(np.int64) - rows
    offsets = np.unique(offs)
    if (
        nnz == 0
        or offsets.size > _DIA_MAX_DIAGONALS
        or offsets.size * n_rows > _DIA_MAX_PAD_FACTOR * nnz
    ):
        plan["dia"] = False
        return None
    values = np.zeros((offsets.size, n_rows), dtype=matrix.data.dtype)
    values[np.searchsorted(offsets, offs), rows] = matrix.data
    dia = {"offsets": [int(d) for d in offsets], "values": values, "scratch": {}}
    plan["dia"] = dia
    return dia


def _dia_spmm(
    matrix: "CsrMatrix",
    dia: dict,
    X: np.ndarray,
    out: Optional[np.ndarray],
) -> np.ndarray:
    """Diagonal-format batched product ``Y = A X`` (see :func:`_dia_plan`).

    Works in the transposed ``(k, n)`` orientation so that the
    Fortran-ordered blocks the solvers pass (Krylov basis panels) are
    C-contiguous views and every slice update runs buffer-free; blocks in
    other layouts are staged through cached scratch column by column.
    """
    n_rows, n_cols = matrix.shape
    k = X.shape[1]
    dtype = X.dtype
    if out is None:
        out = np.zeros((n_rows, k), dtype=dtype)
    elif out.shape != (n_rows, k):
        raise ValueError("output block has wrong shape")
    if k == 0:
        return out
    scratch = dia["scratch"]
    key = (dtype.str, k)
    bufs = scratch.get(key)
    if bufs is None:
        bufs = scratch[key] = (
            np.empty((k, n_rows), dtype=dtype),  # product scratch
            np.empty((k, n_cols), dtype=dtype),  # staging for non-F sources
            np.empty((k, n_rows), dtype=dtype),  # staging for non-F outputs
        )
    g_t, x_stage, y_stage = bufs
    if X.flags.f_contiguous:
        x_t = X.T
    else:
        for c in range(k):
            x_stage[c] = X[:, c]
        x_t = x_stage
    out_is_f = out.flags.f_contiguous
    y_t = out.T if out_is_f else y_stage
    values = dia["values"]
    offsets = dia["offsets"]
    # Process row ranges small enough that the x panel, the product scratch
    # and the y panel all stay cache-resident across the diagonal sweep —
    # the x entries a row range touches are nearly the same for every
    # diagonal, so chunking turns k·n_diags streams into ~one.  The first
    # diagonal touching a chunk writes its product straight into y (only
    # the uncovered edges are zero-filled), saving a full zero+add pass.
    chunk = max(1024, (1 << 19) // (k * dtype.itemsize))
    for c0 in range(0, n_rows, chunk):
        c1 = min(c0 + chunk, n_rows)
        filled = False
        for di, d in enumerate(offsets):
            lo = max(max(0, -d), c0)
            hi = min(min(n_rows, n_cols - d), c1)
            if hi <= lo:
                continue
            x_slice = x_t[:, lo + d : hi + d]
            if not filled:
                if lo > c0:
                    y_t[:, c0:lo] = 0
                if hi < c1:
                    y_t[:, hi:c1] = 0
                np.multiply(x_slice, values[di, lo:hi], out=y_t[:, lo:hi])
                filled = True
            else:
                g = g_t[:, lo:hi]
                np.multiply(x_slice, values[di, lo:hi], out=g)
                np.add(y_t[:, lo:hi], g, out=y_t[:, lo:hi])
        if not filled:
            y_t[:, c0:c1] = 0
    if not out_is_f:
        for c in range(k):
            out[:, c] = y_t[c]
    return out


class NumpyBackend(KernelBackend):
    """Reference backend: every kernel is the vectorised NumPy ground truth."""

    name = "numpy"

    # -------------------------------- sparse -------------------------- #
    def spmv(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        plan = None
        if out is not None and matrix.data.dtype == x.dtype:
            plan = _spmv_plan(matrix)
        if plan is None:
            return spmv(matrix.data, matrix.indices, matrix.indptr, x, out=out)
        if out.shape[0] != matrix.shape[0]:
            raise ValueError("output vector has wrong length")
        if x.shape[0] != matrix.shape[1]:
            # The clipped gather below would silently fold out-of-range
            # column indices onto x[-1] instead of raising.
            raise ValueError("input vector has wrong length")
        nnz = matrix.data.size
        if nnz == 0:
            out[:] = 0
            return out
        dtype = x.dtype
        starts = plan["starts"]
        rows = plan["rows"]
        scratch = plan["scratch"]
        if rows is None:
            # Every row non-empty: the segmented reduce maps 1:1 onto the
            # output, so reduceat writes straight into `out` — no sums
            # buffer, no copy.
            prod = scratch.get(dtype.str)
            if prod is None:
                prod = scratch[dtype.str] = np.empty(nnz, dtype=dtype)
            sums = out
        else:
            bufs = scratch.get(dtype.str)
            if bufs is None:
                bufs = scratch[dtype.str] = (
                    np.empty(nnz, dtype=dtype),
                    np.empty(starts.size, dtype=dtype),
                )
            prod, sums = bufs
        # Same gather → multiply → segmented-reduce sequence as the module
        # reference above, so the result is bit-identical; only the
        # temporaries are reused.
        # mode="clip" lets np.take write straight into `prod` (the default
        # "raise" mode gathers into an internal buffer first); CSR column
        # indices are validated in-range at construction, so clipping never
        # alters a value.
        np.take(x, plan["indices"], out=prod, mode="clip")
        np.multiply(matrix.data, prod, out=prod)
        np.add.reduceat(prod, starts, out=sums)
        if rows is not None:
            out[:] = 0
            out[rows] = sums
        return out

    def spmv_transpose(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return spmv_transpose(
            matrix.data, matrix.indices, matrix.indptr, x, matrix.shape[1], out=out
        )

    def spmm(
        self,
        matrix: "CsrMatrix",
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValueError("spmm expects a 2-D block of column vectors")
        if X.shape[0] != matrix.shape[1]:
            raise ValueError("input block has wrong number of rows")
        plan = _spmv_plan(matrix) if matrix.data.dtype == X.dtype else None
        if plan is not None:
            dia = _dia_plan(matrix, plan)
            if dia is not None:
                return _dia_spmm(matrix, dia, X, out)
        if plan is None or out is None:
            return spmm(matrix.data, matrix.indices, matrix.indptr, X, out=out)
        n_rows, k = matrix.shape[0], X.shape[1]
        if out.shape != (n_rows, k):
            raise ValueError("output block has wrong shape")
        nnz = matrix.data.size
        if nnz == 0 or k == 0:
            out[:] = 0
            return out
        dtype = X.dtype
        starts = plan["starts"]
        rows = plan["rows"]
        scratch = plan["scratch"]
        key = ("spmm", dtype.str, k)
        bufs = scratch.get(key)
        if bufs is None:
            bufs = scratch[key] = (
                np.empty((X.shape[0], k), dtype=dtype),  # C-contiguous gather source
                np.empty((nnz, k), dtype=dtype),
                np.empty((starts.size, k), dtype=dtype),
            )
        Xc, prod, sums = bufs
        # Gathering rows of a C-contiguous block is cache-friendly; copying a
        # Fortran-ordered operand (the Krylov basis) once costs n*k, the
        # gather costs nnz*k, so the copy pays for itself.  Copies between
        # mixed C/F layouts go column by column: a 2-D mixed-layout ufunc
        # falls back to internal buffering, a transient allocation the
        # steady-state contract forbids.
        if X.flags.c_contiguous:
            source = X
        else:
            _copy_block(Xc, X)
            source = Xc
        # Same gather → multiply → segmented-reduce sequence as the module
        # reference above (elementwise product is commutative), so results
        # are bit-identical; only the temporaries are reused.
        np.take(source, plan["indices"], axis=0, out=prod, mode="clip")
        # Column-wise multiply: broadcasting data[:, None] against the 2-D
        # product block would buffer internally (transient allocation); the
        # 1-D columns multiply buffer-free and bit-identically.
        for c in range(k):
            np.multiply(matrix.data, prod[:, c], out=prod[:, c])
        np.add.reduceat(prod, starts, axis=0, out=sums)
        if rows is None:
            _copy_block(out, sums)
        else:
            out[:] = 0
            out[rows, :] = sums
        return out

    # -------------------------------- dense --------------------------- #
    def gemv_transpose(
        self,
        V: np.ndarray,
        w: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if out is None:
            return V.T @ w
        np.dot(V.T, w, out=out)
        return out

    def gemv_notrans(
        self,
        V: np.ndarray,
        h: np.ndarray,
        w: np.ndarray,
        *,
        alpha: float = -1.0,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if work is not None and work.shape == w.shape and work.dtype == w.dtype:
            np.dot(V, h, out=work)
            if alpha == -1.0:
                np.subtract(w, work, out=w)
            elif alpha == 1.0:
                np.add(w, work, out=w)
            else:
                np.multiply(work, w.dtype.type(alpha), out=work)
                np.add(w, work, out=w)
            return w
        if alpha == -1.0:
            w -= V @ h
        elif alpha == 1.0:
            w += V @ h
        else:
            w += w.dtype.type(alpha) * (V @ h)
        return w

    def gemm_transpose(
        self,
        V: np.ndarray,
        W: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if out is None:
            return V.T @ W
        np.dot(V.T, W, out=out)
        return out

    def gemm_notrans(
        self,
        V: np.ndarray,
        H: np.ndarray,
        W: np.ndarray,
        *,
        alpha: float = -1.0,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if (
            work is not None
            and work.shape == W.shape
            and work.dtype == W.dtype
            and work.flags.c_contiguous
        ):
            np.dot(V, H, out=work)
            if alpha not in (-1.0, 1.0):
                np.multiply(work, W.dtype.type(alpha), out=work)
            op = np.subtract if alpha == -1.0 else np.add
            if W.flags.c_contiguous == work.flags.c_contiguous:
                op(W, work, out=W)
            else:
                # Mixed C/F layouts make the 2-D ufunc fall back to its
                # internal buffering (a transient allocation on the hot
                # path); column-wise 1-D updates are buffer-free and
                # elementwise-identical.
                for c in range(W.shape[1]):
                    op(W[:, c], work[:, c], out=W[:, c])
            return W
        if alpha == -1.0:
            W -= V @ H
        elif alpha == 1.0:
            W += V @ H
        else:
            W += W.dtype.type(alpha) * (V @ H)
        return W

    # -------------------------------- vector -------------------------- #
    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.dot(x, y))

    def norm2(self, x: np.ndarray) -> float:
        # Accumulate in the working dtype (np.dot keeps the dtype), then sqrt.
        return float(np.sqrt(np.dot(x, x)))

    def axpy(
        self,
        alpha: float,
        x: np.ndarray,
        y: np.ndarray,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if (
            work is not None
            and work.shape == x.shape
            and work.dtype == x.dtype
            and work.flags.c_contiguous == x.flags.c_contiguous
            and y.flags.c_contiguous == x.flags.c_contiguous
        ):
            np.multiply(x, x.dtype.type(alpha), out=work)
            np.add(y, work, out=y)
            return y
        y += x.dtype.type(alpha) * x
        return y

    def scal(self, alpha: float, x: np.ndarray) -> np.ndarray:
        x *= x.dtype.type(alpha)
        return x

    def copy(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return x.copy()
        np.copyto(out, x, casting="same_kind")
        return out

    # ------------------------- preconditioner apply -------------------- #
    def diag_scale(
        self,
        scale: np.ndarray,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return np.multiply(scale, x, out=out)

    def block_diag_solve(
        self,
        inv_blocks: np.ndarray,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_blocks, k, _k2 = inv_blocks.shape
        x2 = x.reshape(n_blocks, k)
        if out is None:
            return np.einsum("bij,bj->bi", inv_blocks, x2).reshape(-1)
        np.einsum("bij,bj->bi", inv_blocks, x2, out=out.reshape(n_blocks, k))
        return out
