"""Pure-NumPy reference backend.

The raw CSR kernels here are the library's numerical ground truth (moved
from :mod:`repro.sparse.ops`, which still re-exports them): vectorised
NumPy with no per-row Python loops, following the HPC-Python guidance —
``np.add.reduceat`` for the row sums of the SpMV/SpMM and
``np.bincount``/fancy indexing for scatter operations.

Accumulation precision note: ``np.add.reduceat`` accumulates in the dtype
of its operand, so an fp32 SpMV really is computed in fp32 — important,
because the numerical behaviour of the fp32 inner solver (stagnation around
1e-5…1e-6 relative residual) is part of what the paper studies.  This is
why the reference lives here and faster backends are validated against it
(see ``tests/test_backends.py``).

Allocation discipline: when a caller supplies ``out=``, the class methods
run allocation-free.  The SpMV caches its row-geometry arrays and per-dtype
gather/reduce scratch in the matrix's ``backend_cache`` (keyed on the
``indptr`` identity, so a structurally different matrix gets a fresh plan),
and the dense GEMV kernels write through ``np.dot(..., out=...)`` /
caller-provided ``work`` buffers.  The arithmetic — gather, multiply,
segmented reduce — is bit-identical to the allocating path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .base import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sparse.csr import CsrMatrix

__all__ = ["spmv", "spmv_transpose", "spmm", "NumpyBackend"]


def spmv(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSR sparse matrix–vector product ``y = A x``.

    Parameters
    ----------
    data, indices, indptr:
        CSR arrays of ``A`` (``n_rows + 1 = len(indptr)``).
    x:
        Dense vector of length ``n_cols``; it is used in the matrix's value
        dtype (mixed inputs are multiplied under NumPy promotion rules, so
        callers who care about the working precision must pass matching
        dtypes — the instrumented kernels enforce this).
    out:
        Optional pre-allocated output vector of length ``n_rows``.

    Returns
    -------
    numpy.ndarray
        ``y`` with dtype equal to the product dtype.
    """
    n_rows = indptr.size - 1
    products = data * x[indices]
    if out is None:
        out = np.zeros(n_rows, dtype=products.dtype)
    else:
        if out.shape[0] != n_rows:
            raise ValueError("output vector has wrong length")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    # Reduce only over the starts of non-empty rows: consecutive non-empty
    # starts delimit exactly the nonzeros of the earlier row (empty rows in
    # between contribute nothing), every start is < len(products), and the
    # final segment runs to the end of the product array.
    sums = np.add.reduceat(products, starts[nonempty])
    out[nonempty] = sums
    return out


def spmv_transpose(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    n_cols: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSR transpose product ``y = A.T x``.

    Not used inside GMRES (which never needs ``A^T``), provided for
    completeness and for building normal-equation style diagnostics.  The
    scatter-add accumulates in float64 (``np.bincount`` limitation) and the
    result is cast back to the product dtype (written into ``out`` when one
    is given).
    """
    n_rows = indptr.size - 1
    if x.shape[0] != n_rows:
        raise ValueError("x must have length n_rows for the transpose product")
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
    weights = data * x[rows]
    y = np.bincount(indices, weights=weights, minlength=n_cols)
    if out is None:
        return y.astype(weights.dtype, copy=False)
    if out.shape[0] != n_cols:
        raise ValueError("output vector has wrong length")
    np.copyto(out, y, casting="same_kind")
    return out


def spmm(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    X: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched CSR product ``Y = A X`` against a dense block ``X`` (n × k).

    The multi-RHS analogue of :func:`spmv`: one gather of the ``k``-wide
    rows of ``X`` followed by one segmented ``np.add.reduceat`` along the
    nonzero axis, so all ``k`` right-hand sides share a single pass over
    the matrix.  Accumulation happens in the product dtype, matching the
    single-vector kernel.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError("spmm expects a 2-D block of column vectors")
    n_rows = indptr.size - 1
    k = X.shape[1]
    products = data[:, None] * X[indices, :]
    if out is None:
        out = np.zeros((n_rows, k), dtype=products.dtype)
    else:
        if out.shape != (n_rows, k):
            raise ValueError("output block has wrong shape")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    sums = np.add.reduceat(products, starts[nonempty], axis=0)
    out[nonempty, :] = sums
    return out


_SPMV_PLAN_KEY = "numpy_spmv_plan"


def _spmv_plan(matrix: "CsrMatrix") -> Optional[dict]:
    """Cached row geometry + per-dtype scratch for the ``out=`` SpMV path.

    The plan is keyed on the identity of the matrix's ``indptr`` array
    (matrices are treated as structurally immutable); ``rows`` is ``None``
    when every row is non-empty, which skips the zero-fill and the fancy
    scatter on the hot path.
    """
    cache = getattr(matrix, "backend_cache", None)
    if cache is None:
        return None
    plan = cache.get(_SPMV_PLAN_KEY)
    if plan is None or plan["indptr"] is not matrix.indptr:
        nonempty = np.diff(matrix.indptr) > 0
        plan = {
            "indptr": matrix.indptr,
            "starts": np.ascontiguousarray(matrix.indptr[:-1][nonempty]),
            # np.take converts non-intp index arrays on every call; cache the
            # widened copy once so the hot path gathers without a temporary.
            "indices": np.ascontiguousarray(matrix.indices, dtype=np.intp),
            "rows": None if nonempty.all() else np.flatnonzero(nonempty),
            "scratch": {},
        }
        cache[_SPMV_PLAN_KEY] = plan
    return plan


class NumpyBackend(KernelBackend):
    """Reference backend: every kernel is the vectorised NumPy ground truth."""

    name = "numpy"

    # -------------------------------- sparse -------------------------- #
    def spmv(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        plan = None
        if out is not None and matrix.data.dtype == x.dtype:
            plan = _spmv_plan(matrix)
        if plan is None:
            return spmv(matrix.data, matrix.indices, matrix.indptr, x, out=out)
        if out.shape[0] != matrix.shape[0]:
            raise ValueError("output vector has wrong length")
        if x.shape[0] != matrix.shape[1]:
            # The clipped gather below would silently fold out-of-range
            # column indices onto x[-1] instead of raising.
            raise ValueError("input vector has wrong length")
        nnz = matrix.data.size
        if nnz == 0:
            out[:] = 0
            return out
        dtype = x.dtype
        starts = plan["starts"]
        rows = plan["rows"]
        scratch = plan["scratch"]
        if rows is None:
            # Every row non-empty: the segmented reduce maps 1:1 onto the
            # output, so reduceat writes straight into `out` — no sums
            # buffer, no copy.
            prod = scratch.get(dtype.str)
            if prod is None:
                prod = scratch[dtype.str] = np.empty(nnz, dtype=dtype)
            sums = out
        else:
            bufs = scratch.get(dtype.str)
            if bufs is None:
                bufs = scratch[dtype.str] = (
                    np.empty(nnz, dtype=dtype),
                    np.empty(starts.size, dtype=dtype),
                )
            prod, sums = bufs
        # Same gather → multiply → segmented-reduce sequence as the module
        # reference above, so the result is bit-identical; only the
        # temporaries are reused.
        # mode="clip" lets np.take write straight into `prod` (the default
        # "raise" mode gathers into an internal buffer first); CSR column
        # indices are validated in-range at construction, so clipping never
        # alters a value.
        np.take(x, plan["indices"], out=prod, mode="clip")
        np.multiply(matrix.data, prod, out=prod)
        np.add.reduceat(prod, starts, out=sums)
        if rows is not None:
            out[:] = 0
            out[rows] = sums
        return out

    def spmv_transpose(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return spmv_transpose(
            matrix.data, matrix.indices, matrix.indptr, x, matrix.shape[1], out=out
        )

    def spmm(
        self,
        matrix: "CsrMatrix",
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return spmm(matrix.data, matrix.indices, matrix.indptr, X, out=out)

    # -------------------------------- dense --------------------------- #
    def gemv_transpose(
        self,
        V: np.ndarray,
        w: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if out is None:
            return V.T @ w
        np.dot(V.T, w, out=out)
        return out

    def gemv_notrans(
        self,
        V: np.ndarray,
        h: np.ndarray,
        w: np.ndarray,
        *,
        alpha: float = -1.0,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if work is not None and work.shape == w.shape and work.dtype == w.dtype:
            np.dot(V, h, out=work)
            if alpha == -1.0:
                np.subtract(w, work, out=w)
            elif alpha == 1.0:
                np.add(w, work, out=w)
            else:
                np.multiply(work, w.dtype.type(alpha), out=work)
                np.add(w, work, out=w)
            return w
        if alpha == -1.0:
            w -= V @ h
        elif alpha == 1.0:
            w += V @ h
        else:
            w += w.dtype.type(alpha) * (V @ h)
        return w

    # -------------------------------- vector -------------------------- #
    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.dot(x, y))

    def norm2(self, x: np.ndarray) -> float:
        # Accumulate in the working dtype (np.dot keeps the dtype), then sqrt.
        return float(np.sqrt(np.dot(x, x)))

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y += x.dtype.type(alpha) * x
        return y

    def scal(self, alpha: float, x: np.ndarray) -> np.ndarray:
        x *= x.dtype.type(alpha)
        return x

    def copy(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return x.copy()
        np.copyto(out, x, casting="same_kind")
        return out

    # ------------------------- preconditioner apply -------------------- #
    def diag_scale(
        self,
        scale: np.ndarray,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return np.multiply(scale, x, out=out)

    def block_diag_solve(
        self,
        inv_blocks: np.ndarray,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_blocks, k, _k2 = inv_blocks.shape
        x2 = x.reshape(n_blocks, k)
        if out is None:
            return np.einsum("bij,bj->bi", inv_blocks, x2).reshape(-1)
        np.einsum("bij,bj->bi", inv_blocks, x2, out=out.reshape(n_blocks, k))
        return out
