"""Pluggable kernel backends.

The solvers, preconditioners and metered kernels never execute sparse or
dense arithmetic directly: they call the *active* :class:`KernelBackend`
held by the :class:`~repro.linalg.context.ExecutionContext`.  Two backends
ship with the library:

``numpy``
    The pure-NumPy reference (``np.add.reduceat`` SpMV).  This is the
    numerical ground truth: it accumulates strictly in the working
    precision, including fp16, which the paper's half-precision
    experiments depend on.
``scipy``
    A fast path that routes SpMV/SpMM/SpMV^T through the compiled
    :mod:`scipy.sparse` CSR kernels (several times faster on the paper's
    matrices; fp16 falls back to the reference).

Selection (first match wins):

1. an explicit ``ExecutionContext(backend=...)`` /
   :func:`repro.linalg.context.use_backend`;
2. ``ReproConfig.backend`` (i.e. :func:`repro.config.set_config`), whose
   default is read from the ``REPRO_BACKEND`` environment variable;
3. the built-in default, ``numpy``.

Third-party backends register a factory under a new name with
:func:`register_backend` and become selectable through all of the above.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from .base import KernelBackend
from .numpy_backend import NumpyBackend
from .scipy_backend import ScipyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "ScipyBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "active_backend",
]

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name`` (lowercased).

    The factory is called lazily, once, on first :func:`get_backend` lookup.
    Registering an already-known name raises unless ``replace=True``.
    """
    key = name.lower()
    if key in _FACTORIES and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_FACTORIES)


def get_backend(backend: Union[str, KernelBackend, None] = None) -> KernelBackend:
    """Resolve ``backend`` to a :class:`KernelBackend` instance.

    Accepts an instance (returned as-is), a registered name, or ``None``,
    which selects the library-config backend
    (:attr:`repro.config.ReproConfig.backend`, seeded from the
    ``REPRO_BACKEND`` environment variable).
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend is None:
        from ..config import get_config

        backend = get_config().backend
    key = backend.lower()
    instance = _INSTANCES.get(key)
    if instance is None:
        factory = _FACTORIES.get(key)
        if factory is None:
            raise ValueError(
                f"unknown backend {backend!r}; available: {available_backends()}"
            )
        instance = factory()
        _INSTANCES[key] = instance
    return instance


def active_backend() -> KernelBackend:
    """The backend of the active execution context.

    This is what :class:`~repro.sparse.csr.CsrMatrix` and the metered
    kernels actually dispatch to.
    """
    from ..linalg.context import get_context

    return get_context().backend


register_backend("numpy", NumpyBackend)
register_backend("scipy", ScipyBackend)
