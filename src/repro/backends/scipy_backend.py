"""SciPy fast-path backend.

Dispatches the sparse kernels (SpMV / SpMV^T / SpMM) to the compiled CSR
routines in :mod:`scipy.sparse`, which are several times faster than the
``np.add.reduceat`` reference on the matrices the paper studies (the
backend-comparison benchmark records the measured ratio in
``BENCH_backends.json``).  Dense and vector kernels are inherited from the
NumPy reference — for tall-skinny GEMV, dot and axpy, NumPy already calls
the same BLAS SciPy would.

Two semantic guard rails keep the numerics interchangeable with the
reference backend:

* **fp16 falls back to NumPy.**  SciPy's sparse kernels have no float16
  path and silently upcast the product to float32; the reference kernels
  accumulate genuinely in fp16, and the half-precision experiments need
  exactly that behaviour.
* **fp32/fp64 accumulate in the value dtype** in SciPy's compiled CSR
  loops, matching the reference semantics (and the templated Belos/Tpetra
  stack of the paper).

Known deviation: for ``spmv_transpose`` in fp32, the *reference* is the
one that accumulates wide (``np.bincount`` only sums in float64, then
casts back — noted in its docstring), while SciPy accumulates genuinely
in fp32.  The transpose product is a diagnostics-only kernel (GMRES never
needs ``A^T``), the divergence is bounded by fp32 round-off, and the
parity tests pin it to dtype-appropriate tolerance.

The SciPy view of a matrix is built once per :class:`CsrMatrix` and cached
in the matrix's ``backend_cache`` (the arrays are shared, not copied), so
repeated products inside a solver pay no conversion cost.

``out=`` path: ``scipy.sparse`` has no public ``out=`` for its products,
but the compiled kernel it calls internally (``_sparsetools.csr_matvec``)
accumulates into a caller-provided output vector.  When that private hook
is importable (it has been stable across SciPy releases for a decade) the
``out=`` SpMV zeroes the buffer and accumulates in place — the same
instruction sequence ``handle @ x`` would run, so results are bit-identical
— and the solver hot path allocates nothing.  Otherwise the backend falls
back to product-then-copy, which is still correct, just not allocation-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .numpy_backend import NumpyBackend, _copy_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sparse.csr import CsrMatrix

__all__ = ["ScipyBackend"]

_CACHE_KEY = "scipy_csr"

try:  # private but long-stable compiled kernels with an output argument
    from scipy.sparse import _sparsetools as _st

    _CSR_MATVEC = getattr(_st, "csr_matvec", None)
    _CSR_MATVECS = getattr(_st, "csr_matvecs", None)
except Exception:  # pragma: no cover - exotic scipy builds
    _CSR_MATVEC = None
    _CSR_MATVECS = None

_SPMM_SCRATCH_KEY = "scipy_spmm_scratch"


class ScipyBackend(NumpyBackend):
    """SciPy-accelerated sparse kernels over the NumPy reference backend."""

    name = "scipy"

    @staticmethod
    def _handle(matrix: "CsrMatrix"):
        """The cached ``scipy.sparse.csr_matrix`` view of ``matrix``.

        The cache entry pairs the handle with the ``data`` array it was
        built from, so a matrix whose ``data`` attribute is swapped out
        gets a fresh handle (matrices are otherwise treated as immutable).
        """
        cache = getattr(matrix, "backend_cache", None)
        if cache is not None:
            entry = cache.get(_CACHE_KEY)
            if entry is not None and entry[0] is matrix.data:
                return entry[1]
        import scipy.sparse as sp

        handle = sp.csr_matrix(
            (matrix.data, matrix.indices, matrix.indptr),
            shape=matrix.shape,
            copy=False,
        )
        if cache is not None:
            cache[_CACHE_KEY] = (matrix.data, handle)
        return handle

    def spmv(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if matrix.data.dtype == np.float16:
            return super().spmv(matrix, x, out=out)
        handle = self._handle(matrix)
        if out is None:
            return handle @ x
        if out.shape != (matrix.shape[0],):
            raise ValueError("output vector has wrong length")
        if x.shape[0] != matrix.shape[1]:
            # csr_matvec is compiled C with no bounds checking; a short x
            # would be read out of bounds.
            raise ValueError("input vector has wrong length")
        if _CSR_MATVEC is not None and x.dtype == handle.data.dtype == out.dtype:
            # csr_matvec accumulates y += A x, so zero the buffer first.
            out[:] = 0
            _CSR_MATVEC(
                handle.shape[0],
                handle.shape[1],
                handle.indptr,
                handle.indices,
                handle.data,
                x,
                out,
            )
            return out
        out[:] = handle @ x
        return out

    def spmv_transpose(
        self,
        matrix: "CsrMatrix",
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if matrix.data.dtype == np.float16:
            return super().spmv_transpose(matrix, x, out=out)
        if x.shape[0] != matrix.shape[0]:
            raise ValueError("x must have length n_rows for the transpose product")
        y = self._handle(matrix).T @ x
        if out is None:
            return y
        if out.shape != y.shape:
            raise ValueError("output vector has wrong length")
        out[:] = y
        return out

    def spmm(
        self,
        matrix: "CsrMatrix",
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValueError("spmm expects a 2-D block of column vectors")
        if X.shape[0] != matrix.shape[1]:
            raise ValueError("input block has wrong number of rows")
        if matrix.data.dtype == np.float16:
            return super().spmm(matrix, X, out=out)
        handle = self._handle(matrix)
        n_rows, k = matrix.shape[0], X.shape[1]
        if out is not None and out.shape != (n_rows, k):
            raise ValueError("output block has wrong shape")
        if k == 0:
            return np.zeros((n_rows, 0), dtype=X.dtype) if out is None else out
        if (
            out is not None
            and k > 0
            and _CSR_MATVEC is not None
            and X.dtype == handle.data.dtype == out.dtype
            and X.flags.f_contiguous
            and out.flags.f_contiguous
        ):
            # Fortran-ordered blocks (the Krylov basis panels) have
            # contiguous columns, so the fastest compiled path is one
            # csr_matvec per column: it vectorizes better than the
            # row-major csr_matvecs kernel and is arithmetically identical
            # (both accumulate row-wise per column).
            out[:] = 0  # csr_matvec accumulates y += A x
            for c in range(k):
                _CSR_MATVEC(
                    handle.shape[0],
                    handle.shape[1],
                    handle.indptr,
                    handle.indices,
                    handle.data,
                    X[:, c],
                    out[:, c],
                )
            return out
        if (
            out is not None
            and k > 0
            and _CSR_MATVECS is not None
            and X.dtype == handle.data.dtype == out.dtype
        ):
            # csr_matvecs is the compiled kernel `handle @ X` itself calls
            # (scipy's _matmul_multivector), so the numerics are identical;
            # it wants row-major blocks, so non-C-contiguous operands go
            # through cached per-(dtype, k) scratch and the hot path
            # allocates nothing.
            cache = getattr(matrix, "backend_cache", None)
            scratch = None if cache is None else cache.setdefault(_SPMM_SCRATCH_KEY, {})
            if X.flags.c_contiguous:
                source = X
            else:
                source = self._spmm_buffer(scratch, ("x", X.dtype.str, k), X.shape)
                _copy_block(source, X)
            if out.flags.c_contiguous:
                target = out
            else:
                target = self._spmm_buffer(scratch, ("y", out.dtype.str, k), out.shape)
            target[:] = 0  # csr_matvecs accumulates Y += A X
            _CSR_MATVECS(
                handle.shape[0],
                handle.shape[1],
                k,
                handle.indptr,
                handle.indices,
                handle.data,
                source.ravel(),
                target.ravel(),
            )
            if target is not out:
                _copy_block(out, target)
            return out
        Y = handle @ X
        if out is None:
            return Y
        out[:] = Y
        return out

    @staticmethod
    def _spmm_buffer(scratch, key, shape):
        """C-contiguous per-(dtype, k) staging block, cached on the matrix."""
        if scratch is None:
            return np.empty(shape, dtype=np.dtype(key[1]))
        buf = scratch.get(key)
        if buf is None or buf.shape != shape:
            buf = scratch[key] = np.empty(shape, dtype=np.dtype(key[1]))
        return buf
