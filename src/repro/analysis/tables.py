"""Plain-text table formatting for experiment reports.

The experiment drivers produce lists of dataclass-like row dicts; these
helpers render them in aligned fixed-width text so the benchmark harness
can print rows that read like the paper's tables, and EXPERIMENTS.md can be
generated mechanically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_kv", "format_series"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render a list of row mappings as an aligned text table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render as blanks.
    columns:
        Column order (defaults to the keys of the first row).
    float_format:
        ``format()`` spec applied to float cells.
    title:
        Optional title line printed above the table.
    """
    rows = list(rows)
    if not rows:
        return title or "(empty table)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        {c: _format_cell(row.get(c), float_format) for c in cols} for row in rows
    ]
    widths = {c: max(len(c), *(len(r[c]) for r in rendered)) for c in cols}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(r[c].rjust(widths[c]) for c in cols))
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, Cell], *, float_format: str = ".4g", title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line, keys left-aligned."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_format_cell(value, float_format)}")
    return "\n".join(lines)


def format_series(
    xs: Iterable[Cell],
    ys: Iterable[Cell],
    *,
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render a figure series as two aligned columns (for convergence curves)."""
    rows: List[Dict[str, Cell]] = [
        {x_label: x, y_label: y} for x, y in zip(xs, ys)
    ]
    return format_table(rows, [x_label, y_label], float_format=float_format, title=title)
