"""Analysis of solver runs: kernel breakdowns, speedup tables, model checks.

* :mod:`repro.analysis.breakdown` — per-kernel time split of one run
  (Figures 4, 7, 8).
* :mod:`repro.analysis.speedup` — Table-I-style per-kernel speedup tables
  and the Figure 5 series.
* :mod:`repro.analysis.model_validation` — Section V-D: paper formula vs
  cost model vs streaming cache simulation.
* :mod:`repro.analysis.tables` — plain-text rendering helpers used by the
  benchmark harness and EXPERIMENTS.md generation.
"""

from .breakdown import KernelBreakdown, breakdown_from_result, breakdown_from_timer, BREAKDOWN_ORDER
from .speedup import SpeedupRow, SpeedupTable, speedup_table
from .model_validation import SpmvModelComparison, compare_spmv_models
from .tables import format_table, format_kv, format_series

__all__ = [
    "KernelBreakdown",
    "breakdown_from_result",
    "breakdown_from_timer",
    "BREAKDOWN_ORDER",
    "SpeedupRow",
    "SpeedupTable",
    "speedup_table",
    "SpmvModelComparison",
    "compare_spmv_models",
    "format_table",
    "format_kv",
    "format_series",
]
