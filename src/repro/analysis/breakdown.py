"""Kernel-time breakdowns of solver runs.

This is the data behind Figures 4, 7 and 8 of the paper: total solve time
split into the kernel buckets "GEMV (Trans)", "Norm", "GEMV (No Trans)",
"SpMV", "Precond" and "Other", plus the derived "Total Orthogonalization"
row of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..perfmodel.timer import KernelTimer, ORTHO_LABELS
from ..solvers.result import SolveResult

__all__ = ["KernelBreakdown", "breakdown_from_result", "breakdown_from_timer", "BREAKDOWN_ORDER"]

#: Display order used by the paper's stacked bars.
BREAKDOWN_ORDER: tuple = ("GEMV (Trans)", "Norm", "GEMV (No Trans)", "SpMV", "Precond", "Other")


@dataclass
class KernelBreakdown:
    """Per-kernel modelled seconds of one solver run."""

    name: str
    seconds_by_label: Dict[str, float] = field(default_factory=dict)
    calls_by_label: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_label.values())

    @property
    def orthogonalization_seconds(self) -> float:
        """The paper's "Total Orthogonalization" = GEMV(T) + Norm + GEMV(N)."""
        return sum(self.seconds_by_label.get(label, 0.0) for label in ORTHO_LABELS)

    def seconds(self, label: str) -> float:
        return self.seconds_by_label.get(label, 0.0)

    def fraction(self, label: str) -> float:
        """Share of the total time spent in one kernel bucket."""
        total = self.total_seconds
        return self.seconds(label) / total if total > 0 else 0.0

    def orthogonalization_fraction(self) -> float:
        total = self.total_seconds
        return self.orthogonalization_seconds / total if total > 0 else 0.0

    def as_rows(self) -> List[tuple]:
        """Rows ``(label, seconds, calls, fraction)`` in display order."""
        rows = []
        for label in BREAKDOWN_ORDER:
            if label in self.seconds_by_label:
                rows.append(
                    (
                        label,
                        self.seconds_by_label[label],
                        self.calls_by_label.get(label, 0),
                        self.fraction(label),
                    )
                )
        for label, secs in self.seconds_by_label.items():
            if label not in BREAKDOWN_ORDER:
                rows.append((label, secs, self.calls_by_label.get(label, 0), self.fraction(label)))
        return rows


def breakdown_from_timer(timer: KernelTimer, name: Optional[str] = None) -> KernelBreakdown:
    """Build a :class:`KernelBreakdown` from a timer's records."""
    return KernelBreakdown(
        name=name or timer.name,
        seconds_by_label=timer.model_seconds_by_label(),
        calls_by_label=timer.calls_by_label(),
    )


def breakdown_from_result(result: SolveResult, name: Optional[str] = None) -> KernelBreakdown:
    """Build a :class:`KernelBreakdown` from a solver result."""
    label = name or f"{result.solver} [{result.precision}]"
    return breakdown_from_timer(result.timer, name=label)
