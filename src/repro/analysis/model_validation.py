"""Section V-D validation: the analytic SpMV cache model vs. the metered kernel.

Three levels are compared for a given matrix:

1. the paper's closed-form speedup ``5w/(2w+1)`` (perfect fp32 reuse, zero
   fp64 reuse, row pointers and writes ignored),
2. the generalised traffic model actually used by the cost model (reuse
   fractions from :func:`repro.perfmodel.cache.estimate_x_reuse`, row
   pointers and result writes included), and
3. the streaming LRU cache simulation driven by the matrix's real column
   index stream.

The experiment in :mod:`repro.experiments.sec5d_spmv_model` sweeps matrices
with different nonzeros-per-row and bandwidth and prints all three next to
the metered SpMV times of actual solver runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..perfmodel.cache import CacheConfig, estimate_x_reuse, simulate_stream_hit_rate
from ..perfmodel.costs import KernelCostModel
from ..perfmodel.device import DeviceSpec
from ..perfmodel.spmv_model import predicted_spmv_speedup
from ..sparse.csr import CsrMatrix
from ..sparse.properties import avg_nonzeros_per_row

__all__ = ["SpmvModelComparison", "compare_spmv_models"]


@dataclass
class SpmvModelComparison:
    """All SpMV-speedup estimates for one matrix."""

    matrix_name: str
    n_rows: int
    nnz: int
    avg_nnz_per_row: float
    bandwidth: int
    paper_formula_speedup: float
    cost_model_speedup: float
    reuse_fp32: float
    reuse_fp64: float
    simulated_hit_rate_fp32: Optional[float] = None
    simulated_hit_rate_fp64: Optional[float] = None

    def as_row(self) -> dict:
        row = {
            "matrix": self.matrix_name,
            "n": self.n_rows,
            "nnz/row": self.avg_nnz_per_row,
            "bandwidth": self.bandwidth,
            "5w/(2w+1)": self.paper_formula_speedup,
            "cost model": self.cost_model_speedup,
            "reuse fp32": self.reuse_fp32,
            "reuse fp64": self.reuse_fp64,
        }
        if self.simulated_hit_rate_fp32 is not None:
            row["L2 sim fp32"] = self.simulated_hit_rate_fp32
            row["L2 sim fp64"] = self.simulated_hit_rate_fp64
        return row


def compare_spmv_models(
    matrix: CsrMatrix,
    device: DeviceSpec,
    *,
    cache_config: Optional[CacheConfig] = None,
    run_cache_simulation: bool = False,
    simulation_accesses: int = 500_000,
) -> SpmvModelComparison:
    """Compare the SpMV speedup predictions for one matrix on one device."""
    cfg = cache_config or CacheConfig()
    w = avg_nonzeros_per_row(matrix)
    model = KernelCostModel(device, cache_config=cfg)
    t64 = model.spmv(matrix.n_rows, matrix.n_cols, matrix.nnz, 8, matrix.bandwidth()).seconds
    t32 = model.spmv(matrix.n_rows, matrix.n_cols, matrix.nnz, 4, matrix.bandwidth()).seconds
    reuse32 = estimate_x_reuse(device, matrix.n_cols, 4, matrix.bandwidth(), cfg)
    reuse64 = estimate_x_reuse(device, matrix.n_cols, 8, matrix.bandwidth(), cfg)

    sim32 = sim64 = None
    if run_cache_simulation:
        share = cfg.x_share * device.l2_bytes
        sim32 = simulate_stream_hit_rate(
            matrix.indices, 4, share, max_accesses=simulation_accesses
        )
        sim64 = simulate_stream_hit_rate(
            matrix.indices, 8, share, max_accesses=simulation_accesses
        )

    return SpmvModelComparison(
        matrix_name=matrix.name or "matrix",
        n_rows=matrix.n_rows,
        nnz=matrix.nnz,
        avg_nnz_per_row=w,
        bandwidth=matrix.bandwidth(),
        paper_formula_speedup=predicted_spmv_speedup(w),
        cost_model_speedup=t64 / t32 if t32 > 0 else float("inf"),
        reuse_fp32=reuse32,
        reuse_fp64=reuse64,
        simulated_hit_rate_fp32=sim32,
        simulated_hit_rate_fp64=sim64,
    )
