"""Speedup tables: per-kernel and total fp64 → mixed-precision speedups.

Reproduces the layout of Table I and Figure 5 of the paper: for two solver
runs (typically GMRES double and GMRES-IR on the same problem) the total
time spent in each kernel bucket is compared, including the derived "Total
Orthogonalization" row.  As the paper notes, this compares the *total* time
each solver spends in a kernel, not per-call time — GMRES-IR usually
performs a few more calls because it takes extra iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..solvers.result import SolveResult
from .breakdown import breakdown_from_result

__all__ = ["SpeedupRow", "SpeedupTable", "speedup_table"]

#: Row order of Table I in the paper.
TABLE_I_ROWS = (
    "GEMV (Trans)",
    "Norm",
    "GEMV (No Trans)",
    "Total Orthogonalization",
    "SpMV",
    "Precond",
    "Other",
    "Total Time",
)


@dataclass
class SpeedupRow:
    """One kernel bucket compared across the two runs."""

    label: str
    baseline_seconds: float
    comparison_seconds: float

    @property
    def speedup(self) -> float:
        if self.comparison_seconds <= 0:
            return float("inf") if self.baseline_seconds > 0 else 1.0
        return self.baseline_seconds / self.comparison_seconds


@dataclass
class SpeedupTable:
    """Per-kernel speedups of ``comparison`` (e.g. GMRES-IR) over ``baseline``."""

    baseline_name: str
    comparison_name: str
    rows: List[SpeedupRow] = field(default_factory=list)

    def row(self, label: str) -> SpeedupRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row labelled {label!r}")

    @property
    def total_speedup(self) -> float:
        return self.row("Total Time").speedup

    def as_dict(self) -> Dict[str, float]:
        """Mapping label → speedup (the series plotted in Figure 5)."""
        return {r.label: r.speedup for r in self.rows}

    def format(self, *, time_unit: str = "s", scale: float = 1.0) -> str:
        """Text rendering in the layout of Table I."""
        header = (
            f"{'':24s} {self.baseline_name:>14s} {self.comparison_name:>14s} {'Speedup':>9s}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                f"{r.label:24s} {r.baseline_seconds * scale:14.4f} "
                f"{r.comparison_seconds * scale:14.4f} {r.speedup:9.2f}"
            )
        lines.append(f"(times in {time_unit})")
        return "\n".join(lines)


def speedup_table(
    baseline: SolveResult,
    comparison: SolveResult,
    *,
    baseline_name: Optional[str] = None,
    comparison_name: Optional[str] = None,
) -> SpeedupTable:
    """Build the Table-I-style per-kernel speedup table for two solver runs."""
    base = breakdown_from_result(baseline, name=baseline_name)
    comp = breakdown_from_result(comparison, name=comparison_name)
    table = SpeedupTable(
        baseline_name=baseline_name or base.name,
        comparison_name=comparison_name or comp.name,
    )
    for label in TABLE_I_ROWS:
        if label == "Total Orthogonalization":
            b, c = base.orthogonalization_seconds, comp.orthogonalization_seconds
        elif label == "Total Time":
            b, c = base.total_seconds, comp.total_seconds
        else:
            b, c = base.seconds(label), comp.seconds(label)
            if b == 0.0 and c == 0.0:
                continue
        table.rows.append(SpeedupRow(label=label, baseline_seconds=b, comparison_seconds=c))
    return table
