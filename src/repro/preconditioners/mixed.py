"""Mixed-precision preconditioner wrapping.

The paper's option (a) in Section III-D: run GMRES in fp64 but compute and
apply the preconditioner in fp32.  "Each time an fp32 preconditioner M is
applied to an fp64 vector x, we must cast x to fp32, multiply it by M in
fp32, and cast the result back to fp64."  The wrapper below performs (and
meters) exactly those two casts around the inner preconditioner — this is
the extra "Other" time visible in the middle bar of Figure 7.
"""

from __future__ import annotations

import numpy as np

from ..linalg import kernels
from ..precision import as_precision
from .base import Preconditioner

__all__ = ["PrecisionWrappedPreconditioner", "wrap_for_precision"]


class PrecisionWrappedPreconditioner(Preconditioner):
    """Adapts a preconditioner to be callable from another working precision.

    Parameters
    ----------
    inner:
        The preconditioner, computed/applied in its own precision.
    outer_precision:
        The solver's working precision.  ``apply`` accepts vectors in this
        precision, casts down/up around the inner application, and the casts
        are metered (they land in the "Other" kernel bucket).
    """

    def __init__(self, inner: Preconditioner, outer_precision="double") -> None:
        outer = as_precision(outer_precision)
        super().__init__(precision=outer, name=f"{inner.name}@{outer.name}")
        self.inner = inner
        self._inner_scratch = None  # lazily sized (down-cast input, inner output)

    def _inner_buffers(self, n: int):
        """Owned inner-precision buffers for the down-cast vector and the
        inner application (allocated once per vector length)."""
        bufs = self._inner_scratch
        if bufs is None or bufs[0].shape[0] != n:
            dtype = self.inner.precision.dtype
            bufs = (np.empty(n, dtype=dtype), np.empty(n, dtype=dtype))
            self._inner_scratch = bufs
        return bufs

    @property
    def is_identity(self) -> bool:
        return self.inner.is_identity

    def spmvs_per_apply(self) -> int:
        return self.inner.spmvs_per_apply()

    def setup_seconds(self) -> float:
        return self.inner.setup_seconds()

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        vector = self._check_precision(vector)
        if self.inner.precision.dtype == self.precision.dtype:
            return self.inner.apply(vector, out=out)
        down_buf, inner_buf = self._inner_buffers(vector.shape[0])
        down = kernels.cast(vector, self.inner.precision, out=down_buf)
        result = self.inner.apply(down, out=inner_buf)
        return kernels.cast(result, self.precision, out=out)

    def apply_block(
        self, block: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Cast the whole block around the inner *batched* application.

        Delegating to ``inner.apply_block`` keeps the SpMM/BLAS-3 batching
        of block-capable preconditioners (the polynomial) through the
        precision boundary; the per-column casts are metered exactly like
        the vector path's.
        """
        block = self._check_precision(np.asarray(block))
        if block.ndim != 2:
            raise ValueError("apply_block expects a 2-D block of column vectors")
        if self.inner.precision.dtype == self.precision.dtype:
            return self.inner.apply_block(block, out=out)
        n, k = block.shape
        down, applied = self._inner_block_buffers(n, k)
        for c in range(k):
            kernels.cast(block[:, c], self.inner.precision, out=down[:, c])
        self.inner.apply_block(down, out=applied)
        if out is None:
            out = np.empty((n, k), dtype=self.precision.dtype, order="F")
        for c in range(k):
            kernels.cast(applied[:, c], self.precision, out=out[:, c])
        return out

    def _inner_block_buffers(self, n: int, k: int):
        """Owned inner-precision blocks (per width, reallocated on deflation)."""
        bufs = getattr(self, "_inner_block_scratch", None)
        if bufs is None:
            bufs = self._inner_block_scratch = {}
        pair = bufs.get(k)
        if pair is None or pair[0].shape[0] != n:
            dtype = self.inner.precision.dtype
            pair = bufs[k] = (
                np.empty((n, k), dtype=dtype, order="F"),
                np.empty((n, k), dtype=dtype, order="F"),
            )
        return pair


def wrap_for_precision(preconditioner: Preconditioner, working_precision) -> Preconditioner:
    """Return a preconditioner usable from ``working_precision``.

    If the preconditioner already operates in that precision it is returned
    unchanged; otherwise it is wrapped in
    :class:`PrecisionWrappedPreconditioner` (casting on every application).
    """
    working = as_precision(working_precision)
    if preconditioner.precision.dtype == working.dtype:
        return preconditioner
    return PrecisionWrappedPreconditioner(preconditioner, outer_precision=working)
