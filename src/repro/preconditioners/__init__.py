"""Preconditioners.

The paper deliberately avoids LU-type preconditioners (fill, poor GPU
parallelism) and studies two highly parallel classical choices:

* the **GMRES polynomial preconditioner** of Loe/Thornquist/Boman [16],
  built from harmonic Ritz values of a short Arnoldi run and applied as a
  sequence of SpMVs (Sections V-C and V-F), and
* **block Jacobi** (with point Jacobi as the block-size-1 special case),
  applied after an RCM reordering in Table III.

Every preconditioner carries an explicit precision; GMRES-IR computes and
applies the preconditioner entirely in fp32, while "fp32 preconditioning of
fp64 GMRES" wraps it in :class:`PrecisionWrappedPreconditioner`, which casts
the vector on every application (the cost the paper attributes to the
"Other" bucket in Figure 7).

Chebyshev and Neumann-series polynomial preconditioners are included as
ablation alternatives to the GMRES polynomial.
"""

from .base import Preconditioner, IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .block_jacobi import BlockJacobiPreconditioner
from .polynomial import GmresPolynomialPreconditioner
from .chebyshev import ChebyshevPreconditioner
from .neumann import NeumannPreconditioner
from .mixed import PrecisionWrappedPreconditioner, wrap_for_precision

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "GmresPolynomialPreconditioner",
    "ChebyshevPreconditioner",
    "NeumannPreconditioner",
    "PrecisionWrappedPreconditioner",
    "wrap_for_precision",
    "make_preconditioner",
]


def make_preconditioner(name, matrix, precision="double", **kwargs):
    """Build a preconditioner by short name.

    Parameters
    ----------
    name:
        ``None``/"identity", "jacobi", "block_jacobi", "poly"/"polynomial",
        "chebyshev" or "neumann".
    matrix:
        The system matrix (in any precision; it is converted to the
        preconditioner's precision internally).
    precision:
        Precision in which the preconditioner is computed and applied.
    kwargs:
        Forwarded to the specific preconditioner (``degree``, ``block_size``, ...).
    """
    if name is None:
        return IdentityPreconditioner(precision=precision)
    key = str(name).lower()
    if key in ("identity", "none"):
        return IdentityPreconditioner(precision=precision)
    if key == "jacobi":
        return JacobiPreconditioner(matrix, precision=precision, **kwargs)
    if key in ("block_jacobi", "blockjacobi", "bj"):
        return BlockJacobiPreconditioner(matrix, precision=precision, **kwargs)
    if key in ("poly", "polynomial", "gmres_poly"):
        return GmresPolynomialPreconditioner(matrix, precision=precision, **kwargs)
    if key in ("chebyshev", "cheby"):
        return ChebyshevPreconditioner(matrix, precision=precision, **kwargs)
    if key == "neumann":
        return NeumannPreconditioner(matrix, precision=precision, **kwargs)
    raise ValueError(f"unknown preconditioner {name!r}")
