"""Neumann-series polynomial preconditioner (ablation alternative).

``M = (sum_{k=0}^{d} (I - D^{-1} A)^k) D^{-1}`` — the truncated Neumann
series for ``A^{-1}`` built on the Jacobi splitting.  Only effective when
the Jacobi iteration matrix has spectral radius below one (strongly
diagonally dominant problems), but it needs no eigenvalue information and
no Arnoldi run, making it the cheapest polynomial preconditioner to set up.
Included for the design-choice ablation in DESIGN.md; the paper itself uses
the GMRES polynomial.
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import kernels
from ..sparse.csr import CsrMatrix
from .base import Preconditioner

__all__ = ["NeumannPreconditioner"]


class NeumannPreconditioner(Preconditioner):
    """Truncated Neumann series on the Jacobi splitting.

    Parameters
    ----------
    matrix:
        System matrix.
    degree:
        Number of series terms beyond the constant one (``degree`` SpMVs per
        application).
    precision:
        Precision of the stored matrix copy and the application arithmetic.
    """

    def __init__(self, matrix: CsrMatrix, degree: int = 2, precision="double") -> None:
        super().__init__(precision=precision, name=f"neumann[{degree}]")
        if degree < 0:
            raise ValueError("degree must be non-negative")
        start = time.perf_counter()
        self.degree = int(degree)
        self._matrix = self._matrix_in_precision(matrix, self.precision)
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0.0):
            raise ValueError("matrix has zero diagonal entries; Neumann/Jacobi is undefined")
        self._inv_diag = (1.0 / diag).astype(self.precision.dtype)
        # Owned scratch (Jacobi-scaled right-hand side + SpMV output) so
        # apply(v, out=buf) allocates nothing.
        n = self._matrix.n_rows
        self._g = np.empty(n, dtype=self.precision.dtype)
        self._w = np.empty(n, dtype=self.precision.dtype)
        self._setup_seconds = time.perf_counter() - start

    def spmvs_per_apply(self) -> int:
        return self.degree

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """Apply ``sum_k (I - D^{-1}A)^k D^{-1} v`` via the stable recurrence.

        ``y_0 = D^{-1} v``;  ``y_{k+1} = D^{-1} v + (I - D^{-1} A) y_k``.
        """
        vector = self._check_precision(vector)
        g = kernels.diag_scale(self._inv_diag, vector, out=self._g)
        y = kernels.copy(g, out=out)
        for _ in range(self.degree):
            w = kernels.spmv(self._matrix, y, out=self._w)
            # diag_scale may alias in place (elementwise), saving a buffer.
            correction = kernels.diag_scale(self._inv_diag, w, out=self._w)
            # y <- g + y - D^{-1} A y
            kernels.axpy(-1.0, correction, y)
            kernels.axpy(1.0, g, y)
        return y
