"""Point-Jacobi (diagonal scaling) preconditioner.

The ``J 1`` entry of Table III: the simplest parallel preconditioner,
``M = D^{-1}``.  One elementwise multiply per application — no SpMVs, no
triangular solves, trivially parallel on a GPU.
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import kernels
from ..sparse.csr import CsrMatrix
from .base import Preconditioner

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner(Preconditioner):
    """``M = D^{-1}`` where ``D`` is the diagonal of ``A``.

    Parameters
    ----------
    matrix:
        System matrix; only its diagonal is read.
    precision:
        Precision in which the inverse diagonal is stored and applied.
    zero_diagonal_tolerance:
        Diagonal entries whose magnitude falls below this threshold are
        replaced by 1 (no scaling for that row) instead of producing inf.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        precision="double",
        *,
        zero_diagonal_tolerance: float = 0.0,
    ) -> None:
        super().__init__(precision=precision, name="jacobi")
        start = time.perf_counter()
        diag = matrix.diagonal().astype(np.float64)
        if zero_diagonal_tolerance >= 0:
            small = np.abs(diag) <= zero_diagonal_tolerance
            diag = np.where(small, 1.0, diag)
        if np.any(diag == 0.0):
            raise ValueError("matrix has zero diagonal entries; Jacobi is undefined")
        self._inv_diag = (1.0 / diag).astype(self.precision.dtype)
        self._setup_seconds = time.perf_counter() - start

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        vector = self._check_precision(vector)
        return kernels.diag_scale(self._inv_diag, vector, out=out)

    @property
    def inverse_diagonal(self) -> np.ndarray:
        """The stored ``1/diag(A)`` in the preconditioner precision."""
        return self._inv_diag
