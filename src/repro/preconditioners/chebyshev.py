"""Chebyshev polynomial preconditioner (ablation alternative).

A classical polynomial preconditioner for matrices whose spectrum lies in a
positive real interval ``[lmin, lmax]``: ``M = p(A)`` where ``p`` is the
scaled-and-shifted Chebyshev polynomial minimising the maximum of
``|1 - z p(z)|`` over the interval.  Like the GMRES polynomial it is applied
as a sequence of SpMVs and vector updates (three-term recurrence), so it
shares the same fp32-friendly cost profile; unlike the GMRES polynomial it
needs eigenvalue bounds and is only appropriate for (nearly) symmetric
positive definite operators.  Included for the design-choice ablation
called out in DESIGN.md, not used in the paper.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from ..linalg import kernels
from ..sparse.csr import CsrMatrix
from .base import Preconditioner

__all__ = ["ChebyshevPreconditioner", "estimate_spectrum_bounds"]


def estimate_spectrum_bounds(
    matrix: CsrMatrix, *, power_iterations: int = 20, seed: int = 0
) -> Tuple[float, float]:
    """Crude bounds on the spectrum of an SPD matrix.

    The largest eigenvalue is estimated with a few power iterations; the
    smallest is taken as the larger of the Gershgorin lower bound and
    ``lmax / 30`` — the standard smoother-style heuristic, which keeps the
    Chebyshev interval well away from zero even for operators whose true
    smallest eigenvalue is tiny (targeting the whole spectrum of a Laplacian
    would make the polynomial useless).  Callers with better information
    should pass explicit bounds.
    """
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(matrix.n_rows)
    v /= np.linalg.norm(v)
    lmax = 1.0
    for _ in range(power_iterations):
        w = matrix.matvec(v)
        lmax = float(np.linalg.norm(w))
        if lmax == 0.0:
            raise ValueError("matrix appears to be zero")
        v = w / lmax
    # Gershgorin lower bound: min_i (a_ii - sum_{j != i} |a_ij|), clamped.
    rows = matrix.row_index_of_nonzeros()
    cols = matrix.indices.astype(np.int64)
    absval = np.abs(matrix.data.astype(np.float64))
    diag = np.zeros(matrix.n_rows)
    diag[rows[rows == cols]] = matrix.data[rows == cols].astype(np.float64)
    off = np.bincount(rows[rows != cols], weights=absval[rows != cols], minlength=matrix.n_rows)
    gersh = float(np.min(diag - off))
    lmin = max(gersh, lmax / 30.0)
    return lmin, lmax * 1.05


class ChebyshevPreconditioner(Preconditioner):
    """Chebyshev polynomial preconditioner of a given degree.

    Parameters
    ----------
    matrix:
        (Nearly) SPD system matrix.
    degree:
        Polynomial degree (number of SpMVs per application).
    precision:
        Precision of the stored matrix copy and the application arithmetic.
    bounds:
        Optional ``(lmin, lmax)`` spectrum bounds; estimated if omitted.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        degree: int = 10,
        precision="double",
        *,
        bounds: Optional[Tuple[float, float]] = None,
    ) -> None:
        super().__init__(precision=precision, name=f"chebyshev[{degree}]")
        if degree < 1:
            raise ValueError("degree must be at least 1")
        start = time.perf_counter()
        self.degree = int(degree)
        self._matrix = self._matrix_in_precision(matrix, self.precision)
        if bounds is None:
            bounds = estimate_spectrum_bounds(matrix)
        lmin, lmax = bounds
        if not (0 < lmin < lmax):
            raise ValueError("Chebyshev bounds must satisfy 0 < lmin < lmax")
        self.lmin = float(lmin)
        self.lmax = float(lmax)
        self._theta = (self.lmax + self.lmin) / 2.0
        self._delta = (self.lmax - self.lmin) / 2.0
        # Owned scratch for the three-term recurrence (residual, search
        # direction, SpMV output) so apply(v, out=buf) allocates nothing.
        n = self._matrix.n_rows
        dtype = self.precision.dtype
        self._r = np.empty(n, dtype=dtype)
        self._d = np.empty(n, dtype=dtype)
        self._w = np.empty(n, dtype=dtype)
        self._setup_seconds = time.perf_counter() - start

    def spmvs_per_apply(self) -> int:
        return self.degree

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """Chebyshev semi-iteration applied to the zero initial guess.

        Runs the classical three-term Chebyshev recurrence (Saad, "Iterative
        Methods for Sparse Linear Systems", §12.3) for ``degree`` steps on
        ``A x = v`` starting from ``x_0 = 0``; the result is a fixed
        polynomial in ``A`` applied to ``v``, so the operator is linear and
        constant across applications (a requirement for use as a
        non-flexible right preconditioner).
        """
        vector = self._check_precision(vector)
        A = self._matrix
        dtype = vector.dtype
        theta, delta = self._theta, self._delta
        if out is None:
            x = np.zeros_like(vector)
        else:
            out[:] = 0
            x = out
        r = kernels.copy(vector, out=self._r)  # residual of the zero initial guess
        sigma1 = theta / delta
        rho = 1.0 / sigma1
        d = np.multiply(r, dtype.type(1.0 / theta), out=self._d)
        for _ in range(self.degree):
            kernels.axpy(1.0, d, x)
            w = kernels.spmv(A, d, out=self._w)
            kernels.axpy(-1.0, w, r)
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            kernels.scal(rho_new * rho, d)
            kernels.axpy(2.0 * rho_new / delta, r, d)
            rho = rho_new
        return x
