"""GMRES-polynomial preconditioner (Loe/Thornquist/Boman [16]).

The preconditioner is ``M = p(A)`` where ``p`` is the degree-``d`` GMRES
polynomial: the polynomial that minimises ``|| (I - A p(A)) v ||`` over the
Krylov space built from a seed vector ``v``.  Its residual polynomial
``phi(z) = 1 - z p(z)`` has the *harmonic Ritz values* of a ``d``-step
Arnoldi process as its roots, so the preconditioner can be applied in
product form

.. math:: \\phi(z) = \\prod_{i=1}^{d} (1 - z/\\theta_i),

using one SpMV per root (complex-conjugate root pairs are combined into a
quadratic factor so the application stays in real arithmetic).  Roots are
applied in modified-Leja order for numerical stability.

This is the preconditioner of Sections V-C and V-F of the paper: the SpMVs
of the application dominate its cost (and land in the "SpMV" bucket of the
timing figures), which is exactly why it pairs so well with the large fp32
SpMV speedup.  Section V-F's caveat also lives here: applying a *high
degree* polynomial in fp32 accumulates enough rounding error that the
implicit and explicit GMRES residuals diverge ("loss of accuracy").

Construction cost is excluded from solve times (as in the paper) and is
performed with unmetered NumPy operations; it is reported separately via
``setup_seconds``.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..linalg import kernels
from ..sparse.csr import CsrMatrix
from .base import Preconditioner

__all__ = ["GmresPolynomialPreconditioner", "harmonic_ritz_values", "leja_order"]


def _arnoldi(matrix: CsrMatrix, seed: np.ndarray, degree: int):
    """Plain (unmetered) Arnoldi with CGS2; returns (H, actual_degree).

    The Arnoldi vectors are kept in the matrix's own precision; the small
    Hessenberg matrix is accumulated in float64 for a reliable eigenvalue
    solve (the LAPACK call a production code would make is float64-backed
    either way for such a tiny matrix).
    """
    n = matrix.n_rows
    dtype = matrix.dtype
    V = np.zeros((n, degree + 1), dtype=dtype, order="F")
    H = np.zeros((degree + 1, degree), dtype=np.float64)
    v0 = seed.astype(dtype)
    beta = float(np.linalg.norm(v0))
    if beta == 0.0:
        raise ValueError("polynomial preconditioner seed vector is zero")
    V[:, 0] = v0 / dtype.type(beta)
    actual = degree
    for j in range(degree):
        w = matrix.matvec(V[:, j])
        # CGS2
        h1 = V[:, : j + 1].T @ w
        w = w - V[:, : j + 1] @ h1
        h2 = V[:, : j + 1].T @ w
        w = w - V[:, : j + 1] @ h2
        H[: j + 1, j] = (h1 + h2).astype(np.float64)
        h_next = float(np.linalg.norm(w))
        H[j + 1, j] = h_next
        if h_next <= 1e-14 * max(1.0, abs(H[: j + 1, j]).max()):
            actual = j + 1
            break
        V[:, j + 1] = w / dtype.type(h_next)
    return H[: actual + 1, : actual], actual


def harmonic_ritz_values(H: np.ndarray) -> np.ndarray:
    """Harmonic Ritz values from an Arnoldi Hessenberg matrix.

    ``H`` has shape ``(d+1, d)``.  The harmonic Ritz values are the
    eigenvalues of ``H_d + h_{d+1,d}^2 H_d^{-T} e_d e_d^T`` where ``H_d`` is
    the leading ``d × d`` block; they are the roots of the GMRES residual
    polynomial of the corresponding Krylov space.
    """
    d = H.shape[1]
    if H.shape[0] != d + 1:
        raise ValueError("H must have shape (d+1, d)")
    Hd = H[:d, :d]
    h2 = H[d, d - 1] ** 2
    e_d = np.zeros(d)
    e_d[-1] = 1.0
    f = np.linalg.solve(Hd.T, e_d)
    F = Hd + h2 * np.outer(f, e_d)
    return np.linalg.eigvals(F)


def leja_order(roots: np.ndarray) -> np.ndarray:
    """Order roots by the (modified) Leja ordering, keeping conjugate pairs adjacent.

    The first root is the one of largest magnitude; each subsequent root
    maximises the product of distances to the roots already placed (computed
    in log space to avoid overflow).  Whenever a genuinely complex root is
    placed, its conjugate is placed immediately after so the product-form
    application can combine them into a real quadratic factor.
    """
    roots = np.asarray(roots, dtype=np.complex128)
    d = roots.size
    if d == 0:
        return roots
    remaining = list(range(d))
    ordered: list[int] = []

    def place(idx: int) -> None:
        ordered.append(idx)
        remaining.remove(idx)
        root = roots[idx]
        if abs(root.imag) > 1e-12 * max(1.0, abs(root.real)):
            # Find and place the conjugate partner.
            best, best_dist = None, np.inf
            for j in remaining:
                dist = abs(roots[j] - np.conj(root))
                if dist < best_dist:
                    best, best_dist = j, dist
            if best is not None:
                ordered.append(best)
                remaining.remove(best)

    start = int(np.argmax(np.abs(roots)))
    place(start)
    while remaining:
        placed_vals = roots[ordered]
        scores = []
        for j in remaining:
            with np.errstate(divide="ignore"):
                score = np.sum(np.log(np.abs(roots[j] - placed_vals) + 1e-300))
            scores.append(score)
        place(remaining[int(np.argmax(scores))])
    return roots[np.array(ordered, dtype=np.int64)]


class GmresPolynomialPreconditioner(Preconditioner):
    """``M = p(A)`` with the degree-``d`` GMRES polynomial.

    Parameters
    ----------
    matrix:
        System matrix (converted internally to the preconditioner precision).
    degree:
        Polynomial degree ``d`` (the paper sweeps 10–70; 25 and 40 are the
        headline settings).
    precision:
        Precision in which the polynomial is applied (and in which the copy
        of ``A`` used by its SpMVs is stored).
    seed:
        Seed vector for the Arnoldi run.  Defaults to a deterministic random
        vector: a random seed excites *every* eigencomponent, so the
        harmonic Ritz values sample the whole spectrum.  (Seeding with the
        structured all-ones right-hand side can leave entire symmetry
        classes of eigenvectors unseen on the model problems, producing a
        polynomial that is nearly singular on them.)
    apply_method:
        ``"roots"`` (product form over Leja-ordered harmonic Ritz values —
        the stable choice used by the paper's implementation) or ``"power"``
        (naive Horner on the monomial coefficients, provided for the
        stability ablation).
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        degree: int = 25,
        precision="double",
        *,
        seed: Optional[np.ndarray] = None,
        apply_method: str = "roots",
    ) -> None:
        super().__init__(precision=precision, name=f"gmres_poly[{degree}]")
        if degree < 1:
            raise ValueError("polynomial degree must be at least 1")
        if apply_method not in ("roots", "power"):
            raise ValueError("apply_method must be 'roots' or 'power'")
        start = time.perf_counter()
        self.requested_degree = int(degree)
        self.apply_method = apply_method
        self._matrix = self._matrix_in_precision(matrix, self.precision)
        if seed is None:
            rng = np.random.default_rng(16)  # reference [16]: the GMRES-polynomial paper
            seed = rng.standard_normal(matrix.n_rows)
        H, actual = _arnoldi(self._matrix, np.asarray(seed, dtype=np.float64), degree)
        self.degree = actual
        theta = harmonic_ritz_values(H)
        # Guard against (near-)zero roots, which would blow up 1/theta.
        magnitude_floor = 1e-12 * float(np.max(np.abs(theta)))
        theta = theta[np.abs(theta) > magnitude_floor]
        if theta.size == 0:
            raise ValueError("all harmonic Ritz values vanished; cannot build polynomial")
        self.degree = theta.size
        self.roots = leja_order(theta)
        if apply_method == "power":
            self._coefficients = self._power_coefficients(self.roots)
        # Owned scratch for the product-form/Horner recurrences: the running
        # product, one SpMV output and one second-order SpMV output, so a
        # steady-state apply(v, out=buf) allocates nothing.
        n = self._matrix.n_rows
        dtype = self.precision.dtype
        self._prod = np.empty(n, dtype=dtype)
        self._w = np.empty(n, dtype=dtype)
        self._t = np.empty(n, dtype=dtype)
        # Per-block-width scratch of the batched application (allocated on
        # first use per width, so block solvers stay allocation-free).
        self._block_bufs: dict = {}
        self._setup_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------ #
    @staticmethod
    def _power_coefficients(roots: np.ndarray) -> np.ndarray:
        """Monomial coefficients ``c_k`` of ``p(z) = sum c_k z^k``.

        Expand ``phi(z) = prod (1 - z/theta_i)`` and use
        ``p(z) = (1 - phi(z)) / z``.
        """
        phi = np.array([1.0 + 0.0j])
        for theta in roots:
            phi = np.convolve(phi, np.array([1.0, -1.0 / theta]))
        # phi[k] is the coefficient of z^k; p(z) = (1 - phi(z))/z.
        p = -phi[1:]
        return np.real(p)

    # ------------------------------------------------------------------ #
    def spmvs_per_apply(self) -> int:
        """Number of SpMVs one application performs (≈ the polynomial degree)."""
        if self.apply_method == "power":
            return int(self.degree)
        count = 0
        i = 0
        roots = self.roots
        d = roots.size
        while i < d:
            if abs(roots[i].imag) <= 1e-12 * max(1.0, abs(roots[i].real)):
                if i < d - 1:
                    count += 1
                i += 1
            else:
                count += 1
                if i < d - 2:
                    count += 1
                i += 2
        return count

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        vector = self._check_precision(vector)
        if self.apply_method == "power":
            return self._apply_power(vector, out=out)
        return self._apply_roots(vector, out=out)

    def apply_block(
        self, block: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Batched application ``p(A) X``: one SpMM per polynomial factor.

        The recurrences of the product-form/Horner application are plain
        SpMV + axpy sequences, so the block version simply runs them on
        ``(n, k)`` blocks with the batched ``spmm`` kernel — the matrix is
        read once per factor for all ``k`` columns, which is exactly the
        amortization the paper's bandwidth argument predicts for the
        SpMV-dominated polynomial preconditioner.
        """
        block = self._check_precision(block)
        if block.ndim != 2:
            raise ValueError("apply_block expects a 2-D block of column vectors")
        k = block.shape[1]
        if out is None:
            out = np.empty(block.shape, dtype=self.precision.dtype, order="F")
        prod, w, t, work = self._block_scratch(k)
        if self.apply_method == "power":
            return self._apply_power_block(block, out, w, t, work)
        return self._apply_roots_block(block, out, prod, w, t, work)

    def _block_scratch(self, k: int):
        bufs = self._block_bufs.get(k)
        if bufs is None:
            n = self._matrix.n_rows
            dtype = self.precision.dtype
            bufs = self._block_bufs[k] = tuple(
                np.empty((n, k), dtype=dtype, order="F") for _ in range(4)
            )
        return bufs

    # -- product form over Leja-ordered roots --------------------------- #
    def _apply_roots(
        self, vector: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        A = self._matrix
        prod = kernels.copy(vector, out=self._prod)
        if out is None:
            y = np.zeros_like(vector)
        else:
            out[:] = 0
            y = out
        roots = self.roots
        d = roots.size
        i = 0
        while i < d:
            theta = roots[i]
            is_real = abs(theta.imag) <= 1e-12 * max(1.0, abs(theta.real))
            last_real = is_real and i == d - 1
            last_pair = (not is_real) and i >= d - 2
            if is_real:
                inv = 1.0 / theta.real
                kernels.axpy(inv, prod, y)
                if not last_real:
                    w = kernels.spmv(A, prod, out=self._w)
                    kernels.axpy(-inv, w, prod)
                i += 1
            else:
                a = theta.real
                m2 = theta.real * theta.real + theta.imag * theta.imag
                w = kernels.spmv(A, prod, out=self._w)
                kernels.axpy(2.0 * a / m2, prod, y)
                kernels.axpy(-1.0 / m2, w, y)
                if not last_pair:
                    t = kernels.spmv(A, w, out=self._t)
                    kernels.axpy(-2.0 * a / m2, w, prod)
                    kernels.axpy(1.0 / m2, t, prod)
                i += 2
        return y

    def _apply_roots_block(
        self,
        block: np.ndarray,
        out: np.ndarray,
        prod: np.ndarray,
        w_buf: np.ndarray,
        t_buf: np.ndarray,
        work: np.ndarray,
    ) -> np.ndarray:
        """Block product-form application (same recurrence as `_apply_roots`)."""
        A = self._matrix
        prod = kernels.copy(block, out=prod)
        out[:] = 0
        y = out
        roots = self.roots
        d = roots.size
        i = 0
        while i < d:
            theta = roots[i]
            is_real = abs(theta.imag) <= 1e-12 * max(1.0, abs(theta.real))
            last_real = is_real and i == d - 1
            last_pair = (not is_real) and i >= d - 2
            if is_real:
                inv = 1.0 / theta.real
                kernels.axpy(inv, prod, y, work=work)
                if not last_real:
                    w = kernels.spmm(A, prod, out=w_buf)
                    kernels.axpy(-inv, w, prod, work=work)
                i += 1
            else:
                a = theta.real
                m2 = theta.real * theta.real + theta.imag * theta.imag
                w = kernels.spmm(A, prod, out=w_buf)
                kernels.axpy(2.0 * a / m2, prod, y, work=work)
                kernels.axpy(-1.0 / m2, w, y, work=work)
                if not last_pair:
                    t = kernels.spmm(A, w, out=t_buf)
                    kernels.axpy(-2.0 * a / m2, w, prod, work=work)
                    kernels.axpy(1.0 / m2, t, prod, work=work)
                i += 2
        return y

    def _apply_power_block(
        self,
        block: np.ndarray,
        out: np.ndarray,
        w_buf: np.ndarray,
        t_buf: np.ndarray,
        work: np.ndarray,
    ) -> np.ndarray:
        """Block Horner application (same recurrence as `_apply_power`)."""
        A = self._matrix
        coeffs = self._coefficients
        y = w_buf
        y[:] = 0
        kernels.axpy(float(coeffs[-1]), block, y, work=work)
        for c in coeffs[-2::-1]:
            y = kernels.spmm(A, y, out=t_buf if y is w_buf else w_buf)
            kernels.axpy(float(c), block, y, work=work)
        out[:] = y
        return out

    # -- naive Horner on monomial coefficients (ablation) ---------------- #
    def _apply_power(
        self, vector: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        A = self._matrix
        coeffs = self._coefficients
        # Horner: p(A) v = c_0 v + A (c_1 v + A (c_2 v + ...)), ping-ponging
        # between the two owned scratch vectors (spmv forbids out aliasing x).
        y = self._w
        y[:] = 0
        kernels.axpy(float(coeffs[-1]), vector, y)
        for c in coeffs[-2::-1]:
            y = kernels.spmv(A, y, out=self._t if y is self._w else self._w)
            kernels.axpy(float(c), vector, y)
        if out is None:
            return y.copy()
        out[:] = y
        return out

    @property
    def matrix(self) -> CsrMatrix:
        """The copy of ``A`` (in the preconditioner precision) used by the SpMVs."""
        return self._matrix
