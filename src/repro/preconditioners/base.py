"""Preconditioner interface.

All preconditioners are *right* preconditioners: the solver iterates on
``A M z = b`` and recovers ``x = M z``, so the (unpreconditioned) residuals
of the preconditioned iteration match those of the original problem in
exact arithmetic — the property the paper relies on to compare convergence
curves across preconditioning choices.
"""

from __future__ import annotations

import abc

import numpy as np

from ..precision import Precision, as_precision
from ..sparse.csr import CsrMatrix

__all__ = ["Preconditioner", "IdentityPreconditioner"]


class Preconditioner(abc.ABC):
    """Base class: an operator ``M ≈ A^{-1}`` applied to vectors.

    Subclasses must set :attr:`precision` (the precision in which the
    operator was *computed* and is *applied*) and implement :meth:`apply`.
    ``apply`` requires its input to already be in that precision — the
    solvers, or :class:`~repro.preconditioners.mixed.PrecisionWrappedPreconditioner`,
    are responsible for casting (and paying for it).
    """

    def __init__(self, precision="double", name: str = "preconditioner") -> None:
        self.precision: Precision = as_precision(precision)
        self.name = name

    @abc.abstractmethod
    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        """Return ``M v``.  ``vector`` must be in :attr:`precision`.

        ``out``, when given, is a caller-owned length-``n`` buffer in the
        preconditioner precision; the application is written into it and
        ``out`` is returned.  ``out`` must not alias ``vector``.
        Implementations own whatever internal scratch their recurrences
        need, so a steady-state ``apply(v, out=buf)`` allocates nothing.
        """

    def apply_block(
        self, block: np.ndarray, out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Apply ``M`` to every column of ``block`` (n × k); returns the block.

        The batched entry point of the block solvers.  The default applies
        column by column (correct for every preconditioner); subclasses
        whose recurrences are expressible on whole blocks (e.g. the GMRES
        polynomial, whose application is a sequence of SpMVs) override it
        with batched ``spmm`` kernels so the matrix traversal is amortized
        across the block.  ``out`` must not alias ``block``.
        """
        block = np.asarray(block)
        if block.ndim != 2:
            raise ValueError("apply_block expects a 2-D block of column vectors")
        if out is None:
            out = np.empty(block.shape, dtype=self.precision.dtype, order="F")
        for c in range(block.shape[1]):
            self.apply(block[:, c], out=out[:, c])
        return out

    # -- optional hooks -------------------------------------------------- #
    @property
    def is_identity(self) -> bool:
        return False

    def spmvs_per_apply(self) -> int:
        """Number of SpMV calls one application performs (0 if none)."""
        return 0

    def setup_seconds(self) -> float:
        """Wall-clock seconds spent constructing the preconditioner.

        The paper excludes preconditioner construction from solve times but
        reports it separately ("0.5 seconds or less"), so it is tracked.
        """
        return getattr(self, "_setup_seconds", 0.0)

    def _check_precision(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector)
        if vector.dtype != self.precision.dtype:
            raise TypeError(
                f"{self.name}: expected a {self.precision.name}-precision vector, "
                f"got dtype {vector.dtype.name}; wrap the preconditioner with "
                "PrecisionWrappedPreconditioner to use it from another precision"
            )
        return vector

    @staticmethod
    def _matrix_in_precision(matrix: CsrMatrix, precision: Precision) -> CsrMatrix:
        """The system matrix converted to the preconditioner precision."""
        return matrix.astype(precision)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} precision={self.precision.name}>"


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (``M = I``); lets solvers avoid special-casing."""

    def __init__(self, precision="double") -> None:
        super().__init__(precision=precision, name="identity")

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        vector = self._check_precision(vector)
        if out is None:
            return vector
        out[:] = vector
        return out

    @property
    def is_identity(self) -> bool:
        return True
