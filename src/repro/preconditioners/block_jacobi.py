"""Block-Jacobi preconditioner.

The ``J k`` entries of Table III: the matrix rows are grouped into
contiguous blocks of size ``k``; the diagonal blocks are extracted, inverted
(dense LU at setup), and one application is a batched small dense solve —
embarrassingly parallel across blocks, hence GPU friendly.

Table III applies a reverse Cuthill–McKee reordering *before* forming the
blocks so that the strong couplings fall inside them; that reordering is
the caller's responsibility (see :func:`repro.sparse.ordering.reverse_cuthill_mckee`)
because the permuted system — not the preconditioner — is what the solver
iterates on.
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import kernels
from ..sparse.csr import CsrMatrix
from ..sparse.ops import extract_block_diagonal
from .base import Preconditioner

__all__ = ["BlockJacobiPreconditioner"]


class BlockJacobiPreconditioner(Preconditioner):
    """``M = diag(A_11^{-1}, A_22^{-1}, ...)`` with contiguous blocks.

    Parameters
    ----------
    matrix:
        Square system matrix.
    block_size:
        Number of rows per block (the trailing block may be smaller and is
        padded with identity rows).  ``block_size=1`` degenerates to point
        Jacobi (but see :class:`~repro.preconditioners.jacobi.JacobiPreconditioner`
        for the cheaper dedicated implementation).
    precision:
        Precision in which the block inverses are computed, stored and
        applied.  The fp32 variant is what GMRES-IR uses in Table III.
    regularization:
        Value added to the diagonal of numerically singular blocks before
        inversion (tiny shift; 0 disables).
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        block_size: int = 1,
        precision="double",
        *,
        regularization: float = 0.0,
    ) -> None:
        super().__init__(precision=precision, name=f"block_jacobi[{block_size}]")
        if not matrix.is_square:
            raise ValueError("block Jacobi requires a square matrix")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        start = time.perf_counter()
        self.block_size = int(block_size)
        self.n = matrix.n_rows
        blocks = extract_block_diagonal(
            matrix.data.astype(np.float64),
            matrix.indices,
            matrix.indptr,
            self.n,
            self.block_size,
        )
        if regularization:
            k = blocks.shape[1]
            blocks[:, np.arange(k), np.arange(k)] += regularization
        # Invert every block at setup.  Blocks are small (k <= a few hundred),
        # so explicit inverses are fine and make the apply a single batched
        # matmul; a singular block is reported with its index.
        try:
            inv = np.linalg.inv(blocks)
        except np.linalg.LinAlgError as exc:
            dets = np.abs(np.linalg.det(blocks))
            bad = int(np.argmin(dets))
            raise ValueError(
                f"block {bad} of the block-Jacobi preconditioner is singular; "
                "consider a reordering, a different block size or regularization"
            ) from exc
        self._inv_blocks = inv.astype(self.precision.dtype)
        self._padded = self._inv_blocks.shape[0] * self.block_size
        if self._padded != self.n:
            # Owned zero-padded input/output scratch for the ragged trailing
            # block, so apply() stays allocation-free.
            self._pad_in = np.zeros(self._padded, dtype=self.precision.dtype)
            self._pad_out = np.empty(self._padded, dtype=self.precision.dtype)
        else:
            self._pad_in = self._pad_out = None
        self._setup_seconds = time.perf_counter() - start

    def apply(self, vector: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
        vector = self._check_precision(vector)
        if vector.shape[0] != self.n:
            raise ValueError("vector length does not match the matrix dimension")
        if self._padded != self.n:
            self._pad_in[: self.n] = vector
            result = kernels.block_diag_solve(
                self._inv_blocks, self._pad_in, out=self._pad_out
            )
            if out is None:
                return result[: self.n].copy()
            out[:] = result[: self.n]
            return out
        return kernels.block_diag_solve(self._inv_blocks, vector, out=out)

    @property
    def n_blocks(self) -> int:
        return self._inv_blocks.shape[0]

    @property
    def inverse_blocks(self) -> np.ndarray:
        """The stored block inverses, shape ``(n_blocks, k, k)``."""
        return self._inv_blocks
