"""Floating-point precision descriptors and casting utilities.

The paper studies mixing IEEE half (fp16), single (fp32) and double (fp64)
precision inside GMRES.  This module provides a small registry of
:class:`Precision` descriptors that the rest of the library uses instead of
raw NumPy dtypes, so that

* kernels can report *which* precision they ran in (the kernel-breakdown
  figures in the paper are split by precision),
* the performance model knows the byte width of every operand, and
* casting between precisions is explicit and meterable (the paper includes
  the residual-vector cast time in GMRES-IR solve times, but excludes the
  one-time matrix copy; we need to account for both separately).

Only real-valued precisions are supported, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = [
    "Precision",
    "HALF",
    "SINGLE",
    "DOUBLE",
    "PRECISIONS",
    "as_precision",
    "promote",
    "unit_roundoff",
]


@dataclass(frozen=True)
class Precision:
    """Descriptor for one IEEE-754 floating-point precision.

    Attributes
    ----------
    name:
        Canonical short name (``"half"``, ``"single"``, ``"double"``).
    dtype:
        The corresponding NumPy dtype.
    bytes:
        Storage size of one scalar in bytes (2, 4 or 8).
    epsilon:
        Machine epsilon (gap between 1.0 and the next representable number).
    digits:
        Approximate number of significant decimal digits.
    """

    name: str
    dtype: np.dtype
    bytes: int
    epsilon: float
    digits: int

    # ------------------------------------------------------------------ #
    # convenience                                                        #
    # ------------------------------------------------------------------ #
    @property
    def unit_roundoff(self) -> float:
        """Unit roundoff ``u = eps / 2`` for round-to-nearest arithmetic."""
        return self.epsilon / 2.0

    @property
    def numpy_name(self) -> str:
        """NumPy's name for the dtype (``"float32"`` etc.)."""
        return np.dtype(self.dtype).name

    def astype(self, array: np.ndarray) -> np.ndarray:
        """Return ``array`` converted to this precision (no copy if already)."""
        return np.asarray(array, dtype=self.dtype)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __lt__(self, other: "Precision") -> bool:
        return self.bytes < other.bytes

    def __le__(self, other: "Precision") -> bool:
        return self.bytes <= other.bytes

    def __gt__(self, other: "Precision") -> bool:
        return self.bytes > other.bytes

    def __ge__(self, other: "Precision") -> bool:
        return self.bytes >= other.bytes


def _make(name: str, dtype: type) -> Precision:
    info = np.finfo(dtype)
    return Precision(
        name=name,
        dtype=np.dtype(dtype),
        bytes=np.dtype(dtype).itemsize,
        epsilon=float(info.eps),
        digits=int(info.precision),
    )


#: IEEE half precision (fp16) — the paper's "future work" third precision.
HALF = _make("half", np.float16)
#: IEEE single precision (fp32) — the paper's low working precision.
SINGLE = _make("single", np.float32)
#: IEEE double precision (fp64) — the paper's high/accumulation precision.
DOUBLE = _make("double", np.float64)

#: Registry of all supported precisions keyed by every accepted alias.
PRECISIONS = {
    "half": HALF,
    "fp16": HALF,
    "float16": HALF,
    "single": SINGLE,
    "float": SINGLE,
    "fp32": SINGLE,
    "float32": SINGLE,
    "double": DOUBLE,
    "fp64": DOUBLE,
    "float64": DOUBLE,
}

PrecisionLike = Union[str, Precision, np.dtype, type]


def as_precision(value: PrecisionLike) -> Precision:
    """Coerce a string / dtype / ``Precision`` into a :class:`Precision`.

    Parameters
    ----------
    value:
        ``"single"``, ``"fp64"``, ``np.float32``, ``np.dtype("float64")`` or
        an existing :class:`Precision`.

    Raises
    ------
    ValueError
        If the value does not name a supported real floating precision.
    """
    if isinstance(value, Precision):
        return value
    if isinstance(value, str):
        key = value.lower()
        if key in PRECISIONS:
            return PRECISIONS[key]
        raise ValueError(f"unknown precision name: {value!r}")
    try:
        dtype = np.dtype(value)
    except TypeError as exc:  # pragma: no cover - defensive
        raise ValueError(f"cannot interpret {value!r} as a precision") from exc
    if dtype.name in PRECISIONS:
        return PRECISIONS[dtype.name]
    raise ValueError(
        f"unsupported dtype {dtype!r}; supported: float16, float32, float64"
    )


def promote(a: PrecisionLike, b: PrecisionLike) -> Precision:
    """Return the wider of two precisions (the result type of mixed ops)."""
    pa, pb = as_precision(a), as_precision(b)
    return pa if pa.bytes >= pb.bytes else pb


def unit_roundoff(value: PrecisionLike) -> float:
    """Unit roundoff of the given precision (``eps/2``)."""
    return as_precision(value).unit_roundoff
