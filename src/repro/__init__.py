"""repro — multiprecision GMRES strategies on a modelled GPU.

A from-scratch Python reproduction of

    J. Loe, C. Glusa, I. Yamazaki, E. Boman, S. Rajamanickam,
    "Experimental Evaluation of Multiprecision Strategies for GMRES on
    GPUs", IPDPS Workshops 2021 (arXiv:2105.07544).

The package provides:

* restarted GMRES(m) and its multiprecision variants GMRES-IR and GMRES-FD
  (plus CG and a half/single/double IR extension),
* GPU-friendly preconditioners: GMRES-polynomial, block Jacobi, point
  Jacobi (and Chebyshev / Neumann ablation alternatives),
* the finite-difference PDE problems and SuiteSparse-proxy matrices of the
  paper's evaluation,
* an instrumented linear-algebra layer whose kernels are metered through an
  analytic V100 performance model (the paper's own Section V-D byte-traffic
  model), so solver runs report a modelled GPU kernel-time breakdown, and
* experiment drivers that regenerate every table and figure of the paper's
  evaluation section (see :mod:`repro.experiments` and ``benchmarks/``).

Quickstart::

    import repro

    A = repro.matrices.bentpipe2d(64)
    b = repro.ones_rhs(A)
    double = repro.gmres(A, b, precision="double", restart=50, tol=1e-8)
    mixed = repro.gmres_ir(A, b, restart=50, tol=1e-8)
    print(double.summary())
    print(mixed.summary())
    print("modelled speedup:", double.model_seconds / mixed.model_seconds)
"""

from __future__ import annotations

import numpy as np

from . import config, precision, perfmodel, backends, sparse, linalg, matrices, ortho
from . import preconditioners, solvers, analysis, experiments, obs, serve, testing
from .backends import KernelBackend, available_backends, get_backend, register_backend
from .config import ObsConfig, ReproConfig, get_config, set_config
from .precision import HALF, SINGLE, DOUBLE, Precision, as_precision
from .sparse import CsrMatrix
from .linalg import MultiVector, use_context, use_device, use_backend
from .perfmodel import KernelTimer, use_timer, DeviceSpec, get_device
from .solvers import (
    SolveResult,
    MultiSolveResult,
    SolverStatus,
    ConvergenceHistory,
    ResultLike,
    gmres,
    gmres_ir,
    gmres_fd,
    cg,
    gmres_ir_three_precision,
    block_gmres,
    block_gmres_ir,
    solve_many,
    SolveControl,
)
from .preconditioners import (
    JacobiPreconditioner,
    BlockJacobiPreconditioner,
    GmresPolynomialPreconditioner,
    make_preconditioner,
)
__version__ = "1.0.0"

__all__ = [
    "__version__",
    # submodules
    "config",
    "precision",
    "perfmodel",
    "backends",
    "sparse",
    "linalg",
    "matrices",
    "ortho",
    "preconditioners",
    "solvers",
    "analysis",
    "experiments",
    "obs",
    "serve",
    "testing",
    # configuration / precision
    "ReproConfig",
    "ObsConfig",
    "get_config",
    "set_config",
    # backends
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "use_backend",
    "Precision",
    "as_precision",
    "HALF",
    "SINGLE",
    "DOUBLE",
    # core types
    "CsrMatrix",
    "MultiVector",
    "KernelTimer",
    "use_timer",
    "use_context",
    "use_device",
    "DeviceSpec",
    "get_device",
    # solvers
    "SolveResult",
    "MultiSolveResult",
    "SolverStatus",
    "ConvergenceHistory",
    "ResultLike",
    "gmres",
    "gmres_ir",
    "gmres_fd",
    "cg",
    "gmres_ir_three_precision",
    "block_gmres",
    "block_gmres_ir",
    "solve_many",
    "SolveControl",
    # preconditioners
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "GmresPolynomialPreconditioner",
    "make_preconditioner",
    # serving facade (classes live in repro.serve)
    "session",
    "farm",
    # helpers
    "ones_rhs",
]


def session(matrix: CsrMatrix, **kwargs) -> "serve.OperatorSession":
    """Open a serving session for one operator (the serving facade).

    ``repro.session(A, **cfg)`` is :class:`repro.serve.OperatorSession`
    with the matrix first and everything else keyword-configured —
    register the operator once, then ``submit()`` (or ``await
    asubmit()``) many right-hand sides against its warmed plans and
    pooled workspaces::

        with repro.session(A, preconditioner=M, restart=15) as s:
            x = s.submit(b).result().x

    Pass ``obs=`` (a :class:`repro.obs.Observability` or a bare
    :class:`repro.obs.Tracer`) to trace requests and publish metrics; by
    default the session follows ``ReproConfig.obs``.  For many operators
    behind one service, see :func:`farm`.
    """
    return serve.OperatorSession(matrix, **kwargs)


def farm(**kwargs) -> "serve.SolverFarm":
    """Open a multi-operator solver farm (the multi-tenant facade).

    ``repro.farm(**cfg)`` is :class:`repro.serve.SolverFarm`: register
    operators by key (cheap; sessions warm on first traffic and live in
    an LRU cache under a memory budget), then submit right-hand sides
    per key through a shared, fairness-scheduled worker pool::

        with repro.farm(workers=2, max_sessions=4) as f:
            f.register("poisson", A, preconditioner=M)
            x = f.submit("poisson", b).result().x

    Knobs default from ``ReproConfig.serve``
    (:class:`repro.config.ServeConfig`); ``obs=`` works as in
    :func:`session` (see :mod:`repro.obs`).
    """
    return serve.SolverFarm(**kwargs)


#: Top-level serve re-exports predate the facade; they still resolve (via
#: PEP 562) but warn — the supported spellings are repro.session(...) /
#: repro.farm(...) and the curated repro.serve namespace.
_DEPRECATED_SERVE_EXPORTS = (
    "OperatorSession",
    "SolveScheduler",
    "ServeResult",
    "BatchingPolicy",
    "ServeStats",
    "ServeTelemetry",
)


def __getattr__(name: str):
    if name in _DEPRECATED_SERVE_EXPORTS:
        import warnings

        warnings.warn(
            f"repro.{name} is deprecated; use repro.serve.{name} "
            "(or the repro.session()/repro.farm() facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def ones_rhs(matrix: CsrMatrix, precision="double") -> np.ndarray:
    """The paper's right-hand side: a vector of all ones.

    Section V: "For each problem, we use a right-hand side vector b of all
    ones and a starting vector x0 of all zeros."
    """
    return np.ones(matrix.n_rows, dtype=as_precision(precision).dtype)
