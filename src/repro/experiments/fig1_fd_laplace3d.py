"""Figure 1 — GMRES-FD switch sweep on a 3D Laplacian vs. GMRES-IR.

Paper setup: 3D finite-difference Laplacian with 200 grid points per side
(8M unknowns), GMRES(50), tolerance 1e-10.  GMRES-FD is run switching from
fp32 to fp64 at every multiple of 50 iterations; the total iteration count
and solve time are plotted against the switch point, with the GMRES-IR
solve time drawn as the reference line.  Paper observations: the FD solve
time is minimised (41.2 s, 3567 iterations) when switching at 2200
iterations; GMRES(50)-IR achieves essentially the same time (41.0 s,
4100 iterations) with no tuning, and fp64-only GMRES needs 63.8 s.

Scaled setup: the same 7-point Laplacian at a reduced grid (default 24³)
with restart 10 (see :mod:`repro.experiments.common` for the restart
scaling rationale), switch points at multiples of the restart length.
"""

from __future__ import annotations

from typing import Optional

from ..matrices import laplace3d
from .common import ExperimentConfig, ExperimentReport
from .fd_sweep import run_fd_sweep

__all__ = ["run", "PAPER_REFERENCE"]

#: Laplace3D grid size and unknown count used by the paper for this figure.
PAPER_GRID = 200
PAPER_N = PAPER_GRID ** 3

PAPER_REFERENCE = {
    "problem": "Laplace3D, grid 200 (8.0e6 unknowns), GMRES(50), tol 1e-10",
    "fp64-only iterations / time": "4053 iters / 63.83 s",
    "best FD switch / iterations / time": "2200 / 3567 iters / 41.22 s",
    "GMRES-IR iterations / time": "4100 iters / 41.03 s",
    "conclusion": "GMRES-IR attains the minimum solve time without tuning a switch point",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
    restart: Optional[int] = None,
) -> ExperimentReport:
    """Run the Figure 1 sweep on the scaled Laplace3D problem."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(24, 16)
    # The Laplacian is well conditioned at scaled sizes; a shorter restart
    # keeps the solve in the paper's many-cycles regime (see common.py).
    m = restart if restart is not None else 10
    cfg = ExperimentConfig(restart=m, tol=cfg.tol, device_name=cfg.device_name, quick=cfg.quick)
    matrix = laplace3d(grid)
    return run_fd_sweep(
        matrix,
        PAPER_N,
        experiment="Figure 1",
        title="GMRES-FD float→double switch sweep on Laplace3D vs GMRES-IR",
        config=cfg,
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid} ({matrix.n_rows} unknowns) vs paper grid {PAPER_GRID}",
        ],
    )
