"""Experiment drivers reproducing every table and figure of the paper's evaluation.

Each module exposes ``run(config: ExperimentConfig | None = None, **overrides)``
returning an :class:`~repro.experiments.common.ExperimentReport`, plus a
``PAPER_REFERENCE`` dict with the numbers the paper reports.  The mapping to
the paper:

==============================  ===========================================
module                          reproduces
==============================  ===========================================
``fig1_fd_laplace3d``           Figure 1 (GMRES-FD switch sweep, Laplace3D)
``fig2_fd_uniflow2d``           Figure 2 (GMRES-FD switch sweep, UniFlow2D)
``fig3_convergence_bentpipe``   Figure 3 (convergence curves, BentPipe2D)
``fig4_table1_kernel_breakdown`` Figure 4 + Table I (kernel breakdown/speedups)
``fig5_kernel_speedups``        Figure 5 (kernel speedups across three PDEs)
``fig6_fig7_poly_prec``         Figures 6 + 7 (polynomial preconditioning)
``sec5d_spmv_model``            Section V-D (SpMV cache-reuse model)
``table2_restart_bentpipe``     Table II (restart sweep, BentPipe2D)
``fig8_restart_laplace3d``      Figure 8 (restart sweep, Laplace3D)
``sec5f_poly_degree``           Section V-F (fp32 preconditioner stability)
``table3_suitesparse``          Table III (SuiteSparse proxy suite)
==============================  ===========================================
"""

from .common import ExperimentConfig, ExperimentReport, scaled_device, solve_on_scaled_device
from . import (
    fd_sweep,
    fig1_fd_laplace3d,
    fig2_fd_uniflow2d,
    fig3_convergence_bentpipe,
    fig4_table1_kernel_breakdown,
    fig5_kernel_speedups,
    fig6_fig7_poly_prec,
    sec5d_spmv_model,
    table2_restart_bentpipe,
    fig8_restart_laplace3d,
    sec5f_poly_degree,
    table3_suitesparse,
)

#: All experiment modules keyed by the paper artefact they reproduce.
ALL_EXPERIMENTS = {
    "figure1": fig1_fd_laplace3d,
    "figure2": fig2_fd_uniflow2d,
    "figure3": fig3_convergence_bentpipe,
    "figure4_table1": fig4_table1_kernel_breakdown,
    "figure5": fig5_kernel_speedups,
    "figure6_7": fig6_fig7_poly_prec,
    "section5d": sec5d_spmv_model,
    "table2": table2_restart_bentpipe,
    "figure8": fig8_restart_laplace3d,
    "section5f": sec5f_poly_degree,
    "table3": table3_suitesparse,
}

__all__ = [
    "ExperimentConfig",
    "ExperimentReport",
    "scaled_device",
    "solve_on_scaled_device",
    "ALL_EXPERIMENTS",
    "fd_sweep",
    "fig1_fd_laplace3d",
    "fig2_fd_uniflow2d",
    "fig3_convergence_bentpipe",
    "fig4_table1_kernel_breakdown",
    "fig5_kernel_speedups",
    "fig6_fig7_poly_prec",
    "sec5d_spmv_model",
    "table2_restart_bentpipe",
    "fig8_restart_laplace3d",
    "sec5f_poly_degree",
    "table3_suitesparse",
]
