"""Figure 8 — restart-size sweep on Laplace3D, where large subspaces hurt GMRES-IR.

Paper setup: Laplace3D150 solved with GMRES double and GMRES-IR for restart
sizes 25–400, with the solve-time bars split by kernel.  Observations: for
restart sizes up to 200 GMRES-IR improves the solve time by 19–31%; for
300–400 the single-precision inner solver stalls inside the long cycle
(residuals flatten near 1e-7), the fp64 residual is refreshed too rarely,
and GMRES-IR needs two to three times as many iterations as GMRES double —
no speedup.  A restart of 300 also exhausts GPU memory for larger versions
of the problem, which is why GMRES-IR with a modest restart is the
practical choice.

The scaled sweep keeps the same shape by spanning restart sizes from "much
smaller than the iteration count" to "comparable to the full (unrestarted)
iteration count", where the stall appears.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import breakdown_from_result
from ..matrices import laplace3d
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE"]

PAPER_GRID = 150
PAPER_N = PAPER_GRID ** 3

PAPER_REFERENCE = {
    "restart <= 200": "GMRES-IR improves solve time by 19-31%",
    "restart 300": "GMRES double 433 iterations vs GMRES-IR 900 iterations (no speedup)",
    "restart 400": "GMRES-IR needs almost 3x the iterations of GMRES double",
    "memory": "restart 300 runs out of GPU memory for larger versions of the problem",
    "fastest": "GMRES-IR with restart 200 (paper), i.e. a moderate restart",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
    restart_sizes: Optional[Sequence[int]] = None,
) -> ExperimentReport:
    """Run the Figure 8 restart sweep on the scaled Laplace3D problem."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(24, 16)
    if restart_sizes is None:
        restart_sizes = cfg.pick((5, 10, 15, 25, 50, 100, 150), (10, 25, 100))
    matrix = laplace3d(grid)

    rows: List[dict] = []
    for m in restart_sizes:
        double = solve_on_scaled_device(
            gmres, matrix, PAPER_N, precision="double", restart=int(m), tol=cfg.tol
        )
        mixed = solve_on_scaled_device(
            gmres_ir, matrix, PAPER_N, restart=int(m), tol=cfg.tol
        )
        breakdown_d = breakdown_from_result(double)
        breakdown_i = breakdown_from_result(mixed)
        rows.append(
            {
                "restart": int(m),
                "double iters": double.iterations,
                "IR iters": mixed.iterations,
                "IR/double iteration ratio": mixed.iterations / double.iterations
                if double.iterations
                else float("nan"),
                "double time [model s]": double.model_seconds,
                "IR time [model s]": mixed.model_seconds,
                "speedup": double.model_seconds / mixed.model_seconds
                if mixed.model_seconds
                else float("nan"),
                "double orthog share": breakdown_d.orthogonalization_fraction(),
                "IR SpMV share": breakdown_i.fraction("SpMV"),
                "basis memory [MB]": double.details.get("basis_bytes", 0) / 1e6,
            }
        )

    return ExperimentReport(
        experiment="Figure 8",
        title="Restart-size sweep on Laplace3D: kernel breakdown and the large-subspace stall",
        rows=rows,
        columns=[
            "restart",
            "double iters",
            "IR iters",
            "IR/double iteration ratio",
            "double time [model s]",
            "IR time [model s]",
            "speedup",
            "double orthog share",
            "basis memory [MB]",
        ],
        parameters={
            "matrix": matrix.name,
            "n": matrix.n_rows,
            "tolerance": cfg.tol,
        },
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid} vs paper grid {PAPER_GRID}; the stall regime is "
            "reached when the restart approaches the unrestarted iteration count",
        ],
    )
