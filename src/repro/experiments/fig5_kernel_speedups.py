"""Figure 5 — per-kernel GMRES-double → GMRES-IR speedups across three PDEs.

Paper setup: the kernel speedups of Figure 4 repeated for three matrices —
BentPipe2D1500, Laplace3D150 and UniFlow2D2500.  Observations: the kernel
speedups are consistent across problems; the SpMV improves by 2.4–2.6× in
all three cases (the cache-reuse effect analysed in Section V-D), and total
solve times improve by 24–36%.

One report row per (matrix, kernel) pair, so the grouped-bar figure can be
rebuilt directly from the rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import speedup_table
from ..matrices import bentpipe2d, laplace3d, uniflow2d
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE"]

#: (name, builder, paper unknown count) for the three matrices of the figure.
FIGURE5_PROBLEMS = (
    ("BentPipe2D1500", bentpipe2d, 1500 ** 2),
    ("Laplace3D150", laplace3d, 150 ** 3),
    ("UniFlow2D2500", uniflow2d, 2500 ** 2),
)

PAPER_REFERENCE = {
    "SpMV speedup": "2.4-2.6x on all three matrices",
    "GEMV (Trans)": "about 1.2-1.3x",
    "GEMV (No Trans)": "about 1.5-1.6x",
    "total solve time improvement": "24-36%",
}

KERNEL_ROWS = (
    "GEMV (Trans)",
    "Norm",
    "GEMV (No Trans)",
    "Total Orthogonalization",
    "SpMV",
    "Total Time",
)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grids: Optional[Dict[str, int]] = None,
) -> ExperimentReport:
    """Run the Figure 5 kernel-speedup comparison across the three PDEs."""
    cfg = config or ExperimentConfig()
    grids = grids or {
        "BentPipe2D1500": cfg.pick(96, 64),
        "Laplace3D150": cfg.pick(24, 16),
        "UniFlow2D2500": cfg.pick(96, 64),
    }
    m = cfg.restart

    rows: List[dict] = []
    totals: Dict[str, float] = {}
    for name, builder, paper_n in FIGURE5_PROBLEMS:
        matrix = builder(grids[name])
        double = solve_on_scaled_device(
            gmres, matrix, paper_n, precision="double", restart=m, tol=cfg.tol
        )
        mixed = solve_on_scaled_device(
            gmres_ir, matrix, paper_n, restart=m, tol=cfg.tol
        )
        table = speedup_table(double, mixed)
        speedups = table.as_dict()
        totals[name] = speedups.get("Total Time", float("nan"))
        for kernel in KERNEL_ROWS:
            if kernel in speedups:
                rows.append(
                    {
                        "matrix": name,
                        "scaled n": matrix.n_rows,
                        "kernel": kernel,
                        "speedup": speedups[kernel],
                    }
                )

    return ExperimentReport(
        experiment="Figure 5",
        title="Per-kernel GMRES-double → GMRES-IR speedups across three PDE problems",
        rows=rows,
        columns=["matrix", "scaled n", "kernel", "speedup"],
        parameters={"restart": m, "grids": dict(grids), "total speedups": totals},
        paper_reference=PAPER_REFERENCE,
        notes=[
            "speedup compares the total time each solver spends in a kernel "
            "(not per-call time), as in the paper",
        ],
    )
