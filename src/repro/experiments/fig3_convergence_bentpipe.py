"""Figure 3 — convergence of fp32, fp64 and GMRES-IR on BentPipe2D.

Paper setup: BentPipe2D1500 (2.25M unknowns, strongly convection-dominated,
highly nonsymmetric), GMRES(50), tolerance 1e-10.  Observations: the fp32
solver stagnates at a relative residual of about 4.7e-6; the fp64 solver
needs 12,967 iterations; GMRES-IR needs 263 cycles (13,150 iterations) and
its convergence curve closely follows the fp64 curve.

The report contains one row per solver with iteration count, final
residual and the stagnation level, plus a down-sampled convergence series
for each solver (the actual curves of the figure).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..matrices import bentpipe2d
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE", "convergence_series"]

PAPER_GRID = 1500
PAPER_N = PAPER_GRID ** 2

PAPER_REFERENCE = {
    "problem": "BentPipe2D1500 (2.25e6 unknowns, nnz 11.2e6), GMRES(50), tol 1e-10",
    "fp32 stagnation level": "about 4.7e-6 relative residual",
    "fp64 iterations": 12967,
    "GMRES-IR iterations": "13150 (263 cycles of 50)",
    "conclusion": "the multiprecision solver's convergence follows the fp64 curve closely",
}


def convergence_series(result, max_points: int = 200) -> List[Dict[str, float]]:
    """Down-sample a solver's implicit-residual history for plotting/reports."""
    its = np.asarray(result.history.implicit_iterations, dtype=np.int64)
    norms = np.asarray(result.history.implicit_norms, dtype=np.float64)
    if its.size == 0:
        return []
    stride = max(1, its.size // max_points)
    return [
        {"iteration": int(i), "relative residual": float(r)}
        for i, r in zip(its[::stride], norms[::stride])
    ]


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
    max_restarts: int = 400,
) -> ExperimentReport:
    """Run the Figure 3 convergence comparison on the scaled BentPipe2D problem."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(96, 64)
    matrix = bentpipe2d(grid)
    m = cfg.restart

    single = solve_on_scaled_device(
        gmres, matrix, PAPER_N,
        precision="single", restart=m, tol=cfg.tol, max_restarts=max_restarts,
    )
    double = solve_on_scaled_device(
        gmres, matrix, PAPER_N,
        precision="double", restart=m, tol=cfg.tol, max_restarts=max_restarts,
    )
    mixed = solve_on_scaled_device(
        gmres_ir, matrix, PAPER_N,
        restart=m, tol=cfg.tol, max_restarts=max_restarts,
    )

    rows = []
    for label, result in (
        ("GMRES fp32", single),
        ("GMRES fp64", double),
        ("GMRES-IR", mixed),
    ):
        rows.append(
            {
                "solver": label,
                "status": result.status.value,
                "iterations": result.iterations,
                "final relative residual": result.relative_residual,
                "best true residual": result.history.best_explicit(),
                "solve time [model s]": result.model_seconds,
            }
        )

    report = ExperimentReport(
        experiment="Figure 3",
        title="Convergence of fp32 / fp64 / GMRES-IR on BentPipe2D",
        rows=rows,
        columns=[
            "solver",
            "status",
            "iterations",
            "final relative residual",
            "best true residual",
            "solve time [model s]",
        ],
        parameters={
            "matrix": matrix.name,
            "n": matrix.n_rows,
            "nnz": matrix.nnz,
            "restart": m,
            "tolerance": cfg.tol,
        },
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid} vs paper grid {PAPER_GRID}",
            "IR follows fp64: iteration counts within "
            f"{abs(mixed.iterations - double.iterations)} of each other; "
            f"fp32 stagnates near {single.relative_residual_fp64:.1e}",
        ],
    )
    # Attach the convergence curves for plotting / inspection.
    report.parameters["series"] = {
        "single": convergence_series(single),
        "double": convergence_series(double),
        "gmres_ir": convergence_series(mixed),
    }
    return report
