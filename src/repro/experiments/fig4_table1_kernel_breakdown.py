"""Figure 4 + Table I — kernel-time breakdown and per-kernel speedups on BentPipe2D.

Paper setup: BentPipe2D1500, GMRES(50) double vs GMRES(50)-IR, tolerance
1e-10.  Figure 4 shows each solver's total solve time split into
GEMV (Trans) / Norm / GEMV (No Trans) / SpMV / Other; Table I reports the
per-kernel speedups:

    GEMV (Trans) 1.28×, Norm 1.15×, GEMV (No Trans) 1.57×,
    Total Orthogonalization 1.38×, SpMV 2.48×, Total 1.32×.

The report's rows are the Table-I rows with both solvers' modelled seconds
and the measured speedup; the per-solver breakdown fractions (the Figure 4
bars) are attached under ``parameters["breakdown"]``.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import breakdown_from_result, speedup_table
from ..matrices import bentpipe2d
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE", "PAPER_TABLE_I"]

PAPER_GRID = 1500
PAPER_N = PAPER_GRID ** 2

#: Table I of the paper (seconds and speedups on the V100).
PAPER_TABLE_I = {
    "GEMV (Trans)": {"double": 20.20, "ir": 15.78, "speedup": 1.28},
    "Norm": {"double": 1.72, "ir": 1.49, "speedup": 1.15},
    "GEMV (No Trans)": {"double": 19.01, "ir": 12.10, "speedup": 1.57},
    "Total Orthogonalization": {"double": 41.85, "ir": 30.30, "speedup": 1.38},
    "SpMV": {"double": 7.33, "ir": 2.95, "speedup": 2.48},
    "Total Time": {"double": 50.26, "ir": 38.03, "speedup": 1.32},
}

PAPER_REFERENCE = {
    "problem": "BentPipe2D1500, GMRES(50) double vs GMRES(50)-IR",
    "per-kernel speedups": "GEMV(T) 1.28, Norm 1.15, GEMV(N) 1.57, Orthog 1.38, SpMV 2.48, Total 1.32",
    "orthogonalization share (double)": "83% of solve time at restart 50",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
) -> ExperimentReport:
    """Run the Figure 4 / Table I kernel-breakdown comparison."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(96, 64)
    matrix = bentpipe2d(grid)
    m = cfg.restart

    double = solve_on_scaled_device(
        gmres, matrix, PAPER_N, precision="double", restart=m, tol=cfg.tol
    )
    mixed = solve_on_scaled_device(
        gmres_ir, matrix, PAPER_N, restart=m, tol=cfg.tol
    )

    table = speedup_table(double, mixed, baseline_name="GMRES double", comparison_name="GMRES-IR")
    rows = []
    for r in table.rows:
        paper = PAPER_TABLE_I.get(r.label, {})
        rows.append(
            {
                "kernel": r.label,
                "double [model s]": r.baseline_seconds,
                "IR [model s]": r.comparison_seconds,
                "speedup": r.speedup,
                "paper speedup": paper.get("speedup"),
            }
        )

    base_breakdown = breakdown_from_result(double)
    ir_breakdown = breakdown_from_result(mixed)
    report = ExperimentReport(
        experiment="Figure 4 + Table I",
        title="Kernel-time breakdown and speedups, GMRES double vs GMRES-IR (BentPipe2D)",
        rows=rows,
        columns=["kernel", "double [model s]", "IR [model s]", "speedup", "paper speedup"],
        parameters={
            "matrix": matrix.name,
            "n": matrix.n_rows,
            "restart": m,
            "double iterations": double.iterations,
            "IR iterations": mixed.iterations,
            "orthogonalization share (double)": base_breakdown.orthogonalization_fraction(),
            "orthogonalization share (IR)": ir_breakdown.orthogonalization_fraction(),
            "breakdown": {
                "double": dict(base_breakdown.seconds_by_label),
                "ir": dict(ir_breakdown.seconds_by_label),
            },
        },
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid} vs paper grid {PAPER_GRID}; modelled V100 seconds",
        ],
    )
    return report
