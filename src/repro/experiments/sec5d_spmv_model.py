"""Section V-D — matrix structure, cache reuse and SpMV speedup.

The paper explains the ≈2.5× fp64→fp32 SpMV speedup with a byte-traffic
model: with 32-bit indices, no fp64 reuse of the right-hand-side vector and
perfect fp32 reuse, the traffic drops from ``20wn`` to ``(8w+4)n`` bytes,
i.e. a speedup of ``5w/(2w+1)`` (2.27× at w=5, 2.33× at w=7); the observed
speedups were slightly *higher*, attributed to L1 effects.

This experiment sweeps matrices with different nonzeros-per-row and
bandwidth and reports, for each:

* the closed-form ``5w/(2w+1)`` prediction,
* the cost model's prediction (reuse fractions from the L2 working-set
  model, including row-pointer/result traffic and the L1 efficiency
  asymmetry),
* the reuse fractions themselves,
* optionally the hit rates of the streaming LRU cache simulation, and
* the SpMV speedup actually measured (metered) in a GMRES-double vs
  GMRES-IR solve of the same matrix.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis import compare_spmv_models, speedup_table
from ..matrices import bentpipe2d, laplace2d, laplace3d, uniflow2d
from ..perfmodel.spmv_model import predicted_spmv_speedup
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, scaled_device, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE"]

PAPER_REFERENCE = {
    "model": "fp64 traffic 20wn bytes, fp32 traffic (8w+4)n bytes -> speedup 5w/(2w+1)",
    "w=5 (UniFlow2D / BentPipe2D)": "predicted 2.27x",
    "w=7 (Laplace3D)": "predicted 2.33x",
    "observed": "2.4-2.6x, slightly above the model (better L1 reuse in fp32)",
    "caveat": "large-bandwidth matrices lose spatial locality and should not expect 2.5x",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    run_cache_simulation: Optional[bool] = None,
    measure_solves: bool = True,
) -> ExperimentReport:
    """Run the Section V-D model-vs-measurement comparison."""
    cfg = config or ExperimentConfig()
    run_cache_simulation = (
        (not cfg.quick) if run_cache_simulation is None else run_cache_simulation
    )
    problems: Sequence[Tuple[str, object, int]] = (
        ("BentPipe2D", bentpipe2d(cfg.pick(96, 64)), 1500 ** 2),
        ("UniFlow2D", uniflow2d(cfg.pick(96, 64)), 2500 ** 2),
        ("Laplace3D", laplace3d(cfg.pick(24, 16)), 150 ** 3),
        ("Laplace2D", laplace2d(cfg.pick(96, 64)), 1500 ** 2),
    )

    rows: List[dict] = []
    for name, matrix, paper_n in problems:
        device = scaled_device(matrix.n_rows, paper_n, cfg.device_name)
        comparison = compare_spmv_models(
            matrix,
            device,
            run_cache_simulation=run_cache_simulation,
            simulation_accesses=cfg.pick(400_000, 100_000),
        )
        row = {
            "matrix": name,
            "n": matrix.n_rows,
            "nnz/row": comparison.avg_nnz_per_row,
            "bandwidth": comparison.bandwidth,
            "paper 5w/(2w+1)": comparison.paper_formula_speedup,
            "cost model": comparison.cost_model_speedup,
            "x reuse fp32": comparison.reuse_fp32,
            "x reuse fp64": comparison.reuse_fp64,
        }
        if comparison.simulated_hit_rate_fp32 is not None:
            row["L2 sim hit fp32"] = comparison.simulated_hit_rate_fp32
            row["L2 sim hit fp64"] = comparison.simulated_hit_rate_fp64
        if measure_solves:
            double = solve_on_scaled_device(
                gmres, matrix, paper_n, precision="double",
                restart=cfg.restart, tol=cfg.tol,
            )
            mixed = solve_on_scaled_device(
                gmres_ir, matrix, paper_n, restart=cfg.restart, tol=cfg.tol
            )
            measured = speedup_table(double, mixed).as_dict().get("SpMV", float("nan"))
            row["measured SpMV speedup"] = measured
        rows.append(row)

    return ExperimentReport(
        experiment="Section V-D",
        title="CSR SpMV cache-reuse model vs metered SpMV speedup",
        rows=rows,
        parameters={
            "index bytes": 4,
            "analytic speedups": {w: predicted_spmv_speedup(w) for w in (3, 5, 7, 9, 27)},
            "cache simulation": run_cache_simulation,
        },
        paper_reference=PAPER_REFERENCE,
        notes=[
            "the 'measured' column is the metered SpMV time ratio from actual "
            "GMRES-double vs GMRES-IR runs on the scaled device",
        ],
    )
