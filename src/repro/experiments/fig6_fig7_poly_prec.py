"""Figures 6 and 7 — polynomial-preconditioned GMRES vs GMRES-IR on Stretched2D.

Paper setup: Stretched2D1500 (SPD Laplacian on a stretched grid; GMRES(50)
cannot converge on it without preconditioning), degree-40 GMRES-polynomial
preconditioner, tolerance 1e-10.  Three configurations are compared:

(a) fp64 GMRES with the polynomial computed/applied in fp64,
(b) fp64 GMRES with the polynomial computed/applied in fp32 (casting the
    vector on every application), and
(c) GMRES-IR with the fp32 polynomial.

Paper observations: all three converge almost identically (Figure 6); the
fp32 polynomial already speeds up the fp64 solver, but GMRES-IR is the
fastest, 1.58× over configuration (a) (Figure 7).  With polynomial
preconditioning the SpMV — not orthogonalization — dominates the solve time
(64% of it in fp64), which is exactly where fp32 pays off most.

Scaled setup: Stretched2D at a reduced grid with a reduced polynomial
degree (the preconditioner strength has to match the scaled problem's
difficulty so the solve still spans multiple restart cycles — see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import breakdown_from_result
from ..matrices import stretched2d
from ..preconditioners import GmresPolynomialPreconditioner
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE"]

PAPER_GRID = 1500
PAPER_N = PAPER_GRID ** 2
PAPER_DEGREE = 40

PAPER_REFERENCE = {
    "problem": "Stretched2D1500, degree-40 GMRES polynomial, GMRES(50), tol 1e-10",
    "fp64 prec": "482 iters / 22.66 s",
    "GMRES-IR + fp32 prec": "500 iters / 14.37 s (1.58x)",
    "convergence": "fp32 preconditioning converges like fp64 preconditioning",
    "SpMV share of fp64 solve time": "about 64% (vs 15% unpreconditioned)",
    "preconditioner setup time": "0.5 s or less (excluded from solve times)",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
    stretch: float = 8.0,
    degree: Optional[int] = None,
) -> ExperimentReport:
    """Run the Figures 6/7 polynomial-preconditioning comparison."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(128, 96)
    degree = degree if degree is not None else cfg.pick(10, 10)
    m = cfg.restart
    matrix = stretched2d(grid, stretch=stretch)

    poly64 = GmresPolynomialPreconditioner(matrix, degree=degree, precision="double")
    poly32 = GmresPolynomialPreconditioner(matrix, degree=degree, precision="single")

    run_a = solve_on_scaled_device(
        gmres, matrix, PAPER_N,
        precision="double", restart=m, tol=cfg.tol, preconditioner=poly64,
    )
    run_b = solve_on_scaled_device(
        gmres, matrix, PAPER_N,
        precision="double", restart=m, tol=cfg.tol, preconditioner=poly32,
    )
    run_c = solve_on_scaled_device(
        gmres_ir, matrix, PAPER_N,
        restart=m, tol=cfg.tol, preconditioner=poly32,
    )

    rows = []
    for label, result in (
        ("fp64 GMRES + fp64 poly", run_a),
        ("fp64 GMRES + fp32 poly", run_b),
        ("GMRES-IR + fp32 poly", run_c),
    ):
        breakdown = breakdown_from_result(result)
        rows.append(
            {
                "configuration": label,
                "status": result.status.value,
                "iterations": result.iterations,
                "relative residual (fp64)": result.relative_residual_fp64,
                "solve time [model s]": result.model_seconds,
                "speedup vs fp64 prec": run_a.model_seconds / result.model_seconds
                if result.model_seconds
                else float("nan"),
                "SpMV share": breakdown.fraction("SpMV"),
                "orthog share": breakdown.orthogonalization_fraction(),
            }
        )

    return ExperimentReport(
        experiment="Figures 6 + 7",
        title="Polynomial-preconditioned GMRES: fp64 prec vs fp32 prec vs GMRES-IR (Stretched2D)",
        rows=rows,
        columns=[
            "configuration",
            "status",
            "iterations",
            "relative residual (fp64)",
            "solve time [model s]",
            "speedup vs fp64 prec",
            "SpMV share",
            "orthog share",
        ],
        parameters={
            "matrix": matrix.name,
            "n": matrix.n_rows,
            "stretch": stretch,
            "polynomial degree": degree,
            "restart": m,
            "poly setup seconds (fp64 / fp32)": (
                poly64.setup_seconds(),
                poly32.setup_seconds(),
            ),
        },
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid}, degree {degree} "
            f"(paper: grid {PAPER_GRID}, degree {PAPER_DEGREE}); the degree is scaled with the "
            "problem difficulty so the solve spans multiple restart cycles, as in the paper",
            "preconditioner construction is excluded from solve times, as in the paper",
        ],
    )
