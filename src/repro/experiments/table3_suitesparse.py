"""Table III — GMRES double vs GMRES-IR on the SuiteSparse suite (proxies).

Paper setup: ten SuiteSparse matrices plus the four Galeri PDE problems of
the earlier sections, solved with GMRES(50) double and GMRES(50)-IR at
tolerance 1e-10; some rows use block Jacobi after an RCM reordering
(``J 1``, ``J 42``) and some a degree-25 GMRES polynomial (``p 25``).
Headline observations:

* GMRES-IR tends to give speedup (1.08–1.58×) on matrices that need many
  hundreds or thousands of iterations;
* on matrices that converge in very few iterations the extra iterations of
  GMRES-IR cancel the per-kernel gains (speedups 0.92–0.98×);
* ``parabolic_fem`` is an outlier where GMRES-IR convergence diverges from
  GMRES double (flagged by the authors for further investigation).

This reproduction runs the same protocol on the structural proxies of
:mod:`repro.matrices.suitesparse_proxies` (the collection itself is not
downloadable here — see DESIGN.md) plus the scaled Galeri problems, and
reports measured vs paper values per row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..matrices import bentpipe2d, laplace3d, stretched2d, uniflow2d
from ..matrices.suitesparse_proxies import PROXY_SPECS, ProxySpec
from ..preconditioners import (
    BlockJacobiPreconditioner,
    GmresPolynomialPreconditioner,
    JacobiPreconditioner,
)
from ..sparse.csr import CsrMatrix
from ..sparse.ordering import permute_symmetric, reverse_cuthill_mckee
from ..sparse.properties import avg_nonzeros_per_row
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE", "GALERI_ROWS"]

PAPER_REFERENCE = {
    "speedup range where IR helps": "1.08x - 1.58x",
    "where IR does not help": "matrices converging in very few iterations (0.92x - 0.98x)",
    "reordering": "lung2 and hood are RCM-reordered before block Jacobi",
    "galeri rows": "BentPipe2D1500 1.32x, UniFlow2D2500 1.40x, Laplace3D150 1.44x, Stretched2D1500 1.58x",
}

#: The Galeri rows at the bottom of Table III: (paper name, builder, paper n,
#: paper nnz, preconditioner, paper double time/iters, paper IR time/iters, speedup).
GALERI_ROWS: Tuple[tuple, ...] = (
    ("BentPipe2D1500", bentpipe2d, 96, 1500 ** 2, None, 50.26, 12967, 38.03, 13150, 1.32),
    ("UniFlow2D2500", uniflow2d, 96, 2500 ** 2, None, 29.62, 2905, 21.17, 3000, 1.40),
    ("Laplace3D150", laplace3d, 24, 150 ** 3, None, 16.93, 2387, 11.75, 2400, 1.44),
    ("Stretched2D1500", stretched2d, 128, 1500 ** 2, ("poly", 10), 22.66, 482, 14.37, 500, 1.58),
)


def _build_preconditioners(
    matrix: CsrMatrix, assignment: Optional[Tuple[str, int]]
) -> Tuple[Optional[object], Optional[object]]:
    """Return (fp64 preconditioner, fp32 preconditioner) for one table row."""
    if assignment is None:
        return None, None
    kind, param = assignment
    if kind == "jacobi":
        return (
            JacobiPreconditioner(matrix, precision="double"),
            JacobiPreconditioner(matrix, precision="single"),
        )
    if kind == "block_jacobi":
        return (
            BlockJacobiPreconditioner(matrix, block_size=param, precision="double"),
            BlockJacobiPreconditioner(matrix, block_size=param, precision="single"),
        )
    if kind == "poly":
        return (
            GmresPolynomialPreconditioner(matrix, degree=param, precision="double"),
            GmresPolynomialPreconditioner(matrix, degree=param, precision="single"),
        )
    raise ValueError(f"unknown preconditioner assignment {assignment!r}")


def _run_row(
    name: str,
    matrix: CsrMatrix,
    paper_n: int,
    assignment: Optional[Tuple[str, int]],
    cfg: ExperimentConfig,
    *,
    rcm: bool,
    max_restarts: int,
) -> Dict[str, object]:
    if rcm:
        perm = reverse_cuthill_mckee(matrix)
        matrix = permute_symmetric(matrix, perm)
    prec64, prec32 = _build_preconditioners(matrix, assignment)
    double = solve_on_scaled_device(
        gmres, matrix, paper_n,
        precision="double", restart=cfg.restart, tol=cfg.tol,
        preconditioner=prec64, max_restarts=max_restarts,
    )
    mixed = solve_on_scaled_device(
        gmres_ir, matrix, paper_n,
        restart=cfg.restart, tol=cfg.tol,
        preconditioner=prec32, max_restarts=max_restarts,
    )
    prec_label = "" if assignment is None else f"{assignment[0][0].upper()} {assignment[1]}"
    return {
        "matrix": name,
        "n": matrix.n_rows,
        "nnz": matrix.nnz,
        "nnz/row": avg_nonzeros_per_row(matrix),
        "prec": prec_label,
        "double status": double.status.value[:4],
        "double iters": double.iterations,
        "double time [model s]": double.model_seconds,
        "IR status": mixed.status.value[:4],
        "IR iters": mixed.iterations,
        "IR time [model s]": mixed.model_seconds,
        "speedup": double.model_seconds / mixed.model_seconds
        if mixed.model_seconds
        else float("nan"),
    }


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    include_galeri: bool = True,
    proxy_names: Optional[List[str]] = None,
    max_restarts: int = 240,
) -> ExperimentReport:
    """Run the Table III survey on the proxy suite (plus the Galeri rows)."""
    cfg = config or ExperimentConfig()
    names = proxy_names if proxy_names is not None else list(PROXY_SPECS)
    if cfg.quick:
        # Keep one representative of each difficulty class in quick mode.
        quick_set = ["atmosmodj", "stomach", "hood", "Transport"]
        names = [n for n in names if n in quick_set]

    rows: List[Dict[str, object]] = []
    for name in names:
        spec: ProxySpec = PROXY_SPECS[name]
        matrix = spec.build()
        assignment = spec.preconditioner_at_scale()
        needs_rcm = assignment is not None and assignment[0] in ("jacobi", "block_jacobi")
        row = _run_row(
            name, matrix, spec.original_n, assignment, cfg,
            rcm=needs_rcm, max_restarts=max_restarts,
        )
        row["paper iters (double)"] = spec.paper_double_iters
        row["paper speedup"] = spec.paper_speedup
        rows.append(row)

    if include_galeri and not cfg.quick:
        for (
            name, builder, grid, paper_n, assignment,
            _pt, p_iters, _pit, _piters, p_speedup,
        ) in GALERI_ROWS:
            matrix = builder(grid) if name != "Stretched2D1500" else builder(grid, stretch=8)
            row = _run_row(
                name, matrix, paper_n, assignment, cfg, rcm=False, max_restarts=max_restarts
            )
            row["paper iters (double)"] = p_iters
            row["paper speedup"] = p_speedup
            rows.append(row)

    return ExperimentReport(
        experiment="Table III",
        title="GMRES double vs GMRES-IR across the SuiteSparse proxy suite and Galeri problems",
        rows=rows,
        columns=[
            "matrix",
            "n",
            "nnz",
            "prec",
            "double iters",
            "double time [model s]",
            "IR iters",
            "IR time [model s]",
            "speedup",
            "paper iters (double)",
            "paper speedup",
        ],
        parameters={"restart": cfg.restart, "tolerance": cfg.tol},
        paper_reference=PAPER_REFERENCE,
        notes=[
            "SuiteSparse matrices are replaced by structural proxies (no collection access); "
            "see repro.matrices.suitesparse_proxies and DESIGN.md for the per-matrix recipe",
            "parabolic_fem: the paper's 0.92x slowdown is a known mismatch at proxy scale "
            "(see the proxy's notes)",
        ],
    )
