"""Section V-F — preconditioner arithmetic complexity vs fp32 rounding error.

Paper setup: a 3D Laplacian with 200 grid points per side, polynomial
preconditioners of degree 10–70, tolerance 1e-10.  With the polynomial
applied in fp64 the solver always converges.  With the polynomial applied
in fp32 inside an otherwise-fp64 GMRES, the degree-10 run still converges,
but at higher degrees the implicit residual (from the Givens-rotated
Hessenberg) diverges from the explicit residual ``||b - A x||`` — Belos
reports a "loss of accuracy", i.e. a false positive convergence signal.
GMRES-IR is much less vulnerable because it re-computes the true residual
in fp64 at every restart.

Scaled setup: the same sweep on a problem whose preconditioned solve spans
at least a couple of restart cycles at low degree.  At scaled sizes the
paper's Laplace3D converges within a *single* cycle even at degree 10 —
which puts every degree in the failure regime and hides the crossover — so
the default problem is the stretched-grid Laplacian (the paper's other
polynomial-preconditioned SPD matrix); the driver takes the problem builder
as a parameter so the Laplace3D variant can be run too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..matrices import laplace3d, stretched2d
from ..preconditioners import GmresPolynomialPreconditioner
from ..solvers import gmres, gmres_ir
from ..sparse.csr import CsrMatrix
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE"]

PAPER_N = 200 ** 3

PAPER_REFERENCE = {
    "problem": "Laplace3D, grid 200, polynomial degrees 10-70, tol 1e-10",
    "fp64 polynomial": "converges at every degree",
    "fp32 polynomial, degree 10": "converges",
    "fp32 polynomial, degree > 10": "implicit and explicit residuals diverge ('loss of accuracy')",
    "GMRES-IR": "less likely to suffer, since it corrects with the true residual each restart",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    degrees: Optional[Sequence[int]] = None,
    problem: str = "stretched2d",
    grid: Optional[int] = None,
    stretch: float = 8.0,
    include_ir: bool = True,
) -> ExperimentReport:
    """Run the Section V-F polynomial-degree stability sweep.

    Parameters
    ----------
    problem:
        ``"stretched2d"`` (default at scaled sizes, see the module docstring)
        or ``"laplace3d"`` (the paper's original matrix).
    degrees:
        Polynomial degrees to sweep.
    include_ir:
        Also run GMRES-IR with the fp32 polynomial at the highest degree to
        demonstrate the paper's suggested mitigation.
    """
    cfg = config or ExperimentConfig()
    degrees = list(degrees) if degrees is not None else cfg.pick([5, 10, 20, 30, 40], [5, 20, 40])
    if problem == "stretched2d":
        grid = grid if grid is not None else cfg.pick(128, 96)
        matrix: CsrMatrix = stretched2d(grid, stretch=stretch)
        paper_n = 1500 ** 2
    elif problem == "laplace3d":
        grid = grid if grid is not None else cfg.pick(24, 16)
        matrix = laplace3d(grid)
        paper_n = PAPER_N
    else:
        raise ValueError("problem must be 'stretched2d' or 'laplace3d'")
    m = cfg.restart

    rows: List[dict] = []
    for degree in degrees:
        poly64 = GmresPolynomialPreconditioner(matrix, degree=degree, precision="double")
        poly32 = GmresPolynomialPreconditioner(matrix, degree=degree, precision="single")
        ref = solve_on_scaled_device(
            gmres, matrix, paper_n,
            precision="double", restart=m, tol=cfg.tol, preconditioner=poly64,
            max_restarts=200,
        )
        mixed_prec = solve_on_scaled_device(
            gmres, matrix, paper_n,
            precision="double", restart=m, tol=cfg.tol, preconditioner=poly32,
            max_restarts=200,
        )
        rows.append(
            {
                "degree": degree,
                "fp64 poly status": ref.status.value,
                "fp64 poly iters": ref.iterations,
                "fp32 poly status": mixed_prec.status.value,
                "fp32 poly iters": mixed_prec.iterations,
                "fp32 poly true residual": mixed_prec.relative_residual_fp64,
                "fp32 poly implicit residual": (
                    mixed_prec.history.implicit_norms[-1]
                    if mixed_prec.history.implicit_norms
                    else float("nan")
                ),
            }
        )

    notes = [
        "the 'loss_of_accuracy' status marks the implicit/explicit residual divergence "
        "the paper describes (Belos' false-positive convergence signal)",
    ]
    parameters = {
        "matrix": matrix.name,
        "n": matrix.n_rows,
        "restart": m,
        "tolerance": cfg.tol,
        "problem": problem,
    }
    if include_ir and degrees:
        top = max(degrees)
        poly32 = GmresPolynomialPreconditioner(matrix, degree=top, precision="single")
        ir = solve_on_scaled_device(
            gmres_ir, matrix, paper_n, restart=m, tol=cfg.tol, preconditioner=poly32,
            max_restarts=200,
        )
        parameters["GMRES-IR at highest degree"] = (
            f"degree {top}: {ir.status.value}, {ir.iterations} iterations, "
            f"true residual {ir.relative_residual_fp64:.2e}"
        )
        notes.append(
            "GMRES-IR with the same fp32 polynomial at the highest degree recovers "
            "true-residual convergence, as the paper anticipates"
        )

    return ExperimentReport(
        experiment="Section V-F",
        title="Polynomial degree vs fp32 rounding: loss-of-accuracy onset",
        rows=rows,
        columns=[
            "degree",
            "fp64 poly status",
            "fp64 poly iters",
            "fp32 poly status",
            "fp32 poly iters",
            "fp32 poly true residual",
            "fp32 poly implicit residual",
        ],
        parameters=parameters,
        paper_reference=PAPER_REFERENCE,
        notes=notes,
    )
