"""Figure 2 — GMRES-FD switch sweep on UniFlow2D vs. GMRES-IR.

Paper setup: the UniFlow2D convection–diffusion problem with grid 2500
(6.25M unknowns), GMRES(50), tolerance 1e-10, switch points at every
multiple of 50.  Paper observations ("somewhat counterintuitive"): the best
FD time (28.8 s) occurs when switching after only 200 iterations and barely
beats the fp64-only solver (29.6 s); switching late gives the fp64 phase a
good initial guess but it still needs thousands of iterations, because the
fp32 starting vector lacks eigenvector components of the original
right-hand side.  GMRES-IR needs 21.2 s — "the best method by far".

Scaled setup: UniFlow2D at a reduced grid (default 96) with restart 25.
"""

from __future__ import annotations

from typing import Optional

from ..matrices import uniflow2d
from .common import ExperimentConfig, ExperimentReport
from .fd_sweep import run_fd_sweep

__all__ = ["run", "PAPER_REFERENCE"]

PAPER_GRID = 2500
PAPER_N = PAPER_GRID ** 2

PAPER_REFERENCE = {
    "problem": "UniFlow2D, grid 2500 (6.25e6 unknowns), GMRES(50), tol 1e-10",
    "fp64-only iterations / time": "2905 iters / 29.62 s",
    "best FD switch / iterations / time": "200 / 2911 iters / 28.77 s",
    "GMRES-IR iterations / time": "3000 iters / 21.17 s",
    "conclusion": "GMRES-FD is mostly ineffective here; GMRES-IR is the best method by far",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
) -> ExperimentReport:
    """Run the Figure 2 sweep on the scaled UniFlow2D problem."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(96, 64)
    matrix = uniflow2d(grid)
    return run_fd_sweep(
        matrix,
        PAPER_N,
        experiment="Figure 2",
        title="GMRES-FD float→double switch sweep on UniFlow2D vs GMRES-IR",
        config=cfg,
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid} ({matrix.n_rows} unknowns) vs paper grid {PAPER_GRID}",
        ],
    )
