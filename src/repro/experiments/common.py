"""Shared infrastructure for the experiment drivers.

Every experiment in this package reproduces one table or figure of the
paper's evaluation (Section V).  They all share the same conventions, which
mirror the paper's experimental setup scaled to pure-Python problem sizes:

* right-hand side of all ones, zero initial guess, relative tolerance 1e-10;
* restarted GMRES with CGS2 orthogonalization;
* solve "times" are **modelled V100 seconds** accumulated by the kernel
  performance model (see DESIGN.md for the substitution argument) — wall
  clock is also recorded for the benchmark harness;
* each problem runs on a **dimensionally scaled** V100
  (:meth:`~repro.perfmodel.device.DeviceSpec.scaled` with factor
  ``n_scaled / n_paper``) so that cache-reuse regimes and the ratio of fixed
  kernel overheads to streaming time match the paper-size problem;
* the default restart length is 25 rather than the paper's 50: the scaled
  problems need proportionally fewer iterations, and keeping the paper's
  "many cycles per solve" regime matters more for reproducing GMRES-IR
  behaviour than keeping the absolute restart length (Section V-E of the
  paper is precisely about this trade-off, and the restart-sweep
  experiments cover both regimes).

The :class:`ExperimentReport` produced by every driver carries the table
rows / figure series in plain data structures plus paper reference values,
so the benchmark harness and EXPERIMENTS.md generation just format them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..analysis.tables import format_kv, format_table
from ..config import get_config
from ..linalg.context import use_device
from ..perfmodel.device import DeviceSpec, get_device
from ..precision import as_precision
from ..sparse.csr import CsrMatrix
from ..solvers.result import SolveResult

__all__ = [
    "ExperimentConfig",
    "ExperimentReport",
    "scaled_device",
    "solve_on_scaled_device",
    "ones_rhs",
    "DEFAULT_RESTART",
]

#: Scaled default restart length used by the experiment drivers (paper: 50).
DEFAULT_RESTART = 25


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``quick`` selects smaller grids / fewer sweep points so the whole
    benchmark suite stays inside a few minutes; the full setting matches the
    defaults quoted in DESIGN.md's per-experiment index.
    """

    restart: int = DEFAULT_RESTART
    tol: float = 1e-10
    device_name: str = "v100"
    quick: bool = False

    def pick(self, full, quick):
        """Return ``quick`` or ``full`` depending on the quick flag."""
        return quick if self.quick else full


@dataclass
class ExperimentReport:
    """Output of one experiment driver.

    Attributes
    ----------
    experiment:
        Identifier matching the paper ("Figure 1", "Table II", ...).
    title:
        One-line description.
    rows:
        Table rows (list of plain dicts) — for figures these are the plotted
        series in tabular form.
    columns:
        Column order for formatting.
    parameters:
        The workload parameters used (grid size, restart, degrees, ...).
    paper_reference:
        The corresponding numbers reported in the paper, for side-by-side
        comparison in EXPERIMENTS.md.
    notes:
        Free-form remarks (known mismatches, substitutions).
    """

    experiment: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    columns: Optional[List[str]] = None
    parameters: Dict[str, object] = field(default_factory=dict)
    paper_reference: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def format(self, *, float_format: str = ".4g") -> str:
        """Human-readable rendering (used by benchmarks and EXPERIMENTS.md)."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.parameters:
            parts.append(format_kv(self.parameters, title="parameters:"))
        parts.append(
            format_table(self.rows, self.columns, float_format=float_format)
        )
        if self.paper_reference:
            parts.append(format_kv(self.paper_reference, title="paper reference:"))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def row_values(self, column: str) -> List[object]:
        """Extract one column across all rows (for assertions in benchmarks)."""
        return [row.get(column) for row in self.rows]


def ones_rhs(matrix: CsrMatrix, precision="double") -> np.ndarray:
    """All-ones right-hand side in the requested precision (paper Section V)."""
    return np.ones(matrix.n_rows, dtype=as_precision(precision).dtype)


def scaled_device(
    n_rows: int, paper_n: int, device_name: Optional[str] = None
) -> DeviceSpec:
    """The dimensionally scaled device for a problem of ``n_rows`` unknowns.

    ``paper_n`` is the size of the corresponding problem in the paper; the
    device's capacity- and latency-like parameters are scaled by
    ``n_rows / paper_n`` (see :meth:`DeviceSpec.scaled`).
    """
    name = device_name or get_config().device_name
    base = get_device(name)
    factor = n_rows / float(paper_n)
    return base.scaled(factor)


def solve_on_scaled_device(
    solver: Callable[..., SolveResult],
    matrix: CsrMatrix,
    paper_n: int,
    *,
    device_name: Optional[str] = None,
    rhs: Optional[np.ndarray] = None,
    **solver_kwargs,
) -> SolveResult:
    """Run ``solver(matrix, b, **kwargs)`` under the scaled-device context."""
    b = rhs if rhs is not None else ones_rhs(matrix)
    device = scaled_device(matrix.n_rows, paper_n, device_name)
    with use_device(device):
        return solver(matrix, b, **solver_kwargs)
