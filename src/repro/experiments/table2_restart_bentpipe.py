"""Table II — restart-size sweep on BentPipe2D.

Paper setup: BentPipe2D1500 solved with GMRES double and GMRES-IR for
restart sizes 25–400.  Observations: GMRES-IR gives 1.2–1.4× speedup at
every restart size; as the restart grows, the fp64 iteration count drops but
orthogonalization swallows the solve time (83% of it at restart 50, 97% at
400), so the *smallest* restart size gives the fastest solve for both
solvers — contrary to the "largest subspace before stall" restart-selection
strategy of Lindquist et al.

The scaled sweep uses proportionally smaller restart sizes around the
experiment default.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import breakdown_from_result
from ..matrices import bentpipe2d
from ..solvers import gmres, gmres_ir
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run", "PAPER_REFERENCE", "PAPER_TABLE_II"]

PAPER_GRID = 1500
PAPER_N = PAPER_GRID ** 2

#: Table II of the paper: restart -> (double iters, double time, IR iters, IR time, speedup).
PAPER_TABLE_II = {
    25: (13795, 38.63, 13925, 31.74, 1.22),
    50: (12967, 50.26, 13150, 38.03, 1.32),
    100: (12009, 74.24, 12100, 51.88, 1.43),
    150: (11250, 95.82, 12450, 72.01, 1.33),
    200: (10867, 117.80, 12400, 90.77, 1.30),
    300: (10491, 164.60, 12600, 133.60, 1.23),
    400: (10274, 209.80, 12400, 174.10, 1.21),
}

PAPER_REFERENCE = {
    "speedups": "1.21-1.43x across all restart sizes",
    "iteration trend": "fp64 iterations decrease with larger restart, but solve time increases",
    "orthogonalization share": "83% of fp64 solve time at restart 50, 97% at restart 400",
    "fastest configuration": "GMRES-IR with the smallest restart size (25)",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[int] = None,
    restart_sizes: Optional[Sequence[int]] = None,
) -> ExperimentReport:
    """Run the Table II restart-size sweep on the scaled BentPipe2D problem."""
    cfg = config or ExperimentConfig()
    grid = grid if grid is not None else cfg.pick(64, 48)
    if restart_sizes is None:
        restart_sizes = cfg.pick((10, 15, 25, 50, 75, 100), (10, 25, 50))
    matrix = bentpipe2d(grid)

    rows: List[dict] = []
    for m in restart_sizes:
        double = solve_on_scaled_device(
            gmres, matrix, PAPER_N, precision="double", restart=int(m), tol=cfg.tol
        )
        mixed = solve_on_scaled_device(
            gmres_ir, matrix, PAPER_N, restart=int(m), tol=cfg.tol
        )
        ortho_share = breakdown_from_result(double).orthogonalization_fraction()
        rows.append(
            {
                "restart": int(m),
                "double iters": double.iterations,
                "double time [model s]": double.model_seconds,
                "IR iters": mixed.iterations,
                "IR time [model s]": mixed.model_seconds,
                "speedup": double.model_seconds / mixed.model_seconds
                if mixed.model_seconds
                else float("nan"),
                "orthog share (double)": ortho_share,
            }
        )

    best_double = min(rows, key=lambda r: r["double time [model s]"])
    best_ir = min(rows, key=lambda r: r["IR time [model s]"])
    return ExperimentReport(
        experiment="Table II",
        title="Restart-size sweep on BentPipe2D: GMRES double vs GMRES-IR",
        rows=rows,
        columns=[
            "restart",
            "double iters",
            "double time [model s]",
            "IR iters",
            "IR time [model s]",
            "speedup",
            "orthog share (double)",
        ],
        parameters={
            "matrix": matrix.name,
            "n": matrix.n_rows,
            "tolerance": cfg.tol,
            "fastest double restart": best_double["restart"],
            "fastest IR restart": best_ir["restart"],
        },
        paper_reference=PAPER_REFERENCE,
        notes=[
            f"scaled problem: grid {grid} vs paper grid {PAPER_GRID}; restart sizes scaled "
            "accordingly (paper sweeps 25-400)",
        ],
    )
