"""Shared driver for the GMRES-FD switch-point sweeps (Figures 1 and 2).

Both figures ask the same question: if one runs fp32 GMRES(m) for ``k``
iterations and then switches to fp64 GMRES(m), how do the total iteration
count and the solve time depend on ``k``, and how does the best ``k``
compare against GMRES-IR (which needs no such tuning)?

The driver:

1. solves the problem with fp64 GMRES(m) (the ``switch at 0`` anchor and
   the baseline),
2. solves it with GMRES-IR,
3. sweeps GMRES-FD over switch points at multiples of the restart length up
   to (roughly) the fp64 iteration count, and
4. reports, per switch point, the total iterations and the modelled solve
   time, plus the IR and fp64 anchors — i.e. exactly the series plotted in
   the figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..solvers import gmres, gmres_fd, gmres_ir
from ..sparse.csr import CsrMatrix
from .common import ExperimentConfig, ExperimentReport, solve_on_scaled_device

__all__ = ["run_fd_sweep"]


def run_fd_sweep(
    matrix: CsrMatrix,
    paper_n: int,
    *,
    experiment: str,
    title: str,
    config: Optional[ExperimentConfig] = None,
    switch_points: Optional[Sequence[int]] = None,
    n_switch_points: int = 8,
    paper_reference: Optional[dict] = None,
    notes: Optional[List[str]] = None,
) -> ExperimentReport:
    """Run the Figure 1 / Figure 2 style GMRES-FD switch sweep on one matrix."""
    cfg = config or ExperimentConfig()
    m = cfg.restart

    double = solve_on_scaled_device(
        gmres, matrix, paper_n, precision="double", restart=m, tol=cfg.tol
    )
    ir = solve_on_scaled_device(
        gmres_ir, matrix, paper_n, restart=m, tol=cfg.tol
    )

    if switch_points is None:
        # Multiples of the restart length spanning slightly past the fp64
        # iteration count (switching later than that only wastes fp32 work,
        # which is the effect the right edge of the figures shows).
        count = cfg.pick(n_switch_points, max(4, n_switch_points // 2))
        max_switch = max(m, int(1.2 * double.iterations))
        stride = max(m, (max_switch // max(count - 1, 1) // m) * m)
        switch_points = list(range(0, max_switch + 1, stride))
    switch_points = sorted(set(int(s) for s in switch_points))

    rows = []
    best = None
    for switch in switch_points:
        if switch == 0:
            result = double
        else:
            result = solve_on_scaled_device(
                gmres_fd,
                matrix,
                paper_n,
                switch_iteration=switch,
                restart=m,
                tol=cfg.tol,
            )
        row = {
            "switch at iteration": switch,
            "total iterations": result.iterations,
            "solve time [model s]": result.model_seconds,
            "converged": str(result.converged),
            "fp32 iterations": result.details.get("low_iterations", 0),
            "fp64 iterations": result.details.get("high_iterations", result.iterations),
        }
        rows.append(row)
        if result.converged and (best is None or result.model_seconds < best[1]):
            best = (switch, result.model_seconds)

    report = ExperimentReport(
        experiment=experiment,
        title=title,
        rows=rows,
        columns=[
            "switch at iteration",
            "total iterations",
            "solve time [model s]",
            "fp32 iterations",
            "fp64 iterations",
            "converged",
        ],
        parameters={
            "matrix": matrix.name,
            "n": matrix.n_rows,
            "nnz": matrix.nnz,
            "restart": m,
            "tolerance": cfg.tol,
        },
        paper_reference=dict(paper_reference or {}),
        notes=list(notes or []),
    )
    report.parameters["gmres-double iterations"] = double.iterations
    report.parameters["gmres-double time [model s]"] = double.model_seconds
    report.parameters["gmres-ir iterations"] = ir.iterations
    report.parameters["gmres-ir time [model s]"] = ir.model_seconds
    if best is not None:
        report.parameters["best FD switch"] = best[0]
        report.parameters["best FD time [model s]"] = best[1]
        report.notes.append(
            "GMRES-IR time {:.4g}s vs best hand-tuned GMRES-FD {:.4g}s: {}".format(
                ir.model_seconds,
                best[1],
                "IR matches or beats FD without tuning"
                if ir.model_seconds <= 1.05 * best[1]
                else "FD beats IR on this problem/scale",
            )
        )
    return report
