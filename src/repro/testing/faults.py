"""Fault-injecting kernel backend: the chaos half of the fault-tolerance story.

The serve layer promises that *every* submit resolves with a terminal
outcome — a result with a terminal status, or a policy error — no matter
what the kernels underneath do.  :class:`FaultInjectingBackend` is the
adversary that promise is tested against: it wraps a real
:class:`~repro.backends.base.KernelBackend` and, with a seeded RNG,
makes individual kernel calls

* **poison their result with NaN** (``nan_rate``) — modelling the silent
  data corruption / denormal blow-ups mixed-precision work is exposed to;
  the solvers must classify the resulting non-finite residual as
  ``BREAKDOWN`` rather than iterating on garbage;
* **raise** :class:`FaultInjectedError` (``exception_rate``) — modelling
  hard kernel faults (device resets, OOM); the serve layer must forward
  it to exactly the futures of the affected batch;
* **stall** (``latency_rate`` / ``latency_ms``) — modelling latency
  spikes; deadline enforcement must still hold.

Determinism: the injection sequence is driven by one
``np.random.default_rng(seed)`` under a lock, so a chaos test is
reproducible per seed even though calls arrive from several worker
threads (the *assignment* of faults to calls can still vary with thread
interleaving — chaos tests must assert invariants, not exact outcomes).

Typical use (see ``tests/test_chaos.py``)::

    from repro.testing import FaultInjectingBackend, fault_injecting_session_factory

    faulty = FaultInjectingBackend(get_backend("numpy"), seed=7,
                                   nan_rate=0.01, exception_rate=0.005)
    farm.register("chaotic", factory=fault_injecting_session_factory(
        A, faulty, restart=10), n_rows=A.n_rows)
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional

import numpy as np

from ..backends.base import KernelBackend

__all__ = [
    "FaultInjectedError",
    "FaultInjectingBackend",
    "KERNEL_NAMES",
    "fault_injecting_session_factory",
]

#: Every kernel of the :class:`~repro.backends.base.KernelBackend` protocol.
KERNEL_NAMES = (
    "spmv",
    "spmv_transpose",
    "spmm",
    "gemv_transpose",
    "gemv_notrans",
    "gemm_transpose",
    "gemm_notrans",
    "dot",
    "norm2",
    "axpy",
    "scal",
    "copy",
    "diag_scale",
    "block_diag_solve",
)


class FaultInjectedError(RuntimeError):
    """A deliberately injected kernel fault (chaos testing only)."""

    def __init__(self, kernel: str) -> None:
        super().__init__(f"injected fault in kernel {kernel!r}")
        self.kernel = kernel


class FaultInjectingBackend(KernelBackend):
    """Wrap a real backend; corrupt, fail or stall a fraction of its calls.

    Parameters
    ----------
    inner:
        The backend that executes the arithmetic when no fault fires.
    seed:
        Seed of the injection RNG (one draw per kernel call, under a
        lock — deterministic per seed up to thread interleaving).
    nan_rate / exception_rate / latency_rate:
        Per-call probabilities of the three fault kinds.  At most one
        fault fires per call (exception beats NaN beats latency).
    latency_ms:
        Sleep injected on a latency fault.
    kernels:
        Optional subset of :data:`KERNEL_NAMES` to target; every other
        kernel passes through untouched (e.g. ``kernels={"spmm"}``
        poisons only the batched operator product).

    Counters (:meth:`stats`) record how many faults of each kind actually
    fired, so a chaos test can reconcile observed failures against
    injected ones.
    """

    def __init__(
        self,
        inner: KernelBackend,
        *,
        seed: int = 0,
        nan_rate: float = 0.0,
        exception_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_ms: float = 1.0,
        kernels: Optional[Iterable[str]] = None,
    ) -> None:
        for rate in (nan_rate, exception_rate, latency_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be probabilities in [0, 1]")
        if kernels is not None:
            unknown = set(kernels) - set(KERNEL_NAMES)
            if unknown:
                raise ValueError(f"unknown kernel names: {sorted(unknown)}")
        self.inner = inner
        self.name = f"faulty({inner.name})"
        self.nan_rate = float(nan_rate)
        self.exception_rate = float(exception_rate)
        self.latency_rate = float(latency_rate)
        self.latency_ms = float(latency_ms)
        self.kernels = None if kernels is None else frozenset(kernels)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._injected: Dict[str, int] = {
            "nan": 0,
            "exception": 0,
            "latency": 0,
        }

    # ------------------------------------------------------------------ #
    # injection machinery                                                #
    # ------------------------------------------------------------------ #
    def _roll(self, kernel: str) -> Optional[str]:
        """Decide this call's fate: None / "exception" / "nan" / "latency"."""
        with self._lock:
            self._calls[kernel] = self._calls.get(kernel, 0) + 1
            if self.kernels is not None and kernel not in self.kernels:
                return None
            u = float(self._rng.random())
            if u < self.exception_rate:
                fault = "exception"
            elif u < self.exception_rate + self.nan_rate:
                fault = "nan"
            elif u < self.exception_rate + self.nan_rate + self.latency_rate:
                fault = "latency"
            else:
                return None
            self._injected[fault] += 1
            return fault

    def _run(self, kernel: str, call):
        fault = self._roll(kernel)
        if fault == "exception":
            raise FaultInjectedError(kernel)
        if fault == "latency":
            time.sleep(self.latency_ms / 1e3)
        result = call()
        if fault == "nan":
            if isinstance(result, np.ndarray):
                # In-place poke keeps the out=/work= buffer contract: the
                # caller's buffer is still the returned object.
                result.flat[0] = np.nan
            else:
                result = type(result)(np.nan) if result is not None else result
        return result

    def stats(self) -> Dict[str, object]:
        """Injection counters: per-kernel calls and per-kind fired faults."""
        with self._lock:
            return {
                "calls": dict(self._calls),
                "injected": dict(self._injected),
                "total_calls": sum(self._calls.values()),
                "total_injected": sum(self._injected.values()),
            }

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    # ------------------------------------------------------------------ #
    # the wrapped protocol                                               #
    # ------------------------------------------------------------------ #
    def spmv(self, matrix, x, out=None):
        return self._run("spmv", lambda: self.inner.spmv(matrix, x, out))

    def spmv_transpose(self, matrix, x, out=None):
        return self._run(
            "spmv_transpose", lambda: self.inner.spmv_transpose(matrix, x, out)
        )

    def spmm(self, matrix, X, out=None):
        return self._run("spmm", lambda: self.inner.spmm(matrix, X, out))

    def gemv_transpose(self, V, w, out=None):
        return self._run(
            "gemv_transpose", lambda: self.inner.gemv_transpose(V, w, out)
        )

    def gemv_notrans(self, V, h, w, *, alpha=-1.0, work=None):
        return self._run(
            "gemv_notrans",
            lambda: self.inner.gemv_notrans(V, h, w, alpha=alpha, work=work),
        )

    def gemm_transpose(self, V, W, out=None):
        return self._run(
            "gemm_transpose", lambda: self.inner.gemm_transpose(V, W, out)
        )

    def gemm_notrans(self, V, H, W, *, alpha=-1.0, work=None):
        return self._run(
            "gemm_notrans",
            lambda: self.inner.gemm_notrans(V, H, W, alpha=alpha, work=work),
        )

    def dot(self, x, y):
        return self._run("dot", lambda: self.inner.dot(x, y))

    def norm2(self, x):
        return self._run("norm2", lambda: self.inner.norm2(x))

    def axpy(self, alpha, x, y, work=None):
        return self._run("axpy", lambda: self.inner.axpy(alpha, x, y, work))

    def scal(self, alpha, x):
        return self._run("scal", lambda: self.inner.scal(alpha, x))

    def copy(self, x, out=None):
        return self._run("copy", lambda: self.inner.copy(x, out))

    def diag_scale(self, scale, x, out=None):
        return self._run(
            "diag_scale", lambda: self.inner.diag_scale(scale, x, out)
        )

    def block_diag_solve(self, inv_blocks, x, out=None):
        return self._run(
            "block_diag_solve",
            lambda: self.inner.block_diag_solve(inv_blocks, x, out),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjectingBackend over {self.inner!r} "
            f"rates=(exc={self.exception_rate}, nan={self.nan_rate}, "
            f"lat={self.latency_rate})>"
        )


def fault_injecting_session_factory(matrix, backend: KernelBackend, **session_kwargs):
    """A farm session factory whose session pins ``backend``.

    :class:`~repro.serve.session.OperatorSession` pins the *construction
    thread's* active context; farm factories run on worker threads, so a
    chaos test cannot just wrap ``register`` in ``use_backend``.  This
    helper bakes the (typically fault-injecting) backend into the factory
    itself::

        farm.register("chaotic",
                      factory=fault_injecting_session_factory(A, faulty, tol=1e-8),
                      n_rows=A.n_rows)
    """
    from ..linalg.context import use_backend
    from ..serve.session import OperatorSession

    def factory() -> "OperatorSession":
        with use_backend(backend):
            return OperatorSession(matrix, **session_kwargs)

    return factory
