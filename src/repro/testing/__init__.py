"""repro.testing — fault injection and chaos-testing utilities.

Support code for *testing the library against itself*: the fault-tolerance
layer (deadlines, cancellation, circuit breaking — see
:mod:`repro.serve`) claims that no failure mode can hang a future or lose
a request, and :mod:`repro.testing.faults` supplies the adversary that
claim is proved against — a :class:`FaultInjectingBackend` that wraps any
real kernel backend and injects NaNs, exceptions and latency spikes with
a seeded RNG.

Nothing in here is needed to *use* the library; it is shipped (rather
than hidden in ``tests/``) so downstream users can chaos-test their own
serving configurations the same way the test suite does.
"""

from .faults import FaultInjectedError, FaultInjectingBackend, fault_injecting_session_factory

__all__ = [
    "FaultInjectedError",
    "FaultInjectingBackend",
    "fault_injecting_session_factory",
]
