"""Synthetic stand-ins for the SuiteSparse matrices of Table III.

The paper validates its analysis on ten matrices from the SuiteSparse
collection.  This environment has no network access to the collection, so
each matrix is replaced by a *structural proxy*: a synthetic operator that
matches the original's

* symmetry class (nonsymmetric / symmetric / SPD),
* rough nonzeros-per-row profile (narrow stencil vs. denser FEM rows),
* relative difficulty for restarted GMRES (needs "a few hundred" vs. "many
  thousands" of iterations, which is the property Table III's conclusion
  hinges on), and
* the preconditioner the paper pairs it with (none, block Jacobi after RCM,
  or a degree-25 GMRES polynomial).

Each :class:`ProxySpec` records the original matrix's UF id and statistics
alongside the proxy recipe, so reports can show exactly what was
substituted.  Dimensions are scaled down (thousands instead of hundreds of
thousands of rows); the ``dim`` argument of :func:`build_proxy` controls
the scaling.

The proxies are *not* numerically equal to the originals and absolute
iteration counts will differ; DESIGN.md discusses why the Table III
conclusion (GMRES-IR pays off when the double-precision solver needs many
iterations, and not when it converges in a handful) survives this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.convert import from_scipy
from .galeri import convection_diffusion_2d, laplace3d

__all__ = ["ProxySpec", "PROXY_SPECS", "build_proxy", "list_proxies"]


# ---------------------------------------------------------------------- #
# proxy archetypes                                                       #
# ---------------------------------------------------------------------- #
def _grid_side_2d(dim: int) -> int:
    return max(8, int(round(np.sqrt(dim))))


def _grid_side_3d(dim: int) -> int:
    return max(5, int(round(dim ** (1.0 / 3.0))))


def _spd_5pt(dim: int, *, anisotropy: float = 1.0, name: str) -> CsrMatrix:
    """SPD 2D Laplacian, optionally anisotropic (higher anisotropy → harder)."""
    import scipy.sparse as sp

    n = _grid_side_2d(dim)
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    t = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    eye = sp.identity(n, format="csr")
    a = sp.kron(eye, t, format="csr") + anisotropy * sp.kron(t, eye, format="csr")
    return from_scipy(a, name=name)


def _spd_9pt(dim: int, *, name: str) -> CsrMatrix:
    """SPD 2D operator with a denser (9-point) stencil — FEM-like rows."""
    import scipy.sparse as sp

    n = _grid_side_2d(dim)
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    t = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    eye = sp.identity(n, format="csr")
    a = (
        sp.kron(eye, t, format="csr")
        + sp.kron(t, eye, format="csr")
        + 0.5 * sp.kron(t, t, format="csr")
    )
    return from_scipy(a, name=name)


def _spd_aniso_hard(dim: int, *, anisotropy: float, name: str) -> CsrMatrix:
    """Strongly anisotropic SPD operator: very slow GMRES(50) convergence.

    Stands in for matrices like ``SiO2`` whose double-precision GMRES needs
    many thousands of iterations.
    """
    return _spd_5pt(dim, anisotropy=anisotropy, name=name)


def _spd_biharmonic(dim: int, *, name: str) -> CsrMatrix:
    """Squared 2D Laplacian (13-point biharmonic-like stencil).

    Its condition number is the *square* of the Laplacian's, which is the
    property needed to emulate ``parabolic_fem``: the problem is so
    ill-conditioned that the fp32 inner solver of GMRES-IR makes markedly
    less progress per cycle than the fp64 solver, so GMRES-IR needs
    disproportionately more iterations (the paper reports a 0.92× "speedup",
    i.e. a slowdown, on this matrix).
    """
    import scipy.sparse as sp

    n = _grid_side_2d(dim)
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    t = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    eye = sp.identity(n, format="csr")
    lap = sp.kron(eye, t, format="csr") + sp.kron(t, eye, format="csr")
    return from_scipy((lap @ lap).tocsr(), name=name)


def _line_block_spd(dim: int, *, line: int, anisotropy: float, name: str) -> CsrMatrix:
    """SPD operator whose natural blocks are grid lines of length ``line``.

    A 2D Laplacian on an ``line × (dim/line)`` grid with the strong coupling
    along the line direction: contiguous blocks of ``line`` rows are exactly
    the grid lines, so block Jacobi with that block size (the paper's
    ``J 42`` for ``hood``) captures the strong couplings, while convergence
    is still governed by the many weakly coupled lines.
    """
    import scipy.sparse as sp

    n_lines = max(4, dim // line)
    main_x = 2.0 * np.ones(line)
    off_x = -1.0 * np.ones(line - 1)
    tx = sp.diags([off_x, main_x, off_x], [-1, 0, 1], format="csr")
    main_y = 2.0 * np.ones(n_lines)
    off_y = -1.0 * np.ones(n_lines - 1)
    ty = sp.diags([off_y, main_y, off_y], [-1, 0, 1], format="csr")
    eye_x = sp.identity(line, format="csr")
    eye_y = sp.identity(n_lines, format="csr")
    # Row-major numbering with the line index fastest → contiguous line blocks.
    a = anisotropy * sp.kron(eye_y, tx, format="csr") + sp.kron(ty, eye_x, format="csr")
    return from_scipy(a, name=name)


def _nonsym_convdiff(dim: int, *, peclet_velocity: float, name: str) -> CsrMatrix:
    """Nonsymmetric convection–diffusion proxy with tunable difficulty."""
    n = _grid_side_2d(dim)
    return convection_diffusion_2d(
        n,
        n,
        epsilon=1.0,
        velocity=(peclet_velocity, 0.3 * peclet_velocity),
        scheme="central",
        name=name,
    )


def _nonsym_3d(dim: int, *, drift: float, name: str) -> CsrMatrix:
    """Mildly nonsymmetric 3D operator (7-point Laplacian plus directional drift)."""
    base = laplace3d(_grid_side_3d(dim), name=name)
    # Introduce nonsymmetry by shifting the east/west couplings.
    rows = base.row_index_of_nonzeros()
    cols = base.indices.astype(np.int64)
    data = base.data.copy()
    east = cols == rows + 1
    west = cols == rows - 1
    data[east] += drift
    data[west] -= drift
    return CsrMatrix(data, base.indices, base.indptr, base.shape, name=name, check=False)


def _block_structured_spd(dim: int, *, block: int, coupling: float, name: str) -> CsrMatrix:
    """SPD operator with strong couplings inside contiguous blocks.

    Emulates the multi-dof-per-node structure of structural-mechanics
    matrices such as ``hood``: block Jacobi with the matching block size
    captures most of the matrix, Jacobi with block size 1 does not.
    """
    import scipy.sparse as sp

    n_blocks = max(2, dim // block)
    n = n_blocks * block
    rng = np.random.default_rng(1266)  # UF id of hood, for reproducibility
    # Dense-ish SPD blocks on the diagonal.
    diag_blocks = []
    for _ in range(n_blocks):
        m = rng.standard_normal((block, block)) * 0.3
        b = m @ m.T + block * np.eye(block)
        diag_blocks.append(sp.csr_matrix(b))
    a = sp.block_diag(diag_blocks, format="lil")
    # Weak coupling between neighbouring blocks (first dof of each block).
    idx = np.arange(0, n - block, block)
    a[idx, idx + block] = -coupling
    a[idx + block, idx] = -coupling
    return from_scipy(sp.csr_matrix(a), name=name)


# ---------------------------------------------------------------------- #
# the Table III roster                                                   #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProxySpec:
    """One Table III matrix: original statistics plus the proxy recipe.

    Attributes mirror the columns of Table III; ``paper_*`` fields hold the
    values the paper reports for GMRES double and GMRES-IR so experiment
    reports can show paper-vs-measured side by side.
    """

    name: str
    uf_id: Optional[int]
    original_n: int
    original_nnz: int
    symmetry: str                       # "n", "y" or "spd" as in the table
    preconditioner: Optional[Tuple[str, int]]  # ("jacobi", 1) / ("block_jacobi", 42) / ("poly", 25)
    paper_double_time: float
    paper_double_iters: int
    paper_ir_time: float
    paper_ir_iters: int
    paper_speedup: float
    builder: Callable[[int], CsrMatrix]
    default_dim: int
    scaled_prec_param: Optional[int] = None
    notes: str = ""

    def build(self, dim: Optional[int] = None) -> CsrMatrix:
        """Construct the proxy matrix with roughly ``dim`` unknowns."""
        return self.builder(dim or self.default_dim)

    def preconditioner_at_scale(self) -> Optional[Tuple[str, int]]:
        """The preconditioner assignment with its parameter scaled to the proxy.

        Polynomial degrees that are tuned to the original matrix's difficulty
        would over-precondition the (much easier) scaled proxy and collapse
        the iteration count into a single restart cycle; ``scaled_prec_param``
        holds the degree/block size appropriate at proxy scale.  Block sizes
        and point-Jacobi are structural and are never rescaled.
        """
        if self.preconditioner is None:
            return None
        kind, param = self.preconditioner
        if self.scaled_prec_param is not None:
            param = self.scaled_prec_param
        return kind, param


def _spec_builders() -> List[ProxySpec]:
    return [
        ProxySpec(
            name="atmosmodj",
            uf_id=2266,
            original_n=1_270_432,
            original_nnz=8_814_880,
            symmetry="n",
            preconditioner=None,
            paper_double_time=5.12,
            paper_double_iters=1740,
            paper_ir_time=3.78,
            paper_ir_iters=1750,
            paper_speedup=1.35,
            builder=lambda dim: _nonsym_3d(dim, drift=0.55, name="atmosmodj-proxy"),
            default_dim=17576,
            notes="3D atmospheric model: mildly nonsymmetric 7-point operator.",
        ),
        ProxySpec(
            name="Dubcova3",
            uf_id=1849,
            original_n=146_698,
            original_nnz=3_636_643,
            symmetry="spd",
            preconditioner=None,
            paper_double_time=1.15,
            paper_double_iters=1131,
            paper_ir_time=1.05,
            paper_ir_iters=1150,
            paper_speedup=1.10,
            builder=lambda dim: _spd_9pt(dim, name="Dubcova3-proxy"),
            default_dim=4900,
            notes="FEM Laplacian with denser rows: 9-point SPD proxy.",
        ),
        ProxySpec(
            name="stomach",
            uf_id=895,
            original_n=213_360,
            original_nnz=3_021_648,
            symmetry="n",
            preconditioner=None,
            paper_double_time=0.51,
            paper_double_iters=359,
            paper_ir_time=0.52,
            paper_ir_iters=400,
            paper_speedup=0.98,
            builder=lambda dim: _nonsym_convdiff(dim, peclet_velocity=3.0, name="stomach-proxy"),
            default_dim=1600,
            notes="Easy nonsymmetric problem: converges in a few hundred iterations.",
        ),
        ProxySpec(
            name="SiO2",
            uf_id=1367,
            original_n=155_331,
            original_nnz=11_283_503,
            symmetry="y",
            preconditioner=None,
            paper_double_time=18.23,
            paper_double_iters=17385,
            paper_ir_time=16.86,
            paper_ir_iters=17600,
            paper_speedup=1.08,
            builder=lambda dim: _spd_aniso_hard(dim, anisotropy=220.0, name="SiO2-proxy"),
            default_dim=10000,
            notes="Hard symmetric problem needing many thousands of iterations.",
        ),
        ProxySpec(
            name="parabolic_fem",
            uf_id=1853,
            original_n=525_825,
            original_nnz=3_674_625,
            symmetry="spd",
            preconditioner=None,
            paper_double_time=41.77,
            paper_double_iters=27493,
            paper_ir_time=45.34,
            paper_ir_iters=36600,
            paper_speedup=0.92,
            builder=lambda dim: _spd_aniso_hard(dim, anisotropy=600.0, name="parabolic_fem-proxy"),
            default_dim=10000,
            notes=(
                "Hardest SPD problem in the proxy set (thousands of iterations). "
                "Known mismatch: the paper's 0.92x slowdown (GMRES-IR diverging "
                "from GMRES double, flagged by the authors for further "
                "investigation) arises in a 27k-iteration regime with ~0.3% "
                "residual reduction per cycle, which is unreachable at proxy "
                "scale; the proxy lands in the same difficulty bucket but shows "
                "a normal IR speedup.  See EXPERIMENTS.md."
            ),
        ),
        ProxySpec(
            name="lung2",
            uf_id=894,
            original_n=109_460,
            original_nnz=492_564,
            symmetry="n",
            preconditioner=("jacobi", 1),
            paper_double_time=0.46,
            paper_double_iters=206,
            paper_ir_time=0.49,
            paper_ir_iters=250,
            paper_speedup=0.94,
            builder=lambda dim: _nonsym_convdiff(dim, peclet_velocity=2.0, name="lung2-proxy"),
            default_dim=1296,
            notes="Easy nonsymmetric problem, point-Jacobi preconditioned (J 1).",
        ),
        ProxySpec(
            name="hood",
            uf_id=1266,
            original_n=220_542,
            original_nnz=9_895_422,
            symmetry="spd",
            preconditioner=("block_jacobi", 42),
            paper_double_time=13.98,
            paper_double_iters=5762,
            paper_ir_time=9.04,
            paper_ir_iters=5000,
            paper_speedup=1.55,
            builder=lambda dim: _line_block_spd(
                dim, line=42, anisotropy=50.0, name="hood-proxy"
            ),
            default_dim=8400,
            notes="Structural-mechanics proxy with 42-wide diagonal blocks (J 42 after RCM).",
        ),
        ProxySpec(
            name="cfd2",
            uf_id=805,
            original_n=123_440,
            original_nnz=3_085_406,
            symmetry="spd",
            preconditioner=("poly", 25),
            paper_double_time=6.05,
            paper_double_iters=1092,
            paper_ir_time=4.55,
            paper_ir_iters=1100,
            paper_speedup=1.33,
            builder=lambda dim: _spd_5pt(dim, anisotropy=25.0, name="cfd2-proxy"),
            default_dim=10000,
            scaled_prec_param=8,
            notes="Moderately hard SPD problem, degree-25 polynomial preconditioner.",
        ),
        ProxySpec(
            name="Transport",
            uf_id=2649,
            original_n=1_602_111,
            original_nnz=23_487_281,
            symmetry="n",
            preconditioner=("poly", 25),
            paper_double_time=8.35,
            paper_double_iters=339,
            paper_ir_time=8.73,
            paper_ir_iters=450,
            paper_speedup=0.96,
            builder=lambda dim: _nonsym_convdiff(dim, peclet_velocity=400.0, name="Transport-proxy"),
            default_dim=6400,
            scaled_prec_param=8,
            notes="Easy-with-preconditioning nonsymmetric transport problem (p 25).",
        ),
        ProxySpec(
            name="filter3D",
            uf_id=1431,
            original_n=106_437,
            original_nnz=2_707_179,
            symmetry="y",
            preconditioner=("poly", 25),
            paper_double_time=25.24,
            paper_double_iters=4449,
            paper_ir_time=18.12,
            paper_ir_iters=4450,
            paper_speedup=1.39,
            builder=lambda dim: _spd_aniso_hard(dim, anisotropy=1000.0, name="filter3D-proxy"),
            default_dim=10000,
            scaled_prec_param=4,
            notes="Hard symmetric problem, degree-25 polynomial preconditioner.",
        ),
    ]


PROXY_SPECS: Dict[str, ProxySpec] = {spec.name: spec for spec in _spec_builders()}


def list_proxies() -> List[str]:
    """Names of all Table III proxies, in the table's order."""
    return list(PROXY_SPECS)


def build_proxy(name: str, dim: Optional[int] = None) -> CsrMatrix:
    """Build the proxy matrix for the named Table III entry."""
    if name not in PROXY_SPECS:
        raise KeyError(f"unknown proxy {name!r}; known: {list(PROXY_SPECS)}")
    return PROXY_SPECS[name].build(dim)
