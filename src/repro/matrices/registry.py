"""Name → problem registry used by experiments, examples and benchmarks.

Looks up both the Galeri-style PDE problems (by the names the paper uses,
e.g. ``"BentPipe2D"``, ``"Laplace3D"``) and the Table III SuiteSparse
proxies.  Each record bundles the generator with the paper's reference
statistics so reports can print paper-vs-measured rows without duplicating
the numbers in every experiment module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sparse.csr import CsrMatrix
from . import galeri
from .suitesparse_proxies import PROXY_SPECS

__all__ = ["ProblemRecord", "get_problem", "list_problems"]


@dataclass(frozen=True)
class ProblemRecord:
    """A named test problem.

    ``builder(size)`` constructs the matrix; ``size`` means grid points per
    side for the PDE problems and total unknowns for the proxies.
    ``paper_size`` records the size used in the paper (same units).
    """

    name: str
    kind: str  # "galeri" or "suitesparse-proxy"
    builder: Callable[[int], CsrMatrix]
    default_size: int
    paper_size: Optional[int] = None
    symmetry: str = "n"
    description: str = ""


def _galeri_records() -> List[ProblemRecord]:
    return [
        ProblemRecord(
            name="Laplace2D",
            kind="galeri",
            builder=lambda n: galeri.laplace2d(n),
            default_size=64,
            paper_size=None,
            symmetry="spd",
            description="5-point 2D Poisson operator.",
        ),
        ProblemRecord(
            name="Laplace3D",
            kind="galeri",
            builder=lambda n: galeri.laplace3d(n),
            default_size=24,
            paper_size=150,
            symmetry="spd",
            description="7-point 3D Poisson operator (Laplace3D150/200 in the paper).",
        ),
        ProblemRecord(
            name="UniFlow2D",
            kind="galeri",
            builder=lambda n: galeri.uniflow2d(n),
            default_size=96,
            paper_size=2500,
            symmetry="n",
            description="Uniform-flow convection-diffusion (UniFlow2D2500).",
        ),
        ProblemRecord(
            name="BentPipe2D",
            kind="galeri",
            builder=lambda n: galeri.bentpipe2d(n),
            default_size=96,
            paper_size=1500,
            symmetry="n",
            description="Recirculating convection-dominated flow (BentPipe2D1500).",
        ),
        ProblemRecord(
            name="Stretched2D",
            kind="galeri",
            builder=lambda n: galeri.stretched2d(n),
            default_size=96,
            paper_size=1500,
            symmetry="spd",
            description="Stretched-grid Laplacian (Stretched2D1500); needs preconditioning.",
        ),
    ]


def _registry() -> Dict[str, ProblemRecord]:
    records = {rec.name.lower(): rec for rec in _galeri_records()}
    for spec in PROXY_SPECS.values():
        records[spec.name.lower()] = ProblemRecord(
            name=spec.name,
            kind="suitesparse-proxy",
            builder=spec.build,
            default_size=spec.default_dim,
            paper_size=spec.original_n,
            symmetry=spec.symmetry,
            description=spec.notes,
        )
    return records


_RECORDS = _registry()


def list_problems(kind: Optional[str] = None) -> List[str]:
    """All registered problem names, optionally filtered by kind."""
    return [
        rec.name
        for rec in _RECORDS.values()
        if kind is None or rec.kind == kind
    ]


def get_problem(name: str) -> ProblemRecord:
    """Look up a problem record by (case-insensitive) name."""
    key = name.lower()
    if key not in _RECORDS:
        raise KeyError(f"unknown problem {name!r}; known: {sorted(r.name for r in _RECORDS.values())}")
    return _RECORDS[key]
