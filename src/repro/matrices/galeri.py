"""Galeri-style PDE test problems.

These reproduce the finite-difference test problems the paper generates
with the Trilinos Galeri package (Section V):

* :func:`laplace2d` / :func:`laplace3d` — the standard 5-/7-point Poisson
  operators (``Laplace3D150``, ``Laplace3D200`` in the paper).
* :func:`uniflow2d` — convection–diffusion with a uniform flow field
  (``UniFlow2D2500``).
* :func:`bentpipe2d` — convection-dominated recirculating ("bent pipe")
  flow; strongly nonsymmetric and ill-conditioned (``BentPipe2D1500``).
* :func:`stretched2d` — Laplacian on a grid stretched in one direction,
  giving a large condition number; GMRES(50) cannot converge on it without
  preconditioning (``Stretched2D1500``).

The paper runs grid sizes of 150–2500 points per side (up to 6.25M
unknowns).  Those sizes are far beyond what pure-Python numerics can sweep
in reasonable wall time, so the experiment harness uses scaled-down grids;
the generators take the grid size as a parameter and the *character* of
each problem (symmetry, convection dominance, conditioning) is independent
of the grid size.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..sparse.csr import CsrMatrix
from .stencil import assemble_stencil_2d, assemble_stencil_3d, grid_shape_2d, grid_shape_3d

__all__ = [
    "laplace2d",
    "laplace3d",
    "uniflow2d",
    "bentpipe2d",
    "stretched2d",
    "convection_diffusion_2d",
]


# ---------------------------------------------------------------------- #
# Laplacians                                                             #
# ---------------------------------------------------------------------- #
def laplace2d(nx: int, ny: int | None = None, *, name: str | None = None) -> CsrMatrix:
    """Standard 5-point 2D Laplacian (SPD) with Dirichlet boundaries.

    The operator is scaled by ``h^2`` (entries 4 and -1), as Galeri does.
    """
    nx, ny = grid_shape_2d(nx, ny)
    center = np.full((ny, nx), 4.0)
    off = np.full((ny, nx), -1.0)
    matrix = assemble_stencil_2d(center, off, off, off, off, name=name or f"Laplace2D{nx}")
    return matrix


def laplace3d(
    nx: int, ny: int | None = None, nz: int | None = None, *, name: str | None = None
) -> CsrMatrix:
    """Standard 7-point 3D Laplacian (SPD) with Dirichlet boundaries."""
    nx, ny, nz = grid_shape_3d(nx, ny, nz)
    shape = (nz, ny, nx)
    coeffs = {
        "center": np.full(shape, 6.0),
        "east": np.full(shape, -1.0),
        "west": np.full(shape, -1.0),
        "north": np.full(shape, -1.0),
        "south": np.full(shape, -1.0),
        "up": np.full(shape, -1.0),
        "down": np.full(shape, -1.0),
    }
    return assemble_stencil_3d(coeffs, name=name or f"Laplace3D{nx}")


# ---------------------------------------------------------------------- #
# Convection–diffusion                                                   #
# ---------------------------------------------------------------------- #
def convection_diffusion_2d(
    nx: int,
    ny: int | None = None,
    *,
    epsilon: float = 1.0,
    velocity: Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]] | Tuple[float, float] = (1.0, 0.0),
    scheme: str = "central",
    name: str = "ConvDiff2D",
) -> CsrMatrix:
    """General 2D convection–diffusion operator ``-eps * Lap(u) + v . grad(u)``.

    Parameters
    ----------
    nx, ny:
        Interior grid points per direction on the unit square (``h = 1/(n+1)``).
    epsilon:
        Diffusion coefficient.  Small ``epsilon`` relative to the velocity
        magnitude gives a convection-dominated, strongly nonsymmetric
        operator.
    velocity:
        Either a constant ``(vx, vy)`` tuple or a callable
        ``velocity(x, y) -> (vx, vy)`` evaluated at the grid nodes
        (arrays of shape ``(ny, nx)``).
    scheme:
        ``"central"`` (second order, can oscillate at high cell Péclet
        number — this is what produces the ill-conditioned, hard systems
        the paper uses) or ``"upwind"`` (first order, diagonally dominant).
    name:
        Matrix name for reports.

    The assembled operator is scaled by ``h**2`` so the diffusion part
    matches the classical (4, -1) stencil scaling.
    """
    nx, ny = grid_shape_2d(nx, ny)
    h = 1.0 / (nx + 1)
    hy = 1.0 / (ny + 1)
    x = (np.arange(1, nx + 1) * h)[None, :].repeat(ny, axis=0)
    y = (np.arange(1, ny + 1) * hy)[:, None].repeat(nx, axis=1)
    if callable(velocity):
        vx, vy = velocity(x, y)
        vx = np.broadcast_to(np.asarray(vx, dtype=np.float64), (ny, nx)).copy()
        vy = np.broadcast_to(np.asarray(vy, dtype=np.float64), (ny, nx)).copy()
    else:
        vx = np.full((ny, nx), float(velocity[0]))
        vy = np.full((ny, nx), float(velocity[1]))

    # Work with the operator multiplied by h^2 (Galeri-style scaling).
    diff = epsilon
    if scheme == "central":
        center = np.full((ny, nx), 4.0 * diff)
        east = -diff + vx * h / 2.0
        west = -diff - vx * h / 2.0
        north = -diff + vy * h / 2.0
        south = -diff - vy * h / 2.0
    elif scheme == "upwind":
        vxp = np.maximum(vx, 0.0)
        vxm = np.minimum(vx, 0.0)
        vyp = np.maximum(vy, 0.0)
        vym = np.minimum(vy, 0.0)
        center = 4.0 * diff + (vxp - vxm + vyp - vym) * h
        east = -diff + vxm * h
        west = -diff - vxp * h
        north = -diff + vym * h
        south = -diff - vyp * h
    else:
        raise ValueError(f"unknown scheme {scheme!r}; use 'central' or 'upwind'")

    east = np.broadcast_to(east, (ny, nx))
    west = np.broadcast_to(west, (ny, nx))
    north = np.broadcast_to(north, (ny, nx))
    south = np.broadcast_to(south, (ny, nx))
    return assemble_stencil_2d(center, east, west, north, south, name=name)


def uniflow2d(
    nx: int,
    ny: int | None = None,
    *,
    epsilon: float = 1.0,
    velocity_magnitude: float = 50.0,
    name: str | None = None,
) -> CsrMatrix:
    """The paper's ``UniFlow2D`` problem: convection–diffusion, uniform flow.

    A constant velocity field of magnitude ``velocity_magnitude`` pointing
    along ``(1, 1)/sqrt(2)`` over unit diffusion (defaults chosen so the
    operator is nonsymmetric but not convection-*dominated*, matching the
    paper's description of UniFlow as easier than BentPipe at the same grid
    size).
    """
    nx, ny = grid_shape_2d(nx, ny)
    v = velocity_magnitude / np.sqrt(2.0)
    return convection_diffusion_2d(
        nx,
        ny,
        epsilon=epsilon,
        velocity=(v, v),
        scheme="central",
        name=name or f"UniFlow2D{nx}",
    )


def bentpipe2d(
    nx: int,
    ny: int | None = None,
    *,
    epsilon: float = 1.0,
    velocity_magnitude: float = 400.0,
    name: str | None = None,
) -> CsrMatrix:
    """The paper's ``BentPipe2D`` problem: recirculating, convection-dominated flow.

    The velocity field is a single vortex ("bent pipe" recirculation)

    .. math::
        v_x = V \\cdot 4 y (1 - 2x), \\qquad v_y = -V \\cdot 4 x (1 - 2y)

    over the unit square, discretised with central differences.  With the
    default magnitude the cell Péclet number is well above 1, so the matrix
    is strongly nonsymmetric and ill-conditioned — the paper describes the
    underlying PDE as "strongly convection-dominated".  This is the problem
    on which fp32 GMRES stagnates near 1e-6 and fp64 GMRES(50) needs many
    thousands of iterations.
    """
    nx, ny = grid_shape_2d(nx, ny)

    def vortex(x: np.ndarray, y: np.ndarray):
        vx = velocity_magnitude * 4.0 * y * (1.0 - 2.0 * x)
        vy = -velocity_magnitude * 4.0 * x * (1.0 - 2.0 * y)
        return vx, vy

    return convection_diffusion_2d(
        nx,
        ny,
        epsilon=epsilon,
        velocity=vortex,
        scheme="central",
        name=name or f"BentPipe2D{nx}",
    )


# ---------------------------------------------------------------------- #
# Stretched-grid Laplacian                                               #
# ---------------------------------------------------------------------- #
def stretched2d(
    nx: int,
    ny: int | None = None,
    *,
    stretch: float = 64.0,
    name: str | None = None,
) -> CsrMatrix:
    """The paper's ``Stretched2D`` problem: SPD Laplacian on a stretched grid.

    The grid spacing in the ``y`` direction is ``stretch`` times larger than
    in ``x``, i.e. the discrete operator is the anisotropic Laplacian

    .. math:: -u_{xx} - \\frac{1}{\\mathrm{stretch}^2} u_{yy}

    scaled by ``h^2``.  The condition number grows with both the grid size
    and the stretch factor; at the paper's settings GMRES(50) cannot
    converge without preconditioning, which is why this matrix is used for
    the polynomial-preconditioning study (Figures 6 and 7).
    """
    nx, ny = grid_shape_2d(nx, ny)
    if stretch <= 0:
        raise ValueError("stretch must be positive")
    wy = 1.0 / (stretch * stretch)
    center = np.full((ny, nx), 2.0 + 2.0 * wy)
    ew = np.full((ny, nx), -1.0)
    ns = np.full((ny, nx), -wy)
    return assemble_stencil_2d(center, ew, ew, ns, ns, name=name or f"Stretched2D{nx}")
