"""Test-problem generators.

Two families, mirroring the paper's evaluation:

* :mod:`repro.matrices.galeri` — finite-difference PDE problems generated
  the way the paper generates them with the Trilinos Galeri package:
  Laplace2D/3D, UniFlow2D (uniform-flow convection–diffusion), BentPipe2D
  (recirculating, convection-dominated flow) and Stretched2D (Laplacian on
  a stretched grid).
* :mod:`repro.matrices.suitesparse_proxies` — synthetic stand-ins for the
  SuiteSparse matrices of Table III (no network access to the collection
  here); each proxy documents the original matrix's statistics and
  reproduces its structural profile (symmetry, nonzeros per row, relative
  difficulty) at a reduced dimension.

:mod:`repro.matrices.registry` maps problem names to generators so the
experiment harness and benchmarks can look problems up by the names used in
the paper.
"""

from .stencil import assemble_stencil_2d, assemble_stencil_3d, grid_shape_2d, grid_shape_3d
from .galeri import (
    laplace2d,
    laplace3d,
    uniflow2d,
    bentpipe2d,
    stretched2d,
    convection_diffusion_2d,
)
from .suitesparse_proxies import ProxySpec, PROXY_SPECS, build_proxy, list_proxies
from .registry import get_problem, list_problems, ProblemRecord

__all__ = [
    "assemble_stencil_2d",
    "assemble_stencil_3d",
    "grid_shape_2d",
    "grid_shape_3d",
    "laplace2d",
    "laplace3d",
    "uniflow2d",
    "bentpipe2d",
    "stretched2d",
    "convection_diffusion_2d",
    "ProxySpec",
    "PROXY_SPECS",
    "build_proxy",
    "list_proxies",
    "get_problem",
    "list_problems",
    "ProblemRecord",
]
