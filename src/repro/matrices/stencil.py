"""Finite-difference stencil assembly on structured grids.

The paper's PDE test problems are generated "with finite difference
stencils via the Trilinos Galeri package"; these helpers play that role.
Assembly is fully vectorised: coefficient arrays are laid out over the grid,
neighbour links that would leave the domain are dropped (homogeneous
Dirichlet boundaries), and the triplets go through
:func:`repro.sparse.ops.coo_to_csr`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = [
    "grid_shape_2d",
    "grid_shape_3d",
    "assemble_stencil_2d",
    "assemble_stencil_3d",
]


def grid_shape_2d(nx: int, ny: int | None = None) -> Tuple[int, int]:
    """Normalise a 2D grid request (``ny`` defaults to ``nx``)."""
    if nx <= 0:
        raise ValueError("nx must be positive")
    ny = nx if ny is None else ny
    if ny <= 0:
        raise ValueError("ny must be positive")
    return nx, ny


def grid_shape_3d(nx: int, ny: int | None = None, nz: int | None = None) -> Tuple[int, int, int]:
    """Normalise a 3D grid request (``ny``/``nz`` default to ``nx``)."""
    if nx <= 0:
        raise ValueError("nx must be positive")
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if ny <= 0 or nz <= 0:
        raise ValueError("ny and nz must be positive")
    return nx, ny, nz


def _node_ids_2d(nx: int, ny: int) -> np.ndarray:
    """Unknown numbering: row-major over (iy, ix)."""
    return np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)


def assemble_stencil_2d(
    center: np.ndarray,
    east: np.ndarray,
    west: np.ndarray,
    north: np.ndarray,
    south: np.ndarray,
    *,
    name: str = "stencil2d",
) -> CsrMatrix:
    """Assemble a 5-point operator from per-node link coefficients.

    All arrays have shape ``(ny, nx)``; entry ``[iy, ix]`` of ``east`` is the
    coefficient coupling node ``(ix, iy)`` to its eastern neighbour
    ``(ix+1, iy)``, and so on.  Couplings across the boundary are dropped
    (homogeneous Dirichlet conditions), which is also how Galeri's
    ``Cross2D`` stencils behave.

    Returns a float64 :class:`CsrMatrix` of dimension ``nx*ny``.
    """
    center = np.asarray(center, dtype=np.float64)
    ny, nx = center.shape
    for arr, label in ((east, "east"), (west, "west"), (north, "north"), (south, "south")):
        if np.asarray(arr).shape != (ny, nx):
            raise ValueError(f"{label} coefficient array must have shape {(ny, nx)}")
    ids = _node_ids_2d(nx, ny)
    n = nx * ny

    rows = [ids.ravel()]
    cols = [ids.ravel()]
    vals = [center.ravel()]

    east = np.asarray(east, dtype=np.float64)
    west = np.asarray(west, dtype=np.float64)
    north = np.asarray(north, dtype=np.float64)
    south = np.asarray(south, dtype=np.float64)

    # east neighbour (ix+1): valid for ix < nx-1
    rows.append(ids[:, :-1].ravel())
    cols.append(ids[:, 1:].ravel())
    vals.append(east[:, :-1].ravel())
    # west neighbour (ix-1): valid for ix > 0
    rows.append(ids[:, 1:].ravel())
    cols.append(ids[:, :-1].ravel())
    vals.append(west[:, 1:].ravel())
    # north neighbour (iy+1): valid for iy < ny-1
    rows.append(ids[:-1, :].ravel())
    cols.append(ids[1:, :].ravel())
    vals.append(north[:-1, :].ravel())
    # south neighbour (iy-1): valid for iy > 0
    rows.append(ids[1:, :].ravel())
    cols.append(ids[:-1, :].ravel())
    vals.append(south[1:, :].ravel())

    return CsrMatrix.from_coo(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals), (n, n), name=name
    )


def assemble_stencil_3d(
    coefficients: Dict[str, np.ndarray],
    *,
    name: str = "stencil3d",
) -> CsrMatrix:
    """Assemble a 7-point operator from per-node link coefficients.

    ``coefficients`` maps the keys ``"center", "east", "west", "north",
    "south", "up", "down"`` to arrays of shape ``(nz, ny, nx)``.  Boundary
    couplings are dropped (homogeneous Dirichlet).
    """
    required = {"center", "east", "west", "north", "south", "up", "down"}
    missing = required - coefficients.keys()
    if missing:
        raise ValueError(f"missing stencil coefficients: {sorted(missing)}")
    center = np.asarray(coefficients["center"], dtype=np.float64)
    nz, ny, nx = center.shape
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in coefficients.items()}
    for key, arr in arrays.items():
        if arr.shape != (nz, ny, nx):
            raise ValueError(f"{key} coefficient array must have shape {(nz, ny, nx)}")
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    n = nx * ny * nz

    rows = [ids.ravel()]
    cols = [ids.ravel()]
    vals = [center.ravel()]

    # x-direction
    rows.append(ids[:, :, :-1].ravel())
    cols.append(ids[:, :, 1:].ravel())
    vals.append(arrays["east"][:, :, :-1].ravel())
    rows.append(ids[:, :, 1:].ravel())
    cols.append(ids[:, :, :-1].ravel())
    vals.append(arrays["west"][:, :, 1:].ravel())
    # y-direction
    rows.append(ids[:, :-1, :].ravel())
    cols.append(ids[:, 1:, :].ravel())
    vals.append(arrays["north"][:, :-1, :].ravel())
    rows.append(ids[:, 1:, :].ravel())
    cols.append(ids[:, :-1, :].ravel())
    vals.append(arrays["south"][:, 1:, :].ravel())
    # z-direction
    rows.append(ids[:-1, :, :].ravel())
    cols.append(ids[1:, :, :].ravel())
    vals.append(arrays["up"][:-1, :, :].ravel())
    rows.append(ids[1:, :, :].ravel())
    cols.append(ids[:-1, :, :].ravel())
    vals.append(arrays["down"][1:, :, :].ravel())

    return CsrMatrix.from_coo(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals), (n, n), name=name
    )
