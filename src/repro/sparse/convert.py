"""Conversions between :class:`~repro.sparse.csr.CsrMatrix`, SciPy sparse
matrices and precisions.

SciPy is used only at the boundaries (test oracles, problem import/export);
the solve path runs entirely on the library's own CSR kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..precision import as_precision
from .csr import CsrMatrix

__all__ = ["from_scipy", "to_scipy", "to_precision"]


def from_scipy(matrix, *, name: str = "", precision=None) -> CsrMatrix:
    """Build a :class:`CsrMatrix` from any SciPy sparse matrix.

    Parameters
    ----------
    matrix:
        Any ``scipy.sparse`` matrix (converted to CSR, duplicates summed).
    name:
        Optional problem name carried on the result.
    precision:
        Target value precision (default: keep the input dtype).
    """
    import scipy.sparse as sp

    csr = sp.csr_matrix(matrix)
    csr.sum_duplicates()
    csr.sort_indices()
    data = csr.data
    if precision is not None:
        data = as_precision(precision).astype(data)
    return CsrMatrix(
        data,
        csr.indices,
        csr.indptr,
        csr.shape,
        name=name,
    )


def to_scipy(matrix: CsrMatrix):
    """Convert to ``scipy.sparse.csr_matrix`` (values may be copied by SciPy)."""
    import scipy.sparse as sp

    return sp.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
    )


def to_precision(matrix: CsrMatrix, precision, *, meter: bool = False) -> CsrMatrix:
    """Copy of ``matrix`` with values in the requested precision.

    With ``meter=True`` the conversion cost is charged to the active
    :class:`~repro.perfmodel.timer.KernelTimer` under the ``"Matrix copy"``
    label.  The paper *excludes* the one-time fp64→fp32 matrix copy from
    GMRES-IR solve times, so the solvers call this with ``meter=False`` and
    the experiment harness can meter it separately when reporting setup
    costs.
    """
    prec = as_precision(precision)
    out = matrix.astype(prec)
    if meter and out is not matrix:
        from ..linalg.kernels import meter_cast

        meter_cast(
            n=matrix.nnz,
            from_bytes=matrix.dtype.itemsize,
            to_bytes=prec.bytes,
            label="Matrix copy",
        )
    return out
