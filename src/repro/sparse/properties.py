"""Structural and numerical matrix properties.

These feed three places:

* the **performance model** (bandwidth and nonzeros-per-row drive the SpMV
  cache-reuse estimate of Section V-D),
* the **experiment reports** (Table III lists N, NNZ and symmetry for every
  matrix), and
* sanity checks in the matrix generators and proxies.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix

__all__ = [
    "bandwidth",
    "avg_nonzeros_per_row",
    "max_nonzeros_per_row",
    "is_structurally_symmetric",
    "is_numerically_symmetric",
    "diagonal_dominance_ratio",
    "symmetry_class",
]


def bandwidth(matrix: CsrMatrix) -> int:
    """Matrix bandwidth ``max |i - j|`` over stored nonzeros."""
    return matrix.bandwidth()


def avg_nonzeros_per_row(matrix: CsrMatrix) -> float:
    """Average number of stored nonzeros per row (the ``w`` of Section V-D)."""
    if matrix.n_rows == 0:
        return 0.0
    return matrix.nnz / matrix.n_rows


def max_nonzeros_per_row(matrix: CsrMatrix) -> int:
    """Maximum number of stored nonzeros in any row."""
    if matrix.n_rows == 0:
        return 0
    return int(matrix.nnz_per_row().max())


def _sorted_triplets(matrix: CsrMatrix):
    rows = matrix.row_index_of_nonzeros()
    cols = matrix.indices.astype(np.int64)
    order = np.lexsort((cols, rows))
    return rows[order], cols[order], matrix.data[order]


def is_structurally_symmetric(matrix: CsrMatrix) -> bool:
    """True if the nonzero *pattern* is symmetric (values may differ)."""
    if not matrix.is_square:
        return False
    rows, cols, _ = _sorted_triplets(matrix)
    order_t = np.lexsort((rows, cols))
    return bool(
        np.array_equal(rows, cols[order_t]) and np.array_equal(cols, rows[order_t])
    )


def is_numerically_symmetric(matrix: CsrMatrix, rtol: float = 1e-12) -> bool:
    """True if ``A`` equals ``A^T`` up to a relative tolerance."""
    if not matrix.is_square:
        return False
    rows, cols, vals = _sorted_triplets(matrix)
    order_t = np.lexsort((rows, cols))
    rows_t, cols_t, vals_t = cols[order_t], rows[order_t], vals[order_t]
    if not (np.array_equal(rows, rows_t) and np.array_equal(cols, cols_t)):
        return False
    scale = np.max(np.abs(vals)) if vals.size else 1.0
    return bool(np.allclose(vals, vals_t, rtol=rtol, atol=rtol * max(scale, 1.0)))


def diagonal_dominance_ratio(matrix: CsrMatrix) -> float:
    """Minimum over rows of ``|a_ii| / sum_{j != i} |a_ij|``.

    Values ≥ 1 indicate (weak) diagonal dominance; small values flag rows
    where Jacobi-type preconditioning is weak.  Rows with an empty
    off-diagonal part contribute ``inf``.
    """
    if not matrix.is_square or matrix.n_rows == 0:
        raise ValueError("diagonal dominance is defined for non-empty square matrices")
    rows = matrix.row_index_of_nonzeros()
    cols = matrix.indices.astype(np.int64)
    absval = np.abs(matrix.data.astype(np.float64))
    diag = np.zeros(matrix.n_rows)
    on_diag = rows == cols
    diag[rows[on_diag]] = absval[on_diag]
    offsum = np.bincount(
        rows[~on_diag], weights=absval[~on_diag], minlength=matrix.n_rows
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(offsum > 0, diag / offsum, np.inf)
    return float(ratio.min())


def symmetry_class(matrix: CsrMatrix) -> str:
    """Classify as ``"spd"``-ish, ``"y"`` (symmetric) or ``"n"`` like Table III.

    A full positive-definiteness test is too expensive for large matrices;
    following common practice we report ``"spd"`` when the matrix is
    numerically symmetric with strictly positive diagonal and weak diagonal
    dominance, ``"y"`` when merely symmetric, ``"n"`` otherwise.  The
    generators that *know* they produce SPD operators set the flag
    explicitly instead of relying on this heuristic.
    """
    if not is_numerically_symmetric(matrix):
        return "n"
    diag = matrix.diagonal().astype(np.float64)
    if np.all(diag > 0) and diagonal_dominance_ratio(matrix) >= 0.999:
        return "spd"
    return "y"
