"""Vectorised NumPy operations on raw CSR arrays.

The unmetered computational primitives (``spmv``, ``spmv_transpose`` and
the batched multi-RHS ``spmm``) live in
:mod:`repro.backends.numpy_backend` — they are the reference
implementation of the pluggable kernel-backend protocol — and are
re-exported here unchanged for callers that work on raw CSR arrays.  The
instrumented, performance-model-aware wrappers live in
:mod:`repro.linalg.kernels` and dispatch through the *active* backend
(see :mod:`repro.backends`), as does :meth:`repro.sparse.csr.CsrMatrix.matvec`.

This module keeps the structural (non-kernel) CSR utilities: the COO→CSR
conversion (``np.lexsort`` + segmented sums) and block-diagonal extraction
used by the block-Jacobi preconditioner.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..backends.numpy_backend import spmm, spmv, spmv_transpose

__all__ = [
    "spmv",
    "spmv_transpose",
    "spmm",
    "coo_to_csr",
    "extract_block_diagonal",
]


def coo_to_csr(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert COO triplets to CSR arrays, summing duplicate entries.

    Entries are sorted by (row, column) with ``np.lexsort``; duplicates are
    merged by a segmented sum.  The value dtype is preserved.

    Returns
    -------
    (data, indices, indptr)
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values)
    if not (rows.shape == cols.shape == values.shape):
        raise ValueError("rows, cols and values must have identical shapes")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if rows.size:
        if rows.min() < 0 or rows.max() >= n_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= n_cols:
            raise ValueError("column index out of range")

    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]

    if rows.size:
        # Merge duplicates: positions where (row, col) differs from previous.
        new_entry = np.empty(rows.size, dtype=bool)
        new_entry[0] = True
        new_entry[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_starts = np.flatnonzero(new_entry)
        data = np.add.reduceat(values, group_starts)
        out_rows = rows[group_starts]
        out_cols = cols[group_starts]
    else:
        data = values
        out_rows = rows
        out_cols = cols

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    indices = out_cols.astype(np.int32)
    return data.astype(values.dtype, copy=False), indices, indptr


def extract_block_diagonal(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    n: int,
    block_size: int,
) -> np.ndarray:
    """Extract the block diagonal of a square CSR matrix as dense blocks.

    Used by the block-Jacobi preconditioner.  Rows/columns are grouped into
    contiguous blocks of ``block_size`` (the final block may be smaller; it
    is zero-padded so the result is a uniform 3-D array).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_blocks, block_size, block_size)`` where block
        ``b`` holds ``A[b*bs:(b+1)*bs, b*bs:(b+1)*bs]`` (zero padded).
        Padded diagonal entries are set to 1 so the blocks stay invertible.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n_blocks = (n + block_size - 1) // block_size
    blocks = np.zeros((n_blocks, block_size, block_size), dtype=data.dtype)

    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    cols = indices.astype(np.int64)
    row_block = rows // block_size
    col_block = cols // block_size
    mask = row_block == col_block
    rb = row_block[mask]
    ri = rows[mask] - rb * block_size
    ci = cols[mask] - rb * block_size
    blocks[rb, ri, ci] = data[mask]

    # Unit-pad the diagonal of the (possibly short) final block.
    remainder = n - (n_blocks - 1) * block_size
    if remainder < block_size:
        pad = np.arange(remainder, block_size)
        blocks[-1, pad, pad] = 1.0
    return blocks
