"""Structural CSR utilities (and deprecated raw-kernel shims).

This module keeps the structural (non-kernel) CSR utilities: the COO→CSR
conversion (``np.lexsort`` + segmented sums) and block-diagonal extraction
used by the block-Jacobi preconditioner.

The computational kernels that used to live here (``spmv``,
``spmv_transpose``, the batched multi-RHS ``spmm``) belong to the
pluggable kernel-backend protocol since PR 1: the reference
implementations are in :mod:`repro.backends.numpy_backend`, the
instrumented wrappers in :mod:`repro.linalg.kernels`, and both dispatch
through the *active* backend.  The raw-array entry points below are kept
only as **deprecation shims** for old callers: they wrap the raw arrays
in a lightweight CSR view and route through the active backend (so an
old caller transparently gets the SciPy fast path when it is selected),
emitting a :class:`DeprecationWarning`.  New code should use
:class:`~repro.sparse.csr.CsrMatrix` with :mod:`repro.linalg.kernels`,
or a backend from :mod:`repro.backends` directly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "spmv",
    "spmv_transpose",
    "spmm",
    "coo_to_csr",
    "extract_block_diagonal",
]


class _RawCsrView:
    """Duck-typed CSR adapter: exactly what a ``KernelBackend`` needs."""

    __slots__ = ("data", "indices", "indptr", "shape", "backend_cache")

    def __init__(self, data, indices, indptr, shape) -> None:
        self.data = np.asarray(data)
        self.indices = np.asarray(indices)
        self.indptr = np.asarray(indptr)
        self.shape = (int(shape[0]), int(shape[1]))
        # The view dies with the call, so there is no identity to cache
        # against; a ``None`` cache tells the backends to skip building
        # per-matrix plans (row geometry, DIA diagonals, SciPy handles)
        # that would otherwise be reconstructed on every shim call.
        self.backend_cache = None


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.sparse.ops.{name} is deprecated; use CsrMatrix with "
        "repro.linalg.kernels (or a repro.backends backend) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def spmv(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Deprecated raw-array SpMV ``y = A x`` (routes via the active backend)."""
    _deprecated("spmv")
    from ..backends import active_backend

    x = np.asarray(x)
    view = _RawCsrView(data, indices, indptr, (indptr.size - 1, x.shape[0]))
    return active_backend().spmv(view, x, out=out)


def spmv_transpose(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    n_cols: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Deprecated raw-array ``y = A.T x`` (routes via the active backend)."""
    _deprecated("spmv_transpose")
    from ..backends import active_backend

    view = _RawCsrView(data, indices, indptr, (indptr.size - 1, int(n_cols)))
    return active_backend().spmv_transpose(view, np.asarray(x), out=out)


def spmm(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    X: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Deprecated raw-array batched ``Y = A X`` (routes via the active backend)."""
    _deprecated("spmm")
    from ..backends import active_backend

    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError("spmm expects a 2-D block of column vectors")
    view = _RawCsrView(data, indices, indptr, (indptr.size - 1, X.shape[0]))
    return active_backend().spmm(view, X, out=out)


def coo_to_csr(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert COO triplets to CSR arrays, summing duplicate entries.

    Entries are sorted by (row, column) with ``np.lexsort``; duplicates are
    merged by a segmented sum.  The value dtype is preserved.

    Returns
    -------
    (data, indices, indptr)
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values)
    if not (rows.shape == cols.shape == values.shape):
        raise ValueError("rows, cols and values must have identical shapes")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if rows.size:
        if rows.min() < 0 or rows.max() >= n_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= n_cols:
            raise ValueError("column index out of range")

    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]

    if rows.size:
        # Merge duplicates: positions where (row, col) differs from previous.
        new_entry = np.empty(rows.size, dtype=bool)
        new_entry[0] = True
        new_entry[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_starts = np.flatnonzero(new_entry)
        data = np.add.reduceat(values, group_starts)
        out_rows = rows[group_starts]
        out_cols = cols[group_starts]
    else:
        data = values
        out_rows = rows
        out_cols = cols

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    indices = out_cols.astype(np.int32)
    return data.astype(values.dtype, copy=False), indices, indptr


def extract_block_diagonal(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    n: int,
    block_size: int,
) -> np.ndarray:
    """Extract the block diagonal of a square CSR matrix as dense blocks.

    Used by the block-Jacobi preconditioner.  Rows/columns are grouped into
    contiguous blocks of ``block_size`` (the final block may be smaller; it
    is zero-padded so the result is a uniform 3-D array).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_blocks, block_size, block_size)`` where block
        ``b`` holds ``A[b*bs:(b+1)*bs, b*bs:(b+1)*bs]`` (zero padded).
        Padded diagonal entries are set to 1 so the blocks stay invertible.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n_blocks = (n + block_size - 1) // block_size
    blocks = np.zeros((n_blocks, block_size, block_size), dtype=data.dtype)

    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    cols = indices.astype(np.int64)
    row_block = rows // block_size
    col_block = cols // block_size
    mask = row_block == col_block
    rb = row_block[mask]
    ri = rows[mask] - rb * block_size
    ci = cols[mask] - rb * block_size
    blocks[rb, ri, ci] = data[mask]

    # Unit-pad the diagonal of the (possibly short) final block.
    remainder = n - (n_blocks - 1) * block_size
    if remainder < block_size:
        pad = np.arange(remainder, block_size)
        blocks[-1, pad, pad] = 1.0
    return blocks
