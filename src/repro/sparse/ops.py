"""Vectorised NumPy kernels on raw CSR arrays.

These are the unmetered computational primitives; the instrumented,
performance-model-aware wrappers live in :mod:`repro.linalg.kernels`.
Everything here is written with vectorised NumPy (no per-row Python loops)
following the HPC-Python guidance: ``np.add.reduceat`` for the row sums of
the SpMV, ``np.bincount``/fancy indexing for scatter operations, and
``np.lexsort`` for the COO→CSR conversion.

Accumulation precision note: ``np.add.reduceat`` accumulates in the dtype
of its operand, so an fp32 SpMV really is computed in fp32 — important,
because the numerical behaviour of the fp32 inner solver (stagnation around
1e-5…1e-6 relative residual) is part of what the paper studies.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["spmv", "spmv_transpose", "coo_to_csr", "extract_block_diagonal"]


def spmv(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """CSR sparse matrix–vector product ``y = A x``.

    Parameters
    ----------
    data, indices, indptr:
        CSR arrays of ``A`` (``n_rows + 1 = len(indptr)``).
    x:
        Dense vector of length ``n_cols``; it is used in the matrix's value
        dtype (mixed inputs are multiplied under NumPy promotion rules, so
        callers who care about the working precision must pass matching
        dtypes — the instrumented kernels enforce this).
    out:
        Optional pre-allocated output vector of length ``n_rows``.

    Returns
    -------
    numpy.ndarray
        ``y`` with dtype equal to the product dtype.
    """
    n_rows = indptr.size - 1
    products = data * x[indices]
    if out is None:
        out = np.zeros(n_rows, dtype=products.dtype)
    else:
        if out.shape[0] != n_rows:
            raise ValueError("output vector has wrong length")
        out[:] = 0
    if products.size == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    # Reduce only over the starts of non-empty rows: consecutive non-empty
    # starts delimit exactly the nonzeros of the earlier row (empty rows in
    # between contribute nothing), every start is < len(products), and the
    # final segment runs to the end of the product array.
    sums = np.add.reduceat(products, starts[nonempty])
    out[nonempty] = sums
    return out


def spmv_transpose(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    n_cols: int,
) -> np.ndarray:
    """CSR transpose product ``y = A.T x``.

    Not used inside GMRES (which never needs ``A^T``), provided for
    completeness and for building normal-equation style diagnostics.  The
    scatter-add accumulates in float64 (``np.bincount`` limitation) and the
    result is cast back to the product dtype.
    """
    n_rows = indptr.size - 1
    if x.shape[0] != n_rows:
        raise ValueError("x must have length n_rows for the transpose product")
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
    weights = data * x[rows]
    y = np.bincount(indices, weights=weights, minlength=n_cols)
    return y.astype(weights.dtype, copy=False)


def coo_to_csr(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert COO triplets to CSR arrays, summing duplicate entries.

    Entries are sorted by (row, column) with ``np.lexsort``; duplicates are
    merged by a segmented sum.  The value dtype is preserved.

    Returns
    -------
    (data, indices, indptr)
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values)
    if not (rows.shape == cols.shape == values.shape):
        raise ValueError("rows, cols and values must have identical shapes")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    if rows.size:
        if rows.min() < 0 or rows.max() >= n_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= n_cols:
            raise ValueError("column index out of range")

    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]

    if rows.size:
        # Merge duplicates: positions where (row, col) differs from previous.
        new_entry = np.empty(rows.size, dtype=bool)
        new_entry[0] = True
        new_entry[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_starts = np.flatnonzero(new_entry)
        data = np.add.reduceat(values, group_starts)
        out_rows = rows[group_starts]
        out_cols = cols[group_starts]
    else:
        data = values
        out_rows = rows
        out_cols = cols

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    indices = out_cols.astype(np.int32)
    return data.astype(values.dtype, copy=False), indices, indptr


def extract_block_diagonal(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    n: int,
    block_size: int,
) -> np.ndarray:
    """Extract the block diagonal of a square CSR matrix as dense blocks.

    Used by the block-Jacobi preconditioner.  Rows/columns are grouped into
    contiguous blocks of ``block_size`` (the final block may be smaller; it
    is zero-padded so the result is a uniform 3-D array).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_blocks, block_size, block_size)`` where block
        ``b`` holds ``A[b*bs:(b+1)*bs, b*bs:(b+1)*bs]`` (zero padded).
        Padded diagonal entries are set to 1 so the blocks stay invertible.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n_blocks = (n + block_size - 1) // block_size
    blocks = np.zeros((n_blocks, block_size, block_size), dtype=data.dtype)

    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    cols = indices.astype(np.int64)
    row_block = rows // block_size
    col_block = cols // block_size
    mask = row_block == col_block
    rb = row_block[mask]
    ri = rows[mask] - rb * block_size
    ci = cols[mask] - rb * block_size
    blocks[rb, ri, ci] = data[mask]

    # Unit-pad the diagonal of the (possibly short) final block.
    remainder = n - (n_blocks - 1) * block_size
    if remainder < block_size:
        pad = np.arange(remainder, block_size)
        blocks[-1, pad, pad] = 1.0
    return blocks
