"""Compressed Sparse Row matrix container.

A deliberately small, validation-heavy CSR container: three NumPy arrays
(``data``, ``indices``, ``indptr``) plus a shape, templated on the value
precision.  It mirrors what a ``KokkosSparse::CrsMatrix`` provides to the
paper's solvers: storage, a matvec, precision conversion, and structural
metadata needed by the performance model (bandwidth, nonzeros per row).

Indices are always ``int32`` — the paper's model in Section V-D explicitly
assumes the integer index type stays 4 bytes wide in both precisions, and
the SpMV speedup formula depends on that.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..precision import Precision, as_precision

__all__ = ["CsrMatrix"]

INDEX_DTYPE = np.int32


class CsrMatrix:
    """CSR sparse matrix with explicit precision.

    Parameters
    ----------
    data:
        Nonzero values, length ``nnz``.
    indices:
        Column index of each nonzero, length ``nnz`` (``int32``).
    indptr:
        Row pointers, length ``n_rows + 1``, monotone non-decreasing,
        ``indptr[0] == 0`` and ``indptr[-1] == nnz``.
    shape:
        ``(n_rows, n_cols)``.
    name:
        Optional human-readable name (problem generators fill this in; it is
        carried through to experiment reports).
    check:
        Validate the structure on construction (default True).  Disable only
        in hot paths that construct matrices from already-validated pieces.
    """

    __slots__ = (
        "data",
        "indices",
        "indptr",
        "shape",
        "name",
        "_bandwidth",
        "backend_cache",
        "_cast_cache",
    )

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
        *,
        name: str = "",
        check: bool = True,
    ) -> None:
        self.data = np.asarray(data)
        if self.data.dtype not in (np.float16, np.float32, np.float64):
            self.data = self.data.astype(np.float64)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self.name = name
        self._bandwidth: Optional[int] = None
        # Per-matrix scratch for backend-specific views of the CSR arrays
        # (e.g. the scipy.sparse handle); see repro.backends.
        self.backend_cache: dict = {}
        # Precision-cast copies, keyed by dtype; see astype().
        self._cast_cache: dict = {}
        if check:
            self._validate()

    # ------------------------------------------------------------------ #
    # construction helpers                                               #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scipy(cls, matrix, *, name: str = "", precision=None) -> "CsrMatrix":
        """Build from any scipy.sparse matrix (converted to CSR)."""
        from .convert import from_scipy

        return from_scipy(matrix, name=name, precision=precision)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        *,
        name: str = "",
    ) -> "CsrMatrix":
        """Build from COO triplets (duplicate entries are summed)."""
        from .ops import coo_to_csr

        data, indices, indptr = coo_to_csr(rows, cols, values, shape)
        return cls(data, indices, indptr, shape, name=name)

    @classmethod
    def identity(cls, n: int, precision="double", *, name: str = "I") -> "CsrMatrix":
        """The n×n identity matrix."""
        prec = as_precision(precision)
        data = np.ones(n, dtype=prec.dtype)
        indices = np.arange(n, dtype=INDEX_DTYPE)
        indptr = np.arange(n + 1, dtype=np.int64)
        return cls(data, indices, indptr, (n, n), name=name, check=False)

    # ------------------------------------------------------------------ #
    # validation                                                         #
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"invalid shape {self.shape}")
        if self.indptr.ndim != 1 or self.indptr.size != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.data.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("data and indices must be one-dimensional")
        if self.data.size != nnz or self.indices.size != nnz:
            raise ValueError(
                f"data/indices length must equal indptr[-1]={nnz}, "
                f"got {self.data.size}/{self.indices.size}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------ #
    # basic properties                                                   #
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indptr[-1])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def precision(self) -> Precision:
        """The :class:`~repro.precision.Precision` of the stored values."""
        return as_precision(self.dtype)

    @property
    def is_square(self) -> bool:
        return self.shape[0] == self.shape[1]

    def nnz_per_row(self) -> np.ndarray:
        """Number of nonzeros in each row (length ``n_rows``)."""
        return np.diff(self.indptr).astype(np.int64)

    def row_index_of_nonzeros(self) -> np.ndarray:
        """Row index of each stored nonzero (length ``nnz``)."""
        return np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.nnz_per_row()
        )

    def bandwidth(self) -> int:
        """Matrix bandwidth ``max |i - j|`` over stored nonzeros (cached)."""
        if self._bandwidth is None:
            if self.nnz == 0:
                self._bandwidth = 0
            else:
                rows = self.row_index_of_nonzeros()
                self._bandwidth = int(
                    np.max(np.abs(rows - self.indices.astype(np.int64)))
                )
        return self._bandwidth

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (zeros where not stored)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=self.dtype)
        rows = self.row_index_of_nonzeros()
        mask = (rows == self.indices) & (rows < n)
        diag[rows[mask]] = self.data[mask]
        return diag

    # ------------------------------------------------------------------ #
    # arithmetic                                                         #
    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Unmetered matrix–vector product ``A @ x`` on the active backend.

        The metered wrapper lives in :mod:`repro.linalg.kernels`; both
        dispatch through :func:`repro.backends.active_backend`.
        """
        from ..backends import active_backend

        return active_backend().spmv(self, np.asarray(x), out=out)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Unmetered transpose product ``A.T @ x`` on the active backend."""
        from ..backends import active_backend

        return active_backend().spmv_transpose(self, np.asarray(x))

    def matmat(self, X: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Unmetered batched multi-RHS product ``A @ X`` (``X`` is n × k)."""
        from ..backends import active_backend

        return active_backend().spmm(self, np.asarray(X), out=out)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return self.matmat(x) if x.ndim == 2 else self.matvec(x)

    # ------------------------------------------------------------------ #
    # conversion                                                         #
    # ------------------------------------------------------------------ #
    def astype(self, precision, *, name: Optional[str] = None) -> "CsrMatrix":
        """This matrix with values stored in another precision.

        Index arrays are shared (not copied): only the values change width,
        matching the paper's storage scheme for the fp32 copy of ``A`` kept
        by GMRES-IR.

        The cast is **cached per dtype** (unless a custom ``name`` is
        given): repeated ``astype`` calls return the same object, so its
        backend plans (SciPy handle, DIA/SpMM plan, row geometry) are
        built once and amortized across solves — this is what lets a
        mixed-precision :class:`~repro.serve.OperatorSession` warm its
        inner-precision matrix eagerly and have every later dispatch hit
        the warm copy.  Matrices are treated as immutable throughout the
        library; mutating ``data`` after a cast would desynchronize the
        cached copies.
        """
        prec = as_precision(precision)
        if prec.dtype == self.dtype:
            return self
        if name is None:
            cached = self._cast_cache.get(prec.dtype)
            if cached is not None:
                return cached
        out = CsrMatrix(
            self.data.astype(prec.dtype),
            self.indices,
            self.indptr,
            self.shape,
            name=name if name is not None else self.name,
            check=False,
        )
        out._bandwidth = self._bandwidth
        if name is None:
            self._cast_cache[prec.dtype] = out
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (copies nothing if possible)."""
        from .convert import to_scipy

        return to_scipy(self)

    def copy(self) -> "CsrMatrix":
        """Deep copy (values, indices and pointers)."""
        out = CsrMatrix(
            self.data.copy(),
            self.indices.copy(),
            self.indptr.copy(),
            self.shape,
            name=self.name,
            check=False,
        )
        out._bandwidth = self._bandwidth
        return out

    # ------------------------------------------------------------------ #
    # memory accounting (for the performance model / OOM checks)          #
    # ------------------------------------------------------------------ #
    def storage_bytes(self) -> int:
        """Bytes needed to store the matrix (values + indices + pointers)."""
        return int(
            self.data.nbytes + self.indices.nbytes + self.indptr.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CsrMatrix{label} {self.shape[0]}x{self.shape[1]} "
            f"nnz={self.nnz} dtype={self.dtype.name}>"
        )
