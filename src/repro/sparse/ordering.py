"""Matrix reordering: reverse Cuthill–McKee (RCM).

Table III of the paper reorders the ``lung2`` and ``hood`` matrices with
RCM before applying a block-Jacobi preconditioner — RCM clusters the strong
couplings near the diagonal so that contiguous diagonal blocks capture more
of the matrix.  RCM also reduces the bandwidth, which feeds straight into
the SpMV cache model (smaller bandwidth → better right-hand-side reuse).

The implementation is the classical algorithm: a breadth-first search from
a pseudo-peripheral start node (George–Liu heuristic), visiting neighbours
in order of increasing degree, and finally reversing the ordering.  It works
on the structural pattern of ``A + A^T`` so nonsymmetric matrices are
handled too.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .csr import CsrMatrix

__all__ = ["reverse_cuthill_mckee", "pseudo_peripheral_node", "permute_symmetric"]


def _symmetrized_structure(matrix: CsrMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Adjacency (indices, indptr) of the pattern of ``A + A^T`` minus the diagonal."""
    n = matrix.n_rows
    rows = matrix.row_index_of_nonzeros()
    cols = matrix.indices.astype(np.int64)
    off = rows != cols
    r = np.concatenate([rows[off], cols[off]])
    c = np.concatenate([cols[off], rows[off]])
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    if r.size:
        keep = np.empty(r.size, dtype=bool)
        keep[0] = True
        keep[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        r, c = r[keep], c[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, r + 1, 1)
    np.cumsum(indptr, out=indptr)
    return c, indptr


def _bfs_levels(
    adj_indices: np.ndarray, adj_indptr: np.ndarray, start: int, n: int
) -> np.ndarray:
    """Level (distance from ``start``) of every node reachable from it; -1 otherwise."""
    levels = np.full(n, -1, dtype=np.int64)
    levels[start] = 0
    frontier = np.array([start], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neigh = np.concatenate(
            [adj_indices[adj_indptr[u] : adj_indptr[u + 1]] for u in frontier]
        ) if frontier.size else np.empty(0, dtype=np.int64)
        neigh = np.unique(neigh)
        neigh = neigh[levels[neigh] < 0]
        levels[neigh] = level
        frontier = neigh
    return levels


def pseudo_peripheral_node(matrix: CsrMatrix, start: Optional[int] = None) -> int:
    """Find a pseudo-peripheral node (George–Liu heuristic).

    Repeatedly BFS from the current candidate, then restart from a
    minimum-degree node in the deepest level, until the eccentricity stops
    growing.  The returned node makes a good RCM starting point.
    """
    n = matrix.n_rows
    if n == 0:
        raise ValueError("empty matrix has no peripheral node")
    adj_indices, adj_indptr = _symmetrized_structure(matrix)
    degrees = np.diff(adj_indptr)
    node = int(start) if start is not None else int(np.argmin(degrees))
    best_ecc = -1
    for _ in range(n):
        levels = _bfs_levels(adj_indices, adj_indptr, node, n)
        ecc = int(levels.max())
        if ecc <= best_ecc:
            break
        best_ecc = ecc
        last_level = np.flatnonzero(levels == ecc)
        node = int(last_level[np.argmin(degrees[last_level])])
    return node


def reverse_cuthill_mckee(matrix: CsrMatrix, start: Optional[int] = None) -> np.ndarray:
    """Compute the RCM permutation of a square matrix.

    Returns
    -------
    numpy.ndarray
        Permutation array ``perm`` such that ``A[perm][:, perm]`` has reduced
        bandwidth; ``perm[k]`` is the original index of the node placed at
        position ``k``.
    """
    if not matrix.is_square:
        raise ValueError("RCM requires a square matrix")
    n = matrix.n_rows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    adj_indices, adj_indptr = _symmetrized_structure(matrix)
    degrees = np.diff(adj_indptr)

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        # Start a new component from a pseudo-peripheral node.
        remaining = np.flatnonzero(~visited)
        if start is not None and not visited[start]:
            seed = int(start)
        else:
            seed = int(remaining[np.argmin(degrees[remaining])])
            # Improve the seed with one George–Liu style sweep inside the component.
            levels = _bfs_levels(adj_indices, adj_indptr, seed, n)
            levels[visited] = -1
            ecc = levels.max()
            if ecc > 0:
                deepest = np.flatnonzero(levels == ecc)
                seed = int(deepest[np.argmin(degrees[deepest])])
        queue = [seed]
        visited[seed] = True
        while queue:
            node = queue.pop(0)
            order[pos] = node
            pos += 1
            nbrs = adj_indices[adj_indptr[node] : adj_indptr[node + 1]]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.argsort(degrees[nbrs], kind="stable")]
                visited[nbrs] = True
                queue.extend(int(v) for v in nbrs)
    return order[::-1].copy()


def permute_symmetric(matrix: CsrMatrix, perm: np.ndarray) -> CsrMatrix:
    """Apply a symmetric permutation: returns ``A[perm][:, perm]``.

    The inverse permutation is applied to the column indices so that entry
    ``(perm[i], perm[j])`` of the original matrix lands at ``(i, j)``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = matrix.n_rows
    if not matrix.is_square or perm.size != n:
        raise ValueError("permutation length must equal the matrix dimension")
    if np.any(np.sort(perm) != np.arange(n)):
        raise ValueError("perm is not a permutation of 0..n-1")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n, dtype=np.int64)

    row_counts = matrix.nnz_per_row()[perm]
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_counts, out=new_indptr[1:])

    nnz = matrix.nnz
    new_data = np.empty(nnz, dtype=matrix.dtype)
    new_indices = np.empty(nnz, dtype=matrix.indices.dtype)
    # Gather rows in permuted order; per-row slices are concatenated via a
    # single fancy-indexed gather built from the old row extents.
    old_starts = matrix.indptr[perm]
    gather = np.concatenate(
        [np.arange(s, s + c, dtype=np.int64) for s, c in zip(old_starts, row_counts)]
    ) if nnz else np.empty(0, dtype=np.int64)
    new_data[:] = matrix.data[gather]
    new_indices[:] = inv[matrix.indices[gather].astype(np.int64)]

    # Keep column indices sorted within each row.
    out = CsrMatrix(
        new_data, new_indices, new_indptr, matrix.shape,
        name=f"{matrix.name}-rcm" if matrix.name else "", check=False,
    )
    _sort_rows_inplace(out)
    return out


def _sort_rows_inplace(matrix: CsrMatrix) -> None:
    """Sort column indices (and values) within each row of a CSR matrix."""
    rows = matrix.row_index_of_nonzeros()
    order = np.lexsort((matrix.indices, rows))
    matrix.indices[:] = matrix.indices[order]
    matrix.data[:] = matrix.data[order]
