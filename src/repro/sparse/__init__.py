"""Sparse-matrix substrate (CSR storage, kernels, orderings, properties).

The paper's solvers run on CSR matrices through Kokkos Kernels; here the
same role is played by :class:`~repro.sparse.csr.CsrMatrix` plus the
vectorised NumPy kernels in :mod:`repro.sparse.ops`.  The module also
provides the reverse Cuthill–McKee reordering used before block-Jacobi
preconditioning in Table III, and structural property queries (bandwidth,
nonzeros per row, symmetry) that both the performance model and the
experiment harness rely on.
"""

from .csr import CsrMatrix
from .ops import spmv, spmv_transpose, spmm, coo_to_csr, extract_block_diagonal
from .ordering import reverse_cuthill_mckee, pseudo_peripheral_node, permute_symmetric
from .properties import (
    bandwidth,
    avg_nonzeros_per_row,
    max_nonzeros_per_row,
    is_structurally_symmetric,
    is_numerically_symmetric,
    diagonal_dominance_ratio,
)
from .convert import from_scipy, to_scipy, to_precision

__all__ = [
    "CsrMatrix",
    "spmv",
    "spmv_transpose",
    "spmm",
    "coo_to_csr",
    "extract_block_diagonal",
    "reverse_cuthill_mckee",
    "pseudo_peripheral_node",
    "permute_symmetric",
    "bandwidth",
    "avg_nonzeros_per_row",
    "max_nonzeros_per_row",
    "is_structurally_symmetric",
    "is_numerically_symmetric",
    "diagonal_dominance_ratio",
    "from_scipy",
    "to_scipy",
    "to_precision",
]
