"""Execution context: which modelled device the kernels charge their cost to.

The paper runs everything on one Tesla V100; correspondingly the library
keeps a single active :class:`ExecutionContext` holding the
:class:`~repro.perfmodel.costs.KernelCostModel` for the chosen device and a
flag to disable metering entirely (pure-numerics tests don't need it).

Experiments that run scaled-down problems install a *scaled* device (see
:meth:`repro.perfmodel.device.DeviceSpec.scaled`) so that the modelled
time breakdown of the small problem matches the breakdown the full-size
problem would have on the real device.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from ..config import get_config
from ..perfmodel.cache import CacheConfig
from ..perfmodel.costs import KernelCostModel
from ..perfmodel.device import DeviceSpec, get_device

__all__ = ["ExecutionContext", "get_context", "set_context", "use_device"]


class ExecutionContext:
    """Holds the cost model and metering switch used by the kernels.

    Parameters
    ----------
    device:
        :class:`DeviceSpec` or device name (defaults to the library config,
        i.e. the V100 of the paper's testbed).
    meter:
        If False, kernels skip all performance accounting.
    cache_config:
        Calibration of the SpMV L2 reuse model.
    """

    def __init__(
        self,
        device: Union[str, DeviceSpec, None] = None,
        *,
        meter: Optional[bool] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> None:
        cfg = get_config()
        if device is None:
            device = cfg.device_name
        if isinstance(device, str):
            device = get_device(device)
        self.device = device
        self.meter = cfg.meter_kernels if meter is None else bool(meter)
        self.cost_model = KernelCostModel(device, cache_config=cache_config)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExecutionContext device={self.device.name!r} meter={self.meter}>"


_CONTEXT: Optional[ExecutionContext] = None


def get_context() -> ExecutionContext:
    """Return the active execution context (created lazily from the config)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = ExecutionContext()
    return _CONTEXT


def set_context(context: Optional[ExecutionContext] = None, **kwargs) -> ExecutionContext:
    """Install a new execution context (or build one from keyword args)."""
    global _CONTEXT
    _CONTEXT = context if context is not None else ExecutionContext(**kwargs)
    return _CONTEXT


@contextmanager
def use_device(
    device: Union[str, DeviceSpec],
    *,
    meter: Optional[bool] = None,
    cache_config: Optional[CacheConfig] = None,
) -> Iterator[ExecutionContext]:
    """Temporarily switch the modelled device (context manager)."""
    global _CONTEXT
    previous = _CONTEXT
    _CONTEXT = ExecutionContext(device, meter=meter, cache_config=cache_config)
    try:
        yield _CONTEXT
    finally:
        _CONTEXT = previous
