"""Execution context: which modelled device the kernels charge their cost to.

The paper runs everything on one Tesla V100; correspondingly the library
keeps a single active :class:`ExecutionContext` holding the
:class:`~repro.perfmodel.costs.KernelCostModel` for the chosen device and a
flag to disable metering entirely (pure-numerics tests don't need it).

Experiments that run scaled-down problems install a *scaled* device (see
:meth:`repro.perfmodel.device.DeviceSpec.scaled`) so that the modelled
time breakdown of the small problem matches the breakdown the full-size
problem would have on the real device.

Threading model (the contract :mod:`repro.serve` builds on): the context
installed with :func:`set_context` is *process-global* — every thread that
has not installed its own override sees it.  The scoped managers
(:func:`use_context`, :func:`use_device`, :func:`use_backend`) install a
**thread-local** override: they affect only the calling thread, nest, and
unwind on exceptions, so a service dispatcher can pin its session's
context without perturbing clients running solves on other threads.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from ..backends import KernelBackend, get_backend
from ..config import get_config
from ..perfmodel.cache import CacheConfig
from ..perfmodel.costs import KernelCostModel
from ..perfmodel.device import DeviceSpec, get_device

__all__ = [
    "ExecutionContext",
    "get_context",
    "set_context",
    "use_context",
    "use_device",
    "use_backend",
]


class ExecutionContext:
    """Holds the backend, cost model and metering switch used by the kernels.

    Parameters
    ----------
    device:
        :class:`DeviceSpec` or device name (defaults to the library config,
        i.e. the V100 of the paper's testbed).
    meter:
        If False, kernels skip all performance accounting.
    cache_config:
        Calibration of the SpMV L2 reuse model.
    backend:
        :class:`~repro.backends.KernelBackend` instance or registered name.
        When omitted, the backend is resolved *lazily* from the library
        config on every access (``ReproConfig.backend``, seeded from the
        ``REPRO_BACKEND`` environment variable), so a later
        ``set_config(backend=...)`` takes effect without rebuilding the
        context.  Passing an explicit backend pins it for this context's
        lifetime (this is what :func:`use_backend` does).
    """

    def __init__(
        self,
        device: Union[str, DeviceSpec, None] = None,
        *,
        meter: Optional[bool] = None,
        cache_config: Optional[CacheConfig] = None,
        backend: Union[str, KernelBackend, None] = None,
        cost_model: Optional[KernelCostModel] = None,
    ) -> None:
        cfg = get_config()
        if device is None:
            device = cfg.device_name
        if isinstance(device, str):
            device = get_device(device)
        self.device = device
        self.meter = cfg.meter_kernels if meter is None else bool(meter)
        self.cost_model = (
            cost_model
            if cost_model is not None
            else KernelCostModel(device, cache_config=cache_config)
        )
        self._backend = None if backend is None else get_backend(backend)

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this context dispatches to.

        Pinned if one was passed to the constructor, otherwise looked up
        from the active library config on each access.
        """
        if self._backend is not None:
            return self._backend
        return get_backend(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ExecutionContext device={self.device.name!r} "
            f"backend={self.backend.name!r} meter={self.meter}>"
        )


#: Process-global default context, shared by every thread without an override.
_GLOBAL_CONTEXT: Optional[ExecutionContext] = None

#: Per-thread override slot installed by the scoped context managers.
_TLS = threading.local()


def _thread_override() -> Optional[ExecutionContext]:
    return getattr(_TLS, "context", None)


def get_context() -> ExecutionContext:
    """Return the active execution context.

    The calling thread's scoped override (installed by :func:`use_context`,
    :func:`use_device` or :func:`use_backend`) wins; otherwise the
    process-global context is returned, created lazily from the config.
    """
    override = _thread_override()
    if override is not None:
        return override
    global _GLOBAL_CONTEXT
    if _GLOBAL_CONTEXT is None:
        _GLOBAL_CONTEXT = ExecutionContext()
    return _GLOBAL_CONTEXT


def set_context(context: Optional[ExecutionContext] = None, **kwargs) -> ExecutionContext:
    """Install a new *process-global* execution context.

    Either pass a context or keyword arguments to build one.  Threads that
    are inside a scoped override (:func:`use_context` and friends) keep
    their override until it unwinds.
    """
    global _GLOBAL_CONTEXT
    _GLOBAL_CONTEXT = context if context is not None else ExecutionContext(**kwargs)
    return _GLOBAL_CONTEXT


@contextmanager
def use_context(context: ExecutionContext) -> Iterator[ExecutionContext]:
    """Install ``context`` as this thread's scoped override.

    The building block of the scoped switches (and of
    :class:`repro.serve.OperatorSession`, whose dispatcher pins the
    session's context for the duration of each batch without touching what
    other threads see).  Nests; restores the previous override on exit.
    """
    previous = _thread_override()
    _TLS.context = context
    try:
        yield context
    finally:
        _TLS.context = previous


@contextmanager
def use_device(
    device: Union[str, DeviceSpec],
    *,
    meter: Optional[bool] = None,
    cache_config: Optional[CacheConfig] = None,
) -> Iterator[ExecutionContext]:
    """Temporarily switch the modelled device (thread-scoped context manager).

    The kernel backend of the enclosing context is preserved, including
    its pinned-vs-config-lazy state.
    """
    enclosing = _thread_override() or _GLOBAL_CONTEXT
    context = ExecutionContext(
        device,
        meter=meter,
        cache_config=cache_config,
        backend=enclosing._backend if enclosing is not None else None,
    )
    with use_context(context):
        yield context


@contextmanager
def use_backend(
    backend: Union[str, KernelBackend],
) -> Iterator[ExecutionContext]:
    """Temporarily switch the kernel backend (thread-scoped context manager).

    Device, metering flag and cost model of the enclosing context are kept;
    only the dispatch target changes.  Only the calling thread is affected,
    and nested switches unwind in LIFO order.
    """
    previous = get_context()
    context = ExecutionContext(
        previous.device,
        meter=previous.meter,
        backend=backend,
        cost_model=previous.cost_model,
    )
    with use_context(context):
        yield context
