"""Execution context: which modelled device the kernels charge their cost to.

The paper runs everything on one Tesla V100; correspondingly the library
keeps a single active :class:`ExecutionContext` holding the
:class:`~repro.perfmodel.costs.KernelCostModel` for the chosen device and a
flag to disable metering entirely (pure-numerics tests don't need it).

Experiments that run scaled-down problems install a *scaled* device (see
:meth:`repro.perfmodel.device.DeviceSpec.scaled`) so that the modelled
time breakdown of the small problem matches the breakdown the full-size
problem would have on the real device.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from ..backends import KernelBackend, get_backend
from ..config import get_config
from ..perfmodel.cache import CacheConfig
from ..perfmodel.costs import KernelCostModel
from ..perfmodel.device import DeviceSpec, get_device

__all__ = [
    "ExecutionContext",
    "get_context",
    "set_context",
    "use_device",
    "use_backend",
]


class ExecutionContext:
    """Holds the backend, cost model and metering switch used by the kernels.

    Parameters
    ----------
    device:
        :class:`DeviceSpec` or device name (defaults to the library config,
        i.e. the V100 of the paper's testbed).
    meter:
        If False, kernels skip all performance accounting.
    cache_config:
        Calibration of the SpMV L2 reuse model.
    backend:
        :class:`~repro.backends.KernelBackend` instance or registered name.
        When omitted, the backend is resolved *lazily* from the library
        config on every access (``ReproConfig.backend``, seeded from the
        ``REPRO_BACKEND`` environment variable), so a later
        ``set_config(backend=...)`` takes effect without rebuilding the
        context.  Passing an explicit backend pins it for this context's
        lifetime (this is what :func:`use_backend` does).
    """

    def __init__(
        self,
        device: Union[str, DeviceSpec, None] = None,
        *,
        meter: Optional[bool] = None,
        cache_config: Optional[CacheConfig] = None,
        backend: Union[str, KernelBackend, None] = None,
        cost_model: Optional[KernelCostModel] = None,
    ) -> None:
        cfg = get_config()
        if device is None:
            device = cfg.device_name
        if isinstance(device, str):
            device = get_device(device)
        self.device = device
        self.meter = cfg.meter_kernels if meter is None else bool(meter)
        self.cost_model = (
            cost_model
            if cost_model is not None
            else KernelCostModel(device, cache_config=cache_config)
        )
        self._backend = None if backend is None else get_backend(backend)

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this context dispatches to.

        Pinned if one was passed to the constructor, otherwise looked up
        from the active library config on each access.
        """
        if self._backend is not None:
            return self._backend
        return get_backend(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ExecutionContext device={self.device.name!r} "
            f"backend={self.backend.name!r} meter={self.meter}>"
        )


_CONTEXT: Optional[ExecutionContext] = None


def get_context() -> ExecutionContext:
    """Return the active execution context (created lazily from the config)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = ExecutionContext()
    return _CONTEXT


def set_context(context: Optional[ExecutionContext] = None, **kwargs) -> ExecutionContext:
    """Install a new execution context (or build one from keyword args)."""
    global _CONTEXT
    _CONTEXT = context if context is not None else ExecutionContext(**kwargs)
    return _CONTEXT


@contextmanager
def use_device(
    device: Union[str, DeviceSpec],
    *,
    meter: Optional[bool] = None,
    cache_config: Optional[CacheConfig] = None,
) -> Iterator[ExecutionContext]:
    """Temporarily switch the modelled device (context manager).

    The kernel backend of the enclosing context is preserved, including
    its pinned-vs-config-lazy state.
    """
    global _CONTEXT
    previous = _CONTEXT
    _CONTEXT = ExecutionContext(
        device,
        meter=meter,
        cache_config=cache_config,
        backend=previous._backend if previous is not None else None,
    )
    try:
        yield _CONTEXT
    finally:
        _CONTEXT = previous


@contextmanager
def use_backend(
    backend: Union[str, KernelBackend],
) -> Iterator[ExecutionContext]:
    """Temporarily switch the kernel backend (context manager).

    Device, metering flag and cost model of the enclosing context are kept;
    only the dispatch target changes.
    """
    global _CONTEXT
    previous = get_context()
    context = ExecutionContext(
        previous.device,
        meter=previous.meter,
        backend=backend,
        cost_model=previous.cost_model,
    )
    _CONTEXT = context
    try:
        yield context
    finally:
        _CONTEXT = previous
