"""Instrumented linear-algebra layer (the Kokkos-Kernels / Belos-adapter analogue).

Every operation the solvers perform on length-``n`` data goes through the
kernels in :mod:`repro.linalg.kernels`.  Each call

1. executes the vectorised NumPy implementation (real IEEE arithmetic in the
   requested precision — the numerics are *not* simulated), and
2. charges its modelled GPU cost (from :class:`~repro.perfmodel.costs.KernelCostModel`)
   and wall time to the active :class:`~repro.perfmodel.timer.KernelTimer`
   under the same kernel labels the paper uses in its figures.

:class:`~repro.linalg.multivector.MultiVector` plays the role of the
Kokkos-based Belos ``MultiVector`` adapter described in Section IV of the
paper: it owns the block of Krylov basis vectors and exposes the block
operations (``V^T w``, ``w -= V y``) that dominate orthogonalization cost.
"""

from .context import (
    ExecutionContext,
    get_context,
    set_context,
    use_context,
    use_device,
    use_backend,
)
from .multivector import MultiVector
from . import kernels
from . import dense

__all__ = [
    "ExecutionContext",
    "get_context",
    "set_context",
    "use_context",
    "use_device",
    "use_backend",
    "MultiVector",
    "kernels",
    "dense",
]
