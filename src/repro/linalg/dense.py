"""Small host-side dense operations for the GMRES least-squares problem.

In the Belos implementation these run on the CPU in the solver's scalar
type (the Hessenberg matrix is tiny — ``(m+1) × m`` with ``m ≈ 25…400``) and
the paper files their cost under "Other".  The same split is kept here:

* Givens-rotation based incremental QR of the Hessenberg matrix, which both
  updates the least-squares problem one column at a time and yields the
  *implicit* residual norm GMRES monitors every iteration;
* back substitution for the triangular solve at the end of a cycle;
* a plain dense least-squares fallback used by tests as an oracle.

All routines work in the dtype of their inputs so a single-precision solver
really does its Hessenberg arithmetic in fp32 (this matters for the
loss-of-accuracy behaviour studied in Section V-F).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .kernels import meter_host_dense

__all__ = [
    "givens_rotation",
    "apply_givens_column",
    "back_substitute",
    "hessenberg_lstsq",
    "GivensWorkspace",
    "BlockGivensWorkspace",
]


def givens_rotation(a: float, b: float, dtype=np.float64) -> Tuple[float, float]:
    """Compute ``(c, s)`` such that ``[c s; -s c]^T [a; b] = [r; 0]``.

    Uses the standard hypot-free formulation that avoids overflow; the
    arithmetic is carried out in ``dtype``.
    """
    scalar = np.dtype(dtype).type
    a = scalar(a)
    b = scalar(b)
    one = scalar(1.0)
    if b == 0:
        return 1.0, 0.0
    if abs(b) > abs(a):
        t = -a / b
        s = one / np.sqrt(one + t * t)
        c = s * t
    else:
        t = -b / a
        c = one / np.sqrt(one + t * t)
        s = c * t
    return float(c), float(s)


class GivensWorkspace:
    """Incremental QR of the GMRES Hessenberg matrix via Givens rotations.

    Maintains, in the working dtype:

    * ``R`` — the upper-triangular factor (capacity ``m × m``),
    * ``g`` — the rotated right-hand side ``Q^T (beta e_1)``, whose trailing
      entry's magnitude is the *implicit* residual norm, and
    * the rotation cosines/sines applied so far.

    This is exactly the piece of GMRES the paper's "Other" bucket times on
    the host.
    """

    def __init__(self, max_size: int, dtype=np.float64) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.dtype = np.dtype(dtype)
        self.max_size = max_size
        self.R = np.zeros((max_size + 1, max_size), dtype=self.dtype)
        self.g = np.zeros(max_size + 1, dtype=self.dtype)
        self.cosines = np.zeros(max_size, dtype=self.dtype)
        self.sines = np.zeros(max_size, dtype=self.dtype)
        self.size = 0

    def reset(self, beta: float) -> None:
        """Start a new cycle with initial residual norm ``beta``."""
        self.R[:] = 0
        self.g[:] = 0
        self.g[0] = self.dtype.type(beta)
        self.size = 0

    def append_column(self, h: np.ndarray, h_next: float) -> float:
        """Add Hessenberg column ``[h; h_next]`` and return the implicit residual norm.

        Parameters
        ----------
        h:
            The first ``j+1`` entries of column ``j`` (``j = self.size``).
        h_next:
            The subdiagonal entry ``h_{j+1, j}``.
        """
        j = self.size
        if j >= self.max_size:
            raise RuntimeError("GivensWorkspace is full")
        col = self.R[:, j]
        col[: j + 1] = np.asarray(h, dtype=self.dtype)[: j + 1]
        col[j + 1] = self.dtype.type(h_next)

        # Apply all previous rotations to the new column.
        for i in range(j):
            c, s = self.cosines[i], self.sines[i]
            temp = c * col[i] - s * col[i + 1]
            col[i + 1] = s * col[i] + c * col[i + 1]
            col[i] = temp

        # Compute and apply the new rotation annihilating col[j+1].
        c, s = givens_rotation(float(col[j]), float(col[j + 1]), dtype=self.dtype)
        c = self.dtype.type(c)
        s = self.dtype.type(s)
        self.cosines[j], self.sines[j] = c, s
        col[j] = c * col[j] - s * col[j + 1]
        col[j + 1] = 0

        g_j = self.g[j]
        self.g[j] = c * g_j
        self.g[j + 1] = s * g_j
        self.size = j + 1

        meter_host_dense(6 * (j + 1))
        return float(abs(self.g[j + 1]))

    @property
    def implicit_residual_norm(self) -> float:
        """Magnitude of the trailing rotated right-hand-side entry."""
        return float(abs(self.g[self.size]))

    def solve(self, out: "np.ndarray | None" = None) -> np.ndarray:
        """Solve the triangular system for the Krylov coefficients ``y``.

        ``out``, when given, is a caller-owned length-``size`` buffer the
        coefficients are written into (the solver passes its workspace's
        Hessenberg-column buffer so restarts allocate nothing).
        """
        j = self.size
        y = back_substitute(self.R[:j, :j], self.g[:j], out=out)
        meter_host_dense(j * j)
        return y


class BlockGivensWorkspace:
    """Incremental QR of the block-GMRES *band* Hessenberg matrix.

    Block Arnoldi with block size ``k`` produces a Hessenberg matrix whose
    column ``q`` has nonzeros down to row ``q + k`` (a band of ``k``
    subdiagonals).  This workspace maintains, in the working dtype:

    * ``R`` — the upper-triangular factor (capacity ``(m·p + p) × m·p``),
    * ``G`` — the rotated block right-hand side ``Q^T (E₁ S)`` where ``S``
      is the triangular factor of the initial residual block's QR; the
      trailing ``k`` rows of its leading columns carry the per-column
      *implicit* residual norms,
    * ``QT`` — the accumulated orthogonal factor, kept densely so a new
      panel of ``k`` Hessenberg columns is rotated by all previous
      rotations with one small host-side matmul instead of replaying
      ``O(m·p·k)`` scalar rotations per column.

    All buffers are pre-allocated at construction (per-width scratch is
    created once per distinct active block width, i.e. once per deflation
    event), so the per-iteration path allocates nothing — the block
    analogue of :class:`GivensWorkspace`, filed under the same host-side
    "Other" cost bucket.
    """

    def __init__(self, max_cols: int, band: int, dtype=np.float64) -> None:
        if max_cols <= 0 or band <= 0:
            raise ValueError("max_cols and band must be positive")
        self.dtype = np.dtype(dtype)
        self.max_cols = max_cols
        self.band = band
        rows = max_cols + band
        self._max_rows = rows
        self.R = np.zeros((rows, max_cols), dtype=self.dtype)
        self.G = np.zeros((rows, band), dtype=self.dtype)
        self.QT = np.zeros((rows, rows), dtype=self.dtype)
        self._t0 = np.empty(rows, dtype=self.dtype)
        self._t1 = np.empty(rows, dtype=self.dtype)
        self._panel_scratch = {}  # active width k -> pair of (rows, k) C blocks
        self._solve_scratch = np.empty(band, dtype=self.dtype)
        self.size = 0
        self.active_band = band

    def reset(self, S: np.ndarray) -> None:
        """Start a cycle whose initial residual block QR'ed to ``S`` (k × k)."""
        S = np.asarray(S)
        k = S.shape[0]
        if S.shape != (k, k) or k > self.band:
            raise ValueError("initial coefficient block has wrong shape")
        self.active_band = k
        self.size = 0
        self.R[:] = 0
        self.G[:] = 0
        self.G[:k, :k] = S
        self.QT[:] = 0
        np.fill_diagonal(self.QT, self.dtype.type(1))
        # The staging block must start zero below the written region (rows
        # only ever extend downward within a cycle, so one zero-fill per
        # reset keeps the full-height matmul exact).
        stage, _rotated = self._panel_buffers(k)
        stage[:] = 0

    def _panel_buffers(self, k: int):
        bufs = self._panel_scratch.get(k)
        if bufs is None:
            bufs = self._panel_scratch[k] = (
                np.zeros((self._max_rows, k), dtype=self.dtype),
                np.empty((self._max_rows, k), dtype=self.dtype),
            )
        return bufs

    def _rotate_rows(self, M: np.ndarray, r: int, c, s, width: int) -> None:
        """Apply ``[c -s; s c]``-style rotation to rows ``r-1``/``r`` of ``M``."""
        row0 = M[r - 1, :width]
        row1 = M[r, :width]
        t0 = self._t0[:width]
        t1 = self._t1[:width]
        np.multiply(row0, c, out=t0)
        np.multiply(row1, s, out=t1)
        np.subtract(t0, t1, out=t0)  # new row0 = c·row0 - s·row1
        np.multiply(row0, s, out=t1)
        np.multiply(row1, c, out=row1)
        np.add(row1, t1, out=row1)  # new row1 = s·row0 + c·row1
        row0[:] = t0

    def append_block(self, panel: np.ndarray) -> None:
        """Add one block step's panel of ``k`` Hessenberg columns.

        ``panel`` holds rows ``0 .. q + 2k - 1`` of Hessenberg columns
        ``q .. q + k - 1`` (``q = self.size``): the block-projection
        coefficients on top, the intra-block triangular factor below.
        """
        q = self.size
        k = self.active_band
        if panel.shape != (q + 2 * k, k):
            raise ValueError("Hessenberg panel has wrong shape")
        if q + k > self.max_cols:
            raise RuntimeError("BlockGivensWorkspace is full")
        target = self.R[: q + 2 * k, q : q + k]
        if q > 0:
            # Rotate the new panel by all previous rotations with one
            # contiguous full-height matmul: rows below the written region
            # are zero in the staging block and identity in Q^T, so the
            # product equals the sliced application without the internal
            # copy a strided np.dot slice would make.
            stage, rotated = self._panel_buffers(k)
            stage[: q + 2 * k] = panel
            np.dot(self.QT, stage, out=rotated)
            target[:] = rotated[: q + 2 * k]
        else:
            target[:] = panel
        width = q + 2 * k
        for i in range(k):
            col_index = q + i
            col = self.R[:, col_index]
            for r in range(q + k + i, col_index, -1):
                if col[r] == 0:
                    continue
                c, s = givens_rotation(float(col[r - 1]), float(col[r]), dtype=self.dtype)
                c = self.dtype.type(c)
                s = self.dtype.type(s)
                head = col[r - 1]
                col[r - 1] = c * head - s * col[r]
                col[r] = 0
                # The same rotation hits the panel columns to the right,
                # the rotated right-hand side and the accumulated Q^T.
                for cc in range(col_index + 1, q + k):
                    other = self.R[:, cc]
                    head_o = other[r - 1]
                    other[r - 1] = c * head_o - s * other[r]
                    other[r] = s * head_o + c * other[r]
                self._rotate_rows(self.G, r, c, s, k)
                self._rotate_rows(self.QT, r, c, s, width)
        self.size = q + k
        meter_host_dense(q * q * k + 6 * k * k * (q + 2 * k))

    def residual_norms(self, out: "np.ndarray | None" = None) -> np.ndarray:
        """Per-column implicit residual norms ``‖G[q:q+k, c]‖₂`` (length k)."""
        q = self.size
        k = self.active_band
        tail = self.G[q : q + k, :k]
        if out is None:
            out = np.empty(k, dtype=np.float64)
        sq = self._t0[:k]
        for c in range(k):
            col = tail[:, c]
            np.multiply(col, col, out=sq)
            out[c] = float(np.sqrt(sq.sum(dtype=np.float64)))
        return out

    def solve(self, out: np.ndarray) -> np.ndarray:
        """Back-substitute ``R Y = G`` for the block coefficients ``Y``.

        ``out`` is a caller-owned C-contiguous ``(size, k)`` buffer.  A
        (near-)zero diagonal entry zeroes that coefficient row instead of
        raising: it corresponds to a deflated/linearly-dependent Krylov
        direction whose Hessenberg column is entirely zero, for which the
        zero coefficient *is* the minimum-norm least-squares choice.
        """
        q = self.size
        k = self.active_band
        if out.shape != (q, k):
            raise ValueError("solve output buffer has wrong shape")
        tiny = np.finfo(self.dtype).tiny
        row = self._solve_scratch[:k]
        for i in range(q - 1, -1, -1):
            if i + 1 < q:
                np.dot(self.R[i, i + 1 : q], out[i + 1 : q], out=row)
                np.subtract(self.G[i, :k], row, out=out[i])
            else:
                out[i] = self.G[i, :k]
            diag = self.R[i, i]
            if abs(diag) <= tiny:
                out[i] = 0
            else:
                out[i] /= diag
        meter_host_dense(q * q * k)
        return out


def back_substitute(
    R: np.ndarray, b: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Solve ``R y = b`` for upper-triangular ``R`` in the dtype of ``R``.

    ``out``, when given, receives the solution (length ``n``, dtype of
    ``R``; must not alias ``b``).

    Raises
    ------
    ZeroDivisionError
        If a diagonal entry is exactly zero (happens only on lucky breakdown
        with an exactly-consistent system; callers treat it separately).
    """
    R = np.asarray(R)
    b = np.asarray(b, dtype=R.dtype)
    n = R.shape[0]
    if R.shape != (n, n) or b.shape != (n,):
        raise ValueError("back_substitute expects square R and matching b")
    if out is None:
        y = np.zeros(n, dtype=R.dtype)
    else:
        if out.shape != (n,) or out.dtype != R.dtype:
            raise ValueError("back_substitute output buffer has wrong shape or dtype")
        y = out
    for i in range(n - 1, -1, -1):
        diag = R[i, i]
        if diag == 0:
            raise ZeroDivisionError("singular triangular factor in GMRES projection")
        y[i] = (b[i] - np.dot(R[i, i + 1 :], y[i + 1 :])) / diag
    return y


def hessenberg_lstsq(H: np.ndarray, beta: float) -> Tuple[np.ndarray, float]:
    """Dense least-squares oracle: ``min_y || beta e_1 - H y ||``.

    Used in tests to validate the incremental Givens machinery; returns the
    minimiser and the residual norm.  Computation is done in float64
    regardless of input dtype (it is an oracle, not a modelled kernel).
    """
    H = np.asarray(H, dtype=np.float64)
    rows, cols = H.shape
    rhs = np.zeros(rows)
    rhs[0] = beta
    y, residuals, _rank, _sv = np.linalg.lstsq(H, rhs, rcond=None)
    if residuals.size:
        res_norm = float(np.sqrt(residuals[0]))
    else:
        res_norm = float(np.linalg.norm(rhs - H @ y))
    return y, res_norm
