"""Small host-side dense operations for the GMRES least-squares problem.

In the Belos implementation these run on the CPU in the solver's scalar
type (the Hessenberg matrix is tiny — ``(m+1) × m`` with ``m ≈ 25…400``) and
the paper files their cost under "Other".  The same split is kept here:

* Givens-rotation based incremental QR of the Hessenberg matrix, which both
  updates the least-squares problem one column at a time and yields the
  *implicit* residual norm GMRES monitors every iteration;
* back substitution for the triangular solve at the end of a cycle;
* a plain dense least-squares fallback used by tests as an oracle.

All routines work in the dtype of their inputs so a single-precision solver
really does its Hessenberg arithmetic in fp32 (this matters for the
loss-of-accuracy behaviour studied in Section V-F).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .kernels import meter_host_dense

__all__ = [
    "givens_rotation",
    "apply_givens_column",
    "back_substitute",
    "hessenberg_lstsq",
    "GivensWorkspace",
]


def givens_rotation(a: float, b: float, dtype=np.float64) -> Tuple[float, float]:
    """Compute ``(c, s)`` such that ``[c s; -s c]^T [a; b] = [r; 0]``.

    Uses the standard hypot-free formulation that avoids overflow; the
    arithmetic is carried out in ``dtype``.
    """
    scalar = np.dtype(dtype).type
    a = scalar(a)
    b = scalar(b)
    one = scalar(1.0)
    if b == 0:
        return 1.0, 0.0
    if abs(b) > abs(a):
        t = -a / b
        s = one / np.sqrt(one + t * t)
        c = s * t
    else:
        t = -b / a
        c = one / np.sqrt(one + t * t)
        s = c * t
    return float(c), float(s)


class GivensWorkspace:
    """Incremental QR of the GMRES Hessenberg matrix via Givens rotations.

    Maintains, in the working dtype:

    * ``R`` — the upper-triangular factor (capacity ``m × m``),
    * ``g`` — the rotated right-hand side ``Q^T (beta e_1)``, whose trailing
      entry's magnitude is the *implicit* residual norm, and
    * the rotation cosines/sines applied so far.

    This is exactly the piece of GMRES the paper's "Other" bucket times on
    the host.
    """

    def __init__(self, max_size: int, dtype=np.float64) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.dtype = np.dtype(dtype)
        self.max_size = max_size
        self.R = np.zeros((max_size + 1, max_size), dtype=self.dtype)
        self.g = np.zeros(max_size + 1, dtype=self.dtype)
        self.cosines = np.zeros(max_size, dtype=self.dtype)
        self.sines = np.zeros(max_size, dtype=self.dtype)
        self.size = 0

    def reset(self, beta: float) -> None:
        """Start a new cycle with initial residual norm ``beta``."""
        self.R[:] = 0
        self.g[:] = 0
        self.g[0] = self.dtype.type(beta)
        self.size = 0

    def append_column(self, h: np.ndarray, h_next: float) -> float:
        """Add Hessenberg column ``[h; h_next]`` and return the implicit residual norm.

        Parameters
        ----------
        h:
            The first ``j+1`` entries of column ``j`` (``j = self.size``).
        h_next:
            The subdiagonal entry ``h_{j+1, j}``.
        """
        j = self.size
        if j >= self.max_size:
            raise RuntimeError("GivensWorkspace is full")
        col = self.R[:, j]
        col[: j + 1] = np.asarray(h, dtype=self.dtype)[: j + 1]
        col[j + 1] = self.dtype.type(h_next)

        # Apply all previous rotations to the new column.
        for i in range(j):
            c, s = self.cosines[i], self.sines[i]
            temp = c * col[i] - s * col[i + 1]
            col[i + 1] = s * col[i] + c * col[i + 1]
            col[i] = temp

        # Compute and apply the new rotation annihilating col[j+1].
        c, s = givens_rotation(float(col[j]), float(col[j + 1]), dtype=self.dtype)
        c = self.dtype.type(c)
        s = self.dtype.type(s)
        self.cosines[j], self.sines[j] = c, s
        col[j] = c * col[j] - s * col[j + 1]
        col[j + 1] = 0

        g_j = self.g[j]
        self.g[j] = c * g_j
        self.g[j + 1] = s * g_j
        self.size = j + 1

        meter_host_dense(6 * (j + 1))
        return float(abs(self.g[j + 1]))

    @property
    def implicit_residual_norm(self) -> float:
        """Magnitude of the trailing rotated right-hand-side entry."""
        return float(abs(self.g[self.size]))

    def solve(self, out: "np.ndarray | None" = None) -> np.ndarray:
        """Solve the triangular system for the Krylov coefficients ``y``.

        ``out``, when given, is a caller-owned length-``size`` buffer the
        coefficients are written into (the solver passes its workspace's
        Hessenberg-column buffer so restarts allocate nothing).
        """
        j = self.size
        y = back_substitute(self.R[:j, :j], self.g[:j], out=out)
        meter_host_dense(j * j)
        return y


def back_substitute(
    R: np.ndarray, b: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Solve ``R y = b`` for upper-triangular ``R`` in the dtype of ``R``.

    ``out``, when given, receives the solution (length ``n``, dtype of
    ``R``; must not alias ``b``).

    Raises
    ------
    ZeroDivisionError
        If a diagonal entry is exactly zero (happens only on lucky breakdown
        with an exactly-consistent system; callers treat it separately).
    """
    R = np.asarray(R)
    b = np.asarray(b, dtype=R.dtype)
    n = R.shape[0]
    if R.shape != (n, n) or b.shape != (n,):
        raise ValueError("back_substitute expects square R and matching b")
    if out is None:
        y = np.zeros(n, dtype=R.dtype)
    else:
        if out.shape != (n,) or out.dtype != R.dtype:
            raise ValueError("back_substitute output buffer has wrong shape or dtype")
        y = out
    for i in range(n - 1, -1, -1):
        diag = R[i, i]
        if diag == 0:
            raise ZeroDivisionError("singular triangular factor in GMRES projection")
        y[i] = (b[i] - np.dot(R[i, i + 1 :], y[i + 1 :])) / diag
    return y


def hessenberg_lstsq(H: np.ndarray, beta: float) -> Tuple[np.ndarray, float]:
    """Dense least-squares oracle: ``min_y || beta e_1 - H y ||``.

    Used in tests to validate the incremental Givens machinery; returns the
    minimiser and the residual norm.  Computation is done in float64
    regardless of input dtype (it is an oracle, not a modelled kernel).
    """
    H = np.asarray(H, dtype=np.float64)
    rows, cols = H.shape
    rhs = np.zeros(rows)
    rhs[0] = beta
    y, residuals, _rank, _sv = np.linalg.lstsq(H, rhs, rcond=None)
    if residuals.size:
        res_norm = float(np.sqrt(residuals[0]))
    else:
        res_norm = float(np.linalg.norm(rhs - H @ y))
    return y, res_norm
