"""MultiVector: the block of Krylov basis vectors.

Plays the role of the Kokkos-backed Belos ``MultiVector`` adapter from
Section IV of the paper: a pre-allocated ``n × (m+1)`` block holding the
Krylov basis of a restarted GMRES cycle, with the two block operations that
dominate orthogonalization cost (``V_j^T w`` and ``w -= V_j h``) routed
through the metered kernels.

The storage is column-major (Fortran order) so that "the first ``j``
columns" is a contiguous view — the same reason Kokkos uses LayoutLeft for
these blocks — which keeps the NumPy GEMV calls cache-friendly per the
HPC-Python guidance on memory layout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..precision import Precision, as_precision
from . import kernels

__all__ = ["MultiVector"]


class MultiVector:
    """A fixed-capacity block of dense vectors in one precision.

    Parameters
    ----------
    length:
        Vector length ``n``.
    capacity:
        Maximum number of vectors (``m + 1`` for GMRES(m)).
    precision:
        Storage precision of the block.
    """

    __slots__ = ("_block", "_count", "_work", "precision")

    def __init__(self, length: int, capacity: int, precision="double") -> None:
        if length < 0 or capacity <= 0:
            raise ValueError("length must be >= 0 and capacity positive")
        prec = as_precision(precision)
        self.precision: Precision = prec
        self._block = np.zeros((length, capacity), dtype=prec.dtype, order="F")
        # Length-n scratch handed to the GEMV update kernel so the
        # subtraction/combination passes never allocate an intermediate.
        self._work = np.empty(length, dtype=prec.dtype)
        self._count = 0

    # ------------------------------------------------------------------ #
    # shape / storage queries                                            #
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Vector length ``n``."""
        return self._block.shape[0]

    @property
    def capacity(self) -> int:
        """Maximum number of vectors the block can hold."""
        return self._block.shape[1]

    @property
    def count(self) -> int:
        """Number of vectors currently stored."""
        return self._count

    @property
    def dtype(self) -> np.dtype:
        return self._block.dtype

    def storage_bytes(self) -> int:
        """Bytes of device memory the block occupies (used for OOM checks)."""
        return int(self._block.nbytes)

    # ------------------------------------------------------------------ #
    # vector access                                                      #
    # ------------------------------------------------------------------ #
    def column(self, j: int) -> np.ndarray:
        """Writable view of column ``j`` (must be < capacity)."""
        if not 0 <= j < self.capacity:
            raise IndexError(f"column {j} out of range (capacity {self.capacity})")
        return self._block[:, j]

    def block(self, j: Optional[int] = None) -> np.ndarray:
        """Contiguous view of the first ``j`` columns (default: all stored)."""
        j = self._count if j is None else j
        if not 0 <= j <= self.capacity:
            raise IndexError(f"block size {j} out of range")
        return self._block[:, :j]

    def column_block(self, start: int, count: int) -> np.ndarray:
        """Writable view of ``count`` consecutive columns from ``start``.

        Because the storage is Fortran-ordered, the view is itself
        F-contiguous — the shape block solvers hand to ``spmm``/``gemm``.
        """
        if start < 0 or count < 0 or start + count > self.capacity:
            raise IndexError(
                f"column block [{start}, {start + count}) out of range "
                f"(capacity {self.capacity})"
            )
        return self._block[:, start : start + count]

    def append(self, vector: np.ndarray) -> int:
        """Copy ``vector`` into the next free column; returns its index."""
        if self._count >= self.capacity:
            raise RuntimeError("MultiVector is full")
        vector = np.asarray(vector)
        if vector.shape != (self.length,):
            raise ValueError("vector has wrong length")
        j = self._count
        self._block[:, j] = vector  # implicit cast to the block's precision
        self._count += 1
        return j

    def set_count(self, count: int) -> None:
        """Reset the number of stored vectors (e.g. on restart)."""
        if not 0 <= count <= self.capacity:
            raise ValueError("count out of range")
        self._count = count

    def reset(self) -> None:
        """Forget all stored vectors (storage is reused, not zeroed)."""
        self._count = 0

    # ------------------------------------------------------------------ #
    # metered block operations                                           #
    # ------------------------------------------------------------------ #
    def project(
        self,
        w: np.ndarray,
        j: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``h = V_j^T w`` against the first ``j`` stored vectors (metered).

        ``out``, when given, is the caller-owned length-``j`` coefficient
        buffer the result is written into.
        """
        V = self.block(j)
        return kernels.gemv_transpose(V, w, out=out)

    def subtract_projection(
        self, w: np.ndarray, h: np.ndarray, j: Optional[int] = None
    ) -> np.ndarray:
        """``w -= V_j h`` in place (metered, allocation-free — the
        intermediate ``V_j h`` lands in this block's scratch vector)."""
        V = self.block(j)
        return kernels.gemv_notrans(V, h, w, work=self._work)

    def combine(
        self,
        coefficients: np.ndarray,
        j: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``x = V_j y`` — form the solution update from the Krylov basis (metered).

        Writes into ``out`` when given (caller-owned, length ``n``; it is
        zeroed first and must not alias the scratch or the basis).  The
        sign is folded into the update kernel (``alpha=+1``), so no negated
        copy of the coefficients is made.
        """
        V = self.block(j)
        coefficients = np.asarray(coefficients, dtype=self.dtype)
        if out is None:
            out = np.zeros(self.length, dtype=self.dtype)
        else:
            if out.shape != (self.length,):
                raise ValueError("combine output buffer has wrong length")
            out[:] = 0
        # out = 0 + V y via the metered update kernel keeps labels consistent.
        return kernels.gemv_notrans(V, coefficients, out, alpha=1.0, work=self._work)

    # ------------------------------------------------------------------ #
    # metered block-of-vectors (BLAS-3) operations                       #
    # ------------------------------------------------------------------ #
    def project_block(
        self,
        W: np.ndarray,
        j: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``H = V_j^T W`` for a block of vectors ``W`` (n × k) (metered).

        The BLAS-3 pass of block Gram-Schmidt: the basis is read once for
        all ``k`` columns.  ``out``, when given, is the caller-owned
        C-contiguous ``(j, k)`` coefficient block.
        """
        V = self.block(j)
        return kernels.gemm_transpose(V, W, out=out)

    def subtract_projection_block(
        self,
        W: np.ndarray,
        H: np.ndarray,
        j: Optional[int] = None,
        *,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``W -= V_j H`` in place on the block ``W`` (metered).

        ``work`` is caller-owned ``(n, k)`` C-contiguous scratch for the
        intermediate product (the block analogue of the internal scratch
        :meth:`subtract_projection` uses); without it the call allocates.
        """
        V = self.block(j)
        return kernels.gemm_notrans(V, H, W, work=work)

    def combine_block(
        self,
        coefficients: np.ndarray,
        j: Optional[int] = None,
        out: Optional[np.ndarray] = None,
        *,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``X = V_j Y`` — form a block of solution updates (metered).

        ``out``, when given, is a caller-owned ``(n, k)`` block (it is
        zeroed first; must not alias the basis); ``work`` as in
        :meth:`subtract_projection_block`.  The sign is folded into the
        update kernel (``alpha=+1``), matching :meth:`combine`.
        """
        V = self.block(j)
        coefficients = np.asarray(coefficients, dtype=self.dtype)
        if coefficients.ndim != 2:
            raise ValueError("combine_block expects a 2-D coefficient block")
        k = coefficients.shape[1]
        if out is None:
            out = np.zeros((self.length, k), dtype=self.dtype, order="F")
        else:
            if out.shape != (self.length, k):
                raise ValueError("combine_block output buffer has wrong shape")
            out[:] = 0
        return kernels.gemm_notrans(V, coefficients, out, alpha=1.0, work=work)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MultiVector n={self.length} count={self._count}/{self.capacity} "
            f"dtype={self.dtype.name}>"
        )
