"""Instrumented linear-algebra kernels.

These are the operations the paper's figures time individually:

==================  =====================================================
label               operation
==================  =====================================================
``SpMV``            ``y = A x`` on the CSR matrix
``GEMV (Trans)``    ``h = V^T w`` — the inner-product pass of CGS
``GEMV (No Trans)`` ``w = w - V h`` — the update pass of CGS
``Norm``            2-norms and single dot products
``Other``           axpy/scal/copy/cast, host-side dense work, fp64
                    residual computation in GMRES-IR
``Precond``         preconditioner applications (polynomial / block Jacobi)
==================  =====================================================

Each function executes the actual NumPy computation in the precision of its
operands (the numerics are real), measures wall time, asks the active
:class:`~repro.perfmodel.costs.KernelCostModel` for the modelled GPU cost,
and records both into every timer on the active timer stack.

Precision discipline: operands must share one dtype.  Mixing fp32 and fp64
operands raises — exactly the restriction the Belos/Tpetra stack imposes
(Section IV: "these templates assume that all operations are carried out in
the same scalar type").  Cross-precision data movement must go through
:func:`cast`, which is metered separately, mirroring how the paper counts
the casting overhead of mixed-precision preconditioning.

Backend dispatch: the arithmetic itself is executed by the *active*
:class:`~repro.backends.KernelBackend` (``ctx.backend``), so the same
metering, labels and precision checks apply whether the kernels run on the
NumPy reference or the SciPy fast path (or any backend registered later).
Every kernel — including ``scal``/``copy``/``diag_scale``/
``block_diag_solve``, which used to execute inline NumPy here — now routes
through the backend, so an accelerator backend can take over the whole
per-iteration kernel sequence.

Metering fast path: when no timer is on the stack or the execution
context's ``meter`` flag is off, the kernels skip ``perf_counter`` and the
cost model entirely and run the raw backend call — an unmetered solve pays
only for arithmetic.  Observable behaviour is unchanged (nothing would
have been recorded anyway); only the bookkeeping overhead disappears.

Buffer-ownership rules (the ``out=`` contract):

==========================  ===========================================
parameter                   rule
==========================  ===========================================
``out=`` (all kernels)      caller-owned; the kernel writes the result
                            into it and returns *that* buffer, never a
                            fresh array.  Must match the result's shape
                            and (for same-dtype kernels) dtype.
``out`` vs inputs           must not alias an input unless the kernel
                            docstring allows it (``diag_scale`` does;
                            ``spmv``/``gemv_transpose`` do not).
``work=`` (gemv_notrans)    caller-owned length-``n`` scratch for the
                            intermediate ``V h`` product; contents are
                            clobbered; must not alias ``w``.
omitted ``out``/``work``    the kernel allocates, exactly as before this
                            contract existed (back-compatible).
==========================  ===========================================
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..perfmodel.costs import CostEstimate
from ..perfmodel.timer import active_timers, timers_active
from ..precision import as_precision
from ..sparse.csr import CsrMatrix
from .context import get_context

__all__ = [
    "spmv",
    "spmm",
    "gemv_transpose",
    "gemv_notrans",
    "gemm_transpose",
    "gemm_notrans",
    "dot",
    "norm2",
    "axpy",
    "scal",
    "copy",
    "cast",
    "diag_scale",
    "block_diag_solve",
    "meter_cast",
    "meter_host_dense",
    "meter_host_transfer",
    "PrecisionMismatchError",
]


class PrecisionMismatchError(TypeError):
    """Raised when a kernel receives operands of different precisions."""


def _precision_name(dtype: np.dtype) -> str:
    return as_precision(dtype).name


def _record(label: str, dtype: np.dtype, cost: CostEstimate, wall: float) -> None:
    timers = active_timers()
    if not timers:
        return
    prec = _precision_name(dtype)
    for timer in timers:
        timer.record(label, prec, cost, wall)


def _check_same_dtype(*arrays: np.ndarray) -> np.dtype:
    dtypes = {a.dtype for a in arrays}
    if len(dtypes) != 1:
        raise PrecisionMismatchError(
            f"kernel operands must share one precision, got {sorted(d.name for d in dtypes)}; "
            "use repro.linalg.kernels.cast to convert explicitly"
        )
    return arrays[0].dtype


# ---------------------------------------------------------------------- #
# sparse                                                                 #
# ---------------------------------------------------------------------- #
def spmv(
    matrix: CsrMatrix,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "SpMV",
) -> np.ndarray:
    """Metered CSR matrix–vector product ``y = A x`` (``out`` must not alias ``x``)."""
    x = np.asarray(x)
    _check_same_dtype(matrix.data, x)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.spmv(matrix, x, out=out)
    start = time.perf_counter()
    y = ctx.backend.spmv(matrix, x, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.spmv(
        matrix.n_rows,
        matrix.n_cols,
        matrix.nnz,
        matrix.dtype.itemsize,
        matrix.bandwidth(),
    )
    _record(label, matrix.dtype, cost, wall)
    return y


def spmm(
    matrix: CsrMatrix,
    X: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "SpMM",
) -> np.ndarray:
    """Metered batched multi-RHS product ``Y = A X`` (``X`` is n × k).

    The batched kernel reads the matrix once for all ``k`` right-hand
    sides, which is why block solvers favour it; the modelled cost
    reflects that (see :meth:`KernelCostModel.spmm`).  Shape validation
    (``X`` must be 2-D) lives in the backends, which every path funnels
    through.
    """
    X = np.asarray(X)
    _check_same_dtype(matrix.data, X)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.spmm(matrix, X, out=out)
    start = time.perf_counter()
    Y = ctx.backend.spmm(matrix, X, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.spmm(
        matrix.n_rows,
        matrix.n_cols,
        matrix.nnz,
        X.shape[1],
        matrix.dtype.itemsize,
        matrix.bandwidth(),
    )
    _record(label, matrix.dtype, cost, wall)
    return Y


# ---------------------------------------------------------------------- #
# dense block (orthogonalization) kernels                                #
# ---------------------------------------------------------------------- #
def gemv_transpose(
    V: np.ndarray,
    w: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "GEMV (Trans)",
) -> np.ndarray:
    """``h = V^T w`` for a tall-skinny basis block ``V`` (n × k).

    ``out``, when given, receives the ``k`` coefficients.
    """
    V = np.asarray(V)
    w = np.asarray(w)
    dtype = _check_same_dtype(V, w)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.gemv_transpose(V, w, out=out)
    start = time.perf_counter()
    h = ctx.backend.gemv_transpose(V, w, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.gemv(V.shape[0], V.shape[1], dtype.itemsize, trans=True)
    _record(label, dtype, cost, wall)
    return h


def gemv_notrans(
    V: np.ndarray,
    h: np.ndarray,
    w: np.ndarray,
    *,
    alpha: float = -1.0,
    work: Optional[np.ndarray] = None,
    label: str = "GEMV (No Trans)",
) -> np.ndarray:
    """``w += alpha * (V h)`` (in place on ``w``) for a tall-skinny block ``V``.

    The default ``alpha=-1`` is the classical Gram-Schmidt subtraction
    ``w -= V h``; ``alpha=+1`` with a pre-zeroed ``w`` forms the solution
    update ``V y`` with the sign folded into the kernel (no negated
    coefficient copy).  ``work`` is optional length-``n`` scratch for the
    intermediate product (clobbered; must not alias ``w``).
    """
    V = np.asarray(V)
    h = np.asarray(h)
    dtype = _check_same_dtype(V, h, np.asarray(w))
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.gemv_notrans(V, h, w, alpha=alpha, work=work)
    start = time.perf_counter()
    w = ctx.backend.gemv_notrans(V, h, w, alpha=alpha, work=work)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.gemv(V.shape[0], V.shape[1], dtype.itemsize, trans=False)
    _record(label, dtype, cost, wall)
    return w


def gemm_transpose(
    V: np.ndarray,
    W: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "GEMM (Trans)",
) -> np.ndarray:
    """``H = V^T W`` — the block inner-product pass of block Gram-Schmidt.

    The BLAS-3 analogue of :func:`gemv_transpose`: the basis block ``V``
    (n × j) is read once for all ``k`` columns of ``W``.  ``out``, when
    given, receives the ``(j, k)`` coefficient block (C-contiguous).
    """
    V = np.asarray(V)
    W = np.asarray(W)
    dtype = _check_same_dtype(V, W)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.gemm_transpose(V, W, out=out)
    start = time.perf_counter()
    H = ctx.backend.gemm_transpose(V, W, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.gemm(
        V.shape[0], V.shape[1], W.shape[1], dtype.itemsize, trans=True
    )
    _record(label, dtype, cost, wall)
    return H


def gemm_notrans(
    V: np.ndarray,
    H: np.ndarray,
    W: np.ndarray,
    *,
    alpha: float = -1.0,
    work: Optional[np.ndarray] = None,
    label: str = "GEMM (No Trans)",
) -> np.ndarray:
    """``W += alpha * (V H)`` in place on the block ``W`` (n × k).

    The BLAS-3 analogue of :func:`gemv_notrans`: ``alpha=-1`` is the block
    Gram-Schmidt subtraction, ``alpha=+1`` with a pre-zeroed ``W`` the
    block solution update ``V Y``.  ``work`` is optional ``(n, k)``
    C-contiguous scratch for the intermediate product (clobbered; must not
    alias ``W``).
    """
    V = np.asarray(V)
    H = np.asarray(H)
    dtype = _check_same_dtype(V, H, np.asarray(W))
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.gemm_notrans(V, H, W, alpha=alpha, work=work)
    start = time.perf_counter()
    W = ctx.backend.gemm_notrans(V, H, W, alpha=alpha, work=work)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.gemm(
        V.shape[0], V.shape[1], H.shape[1], dtype.itemsize, trans=False
    )
    _record(label, dtype, cost, wall)
    return W


# ---------------------------------------------------------------------- #
# vector kernels                                                         #
# ---------------------------------------------------------------------- #
def dot(x: np.ndarray, y: np.ndarray, *, label: str = "Norm") -> float:
    """Metered dot product (grouped with norms in the paper's figures)."""
    x = np.asarray(x)
    y = np.asarray(y)
    dtype = _check_same_dtype(x, y)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.dot(x, y)
    start = time.perf_counter()
    value = ctx.backend.dot(x, y)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.dot(x.size, dtype.itemsize)
    _record(label, dtype, cost, wall)
    return value


def norm2(x: np.ndarray, *, label: str = "Norm") -> float:
    """Metered Euclidean norm.

    The accumulation happens in the vector's own precision (an fp32 norm is
    an fp32 reduction followed by a square root), matching the behaviour of
    a templated Belos solver.
    """
    x = np.asarray(x)
    dtype = x.dtype
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.norm2(x)
    start = time.perf_counter()
    # Accumulation happens in the working dtype (backend contract).
    value = ctx.backend.norm2(x)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.norm2(x.size, dtype.itemsize)
    _record(label, dtype, cost, wall)
    return value


def axpy(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    *,
    work: Optional[np.ndarray] = None,
    label: str = "axpy",
) -> np.ndarray:
    """``y += alpha * x`` in place (metered under "Other").

    ``work`` is optional caller-owned scratch of ``x``'s shape for the
    scaled intermediate, making the update allocation-free (used by the
    block solvers, whose ``x`` is an (n, k) block).
    """
    x = np.asarray(x)
    dtype = _check_same_dtype(x, np.asarray(y))
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.axpy(alpha, x, y, work=work)
    start = time.perf_counter()
    y = ctx.backend.axpy(alpha, x, y, work=work)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.axpy(x.size, dtype.itemsize)
    _record(label, dtype, cost, wall)
    return y


def scal(alpha: float, x: np.ndarray, *, label: str = "scal") -> np.ndarray:
    """``x *= alpha`` in place (metered under "Other")."""
    x = np.asarray(x)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.scal(alpha, x)
    start = time.perf_counter()
    x = ctx.backend.scal(alpha, x)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.scal(x.size, x.dtype.itemsize)
    _record(label, x.dtype, cost, wall)
    return x


def copy(x: np.ndarray, out: Optional[np.ndarray] = None, *, label: str = "copy") -> np.ndarray:
    """Metered vector copy (same precision)."""
    x = np.asarray(x)
    if out is not None:
        _check_same_dtype(x, np.asarray(out))
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.copy(x, out=out)
    start = time.perf_counter()
    result = ctx.backend.copy(x, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.copy(x.size, x.dtype.itemsize)
    _record(label, x.dtype, cost, wall)
    return result


def cast(
    x: np.ndarray,
    precision,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "cast",
) -> np.ndarray:
    """Convert a vector to another precision (metered under "Other").

    This is the explicit precision boundary: GMRES-IR casts the fp64
    residual down to fp32 before handing it to the inner solver and casts
    the fp32 correction back up; fp32 preconditioning of an fp64 solver
    casts the vector on every preconditioner application.  The paper counts
    these casts in the reported solve times, so they are metered.

    ``out``, when given, must have the target precision; the conversion is
    written into it.  When ``x`` already has the target precision the cast
    is a no-op and ``x`` itself is returned (``out`` is ignored) — a
    same-precision "cast" is free, exactly as before.
    """
    x = np.asarray(x)
    prec = as_precision(precision)
    if x.dtype == prec.dtype:
        return x
    if out is not None and out.dtype != prec.dtype:
        raise PrecisionMismatchError(
            f"cast output buffer has dtype {out.dtype.name}, expected {prec.dtype.name}"
        )
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        if out is None:
            return x.astype(prec.dtype)
        np.copyto(out, x, casting="unsafe")
        return out
    start = time.perf_counter()
    if out is None:
        result = x.astype(prec.dtype)
    else:
        np.copyto(out, x, casting="unsafe")
        result = out
    wall = time.perf_counter() - start
    cost = ctx.cost_model.cast(x.size, x.dtype.itemsize, prec.bytes)
    # Record under the *wider* precision so mixed casts are attributed
    # consistently; they all land in the "Other" bucket anyway.
    wide = x.dtype if x.dtype.itemsize >= prec.bytes else prec.dtype
    _record(label, wide, cost, wall)
    return result


# ---------------------------------------------------------------------- #
# preconditioner application kernels                                     #
# ---------------------------------------------------------------------- #
def diag_scale(
    scale: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "Precond",
) -> np.ndarray:
    """Elementwise product ``scale * x`` — the point-Jacobi application.

    ``out`` may alias ``x`` (the product is elementwise).
    """
    scale = np.asarray(scale)
    x = np.asarray(x)
    dtype = _check_same_dtype(scale, x)
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.diag_scale(scale, x, out=out)
    start = time.perf_counter()
    result = ctx.backend.diag_scale(scale, x, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.axpy(x.size, dtype.itemsize)
    _record(label, dtype, cost, wall)
    return result


def block_diag_solve(
    inv_blocks: np.ndarray,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    label: str = "Precond",
) -> np.ndarray:
    """Apply a block-diagonal operator stored as explicit inverse blocks.

    ``inv_blocks`` has shape ``(n_blocks, k, k)``; ``x`` has length
    ``n_blocks * k`` (zero-padded by the caller if needed).  The modelled
    cost treats the operation as a blocked SpMV with ``n_blocks * k * k``
    nonzeros (the block-Jacobi apply is memory bound, like everything else
    in the solver).  ``out`` must not alias ``x``.
    """
    inv_blocks = np.asarray(inv_blocks)
    x = np.asarray(x)
    dtype = _check_same_dtype(inv_blocks, x)
    n_blocks, k, k2 = inv_blocks.shape
    if k != k2 or x.size != n_blocks * k:
        raise ValueError("block_diag_solve: inconsistent block/vector shapes")
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return ctx.backend.block_diag_solve(inv_blocks, x, out=out)
    start = time.perf_counter()
    result = ctx.backend.block_diag_solve(inv_blocks, x, out=out)
    wall = time.perf_counter() - start
    cost = ctx.cost_model.spmv(
        n_rows=x.size,
        n_cols=x.size,
        nnz=n_blocks * k * k,
        value_bytes=dtype.itemsize,
        matrix_bandwidth=k,
    )
    _record(label, dtype, cost, wall)
    return result


# ---------------------------------------------------------------------- #
# pure-metering helpers (no computation)                                 #
# ---------------------------------------------------------------------- #
def meter_cast(n: int, from_bytes: int, to_bytes: int, *, label: str = "cast") -> None:
    """Charge the cost of converting ``n`` values without doing it here."""
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return
    cost = ctx.cost_model.cast(n, from_bytes, to_bytes)
    dtype = np.dtype(np.float64 if max(from_bytes, to_bytes) >= 8 else np.float32)
    _record(label, dtype, cost, 0.0)


def meter_host_dense(work_elements: int, *, label: str = "host", wall: float = 0.0) -> None:
    """Charge a small host-side dense operation (Givens sweep etc.)."""
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return
    cost = ctx.cost_model.host_dense_op(work_elements)
    _record(label, np.dtype(np.float64), cost, wall)


def meter_host_transfer(nbytes: float, *, label: str = "host") -> None:
    """Charge a host↔device transfer of ``nbytes`` bytes."""
    ctx = get_context()
    if not (ctx.meter and timers_active()):
        return
    cost = ctx.cost_model.host_transfer(nbytes)
    _record(label, np.dtype(np.float64), cost, 0.0)
