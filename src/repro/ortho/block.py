"""Block orthogonalization for Block-GMRES.

Block Arnoldi expands the Krylov basis by ``k`` vectors at a time (one
``spmm`` per block step), so the orthogonalization work comes in two
parts with very different shapes:

* **inter-block** — project the ``k`` new vectors against the ``j·k``
  already-orthonormal basis columns.  This is where the bytes are, and it
  is expressed as two BLAS-3 passes (``gemm_transpose`` +
  ``gemm_notrans``): the basis streams through memory *once* for all
  ``k`` vectors, instead of once per vector as in the GEMV-based CGS2 of
  single-vector GMRES;
* **intra-block** — mutually orthonormalize the ``k`` new vectors.  The
  panel is tiny (``k ≈ 8``), so this runs column-by-column with the
  existing metered GEMV/norm kernels (two classical Gram-Schmidt passes
  per column, the CGS2 discipline), producing the ``k × k`` triangular
  factor that becomes the subdiagonal block of the band Hessenberg.

Managers own their coefficient/work scratch (allocated once per distinct
active block width, i.e. once per deflation event), so the steady-state
block iteration allocates nothing.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

import numpy as np

from ..linalg import kernels
from ..linalg.multivector import MultiVector

__all__ = [
    "BlockOrthogonalizationManager",
    "BlockClassicalGramSchmidt2",
    "BlockClassicalGramSchmidt",
    "make_block_ortho_manager",
]

#: Intra-block column norms at or below this are treated as exact linear
#: dependence (e.g. a zero residual column): the column is zeroed rather
#: than normalized, mirroring the lucky-breakdown handling of the
#: single-vector solver.
BLOCK_BREAKDOWN_TOLERANCE = 1e-30


class BlockOrthogonalizationManager(abc.ABC):
    """Orthogonalizes a block of new Arnoldi vectors against the basis."""

    #: short name used in reports and benchmarks
    name: str = "block-ortho"

    #: inter-block projection passes (1 = BCGS, 2 = BCGS2)
    _n_block_passes: int = 2

    def __init__(self) -> None:
        self._bufs: Dict[Tuple[int, int, int, str], Dict[str, np.ndarray]] = {}

    def _buffers(self, basis: MultiVector, k: int) -> Dict[str, np.ndarray]:
        """Per-(shape, width) scratch, reallocated only on deflation."""
        key = (basis.length, basis.capacity, k, basis.dtype.str)
        bufs = self._bufs.get(key)
        if bufs is None:
            dtype = basis.dtype
            bufs = self._bufs[key] = {
                "coeff": np.empty((basis.capacity, k), dtype=dtype),
                "panel": np.empty((basis.capacity, k), dtype=dtype),
                "work": np.empty((basis.length, k), dtype=dtype),
                "col": np.empty(basis.capacity, dtype=dtype),
                "vec": np.empty(basis.length, dtype=dtype),
            }
        return bufs

    @abc.abstractmethod
    def orthogonalize_block(
        self, basis: MultiVector, start: int, k: int
    ) -> Tuple[np.ndarray, bool]:
        """Orthogonalize basis columns ``[start, start + k)`` in place.

        The columns are orthogonalized against columns ``[0, start)`` and
        then mutually orthonormalized.

        Returns
        -------
        (panel, breakdown):
            ``panel`` — a ``(start + k, k)`` view of internal scratch:
            rows ``0 .. start-1`` hold the inter-block projection
            coefficients, rows ``start .. start+k-1`` the intra-block
            upper-triangular factor (diagonal = column norms).  Valid only
            until the next call.  ``breakdown`` — True when an intra-block
            column collapsed to (numerically exact) zero; the column is
            zeroed and its diagonal entry set to 0.
        """


class _GramSchmidtBlockBase(BlockOrthogonalizationManager):
    """Shared machinery of the one- and two-pass block CGS variants."""

    def orthogonalize_block(
        self, basis: MultiVector, start: int, k: int
    ) -> Tuple[np.ndarray, bool]:
        if k <= 0:
            raise ValueError("block width must be positive")
        if start + k > basis.capacity:
            raise ValueError("block exceeds the basis capacity")
        bufs = self._buffers(basis, k)
        W = basis.column_block(start, k)
        panel = bufs["panel"][: start + k]
        panel[:] = 0

        # Inter-block passes: BLAS-3 projection against the orthonormal part.
        if start > 0:
            for _ in range(self._n_block_passes):
                h = basis.project_block(W, j=start, out=bufs["coeff"][:start])
                basis.subtract_projection_block(W, h, j=start, work=bufs["work"])
                np.add(panel[:start], h, out=panel[:start])

        # Intra-block: CGS2 column sweep producing the triangular factor.
        breakdown = False
        col_scratch = bufs["col"]
        vec_work = bufs["vec"]
        for i in range(k):
            w = W[:, i]
            sub = W[:, :i]
            if i > 0:
                for _ in range(self._n_block_passes):
                    h = kernels.gemv_transpose(sub, w, out=col_scratch[:i])
                    kernels.gemv_notrans(sub, h, w, work=vec_work)
                    target = panel[start : start + i, i]
                    np.add(target, h, out=target)
            norm = kernels.norm2(w)
            if norm <= BLOCK_BREAKDOWN_TOLERANCE:
                breakdown = True
                w[:] = 0
                panel[start + i, i] = 0
            else:
                panel[start + i, i] = norm
                kernels.scal(1.0 / norm, w)
        return panel, breakdown


class BlockClassicalGramSchmidt2(_GramSchmidtBlockBase):
    """Two-pass block classical Gram-Schmidt (the paper's CGS2, blocked)."""

    name = "bcgs2"
    _n_block_passes = 2


class BlockClassicalGramSchmidt(_GramSchmidtBlockBase):
    """Single-pass block classical Gram-Schmidt (ablation variant)."""

    name = "bcgs"
    _n_block_passes = 1


_REGISTRY = {
    "bcgs": BlockClassicalGramSchmidt,
    "bcgs2": BlockClassicalGramSchmidt2,
}


def make_block_ortho_manager(name: str) -> BlockOrthogonalizationManager:
    """Build a block orthogonalization manager by name (``"bcgs2"``, ``"bcgs"``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown block orthogonalization {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]()
