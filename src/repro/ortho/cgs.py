"""Single-pass classical Gram-Schmidt.

One projection pass: two tall-skinny GEMVs plus a norm.  Cheapest per
iteration but numerically the weakest — in finite precision the computed
basis can lose orthogonality, which is why the paper (and Belos) defaults
to the two-pass variant.  Included for the ablation benchmark.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..linalg import kernels
from ..linalg.multivector import MultiVector
from .base import OrthogonalizationManager

__all__ = ["ClassicalGramSchmidt"]


class ClassicalGramSchmidt(OrthogonalizationManager):
    """One pass of classical Gram-Schmidt (CGS)."""

    name = "cgs"

    def orthogonalize(
        self, basis: MultiVector, w: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        j = basis.count
        if j == 0:
            return np.zeros(0, dtype=w.dtype), kernels.norm2(w)
        (bh,) = self._column_scratch(basis)
        h = basis.project(w, out=bh[:j])
        basis.subtract_projection(w, h)
        h_next = kernels.norm2(w)
        return h, h_next

    def kernel_calls_per_vector(self, j: int) -> int:
        return 3 if j else 1  # GEMV_T + GEMV_N + norm
