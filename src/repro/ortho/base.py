"""Interface shared by all orthogonalization managers."""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..linalg.multivector import MultiVector

__all__ = ["OrthogonalizationManager"]


class OrthogonalizationManager(abc.ABC):
    """Orthogonalizes a new Arnoldi vector against the current basis.

    Implementations orthogonalize ``w`` *in place* against the ``j`` vectors
    stored in ``basis`` and return the projection coefficients plus the norm
    of the remainder — i.e. Hessenberg column entries ``h_{1..j, j}`` and
    the subdiagonal ``h_{j+1, j}``.  They do **not** normalize ``w``; the
    solver does that so the scaling shows up under its own kernel label.
    """

    #: short name used in reports and the ablation benchmark
    name: str = "ortho"

    @abc.abstractmethod
    def orthogonalize(
        self, basis: MultiVector, w: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Orthogonalize ``w`` against ``basis`` in place.

        Returns
        -------
        (h, h_next):
            ``h`` — projection coefficients of length ``basis.count`` (the
            new Hessenberg column), ``h_next`` — 2-norm of the orthogonalized
            remainder (the subdiagonal entry).
        """

    def kernel_calls_per_vector(self, j: int) -> int:
        """Approximate number of device kernel launches to orthogonalize
        against ``j`` vectors (used by the ablation analysis)."""
        raise NotImplementedError
