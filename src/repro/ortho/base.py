"""Interface shared by all orthogonalization managers."""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..linalg.multivector import MultiVector

__all__ = ["OrthogonalizationManager"]


class OrthogonalizationManager(abc.ABC):
    """Orthogonalizes a new Arnoldi vector against the current basis.

    Implementations orthogonalize ``w`` *in place* against the ``j`` vectors
    stored in ``basis`` and return the projection coefficients plus the norm
    of the remainder — i.e. Hessenberg column entries ``h_{1..j, j}`` and
    the subdiagonal ``h_{j+1, j}``.  They do **not** normalize ``w``; the
    solver does that so the scaling shows up under its own kernel label.

    Managers own a small set of Hessenberg-column scratch buffers (length =
    basis capacity) so the steady-state iteration allocates nothing; the
    returned coefficient vector ``h`` is a view into that scratch and is
    only valid until the next :meth:`orthogonalize` call — callers (the
    Givens workspace) copy it immediately.
    """

    #: short name used in reports and the ablation benchmark
    name: str = "ortho"

    #: number of capacity-length scratch columns the manager needs
    _n_scratch_columns: int = 1

    def _column_scratch(self, basis: MultiVector) -> Tuple[np.ndarray, ...]:
        """Capacity-length scratch columns in the basis dtype.

        (Re)allocated only when the basis capacity or dtype changes — e.g.
        the same manager instance driving an fp32 inner and an fp64 outer
        solver — so the per-iteration path is allocation-free.
        """
        bufs = getattr(self, "_scratch_columns", None)
        if (
            bufs is None
            or bufs[0].shape[0] < basis.capacity
            or bufs[0].dtype != basis.dtype
        ):
            bufs = tuple(
                np.empty(basis.capacity, dtype=basis.dtype)
                for _ in range(self._n_scratch_columns)
            )
            self._scratch_columns = bufs
        return bufs

    @abc.abstractmethod
    def orthogonalize(
        self, basis: MultiVector, w: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Orthogonalize ``w`` against ``basis`` in place.

        Returns
        -------
        (h, h_next):
            ``h`` — projection coefficients of length ``basis.count`` (the
            new Hessenberg column), ``h_next`` — 2-norm of the orthogonalized
            remainder (the subdiagonal entry).
        """

    def kernel_calls_per_vector(self, j: int) -> int:
        """Approximate number of device kernel launches to orthogonalize
        against ``j`` vectors (used by the ablation analysis)."""
        raise NotImplementedError
