"""Two-pass classical Gram-Schmidt (CGS2) — the paper's orthogonalization.

Each GMRES iteration performs *two* projection passes; each pass is one
transposed GEMV (inner products) and one non-transposed GEMV (subtraction),
which is why Figures 4, 7 and 8 of the paper split orthogonalization time
into exactly "GEMV (Trans)", "Norm" and "GEMV (No Trans)".  The summed
coefficients of both passes form the Hessenberg column.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..linalg import kernels
from ..linalg.multivector import MultiVector
from .base import OrthogonalizationManager

__all__ = ["ClassicalGramSchmidt2"]


class ClassicalGramSchmidt2(OrthogonalizationManager):
    """Two passes of classical Gram-Schmidt (CGS2)."""

    name = "cgs2"
    _n_scratch_columns = 3  # first-pass, second-pass and summed coefficients

    def orthogonalize(
        self, basis: MultiVector, w: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        j = basis.count
        if j == 0:
            return np.zeros(0, dtype=w.dtype), kernels.norm2(w)
        b1, b2, bh = self._column_scratch(basis)
        # First pass.
        h1 = basis.project(w, out=b1[:j])
        basis.subtract_projection(w, h1)
        # Second pass re-orthogonalizes the remainder.
        h2 = basis.project(w, out=b2[:j])
        basis.subtract_projection(w, h2)
        h = np.add(h1, h2, out=bh[:j])
        h_next = kernels.norm2(w)
        return h, h_next

    def kernel_calls_per_vector(self, j: int) -> int:
        return 5 if j else 1  # 2 × (GEMV_T + GEMV_N) + norm
