"""Orthogonalization managers for the Arnoldi process.

The paper's GMRES uses two passes of classical Gram-Schmidt (CGS2), chosen
because each pass is just two tall-skinny GEMV calls — ideal for GPUs —
while the second pass restores the orthogonality a single CGS pass loses in
finite precision.  Modified Gram-Schmidt (MGS) and single-pass CGS are
provided for the ablation study (stability vs. kernel count).
"""

from .base import OrthogonalizationManager
from .block import (
    BlockClassicalGramSchmidt,
    BlockClassicalGramSchmidt2,
    BlockOrthogonalizationManager,
    make_block_ortho_manager,
)
from .cgs import ClassicalGramSchmidt
from .cgs2 import ClassicalGramSchmidt2
from .mgs import ModifiedGramSchmidt

__all__ = [
    "OrthogonalizationManager",
    "ClassicalGramSchmidt",
    "ClassicalGramSchmidt2",
    "ModifiedGramSchmidt",
    "make_ortho_manager",
    "BlockOrthogonalizationManager",
    "BlockClassicalGramSchmidt",
    "BlockClassicalGramSchmidt2",
    "make_block_ortho_manager",
]

_REGISTRY = {
    "cgs": ClassicalGramSchmidt,
    "cgs1": ClassicalGramSchmidt,
    "cgs2": ClassicalGramSchmidt2,
    "mgs": ModifiedGramSchmidt,
}


def make_ortho_manager(name: str) -> OrthogonalizationManager:
    """Build an orthogonalization manager by name (``"cgs"``, ``"cgs2"``, ``"mgs"``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown orthogonalization {name!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
