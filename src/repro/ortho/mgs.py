"""Modified Gram-Schmidt.

Numerically more robust than single-pass CGS, but it needs ``2 j`` separate
kernel launches per Arnoldi vector (one dot and one axpy per existing basis
vector), which is exactly the launch-overhead pattern GPUs hate; the paper
sticks with CGS2 for that reason.  Provided for the ablation benchmark and
as a correctness oracle in tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..linalg import kernels
from ..linalg.multivector import MultiVector
from .base import OrthogonalizationManager

__all__ = ["ModifiedGramSchmidt"]


class ModifiedGramSchmidt(OrthogonalizationManager):
    """Modified Gram-Schmidt (MGS)."""

    name = "mgs"

    def orthogonalize(
        self, basis: MultiVector, w: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        j = basis.count
        if j == 0:
            return np.zeros(0, dtype=w.dtype), kernels.norm2(w)
        (bh,) = self._column_scratch(basis)
        h = bh[:j]
        for i in range(j):
            v_i = basis.column(i)
            h_i = kernels.dot(v_i, w)
            h[i] = h_i
            kernels.axpy(-h_i, v_i, w)
        h_next = kernels.norm2(w)
        return h, h_next

    def kernel_calls_per_vector(self, j: int) -> int:
        return 2 * j + 1
