r"""The paper's analytic CSR SpMV traffic / speedup model (Section V-D).

For a CSR matrix with ``n`` rows and ``w`` nonzeros per row computing
``y = A x``:

* In **double** precision, assuming *no* cache reuse of the right-hand-side
  vector ``x``, every nonzero forces a read of one 8-byte matrix value, one
  4-byte column index, and one 8-byte entry of ``x``:

  .. math:: B_{fp64} = n\,w\,(4 + 8 + 8) = 20\,w\,n .

* In **single** precision, assuming *perfect* reuse of ``x`` (each element
  read from device memory exactly once):

  .. math:: B_{fp32} = n\,w\,(4 + 4) + 4\,n = (8w + 4)\,n .

* Hence the predicted fp64 → fp32 speedup of a purely bandwidth-bound SpMV:

  .. math:: S(w) = \frac{20 w}{8 w + 4} = \frac{5w}{2w + 1} \xrightarrow{w\to\infty} 2.5 .

The module also provides the generalised traffic formula with an arbitrary
reuse fraction, which is what the cost model actually uses: the two
formulas above are the ``reuse=0`` and ``reuse=1`` special cases.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "csr_bytes_per_row_double",
    "csr_bytes_per_row_float",
    "predicted_spmv_speedup",
    "spmv_traffic",
    "SpmvTraffic",
]

INDEX_BYTES = 4  #: the paper keeps 32-bit column indices in both precisions.


def csr_bytes_per_row_double(w: float, index_bytes: int = INDEX_BYTES) -> float:
    """Bytes moved per matrix row for fp64 SpMV with no ``x`` reuse (``20 w``)."""
    return w * (index_bytes + 8 + 8)


def csr_bytes_per_row_float(w: float, index_bytes: int = INDEX_BYTES) -> float:
    """Bytes moved per matrix row for fp32 SpMV with perfect ``x`` reuse (``8w + 4``)."""
    return w * (index_bytes + 4) + 4


def predicted_spmv_speedup(w: float, index_bytes: int = INDEX_BYTES) -> float:
    """The paper's closed-form fp64→fp32 SpMV speedup ``5w/(2w+1)``.

    Parameters
    ----------
    w:
        Average number of nonzeros per row.
    index_bytes:
        Byte width of the column index type (4 in the paper).

    Examples
    --------
    >>> round(predicted_spmv_speedup(5), 3)   # UniFlow2D / BentPipe2D
    2.273
    >>> round(predicted_spmv_speedup(7), 3)   # Laplace3D
    2.333
    """
    if w <= 0:
        raise ValueError("w (nonzeros per row) must be positive")
    num = csr_bytes_per_row_double(w, index_bytes)
    den = csr_bytes_per_row_float(w, index_bytes)
    return num / den


@dataclass(frozen=True)
class SpmvTraffic:
    """Byte-traffic breakdown of one CSR SpMV."""

    values_bytes: float
    indices_bytes: float
    x_bytes: float
    rowptr_bytes: float
    y_bytes: float

    @property
    def total(self) -> float:
        return (
            self.values_bytes
            + self.indices_bytes
            + self.x_bytes
            + self.rowptr_bytes
            + self.y_bytes
        )


def spmv_traffic(
    n_rows: int,
    nnz: int,
    value_bytes: int,
    x_reuse: float,
    *,
    index_bytes: int = INDEX_BYTES,
    rowptr_bytes: int = INDEX_BYTES,
    include_rowptr_and_y: bool = False,
    n_cols: int | None = None,
) -> SpmvTraffic:
    """Generalised byte traffic of a CSR SpMV ``y = A x``.

    Parameters
    ----------
    n_rows, nnz:
        Matrix dimensions.
    value_bytes:
        Byte width of the matrix/vector values (4 for fp32, 8 for fp64).
    x_reuse:
        Fraction of ``x`` accesses served from cache, in ``[0, 1]``.
        ``x_reuse=1`` means each element of ``x`` is read from device memory
        exactly once (the paper's "perfect caching"); ``x_reuse=0`` means
        every access goes to device memory.
    include_rowptr_and_y:
        The paper ignores row-pointer reads and ``y`` writes ("they account
        for only a small fraction of all memory traffic"); pass ``True`` to
        include them in the generalised model.
    n_cols:
        Number of columns (defaults to ``n_rows``); determines the size of
        the compulsory ``x`` read under perfect reuse.
    """
    if not 0.0 <= x_reuse <= 1.0:
        raise ValueError("x_reuse must lie in [0, 1]")
    if n_cols is None:
        n_cols = n_rows
    values = float(nnz) * value_bytes
    indices = float(nnz) * index_bytes
    # Accesses to x: nnz total.  A fraction ``x_reuse`` hits in cache; the
    # remainder goes to memory.  Under perfect reuse we still must stream the
    # whole vector in once (compulsory misses).
    x_from_memory = (1.0 - x_reuse) * float(nnz) * value_bytes
    compulsory = float(n_cols) * value_bytes
    x_bytes = max(x_from_memory, compulsory) if x_reuse > 0 else float(nnz) * value_bytes
    rowptr = float(n_rows + 1) * rowptr_bytes if include_rowptr_and_y else 0.0
    y = float(n_rows) * value_bytes if include_rowptr_and_y else 0.0
    return SpmvTraffic(
        values_bytes=values,
        indices_bytes=indices,
        x_bytes=x_bytes,
        rowptr_bytes=rowptr,
        y_bytes=y,
    )
