"""Modelled-GPU performance substrate.

The paper's measurements were taken on an NVIDIA Tesla V100; this
reproduction has no GPU, so every kernel call in :mod:`repro.linalg.kernels`
is metered through an analytic performance model of that device.  The model
is intentionally the *same* model the paper itself uses to explain its
results (Section V-D): memory-bound kernels cost ``bytes_moved /
bandwidth`` plus a fixed kernel-launch latency, and the byte traffic of the
CSR SpMV depends on how well the right-hand-side vector is reused in the L2
cache.

Public pieces:

* :class:`~repro.perfmodel.device.DeviceSpec` — bandwidth / cache / launch
  latency numbers for V100 (default), A100, P100 and a generic host CPU.
* :class:`~repro.perfmodel.costs.KernelCostModel` — per-kernel time
  estimates.
* :class:`~repro.perfmodel.timer.KernelTimer` — accumulates modelled and
  wall-clock time per kernel label, the data behind every timing figure.
* :mod:`~repro.perfmodel.spmv_model` — the paper's closed-form
  ``5w/(2w+1)`` SpMV speedup model and its generalisations.
* :mod:`~repro.perfmodel.cache` — L2 reuse estimation and a streaming
  set-associative cache simulator for CSR access traces.
"""

from .device import DeviceSpec, get_device, KNOWN_DEVICES
from .costs import KernelCostModel
from .timer import (
    KernelTimer,
    KernelRecord,
    active_timer,
    active_timers,
    push_timer,
    pop_timer,
    use_timer,
    ORTHO_LABELS,
    canonical_label,
)
from .spmv_model import (
    csr_bytes_per_row_double,
    csr_bytes_per_row_float,
    predicted_spmv_speedup,
    spmv_traffic,
)
from .cache import CacheConfig, estimate_x_reuse, simulate_stream_hit_rate

__all__ = [
    "DeviceSpec",
    "get_device",
    "KNOWN_DEVICES",
    "KernelCostModel",
    "KernelTimer",
    "KernelRecord",
    "active_timer",
    "active_timers",
    "ORTHO_LABELS",
    "canonical_label",
    "push_timer",
    "pop_timer",
    "use_timer",
    "csr_bytes_per_row_double",
    "csr_bytes_per_row_float",
    "predicted_spmv_speedup",
    "spmv_traffic",
    "CacheConfig",
    "estimate_x_reuse",
    "simulate_stream_hit_rate",
]
