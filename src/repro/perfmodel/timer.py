"""Kernel timing accumulation.

Every instrumented kernel (see :mod:`repro.linalg.kernels`) reports each
call to the *active* :class:`KernelTimer`:

* the **modelled GPU seconds** from :class:`~repro.perfmodel.costs.KernelCostModel`
  (this is what the experiment harness reports as "solve time", standing in
  for the paper's measured V100 seconds),
* the **wall-clock seconds** of the NumPy execution on the host (useful for
  pytest-benchmark and for verifying that the pure-Python implementation is
  itself written efficiently), and
* byte and FLOP counts.

Timers aggregate per kernel *label*; the labels mirror the paper's figures
("SpMV", "GEMV (Trans)", "GEMV (No Trans)", "Norm", "Other", plus the cast
and refinement labels GMRES-IR adds).  Timers nest: the solvers push their
own timer while also allowing an enclosing experiment timer to observe the
same records, via :func:`use_timer`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .costs import CostEstimate

__all__ = [
    "KernelRecord",
    "KernelTimer",
    "active_timer",
    "timers_active",
    "push_timer",
    "pop_timer",
    "use_timer",
    "ORTHO_LABELS",
    "canonical_label",
]

#: Labels that the paper groups under "Total Orthogonalization" (Table I).
ORTHO_LABELS: Tuple[str, ...] = ("GEMV (Trans)", "Norm", "GEMV (No Trans)")

#: Canonical label spellings used across figures/tables.
_CANONICAL = {
    "spmv": "SpMV",
    "gemv_t": "GEMV (Trans)",
    "gemv (trans)": "GEMV (Trans)",
    "gemv_n": "GEMV (No Trans)",
    "gemv (no trans)": "GEMV (No Trans)",
    "norm": "Norm",
    "dot": "Norm",  # single-vector dot products are grouped with norms
    "axpy": "Other",
    "scal": "Other",
    "copy": "Other",
    "cast": "Other",
    "host": "Other",
    "other": "Other",
    "residual": "Other",
    "precond": "Precond",
}


def canonical_label(label: str) -> str:
    """Map an internal kernel name to the label used in the paper's figures."""
    return _CANONICAL.get(label.lower(), label)


@dataclass
class KernelRecord:
    """Accumulated statistics for one (label, precision) bucket."""

    label: str
    precision: str
    calls: int = 0
    model_seconds: float = 0.0
    wall_seconds: float = 0.0
    bytes: float = 0.0
    flops: float = 0.0

    def add(self, cost: CostEstimate, wall_seconds: float = 0.0) -> None:
        self.calls += 1
        self.model_seconds += cost.seconds
        self.wall_seconds += wall_seconds
        self.bytes += cost.bytes
        self.flops += cost.flops

    def merged_with(self, other: "KernelRecord") -> "KernelRecord":
        if other.label != self.label:
            raise ValueError("cannot merge records with different labels")
        return KernelRecord(
            label=self.label,
            precision=self.precision if self.precision == other.precision else "mixed",
            calls=self.calls + other.calls,
            model_seconds=self.model_seconds + other.model_seconds,
            wall_seconds=self.wall_seconds + other.wall_seconds,
            bytes=self.bytes + other.bytes,
            flops=self.flops + other.flops,
        )


class KernelTimer:
    """Accumulates kernel records, optionally mirroring into parent timers.

    Parameters
    ----------
    name:
        Identifier shown in reports (e.g. ``"GMRES double"`` / ``"GMRES-IR"``).
    """

    def __init__(self, name: str = "timer") -> None:
        self.name = name
        self._records: Dict[Tuple[str, str], KernelRecord] = {}

    # ------------------------------------------------------------------ #
    # recording                                                          #
    # ------------------------------------------------------------------ #
    def record(
        self,
        label: str,
        precision: str,
        cost: CostEstimate,
        wall_seconds: float = 0.0,
    ) -> None:
        """Add one kernel call to the (label, precision) bucket."""
        label = canonical_label(label)
        key = (label, precision)
        rec = self._records.get(key)
        if rec is None:
            rec = KernelRecord(label=label, precision=precision)
            self._records[key] = rec
        rec.calls += 1
        rec.model_seconds += cost.seconds
        rec.wall_seconds += wall_seconds
        rec.bytes += cost.bytes
        rec.flops += cost.flops

    @contextmanager
    def wall_clock(self) -> Iterator[List[float]]:
        """Context manager measuring wall time; yields a 1-element list."""
        out = [0.0]
        start = time.perf_counter()
        try:
            yield out
        finally:
            out[0] = time.perf_counter() - start

    # ------------------------------------------------------------------ #
    # queries                                                            #
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> List[KernelRecord]:
        return list(self._records.values())

    def labels(self) -> List[str]:
        return sorted({label for (label, _p) in self._records})

    def total_model_seconds(self) -> float:
        return sum(r.model_seconds for r in self._records.values())

    def total_wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self._records.values())

    def total_bytes(self) -> float:
        return sum(r.bytes for r in self._records.values())

    def total_calls(self) -> int:
        return sum(r.calls for r in self._records.values())

    def model_seconds_by_label(self) -> Dict[str, float]:
        """Modelled seconds aggregated over precisions, keyed by label."""
        out: Dict[str, float] = {}
        for (label, _prec), rec in self._records.items():
            out[label] = out.get(label, 0.0) + rec.model_seconds
        return out

    def wall_seconds_by_label(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (label, _prec), rec in self._records.items():
            out[label] = out.get(label, 0.0) + rec.wall_seconds
        return out

    def calls_by_label(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (label, _prec), rec in self._records.items():
            out[label] = out.get(label, 0) + rec.calls
        return out

    def model_seconds_for(self, label: str, precision: Optional[str] = None) -> float:
        label = canonical_label(label)
        total = 0.0
        for (lab, prec), rec in self._records.items():
            if lab == label and (precision is None or prec == precision):
                total += rec.model_seconds
        return total

    def orthogonalization_seconds(self) -> float:
        """Time in the kernels the paper groups as orthogonalization."""
        return sum(self.model_seconds_for(lab) for lab in ORTHO_LABELS)

    def merge_from(self, other: "KernelTimer") -> None:
        """Fold another timer's records into this one."""
        for (label, prec), rec in other._records.items():
            key = (label, prec)
            mine = self._records.get(key)
            if mine is None:
                self._records[key] = KernelRecord(
                    label=label,
                    precision=prec,
                    calls=rec.calls,
                    model_seconds=rec.model_seconds,
                    wall_seconds=rec.wall_seconds,
                    bytes=rec.bytes,
                    flops=rec.flops,
                )
            else:
                mine.calls += rec.calls
                mine.model_seconds += rec.model_seconds
                mine.wall_seconds += rec.wall_seconds
                mine.bytes += rec.bytes
                mine.flops += rec.flops

    def reset(self) -> None:
        self._records.clear()

    def summary(self) -> str:
        """Human-readable per-label summary (modelled seconds)."""
        lines = [f"KernelTimer({self.name!r}): total {self.total_model_seconds():.6f} modelled s"]
        by_label = self.model_seconds_by_label()
        calls = self.calls_by_label()
        # Stable order: descending modelled time, label name breaking ties
        # (equal-cost labels otherwise land in dict-insertion order, which
        # varies with the kernel call sequence).
        for label in sorted(by_label, key=lambda lab: (-by_label[lab], lab)):
            lines.append(
                f"  {label:<18s} {by_label[label]:12.6f} s  ({calls[label]} calls)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelTimer {self.name!r} labels={self.labels()}>"


# ---------------------------------------------------------------------- #
# Active-timer stack.  Kernels record into *all* timers on the stack so   #
# that a solver-local timer and an experiment-wide timer both see the     #
# same calls.                                                             #
#                                                                         #
# The stack is *thread-local*: a timer pushed on one thread observes only #
# that thread's kernel calls.  This lets the serve-layer dispatcher meter #
# its batched solves without leaking records into experiment timers       #
# running concurrently on client threads (and vice versa).                #
# Single-threaded behaviour is unchanged.                                 #
# ---------------------------------------------------------------------- #
_TLS = threading.local()


def _stack() -> List[KernelTimer]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def active_timer() -> Optional[KernelTimer]:
    """The innermost active timer of this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def active_timers() -> List[KernelTimer]:
    """All timers currently on this thread's stack (outermost first)."""
    return list(_stack())


def timers_active() -> bool:
    """True when at least one timer is on the calling thread's stack.

    The instrumented kernels probe this before touching ``perf_counter`` or
    the cost model: a solve with no observer (and metering disabled) runs
    the raw backend call and nothing else — the "metering fast path".
    Unlike :func:`active_timers` this allocates no list, so it is safe to
    call once per kernel invocation.
    """
    return bool(getattr(_TLS, "stack", None))


def push_timer(timer: KernelTimer) -> KernelTimer:
    _stack().append(timer)
    return timer


def pop_timer() -> KernelTimer:
    stack = _stack()
    if not stack:
        raise RuntimeError("timer stack is empty")
    return stack.pop()


@contextmanager
def use_timer(timer: Optional[KernelTimer] = None, name: str = "timer") -> Iterator[KernelTimer]:
    """Context manager installing ``timer`` as the active timer.

    A fresh timer is created when none is supplied; either way, it is yielded
    so that callers can inspect it afterwards.
    """
    timer = timer or KernelTimer(name)
    push_timer(timer)
    try:
        yield timer
    finally:
        popped = pop_timer()
        if popped is not timer:  # pragma: no cover - defensive
            raise RuntimeError("timer stack corrupted")
