"""L2-cache reuse modelling for the CSR SpMV (Section V-D of the paper).

The paper observes with NVIDIA profiling tools that the L2 hit rate of the
fp32 SpMV is almost twice that of the fp64 SpMV: the fp32 right-hand-side
vector ``x`` is effectively read from device memory once ("perfect
caching"), while in fp64 most accesses to ``x`` miss and have to be
re-fetched.  That asymmetry is what pushes the SpMV speedup beyond the
naive 1.5–2× one would expect from halving the value width.

This module provides two levels of fidelity:

1. :func:`estimate_x_reuse` — a closed-form working-set model.  The set of
   ``x`` elements that must stay resident while a window of rows is in
   flight on the GPU either fits in the share of L2 available to ``x`` (→
   near-perfect reuse) or it does not, in which case LRU-style streaming
   thrashing destroys almost all reuse (→ only a small residual hit rate).
   The window size and the L2 share are *calibrated* constants chosen so
   that the model reproduces the profiler observation in the paper:
   at the paper's problem sizes fp32 lands in the "fits" regime and fp64 in
   the "thrashes" regime.  Both constants are explicit parameters of
   :class:`CacheConfig` so the calibration is visible and testable.

2. :func:`simulate_stream_hit_rate` — a small set-associative LRU cache
   simulator driven by the actual column-index stream of a CSR matrix.  It
   is far too slow for whole solver runs but is used by the Section V-D
   validation experiment to cross-check the closed-form model on real
   (scaled) matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .device import DeviceSpec

__all__ = ["CacheConfig", "estimate_x_reuse", "simulate_stream_hit_rate"]


@dataclass(frozen=True)
class CacheConfig:
    """Calibration constants of the L2 reuse model.

    Attributes
    ----------
    x_share:
        Fraction of L2 capacity effectively available to the right-hand-side
        vector ``x``; the rest is occupied by the streamed matrix values and
        column indices.  Calibrated to 0.6.
    window_rows_per_l2_byte:
        The number of matrix rows "in flight" per byte of L2.  The product
        ``window_rows_per_l2_byte * l2_bytes`` is the reuse window: the
        number of rows whose ``x`` accesses compete for residency at any
        time.  Calibrated to ``1/12`` so that on the 6 MB V100 L2 the window
        is ~512k rows, which puts the paper's fp32 runs in the perfect-reuse
        regime and the fp64 runs in the thrashing regime, matching the
        profiler data reported in Section V-D.
    residual_reuse:
        Hit fraction retained in the thrashing regime (L1 and lucky L2
        hits).  The paper notes observed speedups were *slightly higher*
        than the 5w/(2w+1) model, "probably due to additional improvements
        in L1 cache use"; a small non-zero residual keeps the model from
        being overly pessimistic in fp64.
    """

    x_share: float = 0.6
    window_rows_per_l2_byte: float = 1.0 / 12.0
    residual_reuse: float = 0.05

    def window_rows(self, device: DeviceSpec) -> int:
        """Reuse-window size in rows for the given device."""
        return max(1, int(round(self.window_rows_per_l2_byte * device.l2_bytes)))

    def available_bytes(self, device: DeviceSpec) -> float:
        """L2 bytes effectively available for caching ``x``."""
        return self.x_share * device.l2_bytes


def estimate_x_reuse(
    device: DeviceSpec,
    n_cols: int,
    value_bytes: int,
    matrix_bandwidth: Optional[int] = None,
    config: Optional[CacheConfig] = None,
) -> float:
    """Estimate the fraction of ``x`` accesses served from cache.

    Parameters
    ----------
    device:
        Modelled device (provides L2 capacity).
    n_cols:
        Number of columns of the matrix = length of ``x``.
    value_bytes:
        Byte width of one element of ``x`` (4 or 8).
    matrix_bandwidth:
        Matrix bandwidth in *rows* (maximum ``|i - j|`` over nonzeros).  For
        banded stencil matrices the footprint of ``x`` touched by a window
        of rows is roughly ``window + 2*bandwidth`` elements; for matrices
        with near-full bandwidth it approaches the whole vector.  ``None``
        is treated as unknown / full bandwidth.
    config:
        Calibration constants (defaults to :class:`CacheConfig`).

    Returns
    -------
    float
        Reuse fraction in ``[0, 1]``: 1 means each element of ``x`` is read
        from device memory exactly once; 0 means every access misses.
    """
    if n_cols <= 0:
        raise ValueError("n_cols must be positive")
    cfg = config or CacheConfig()
    window = cfg.window_rows(device)
    if matrix_bandwidth is None:
        matrix_bandwidth = n_cols
    # Elements of x that must stay resident while the window of rows is in
    # flight.  Clamped to the whole vector.
    footprint_elems = min(n_cols, window + 2 * max(0, int(matrix_bandwidth)))
    footprint_bytes = footprint_elems * value_bytes
    if footprint_bytes <= cfg.available_bytes(device):
        return 1.0
    return cfg.residual_reuse


def simulate_stream_hit_rate(
    col_indices: np.ndarray,
    value_bytes: int,
    cache_bytes: int,
    *,
    line_bytes: int = 128,
    associativity: int = 16,
    max_accesses: int = 2_000_000,
    seed: int = 0,
) -> float:
    """Simulate the L2 hit rate of the ``x``-vector access stream of a CSR SpMV.

    A set-associative LRU cache is driven by the sequence of cache lines
    touched when reading ``x[colId[k]]`` for ``k = 0..nnz-1`` (the order in
    which a row-major CSR SpMV visits them).  Only the ``x`` accesses are
    simulated; the streamed matrix values/indices are accounted for by
    reserving a share of the cache (callers pass
    ``cache_bytes = CacheConfig.x_share * device.l2_bytes``).

    Parameters
    ----------
    col_indices:
        Concatenated column indices of the CSR matrix (``A.indices``).
    value_bytes:
        Width of one ``x`` element.
    cache_bytes:
        Capacity available to ``x``.
    line_bytes:
        Cache-line size (128 B on the V100 L2).
    associativity:
        Ways per set.
    max_accesses:
        If the stream is longer than this, a contiguous window of this many
        accesses is simulated instead (keeps the simulator usable on larger
        matrices); the hit rate of a contiguous window is representative
        because the access pattern of a stencil matrix is homogeneous.
    seed:
        Seed for choosing the window start.

    Returns
    -------
    float
        Fraction of accesses that hit in the simulated cache.
    """
    col_indices = np.asarray(col_indices, dtype=np.int64)
    if col_indices.size == 0:
        return 1.0
    if cache_bytes < line_bytes:
        return 0.0
    n_lines = max(1, int(cache_bytes // line_bytes))
    n_sets = max(1, n_lines // associativity)
    elems_per_line = max(1, line_bytes // value_bytes)

    stream = col_indices
    if stream.size > max_accesses:
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, stream.size - max_accesses))
        stream = stream[start : start + max_accesses]

    lines = stream // elems_per_line
    sets = (lines % n_sets).astype(np.int64)
    tags = (lines // n_sets).astype(np.int64)

    # LRU bookkeeping: for each set, a list of resident tags ordered from
    # most- to least-recently used.  Python loop, but bounded by max_accesses.
    resident: list[list[int]] = [[] for _ in range(n_sets)]
    hits = 0
    for s, t in zip(sets.tolist(), tags.tolist()):
        ways = resident[s]
        try:
            pos = ways.index(t)
        except ValueError:
            pos = -1
        if pos >= 0:
            hits += 1
            if pos != 0:
                ways.pop(pos)
                ways.insert(0, t)
        else:
            ways.insert(0, t)
            if len(ways) > associativity:
                ways.pop()
    return hits / len(stream)
