"""Per-kernel analytic cost model.

Every linear-algebra kernel used by the solvers (CSR SpMV, tall-skinny GEMV
with and without transpose, dot products, norms, vector updates, precision
casts, host↔device transfers, small host-side dense operations) gets a
closed-form time estimate:

``time = bytes_moved / (efficiency * memory_bandwidth) + fixed overheads``

All of these kernels are memory-bound on a V100 at GMRES-relevant sizes, so
byte traffic over achieved bandwidth is the right first-order model — this
is precisely the argument the paper itself makes in Section V-D.  Two
refinements are layered on top:

* **SpMV cache model** — the right-hand-side-vector reuse fraction comes
  from :mod:`repro.perfmodel.cache`, which reproduces the paper's
  "perfect caching in fp32 / thrashing in fp64" observation and hence the
  ≈2.5× SpMV speedup.
* **Per-kernel achieved-bandwidth efficiencies** — dense tall-skinny GEMV
  and reduction kernels do not reach streaming bandwidth, and they reach a
  *smaller fraction* of it in fp32 than in fp64 (per-thread work shrinks
  while latency and launch overheads stay constant).  The default
  efficiency table is calibrated against the per-kernel speedups the paper
  reports in Table I (GEMV-T 1.28×, norm 1.15×, GEMV-N 1.57×), and is a
  documented, overridable parameter of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .cache import CacheConfig, estimate_x_reuse
from .device import DeviceSpec, get_device
from .spmv_model import INDEX_BYTES, spmv_traffic

__all__ = ["CostEstimate", "KernelCostModel", "DEFAULT_EFFICIENCY"]


@dataclass(frozen=True)
class CostEstimate:
    """Outcome of one kernel-cost evaluation."""

    seconds: float
    bytes: float
    flops: float

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            seconds=self.seconds + other.seconds,
            bytes=self.bytes + other.bytes,
            flops=self.flops + other.flops,
        )


#: Achieved-bandwidth fraction per (kernel class, value bytes).  Calibrated
#: so that at the paper's problem sizes the modelled per-kernel fp64→fp32
#: speedups match Table I of the paper:
#:
#: ==============  ==========  ================  ================
#: kernel class    fp64 eff    fp32 eff          implied speedup
#: ==============  ==========  ================  ================
#: spmv            0.86        0.97              cache model (≈2.3–2.5×)
#: gemv_t          0.92        0.59              ≈1.28×
#: gemv_n          0.92        0.72              ≈1.57×
#: dot / norm      0.90        0.55              ≈1.15–1.2× (plus fixed costs)
#: axpy / scal     0.92        0.80              ≈1.7×
#: copy / cast     0.92        0.85              —
#: ==============  ==========  ================  ================
#:
#: The fp64/fp32 asymmetry of the ``spmv`` entry models the L1 effect the
#: paper mentions when its observed SpMV speedups come out *above* the
#: 5w/(2w+1) L2 model ("probably due to additional improvements in L1 cache
#: use"): the fp32 right-hand-side vector also survives longer in L1, so the
#: fp32 kernel runs closer to streaming bandwidth than the fp64 one.
DEFAULT_EFFICIENCY: Dict[str, Dict[int, float]] = {
    "spmv": {8: 0.86, 4: 0.97, 2: 0.97},
    "gemv_t": {8: 0.92, 4: 0.59, 2: 0.50},
    "gemv_n": {8: 0.92, 4: 0.72, 2: 0.60},
    # BLAS-3 block orthogonalization: one launch amortized over k vectors
    # and register-blocked reuse of the basis panel keep the block kernels
    # closer to streaming bandwidth than their k-fold GEMV equivalents.
    "gemm_t": {8: 0.95, 4: 0.80, 2: 0.65},
    "gemm_n": {8: 0.95, 4: 0.85, 2: 0.70},
    "dot": {8: 0.90, 4: 0.55, 2: 0.45},
    "norm": {8: 0.90, 4: 0.55, 2: 0.45},
    "axpy": {8: 0.92, 4: 0.80, 2: 0.70},
    "scal": {8: 0.92, 4: 0.80, 2: 0.70},
    "copy": {8: 0.92, 4: 0.85, 2: 0.80},
    "cast": {8: 0.92, 4: 0.85, 2: 0.80},
}


class KernelCostModel:
    """Analytic kernel timing for a modelled device.

    Parameters
    ----------
    device:
        :class:`DeviceSpec` or device name (default from the library config).
    cache_config:
        Calibration of the SpMV L2 reuse model.
    efficiency:
        Achieved-bandwidth fractions; partial overrides are merged over
        :data:`DEFAULT_EFFICIENCY`.
    """

    def __init__(
        self,
        device: DeviceSpec | str = "v100",
        cache_config: Optional[CacheConfig] = None,
        efficiency: Optional[Mapping[str, Mapping[int, float]]] = None,
    ) -> None:
        if isinstance(device, str):
            device = get_device(device)
        self.device = device
        self.cache_config = cache_config or CacheConfig()
        eff: Dict[str, Dict[int, float]] = {
            k: dict(v) for k, v in DEFAULT_EFFICIENCY.items()
        }
        if efficiency:
            for kernel, table in efficiency.items():
                eff.setdefault(kernel, {}).update(table)
        self.efficiency = eff

    # ------------------------------------------------------------------ #
    # helpers                                                            #
    # ------------------------------------------------------------------ #
    def _eff(self, kernel: str, value_bytes: int) -> float:
        table = self.efficiency.get(kernel, {})
        if value_bytes in table:
            return table[value_bytes]
        if table:
            # Fall back to the nearest known width.
            key = min(table, key=lambda k: abs(k - value_bytes))
            return table[key]
        return 0.9

    def _stream_time(self, kernel: str, nbytes: float, value_bytes: int) -> float:
        bandwidth = self.efficiency_bandwidth(kernel, value_bytes)
        return nbytes / bandwidth

    def efficiency_bandwidth(self, kernel: str, value_bytes: int) -> float:
        """Achieved bandwidth (bytes/s) of a kernel class at a value width."""
        return self._eff(kernel, value_bytes) * self.device.memory_bandwidth

    # ------------------------------------------------------------------ #
    # kernels                                                            #
    # ------------------------------------------------------------------ #
    def spmv(
        self,
        n_rows: int,
        n_cols: int,
        nnz: int,
        value_bytes: int,
        matrix_bandwidth: Optional[int] = None,
    ) -> CostEstimate:
        """CSR sparse matrix–vector product ``y = A x``."""
        reuse = estimate_x_reuse(
            self.device, n_cols, value_bytes, matrix_bandwidth, self.cache_config
        )
        traffic = spmv_traffic(
            n_rows,
            nnz,
            value_bytes,
            reuse,
            index_bytes=INDEX_BYTES,
            include_rowptr_and_y=True,
            n_cols=n_cols,
        )
        seconds = (
            self._stream_time("spmv", traffic.total, value_bytes)
            + self.device.launch_latency
        )
        return CostEstimate(seconds=seconds, bytes=traffic.total, flops=2.0 * nnz)

    def spmm(
        self,
        n_rows: int,
        n_cols: int,
        nnz: int,
        k: int,
        value_bytes: int,
        matrix_bandwidth: Optional[int] = None,
    ) -> CostEstimate:
        """Batched multi-RHS CSR product ``Y = A X`` with ``k`` columns.

        The point of batching is that the matrix (values + indices + row
        pointers) streams through memory once for all ``k`` right-hand
        sides; only the ``x``-gather and ``y``-write traffic scales with
        ``k``.  Modelled accordingly: the single-RHS SpMV cost plus
        ``k - 1`` extra vector streams at SpMV efficiency.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        single = self.spmv(n_rows, n_cols, nnz, value_bytes, matrix_bandwidth)
        extra_bytes = (k - 1) * float(n_rows + n_cols) * value_bytes
        seconds = single.seconds + self._stream_time("spmv", extra_bytes, value_bytes)
        return CostEstimate(
            seconds=seconds,
            bytes=single.bytes + extra_bytes,
            flops=2.0 * nnz * k,
        )

    def gemv(
        self, n_rows: int, n_cols: int, value_bytes: int, *, trans: bool
    ) -> CostEstimate:
        """Tall-skinny dense GEMV.

        ``trans=True`` is the inner-product pass of classical Gram-Schmidt
        (``H = V^T w``, reading the basis block and one vector, producing a
        small host-bound result); ``trans=False`` is the update pass
        (``w -= V H``).
        """
        block_bytes = float(n_rows) * n_cols * value_bytes
        vector_bytes = float(n_rows) * value_bytes
        if trans:
            nbytes = block_bytes + vector_bytes + n_cols * value_bytes
            kernel = "gemv_t"
            # Result (length n_cols) is copied to the host: the Belos
            # SerialDenseMatrix round trip the paper calls out in Section IV.
            host = (
                self.device.host_transfer_latency
                + n_cols * 8 / self.device.host_transfer_bandwidth
            )
        else:
            nbytes = block_bytes + 2.0 * vector_bytes + n_cols * value_bytes
            kernel = "gemv_n"
            host = self.device.host_transfer_latency
        seconds = (
            self._stream_time(kernel, nbytes, value_bytes)
            + self.device.launch_latency
            + host
        )
        return CostEstimate(
            seconds=seconds, bytes=nbytes, flops=2.0 * n_rows * n_cols
        )

    def gemm(
        self, n_rows: int, n_cols: int, k: int, value_bytes: int, *, trans: bool
    ) -> CostEstimate:
        """Tall-skinny dense GEMM against a ``k``-column block of vectors.

        The BLAS-3 analogue of :meth:`gemv`: the basis panel (n × j)
        streams through memory *once* for all ``k`` vectors instead of
        ``k`` times, which is the whole point of block orthogonalization
        (``trans=True`` is the block inner-product pass ``H = V^T W``,
        ``trans=False`` the block update ``W -= V H``).  Only the vector
        block and coefficient traffic scale with ``k``.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        block_bytes = float(n_rows) * n_cols * value_bytes
        panel_bytes = float(n_rows) * k * value_bytes
        coeff_bytes = float(n_cols) * k * value_bytes
        if trans:
            nbytes = block_bytes + panel_bytes + coeff_bytes
            kernel = "gemm_t"
            # The (j × k) coefficient block rides back to the host, as in
            # the GEMV case (Belos SerialDenseMatrix round trip).
            host = (
                self.device.host_transfer_latency
                + n_cols * k * 8 / self.device.host_transfer_bandwidth
            )
        else:
            nbytes = block_bytes + 2.0 * panel_bytes + coeff_bytes
            kernel = "gemm_n"
            host = self.device.host_transfer_latency
        seconds = (
            self._stream_time(kernel, nbytes, value_bytes)
            + self.device.launch_latency
            + host
        )
        return CostEstimate(
            seconds=seconds, bytes=nbytes, flops=2.0 * n_rows * n_cols * k
        )

    def dot(self, n: int, value_bytes: int) -> CostEstimate:
        """Device dot product with the result returned to the host."""
        nbytes = 2.0 * n * value_bytes
        seconds = (
            self._stream_time("dot", nbytes, value_bytes)
            + 2 * self.device.launch_latency  # partial + final reduction
            + self.device.host_transfer_latency
        )
        return CostEstimate(seconds=seconds, bytes=nbytes, flops=2.0 * n)

    def norm2(self, n: int, value_bytes: int) -> CostEstimate:
        """Euclidean norm (reduction + host-side square root)."""
        nbytes = float(n) * value_bytes
        seconds = (
            self._stream_time("norm", nbytes, value_bytes)
            + 2 * self.device.launch_latency
            + self.device.host_transfer_latency
            + self.device.host_op_latency
        )
        return CostEstimate(seconds=seconds, bytes=nbytes, flops=2.0 * n)

    def axpy(self, n: int, value_bytes: int) -> CostEstimate:
        """``y += alpha * x`` (read x, read+write y)."""
        nbytes = 3.0 * n * value_bytes
        seconds = (
            self._stream_time("axpy", nbytes, value_bytes) + self.device.launch_latency
        )
        return CostEstimate(seconds=seconds, bytes=nbytes, flops=2.0 * n)

    def scal(self, n: int, value_bytes: int) -> CostEstimate:
        """``x *= alpha`` (read+write x)."""
        nbytes = 2.0 * n * value_bytes
        seconds = (
            self._stream_time("scal", nbytes, value_bytes) + self.device.launch_latency
        )
        return CostEstimate(seconds=seconds, bytes=nbytes, flops=float(n))

    def copy(self, n: int, value_bytes: int) -> CostEstimate:
        """Device-to-device vector copy."""
        nbytes = 2.0 * n * value_bytes
        seconds = (
            self._stream_time("copy", nbytes, value_bytes) + self.device.launch_latency
        )
        return CostEstimate(seconds=seconds, bytes=nbytes, flops=0.0)

    def cast(self, n: int, from_bytes: int, to_bytes: int) -> CostEstimate:
        """Precision-conversion kernel (read at one width, write at another)."""
        nbytes = float(n) * (from_bytes + to_bytes)
        seconds = (
            self._stream_time("cast", nbytes, max(from_bytes, to_bytes))
            + self.device.launch_latency
        )
        return CostEstimate(seconds=seconds, bytes=nbytes, flops=0.0)

    # ------------------------------------------------------------------ #
    # composite estimates (batching policy)                              #
    # ------------------------------------------------------------------ #
    def block_iteration_speedup(
        self,
        n_rows: int,
        n_cols: int,
        nnz: int,
        k: int,
        value_bytes: int,
        *,
        basis_columns: int = 25,
        spmvs_per_iteration: int = 1,
        matrix_bandwidth: Optional[int] = None,
    ) -> float:
        """Modelled per-RHS speedup of advancing ``k`` right-hand sides one
        Krylov step as a block instead of sequentially.

        The quantity the serve-layer batching policy consults: how much
        cheaper is one *column-step* (one Krylov dimension added to one
        right-hand side) in the blocked iteration.  Compared at equal
        per-column basis size ``basis_columns`` (the block basis is then
        ``k×`` wider, which the blocked GEMM terms account for):

        * sequential column-step — ``spmvs_per_iteration`` SpMVs (the
          operator plus any polynomial-preconditioner factors), two CGS2
          passes of GEMV-T/GEMV-N against the basis, a norm and a scale;
        * block step (``k`` column-steps at once) — the same operator
          count as batched SpMMs, two block-CGS2 passes of GEMM-T/GEMM-N
          against the ``k×`` wider basis, and the intra-block panel
          orthogonalization (``k`` CGS2 columns against a ``k``-wide
          panel).

        Values above 1 mean blocking wins on the modelled device.  The
        matrix traversal is the only term that shrinks with ``k``, so the
        speedup grows with ``spmvs_per_iteration`` — precisely the paper's
        observation that batching pays when iterations are SpMM-dominated.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if k == 1:
            return 1.0
        j = max(1, int(basis_columns))
        spmv = self.spmv(n_rows, n_cols, nnz, value_bytes, matrix_bandwidth).seconds
        gemv_pass = (
            self.gemv(n_rows, j, value_bytes, trans=True).seconds
            + self.gemv(n_rows, j, value_bytes, trans=False).seconds
        )
        norm = self.norm2(n_rows, value_bytes).seconds
        scal = self.scal(n_rows, value_bytes).seconds
        sequential = spmvs_per_iteration * spmv + 2.0 * gemv_pass + norm + scal

        spmm = self.spmm(
            n_rows, n_cols, nnz, k, value_bytes, matrix_bandwidth
        ).seconds
        gemm_pass = (
            self.gemm(n_rows, j * k, k, value_bytes, trans=True).seconds
            + self.gemm(n_rows, j * k, k, value_bytes, trans=False).seconds
        )
        panel_pass = (
            self.gemv(n_rows, k, value_bytes, trans=True).seconds
            + self.gemv(n_rows, k, value_bytes, trans=False).seconds
        )
        intra_block = k * (2.0 * panel_pass + norm + scal)
        block = spmvs_per_iteration * spmm + 2.0 * gemm_pass + intra_block
        return sequential / (block / k)

    def host_transfer(self, nbytes: float) -> CostEstimate:
        """Host↔device copy of ``nbytes`` bytes."""
        seconds = (
            self.device.host_transfer_latency
            + nbytes / self.device.host_transfer_bandwidth
        )
        return CostEstimate(seconds=seconds, bytes=float(nbytes), flops=0.0)

    def host_dense_op(self, work_elements: int) -> CostEstimate:
        """Small host-side dense operation (Givens sweep, triangular solve).

        ``work_elements`` is the number of scalar multiply-adds; these run on
        the host at a modest rate and carry a fixed per-call latency.  They
        populate the "Other" bucket of the paper's timing figures.
        """
        host = get_device("host")
        seconds = self.device.host_op_latency + work_elements / (host.flops_fp64 / 50.0)
        return CostEstimate(
            seconds=seconds, bytes=16.0 * work_elements, flops=float(work_elements)
        )
