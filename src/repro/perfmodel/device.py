"""Device specifications for the analytic performance model.

The numbers for the V100 match the testbed in Section V of the paper
(Tesla V100, 16 GB) and NVIDIA's published specifications.  The model only
needs a handful of quantities:

* sustained device-memory bandwidth (the solver kernels are memory bound),
* L2 cache capacity and line size (drives the SpMV right-hand-side reuse
  model of Section V-D),
* kernel launch latency (explains why small kernels such as ``norm`` see
  much smaller fp32 speedups than the SpMV),
* peak floating-point throughput per precision (only used as a sanity
  bound; none of the GMRES kernels are compute bound), and
* host↔device transfer bandwidth plus a fixed per-transfer latency (the
  Belos framework forces small Hessenberg blocks back to the host each
  iteration, which the paper files under "other").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DeviceSpec", "KNOWN_DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters consumed by :class:`~repro.perfmodel.costs.KernelCostModel`.

    Attributes
    ----------
    name:
        Identifier (``"v100"``, ``"a100"``, ``"p100"``, ``"host"``).
    memory_bandwidth:
        Sustained device (global) memory bandwidth in bytes/second.
    l2_bytes:
        L2 cache capacity in bytes.
    l1_bytes:
        Per-SM L1/shared capacity in bytes (aggregate effect folded into the
        reuse model's residual-hit term).
    cache_line_bytes:
        Granularity of device-memory transactions.
    launch_latency:
        Fixed cost of launching one kernel, in seconds.
    flops_fp64, flops_fp32, flops_fp16:
        Peak arithmetic throughput per precision, in FLOP/s.
    host_transfer_bandwidth:
        Host↔device copy bandwidth in bytes/second (PCIe gen3 x16 / NVLink).
    host_transfer_latency:
        Fixed latency per host↔device copy, in seconds.
    host_op_latency:
        Fixed cost of a small host-side dense operation (e.g. applying Givens
        rotations to the Hessenberg matrix), in seconds.
    memory_bytes:
        Device memory capacity in bytes (used for out-of-memory checks on
        large restart lengths, cf. Section V-E).
    """

    name: str
    memory_bandwidth: float
    l2_bytes: int
    l1_bytes: int
    cache_line_bytes: int
    launch_latency: float
    flops_fp64: float
    flops_fp32: float
    flops_fp16: float
    host_transfer_bandwidth: float
    host_transfer_latency: float
    host_op_latency: float
    memory_bytes: int

    def peak_flops(self, value_bytes: int) -> float:
        """Peak FLOP/s for operands of the given byte width."""
        if value_bytes >= 8:
            return self.flops_fp64
        if value_bytes >= 4:
            return self.flops_fp32
        return self.flops_fp16

    @property
    def is_gpu(self) -> bool:
        return self.name != "host"

    def scaled(self, factor: float, name: str | None = None) -> "DeviceSpec":
        """Return a dimensionally scaled copy of this device.

        The reproduction runs problems that are ``factor`` times smaller than
        the paper's (pure-Python numerics cannot handle multi-million-row
        grids in reasonable wall time).  To keep the *regime* of the modelled
        device identical — the ratio of problem size to cache capacity, and
        the ratio of fixed per-kernel overheads to streaming time — all
        capacity-like and latency-like quantities are scaled by the same
        factor while bandwidths and FLOP rates are left untouched.  Modelled
        kernel-time *ratios* (speedups, breakdown percentages) of a scaled
        problem on the scaled device then match those of the full-size
        problem on the real device.

        Parameters
        ----------
        factor:
            Problem-size ratio ``n_scaled / n_paper`` (0 < factor <= 1 for a
            scaled-down run; values > 1 extrapolate upwards).
        name:
            Optional name of the derived spec (defaults to
            ``"<base>-x<factor>"``).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        from dataclasses import replace

        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            l2_bytes=max(1, int(round(self.l2_bytes * factor))),
            l1_bytes=max(1, int(round(self.l1_bytes * factor))),
            memory_bytes=max(1, int(round(self.memory_bytes * factor))),
            launch_latency=self.launch_latency * factor,
            host_transfer_latency=self.host_transfer_latency * factor,
            host_op_latency=self.host_op_latency * factor,
        )


#: Tesla V100 SXM2 16 GB — the paper's testbed.  Bandwidth is the sustained
#: STREAM-like figure (~810 GB/s of the 900 GB/s peak); L2 is 6 MB.
_V100 = DeviceSpec(
    name="v100",
    memory_bandwidth=810e9,
    l2_bytes=6 * 1024 * 1024,
    l1_bytes=128 * 1024 * 80,
    cache_line_bytes=128,
    launch_latency=8e-6,
    flops_fp64=7.8e12,
    flops_fp32=15.7e12,
    flops_fp16=31.4e12,
    host_transfer_bandwidth=12e9,
    host_transfer_latency=10e-6,
    host_op_latency=4e-6,
    memory_bytes=16 * 1024**3,
)

_A100 = DeviceSpec(
    name="a100",
    memory_bandwidth=1.4e12,
    l2_bytes=40 * 1024 * 1024,
    l1_bytes=192 * 1024 * 108,
    cache_line_bytes=128,
    launch_latency=7e-6,
    flops_fp64=9.7e12,
    flops_fp32=19.5e12,
    flops_fp16=78e12,
    host_transfer_bandwidth=25e9,
    host_transfer_latency=10e-6,
    host_op_latency=4e-6,
    memory_bytes=40 * 1024**3,
)

_P100 = DeviceSpec(
    name="p100",
    memory_bandwidth=550e9,
    l2_bytes=4 * 1024 * 1024,
    l1_bytes=64 * 1024 * 56,
    cache_line_bytes=128,
    launch_latency=10e-6,
    flops_fp64=4.7e12,
    flops_fp32=9.3e12,
    flops_fp16=18.7e12,
    host_transfer_bandwidth=12e9,
    host_transfer_latency=12e-6,
    host_op_latency=4e-6,
    memory_bytes=16 * 1024**3,
)

#: A generic multicore host, used when modelling "non-GPU"/"other" work.
_HOST = DeviceSpec(
    name="host",
    memory_bandwidth=80e9,
    l2_bytes=32 * 1024 * 1024,
    l1_bytes=32 * 1024 * 24,
    cache_line_bytes=64,
    launch_latency=0.0,
    flops_fp64=1.0e12,
    flops_fp32=2.0e12,
    flops_fp16=2.0e12,
    host_transfer_bandwidth=80e9,
    host_transfer_latency=0.0,
    host_op_latency=1e-6,
    memory_bytes=256 * 1024**3,
)

KNOWN_DEVICES: Dict[str, DeviceSpec] = {
    "v100": _V100,
    "a100": _A100,
    "p100": _P100,
    "host": _HOST,
}


def get_device(name: str = "v100") -> DeviceSpec:
    """Look up a device spec by name (case-insensitive).

    Raises
    ------
    KeyError
        If the device is unknown; the error message lists the known names.
    """
    key = name.lower()
    if key not in KNOWN_DEVICES:
        raise KeyError(
            f"unknown device {name!r}; known devices: {sorted(KNOWN_DEVICES)}"
        )
    return KNOWN_DEVICES[key]
