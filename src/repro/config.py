"""Global configuration for the reproduction library.

Keeps the handful of knobs that experiments, benchmarks and tests share:
the default (modelled) device, default convergence tolerance, default
restart length and the random seed used by synthetic matrix generators.

The paper's experimental setup (Section V) is encoded here as defaults:

* relative residual tolerance ``1e-10``
* restart length ``m = 50``
* right-hand side of all ones, zero initial guess
* a single Tesla V100 (16 GB) as the execution device
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

__all__ = ["ReproConfig", "get_config", "set_config", "default_config", "rng"]


def _default_backend() -> str:
    """Backend name from the ``REPRO_BACKEND`` environment variable."""
    return os.environ.get("REPRO_BACKEND", "numpy").strip().lower() or "numpy"


@dataclass(frozen=True)
class ReproConfig:
    """Immutable bundle of library-wide defaults.

    Attributes
    ----------
    rtol:
        Default relative residual convergence tolerance (paper: ``1e-10``).
    restart:
        Default GMRES restart length ``m`` (paper: 50).
    max_restarts:
        Default cap on the number of restart cycles.
    device_name:
        Name of the modelled device used by :mod:`repro.perfmodel`
        (``"v100"`` reproduces the paper's testbed).
    seed:
        Seed for synthetic matrix generators and right-hand sides that need
        randomness (the paper uses deterministic all-ones right-hand sides;
        randomness only enters through proxy matrix generation).
    meter_kernels:
        If False, kernels skip performance-model accounting entirely
        (useful for the pure-numerics tests, which run slightly faster).
    backend:
        Name of the kernel backend the execution context dispatches to
        (see :mod:`repro.backends`).  Defaults to the ``REPRO_BACKEND``
        environment variable, falling back to the NumPy reference.
    serve_max_block:
        Default micro-batch width cap of the solver service layer
        (:mod:`repro.serve`): the scheduler dispatches at most this many
        coalesced right-hand sides per batched solve.
    serve_max_wait_ms:
        Default micro-batching window in milliseconds: a queued request is
        dispatched once this much time has passed since the oldest waiting
        request arrived, even if the batch is not full.  ``0`` disables
        coalescing-by-waiting (requests still batch when they are already
        queued together).
    serve_policy:
        Default batching policy mode of the service layer: ``"auto"``
        consults the kernel cost model per operator, ``"block"`` always
        batches to the width cap, ``"sequential"`` forces width-1 solves.
    """

    rtol: float = 1e-10
    restart: int = 50
    max_restarts: int = 400
    device_name: str = "v100"
    seed: int = 20210516  # arXiv submission date of the paper
    meter_kernels: bool = True
    backend: str = field(default_factory=_default_backend)
    serve_max_block: int = 8
    serve_max_wait_ms: float = 2.0
    serve_policy: str = "auto"


_DEFAULT = ReproConfig()
_CURRENT: ReproConfig = _DEFAULT


def default_config() -> ReproConfig:
    """The library's built-in defaults (paper Section V settings)."""
    return _DEFAULT


def get_config() -> ReproConfig:
    """Return the currently active configuration."""
    return _CURRENT


def set_config(config: Optional[ReproConfig] = None, **overrides) -> ReproConfig:
    """Replace the active configuration.

    Either pass a full :class:`ReproConfig` or keyword overrides applied on
    top of the current one.  Returns the new active configuration.
    """
    global _CURRENT
    base = config if config is not None else _CURRENT
    _CURRENT = replace(base, **overrides) if overrides else base
    return _CURRENT


def rng(seed: Optional[int] = None) -> np.random.Generator:
    """Deterministic random generator for tests, benchmarks and generators.

    Seeded from the active configuration (:attr:`ReproConfig.seed`) unless
    an explicit seed is given — every stochastic input in the repo routes
    through here so CI runs are reproducible bit-for-bit.
    """
    cfg = get_config()
    return np.random.default_rng(cfg.seed if seed is None else int(seed))
